/**
 * @file
 * Ablation: the nginx accept mutex.
 *
 * Pre-reuseport nginx serializes accept() through an application-level
 * mutex to dodge thundering-herd wakeups on the shared listen socket.
 * The paper disables it for the Fastsocket runs (4.2.2) because the
 * Local Listen Table already gives every worker its own accept queue.
 * This bench quantifies the mutex's effect on both kernels.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Ablation: nginx accept mutex x kernel",
           "Paper 4.2.2: the accept mutex is pointless (disabled) once "
           "the listen socket is partitioned per core.");

    TextTable table;
    table.header({"kernel", "accept mutex", "throughput", "max util",
                  "min util"});

    BenchJsonReport json("ablation_acceptmutex");
    for (int k = 0; k < 2; ++k) {
        KernelConfig kernel =
            k == 0 ? KernelConfig::base2632() : KernelConfig::fastsocket();
        const char *kname = k == 0 ? "base-2.6.32" : "fastsocket";
        for (bool mutex : {false, true}) {
            ExperimentConfig cfg;
            cfg.app = AppKind::kNginx;
            cfg.machine.cores = 12;
            cfg.machine.kernel = kernel;
            cfg.acceptMutex = mutex;
            cfg.concurrencyPerCore = args.quick ? 100 : 300;
            cfg.warmupSec = args.quick ? 0.02 : 0.04;
            cfg.measureSec = args.quick ? 0.04 : 0.1;
            args.apply(cfg);
            ExperimentResult r = runExperiment(cfg);
            json.addRow(std::string(kname) +
                            (mutex ? "-mutex-on" : "-mutex-off"),
                        cfg, r);
            table.row({kname, mutex ? "on" : "off", kcps(r.cps),
                       formatPercent(r.maxUtil()),
                       formatPercent(r.minUtil())});
        }
    }
    table.print();
    std::printf("\nExpected: the mutex costs throughput whenever accept "
                "is a shared resource; under Fastsocket\nthe listen path "
                "is already per-core, so serializing it is pure loss.\n");
    finishJson(args, json);
    return 0;
}
