/**
 * @file
 * Ablation: FDir ATR sampling rate and signature-table size.
 *
 * The paper calls ATR "a best-effort solution instead of a complete
 * solution" because the mapping is sampled and the hardware table is
 * finite (section 2.2). This bench quantifies both limits: local-packet
 * proportion as a function of the sample rate and of the table size.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Ablation: FDir ATR sample rate and table size",
           "HAProxy on 16 cores, Fastsocket V+L (no RFD), FDir ATR. "
           "Paper measures 76.5% local packets with default ATR.");

    BenchJsonReport json("ablation_atr");
    auto run_one = [&](int sample_rate, std::uint32_t table_size) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 16;
        KernelConfig kc = KernelConfig::base2632();
        kc.fastVfs = true;
        kc.localListen = true;
        cfg.machine.kernel = kc;
        cfg.machine.nic.fdirAtr = true;
        cfg.machine.nic.atrSampleRate = sample_rate;
        cfg.machine.nic.atrTableSize = table_size;
        cfg.concurrencyPerCore = args.quick ? 100 : 250;
        cfg.warmupSec = args.quick ? 0.02 : 0.04;
        cfg.measureSec = args.quick ? 0.04 : 0.1;
        args.apply(cfg);
        ExperimentResult r = runExperiment(cfg);
        json.addRow("rate-1/" + std::to_string(sample_rate) + "-table-" +
                        std::to_string(table_size),
                    cfg, r);
        return r;
    };

    TextTable rate_table;
    rate_table.header({"sample rate", "local pkts", "throughput",
                       "L3 miss"});
    for (int rate : {1, 4, 8, 20, 64}) {
        ExperimentResult r = run_one(rate, 8192);
        rate_table.row({"1/" + std::to_string(rate),
                        formatPercent(r.localPktProportion), kcps(r.cps),
                        formatPercent(r.l3MissRate)});
    }
    rate_table.print();

    std::printf("\n");
    TextTable size_table;
    size_table.header({"table size", "local pkts", "throughput"});
    for (std::uint32_t size : {256u, 1024u, 4096u, 16384u}) {
        ExperimentResult r = run_one(8, size);
        size_table.row({std::to_string(size),
                        formatPercent(r.localPktProportion),
                        kcps(r.cps)});
    }
    size_table.print();
    std::printf("\nExpected: denser sampling and bigger tables push the "
                "local share up, but never to 100%% — only\nRFD's "
                "deterministic port encoding (Perfect-Filtering) "
                "achieves complete locality.\n");
    finishJson(args, json);
    return 0;
}
