/**
 * @file
 * Ablation: accept-queue backlog (somaxconn) under overload.
 *
 * Not a paper figure, but a design knob the simulation depends on: the
 * backlog bounds how far a burst can queue ahead of accept(). Too small
 * and the server resets connections under load spikes; large values
 * only add memory and latency. This run overloads a small Fastsocket
 * server and sweeps the backlog.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Ablation: accept-queue backlog under overload",
           "2-core Fastsocket nginx, concurrency far above capacity.");

    TextTable table;
    table.header({"backlog", "throughput", "overflows", "client failures",
                  "served"});

    BenchJsonReport json("ablation_backlog");
    for (std::size_t backlog : {16u, 64u, 256u, 1024u}) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 2;
        cfg.machine.kernel = KernelConfig::fastsocket();
        cfg.concurrencyPerCore = args.quick ? 600 : 1500;   // overload
        cfg.warmupSec = args.quick ? 0.02 : 0.04;
        cfg.measureSec = args.quick ? 0.05 : 0.1;

        args.apply(cfg);
        Testbed bed(cfg);
        for (const Socket *s : bed.machine().kernel().allSockets()) {
            if (s->kind == SockKind::kListen)
                const_cast<Socket *>(s)->backlog = backlog;
        }
        ExperimentResult r = bed.run();
        json.addRow("backlog-" + std::to_string(backlog), cfg, r);
        const KernelStats &ks = bed.machine().kernel().stats();
        table.row({std::to_string(backlog), kcps(r.cps),
                   formatCount(static_cast<double>(ks.acceptOverflows)),
                   formatCount(static_cast<double>(r.clientFailures)),
                   formatCount(static_cast<double>(r.served))});
    }
    table.print();
    std::printf("\nExpected: small backlogs shed load with RSTs; larger "
                "ones absorb the closed-loop burst with no failures.\n");
    finishJson(args, json);
    return 0;
}
