/**
 * @file
 * Ablation: lock-granularity refinement versus table-level partition.
 *
 * Section 2.1 argues that refining the established table's per-bucket
 * lock granularity "is just an optimization but not a thorough
 * solution". This bench sweeps the global table's bucket count and
 * compares against the Local Established Table: contention shrinks with
 * more buckets but only the per-core partition reaches zero.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Ablation: ehash bucket granularity vs table-level partition",
           "HAProxy, 24 cores, V+L+R enabled; only the established-table "
           "strategy varies.");

    TextTable table;
    table.header({"established table", "ehash contentions", "throughput"});

    auto base_cfg = [&](int buckets, bool local) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 24;
        KernelConfig kc = KernelConfig::base2632();
        kc.fastVfs = true;
        kc.localListen = true;
        kc.rfd = true;
        kc.localEstablished = local;
        kc.ehashBuckets = buckets;
        cfg.machine.kernel = kc;
        cfg.concurrencyPerCore = args.quick ? 100 : 250;
        cfg.warmupSec = args.quick ? 0.02 : 0.04;
        cfg.measureSec = args.quick ? 0.05 : 0.12;
        return cfg;
    };

    BenchJsonReport json("ablation_ehash");
    for (int buckets : {64, 1024, 16384}) {
        ExperimentConfig cfg = base_cfg(buckets, false);
        args.apply(cfg);
        ExperimentResult r = runExperiment(cfg);
        json.addRow("global-" + std::to_string(buckets), cfg, r);
        table.row({"global, " + std::to_string(buckets) + " buckets",
                   formatCount(static_cast<double>(
                       r.locks.at("ehash.lock").contentions)),
                   kcps(r.cps)});
    }
    {
        ExperimentConfig cfg = base_cfg(16384, true);
        args.apply(cfg);
        ExperimentResult r = runExperiment(cfg);
        json.addRow("per-core-local", cfg, r);
        table.row({"per-core local tables",
                   formatCount(static_cast<double>(
                       r.locks.at("ehash.lock").contentions)),
                   kcps(r.cps)});
    }
    table.print();
    std::printf("\nExpected: finer buckets reduce but never eliminate "
                "contention; the per-core partition is exactly zero\n"
                "(Table 1's E column), independent of core count.\n");
    finishJson(args, json);
    return 0;
}
