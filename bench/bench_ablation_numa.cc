/**
 * @file
 * Ablation: how much of the baseline collapse is NUMA?
 *
 * The paper's testbed is two 12-core sockets; DESIGN.md attributes the
 * base kernel's bend past 12 cores partly to cross-socket line
 * transfers. This bench re-runs the Figure 4(a) endpoints on a
 * hypothetical single-socket (UMA) machine with identical per-op costs:
 * if the attribution is right, UMA flattens the 12->24 decline for the
 * baseline while barely moving Fastsocket (whose lines never travel).
 */

#include "bench_common.hh"
#include "harness/calibration.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Ablation: NUMA vs UMA at the Figure 4(a) endpoints",
           "Same cycle costs; only the cross-socket transfer penalty "
           "differs.");

    TextTable table;
    table.header({"kernel", "cores", "NUMA (2x12)", "UMA (1x24)",
                  "UMA gain"});

    BenchJsonReport json("ablation_numa");
    for (int k = 0; k < 2; ++k) {
        KernelConfig kernel =
            k == 0 ? KernelConfig::base2632() : KernelConfig::fastsocket();
        const char *kname = k == 0 ? "base-2.6.32" : "fastsocket";
        for (int cores : {12, 24}) {
            double cps[2];
            for (int u = 0; u < 2; ++u) {
                ExperimentConfig cfg;
                cfg.app = AppKind::kNginx;
                cfg.machine.cores = cores;
                cfg.machine.kernel = kernel;
                cfg.machine.costs = u == 0 ? calibratedCosts()
                                           : umaCosts();
                cfg.concurrencyPerCore = args.quick ? 100 : 300;
                cfg.warmupSec = args.quick ? 0.02 : 0.04;
                cfg.measureSec = args.quick ? 0.04 : 0.1;
                args.apply(cfg);
                ExperimentResult r = runExperiment(cfg);
                json.addRow(std::string(kname) + "@" +
                                std::to_string(cores) +
                                (u == 0 ? "-numa" : "-uma"),
                            cfg, r);
                cps[u] = r.cps;
            }
            char gain[16];
            std::snprintf(gain, sizeof(gain), "%+.0f%%",
                          100.0 * (cps[1] - cps[0]) / cps[0]);
            table.row({kname, std::to_string(cores), kcps(cps[0]),
                       kcps(cps[1]), gain});
        }
    }
    table.print();
    std::printf("\nExpected: UMA helps the shared-everything baseline "
                "mostly at 24 cores (cross-socket traffic is its tax)\n"
                "and helps Fastsocket least — partitioned state does not "
                "cross sockets in the first place.\n");
    finishJson(args, json);
    return 0;
}
