/**
 * @file
 * Ablation: the Local Listen Table robustness slow path (section 3.2.1).
 *
 * Kills k of the 8 Fastsocket worker processes and measures how the
 * surviving workers absorb connections whose SYNs land on orphaned
 * cores: throughput, slow-path accept share, and that *no* connection
 * is reset — which is exactly what a naive per-core listen-table
 * partition (without the global fallback) would get wrong.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Ablation: Local Listen Table slow path under process crashes",
           "Paper 3.2.1: a missing local listen socket must fall back to "
           "the global listen socket, not reset the client.");

    TextTable table;
    table.header({"killed procs", "throughput", "slow-path accepts",
                  "slow share", "RSTs", "client failures"});

    BenchJsonReport json("ablation_slowpath");
    for (int killed : {0, 1, 2, 4}) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 8;
        cfg.machine.kernel = KernelConfig::fastsocket();
        cfg.concurrencyPerCore = args.quick ? 100 : 250;
        cfg.warmupSec = args.quick ? 0.02 : 0.04;
        cfg.measureSec = args.quick ? 0.05 : 0.1;

        args.apply(cfg);
        Testbed bed(cfg);
        for (int p = 0; p < killed; ++p)
            bed.machine().kernel().killProcess(p);
        ExperimentResult r = bed.run();
        json.addRow("killed-" + std::to_string(killed), cfg, r);

        const KernelStats &ks = bed.machine().kernel().stats();
        double slow_share =
            ks.acceptedConns
                ? static_cast<double>(ks.slowPathAccepts) /
                      static_cast<double>(ks.acceptedConns)
                : 0.0;
        table.row({std::to_string(killed), kcps(r.cps),
                   formatCount(static_cast<double>(ks.slowPathAccepts)),
                   formatPercent(slow_share),
                   formatCount(static_cast<double>(ks.rstSent)),
                   formatCount(static_cast<double>(r.clientFailures))});
    }
    table.print();
    std::printf("\nExpected: slow share ~= killed/8, zero RSTs from "
                "orphaned cores, graceful throughput degradation.\n");
    finishJson(args, json);
    return 0;
}
