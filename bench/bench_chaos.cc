/**
 * @file
 * Chaos soak: a seeded randomized fault campaign against the fleet,
 * with per-incident MTTR gates and a gray-failure control experiment.
 *
 * Two parts, each on base-2.6.32 and Fastsocket against a 4-machine /
 * 2-balancer fleet:
 *
 *   - gray-control: one machine goes gray — its NIC adds a fixed
 *     800us to every egress packet and its CPU runs slightly slow, but
 *     every probe still answers *inside* the probe timeout. The same
 *     scenario runs under both health detectors. Gates assert the gap
 *     that motivates latency-aware scoring: the binary fall/rise
 *     detector ejects nothing (the fault is invisible to pass/fail
 *     probes), the scoring detector ejects the gray machine, and the
 *     incident funnel records detect -> eject -> recover.
 *
 *   - chaos-soak: a campaign of staggered incidents generated from
 *     --seed (steady gray degrades, flapping degrades, rst/blackhole
 *     crashes, lb-from-machine partitions, a balancer loss) composed
 *     with wire-level background faults (a loss burst and a SYN
 *     flood), run under the scoring detector. Invariants are checked
 *     continuously; the incident ledger reduces to MTTD / MTTR
 *     percentiles. Gates: zero invariant violations, request success
 *     >= 90% through the whole soak, at least one incident detected
 *     and ejected, and detect-to-eject p99 bounded.
 *
 * Flapping incidents are excluded from the detect-to-eject percentile
 * gate: their span is dominated by the fault's own oscillation (the
 * outlier streak breaks every healthy half-period), not by detector
 * latency. They still count toward availability and the funnel.
 *
 * Deterministic for a fixed --seed: the campaign text, every fault
 * fate, and all MTTR spans replay bit-identically (the CI smoke job
 * diffs two same-seed --json exports byte for byte).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fleet/fleet.hh"
#include "sim/logging.hh"
#include "trace/incident_log.hh"

namespace
{

using namespace fsim;

const char *kBenchName = "bench_chaos";

/** Detect-to-eject p99 gate, milliseconds. The scoring detector needs
 *  outlierRounds consecutive outlier rounds at a 2ms probe interval,
 *  so a healthy detector lands well under 10ms; 25ms catches one that
 *  dawdles without flaking on EWMA warm-up tails. */
const double kDetectEjectP99Ms = 25.0;

/** Campaign generator state: splitmix64, seeded from --seed only, so
 *  the plan text is independent of everything else in the run. */
struct CampaignRng
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        s += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = s;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    double
    range(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    int
    pick(int n)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(n));
    }
};

/**
 * Generate the soak campaign: one incident per time slot so every
 * fault gets clean air for detection and readmission before the next
 * one lands (the eject-fraction cap would otherwise turn an unlucky
 * draw into a vacuous availability gate). Slots 0..2 are pinned to a
 * steady gray degrade, a crash and a flapping degrade, so any seed
 * produces incidents the detect-to-eject gate can measure and every
 * campaign exercises all three degrade shapes.
 */
std::string
buildCampaign(std::uint64_t seed, double t0, double slotLen,
              int nIncidents, int nMachines)
{
    CampaignRng rng{seed * 0x9e3779b97f4a7c15ULL + 0xc8a05u};
    std::string plan;
    char buf[160];
    bool lbCrashUsed = false;
    for (int i = 0; i < nIncidents; ++i) {
        const double s =
            t0 + (i + rng.range(0.05, 0.15)) * slotLen;
        const double e = s + rng.range(0.45, 0.60) * slotLen;
        const int m = i % nMachines;
        int kind = i == 0   ? 0
                   : i == 1 ? 5
                   : i == 2 ? 3
                            : rng.pick(10);
        if (kind == 9 && lbCrashUsed)
            kind = 0;   // at most one balancer loss per campaign
        if (kind <= 2) {
            std::snprintf(buf, sizeof(buf),
                          "machine_degrade@%.4f-%.4f:target=%d,"
                          "factor=%.2f,rate=%.3f,jitter=%.0f",
                          s, e, m, rng.range(2.0, 4.0),
                          rng.range(0.03, 0.10),
                          rng.range(300.0, 900.0));
        } else if (kind <= 4) {
            std::snprintf(buf, sizeof(buf),
                          "machine_degrade@%.4f-%.4f:target=%d,"
                          "factor=%.2f,rate=%.3f,jitter=%.0f,"
                          "flap_ms=%.1f",
                          s, e, m, rng.range(2.5, 3.5),
                          rng.range(0.05, 0.12),
                          rng.range(400.0, 800.0),
                          rng.range(3.0, 6.0));
        } else if (kind <= 6) {
            std::snprintf(buf, sizeof(buf),
                          "machine_crash@%.4f-%.4f:target=%d,mode=%s",
                          s, e, m,
                          rng.pick(2) ? "blackhole" : "rst");
        } else if (kind <= 8) {
            std::snprintf(buf, sizeof(buf),
                          "net_partition@%.4f-%.4f:a=lb%d,b=m%d",
                          s, e, rng.pick(2), m);
        } else {
            lbCrashUsed = true;
            std::snprintf(buf, sizeof(buf),
                          "lb_crash@%.4f-%.4f:target=%d", s, e,
                          rng.pick(2));
        }
        if (!plan.empty())
            plan += ";";
        plan += buf;
    }
    return plan;
}

/** q-th percentile (q in (0, 1]) of @p v; 0 when empty. */
double
pct(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size());
    std::size_t idx = static_cast<std::size_t>(std::ceil(pos));
    idx = idx > 0 ? idx - 1 : 0;
    return v[std::min(idx, v.size() - 1)];
}

double
meanOf(const std::vector<double> &v)
{
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

/** Incident-ledger reduction: funnel counts plus the three span
 *  populations the gates and the report consume. */
struct IncidentSpans
{
    std::vector<double> detectMs;   //!< inject -> first suspicion
    std::vector<double> ejectMs;    //!< detect -> eject, non-flap only
    std::vector<double> recoverMs;  //!< inject -> readmission
    int total = 0;
    int detected = 0;
    int ejected = 0;
    int recovered = 0;
};

IncidentSpans
reduceIncidents(const IncidentLog &log)
{
    IncidentSpans sp;
    for (const Incident &inc : log.incidents()) {
        ++sp.total;
        if (inc.detected) {
            ++sp.detected;
            if (inc.detectAt >= inc.injectAt)
                sp.detectMs.push_back(
                    secondsFromTicks(inc.detectAt - inc.injectAt) *
                    1000.0);
        }
        if (inc.ejected) {
            ++sp.ejected;
            const Tick from =
                inc.detected && inc.detectAt >= inc.injectAt
                    ? inc.detectAt
                    : inc.injectAt;
            if (inc.ejectAt >= from &&
                inc.kind != IncidentKind::kMachineFlap)
                sp.ejectMs.push_back(
                    secondsFromTicks(inc.ejectAt - from) * 1000.0);
        }
        if (inc.recovered) {
            ++sp.recovered;
            if (inc.recoverAt >= inc.injectAt)
                sp.recoverMs.push_back(
                    secondsFromTicks(inc.recoverAt - inc.injectAt) *
                    1000.0);
        }
    }
    return sp;
}

void
printSpans(const IncidentSpans &sp)
{
    std::printf("%-12s incidents %d: detected %d, ejected %d, "
                "recovered %d\n",
                "", sp.total, sp.detected, sp.ejected, sp.recovered);
    std::printf("%-12s mttd ms mean/p50/p99 %.2f/%.2f/%.2f   "
                "detect->eject ms mean/p50/p99 %.2f/%.2f/%.2f\n",
                "", meanOf(sp.detectMs), pct(sp.detectMs, 0.5),
                pct(sp.detectMs, 0.99), meanOf(sp.ejectMs),
                pct(sp.ejectMs, 0.5), pct(sp.ejectMs, 0.99));
    std::printf("%-12s inject->recover ms mean/p50/p99 "
                "%.2f/%.2f/%.2f\n",
                "", meanOf(sp.recoverMs), pct(sp.recoverMs, 0.5),
                pct(sp.recoverMs, 0.99));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Chaos soak: seeded fault campaigns with MTTR gates and a "
           "gray-failure control",
           "4 server machines behind 2 L4 balancers. Expected: the "
           "binary probe detector is blind to a calibrated gray "
           "degrade that the\nlatency-aware scorer ejects, and a "
           "randomized soak of degrades, flaps, crashes, partitions "
           "and wire faults holds availability\nwith bounded "
           "detect-to-eject MTTR and zero invariant violations.");

    const int nMachines = 4;
    const double warmup = args.quick ? 0.02 : 0.03;
    const double winLen = args.quick ? 0.015 : 0.03;
    const int nWin = 12;
    // Gray-control fault window: sub-windows 4..7 (same shape as
    // bench_fleet_resilience, so pre/post recovery windows exist).
    const double fs = warmup + 4 * winLen;
    const double fe = warmup + 8 * winLen;
    // Open-loop load well below the 4-machine fleet's capacity:
    // availability through the soak measures fault impact, not
    // saturation.
    const double steadyRate = args.quick ? 40'000.0 : 80'000.0;
    const std::uint64_t campaignSeed = args.seed ? args.seed : 1;

    // Soak campaign: incidents staggered across sub-windows 1..10,
    // leaving window 0 as a clean baseline and 11 for the last
    // readmission; two background wire faults overlay the middle.
    const int nIncidents = args.quick ? 5 : 8;
    const double slotLen = 9 * winLen / nIncidents;
    std::string soakPlan = buildCampaign(campaignSeed, warmup + winLen,
                                         slotLen, nIncidents,
                                         nMachines);
    {
        char buf[120];
        std::snprintf(buf, sizeof(buf),
                      ";loss_burst@%.4f-%.4f:rate=0.03"
                      ";syn_flood@%.4f-%.4f:rate=%.0f",
                      warmup + 3 * winLen, warmup + 3.8 * winLen,
                      warmup + 6 * winLen, warmup + 6.8 * winLen,
                      args.quick ? 30'000.0 : 60'000.0);
        soakPlan += buf;
    }

    const std::string grayPlan =
        "machine_degrade@" +
        [&] {
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "%.4f-%.4f:target=1,factor=1.3,jitter=800",
                          fs, fe);
            return std::string(buf);
        }();

    // An explicit --faults plan replaces both parts' plans; the gates
    // assume the built-in calibration, so they are reported but not
    // enforced in that mode.
    const bool userPlan = !args.faults.empty();

    const KernelUnderTest kernels[2] = {kKernels[0], kKernels[2]};

    BenchJsonReport json("chaos");
    int rc = 0;

    struct Run
    {
        const char *label;
        const std::string *plan;
        L4Balancer::HealthMode mode;
        bool soak;
    };
    const Run runs[] = {
        {"gray-binary", &grayPlan, L4Balancer::HealthMode::kBinary,
         false},
        {"gray-score", &grayPlan, L4Balancer::HealthMode::kScore,
         false},
        {"soak", &soakPlan, L4Balancer::HealthMode::kScore, true},
    };

    for (const Run &run : runs) {
        std::printf("--- scenario %s ---\n", run.label);
        if (run.soak)
            std::printf("campaign (seed %llu): %s\n",
                        static_cast<unsigned long long>(campaignSeed),
                        soakPlan.c_str());
        for (const KernelUnderTest &k : kernels) {
            FleetConfig fc;
            fc.serverMachines = nMachines;
            fc.balancers = 2;
            fc.base.app = AppKind::kNginx;
            fc.base.machine.cores = 4;
            fc.base.machine.kernel = k.config;
            fc.base.machine.traceEnabled = args.trace;
            fc.base.concurrencyPerCore = 50;
            fc.base.warmupSec = warmup;
            fc.base.measureSec = nWin * winLen;
            fc.base.statWindows = nWin;
            fc.base.checkLevel = CheckLevel::kPeriodic;
            fc.base.clientTimeout = ticksFromSeconds(0.08);
            fc.maxFlowsPerBalancer = 60'000;
            fc.base.clientRtoBase = ticksFromUsec(15000);
            // Same probe grace as bench_fleet_resilience — and the
            // gray calibration below depends on it: the 800us egress
            // delay keeps probe RTTs near half the timeout, far from
            // a binary fail yet far above the scorer's peer band.
            fc.probeTimeoutMsec = 1.8;
            fc.healthMode = run.mode;
            fc.openLoopRate = steadyRate;

            std::string perr;
            bool ok = parseFaultPlan(*run.plan, fc.base.faults, perr);
            fsim_assert(ok && "built-in chaos plans must parse");
            if (fc.base.faults.has(FaultKind::kSynFlood) &&
                fc.base.machine.kernel.synRcvdJiffies == 0)
                fc.base.machine.kernel.synRcvdJiffies = 300;
            if (userPlan)
                args.apply(fc.base);
            else if (args.seed != 0)
                fc.base.machine.seed = args.seed;

            FleetTestbed bed(fc);
            ExperimentResult r = bed.run();
            json.addRow(std::string(run.label) + "/" + k.name,
                        fc.base, r);

            const FleetResult &fl = r.fleet;
            const IncidentSpans sp = reduceIncidents(bed.incidents());
            std::printf(
                "%-12s %s: success %.2f%%, ejections %llu "
                "(score %llu, capped %llu), readmissions %llu, "
                "degrades %llu, flaps %llu, partitions %llu "
                "(dropped %llu)  [%s]\n",
                k.name, fl.healthMode.c_str(),
                100.0 * fl.requestSuccessRatio,
                static_cast<unsigned long long>(fl.ejections),
                static_cast<unsigned long long>(fl.scoreEjections),
                static_cast<unsigned long long>(fl.ejectionsCapped),
                static_cast<unsigned long long>(fl.readmissions),
                static_cast<unsigned long long>(fl.degradesApplied),
                static_cast<unsigned long long>(fl.flapTransitions),
                static_cast<unsigned long long>(fl.partitionsArmed),
                static_cast<unsigned long long>(fl.partitionDropped),
                r.invariants.summary().c_str());
            printSpans(sp);

            if (r.invariants.violationCount > 0) {
                printGateFailure(kBenchName, args, fc.base,
                                 "invariant violations: " +
                                     r.invariants.summary());
                rc = 1;
            }
            if (userPlan)
                continue;
            char msg[176];
            const double minSuccess = run.soak ? 0.90 : 0.97;
            if (fl.requestSuccessRatio < minSuccess) {
                std::snprintf(msg, sizeof(msg),
                              "request success %.2f%% under %s "
                              "(< %.0f%%)",
                              100.0 * fl.requestSuccessRatio,
                              run.label, 100.0 * minSuccess);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (!run.soak &&
                run.mode == L4Balancer::HealthMode::kBinary &&
                fl.ejections != 0) {
                std::snprintf(
                    msg, sizeof(msg),
                    "binary probes ejected %llu targets on the gray "
                    "degrade — the control is supposed to be "
                    "invisible to pass/fail probing",
                    static_cast<unsigned long long>(fl.ejections));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (run.mode == L4Balancer::HealthMode::kScore &&
                fl.scoreEjections == 0) {
                std::snprintf(
                    msg, sizeof(msg),
                    "scoring detector ejected nothing under %s "
                    "(binary-vs-score gap not demonstrated)",
                    run.label);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (run.mode == L4Balancer::HealthMode::kScore &&
                (sp.detected == 0 ||
                 (!run.soak && sp.recovered == 0))) {
                std::snprintf(msg, sizeof(msg),
                              "incident funnel incomplete under %s "
                              "(%d detected, %d recovered)",
                              run.label, sp.detected, sp.recovered);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (run.soak && sp.ejectMs.empty()) {
                printGateFailure(kBenchName, args, fc.base,
                                 "soak produced no measurable "
                                 "detect->eject span");
                rc = 1;
            }
            if (run.soak && !sp.ejectMs.empty() &&
                pct(sp.ejectMs, 0.99) > kDetectEjectP99Ms) {
                std::snprintf(msg, sizeof(msg),
                              "detect->eject p99 %.2fms exceeds "
                              "%.0fms",
                              pct(sp.ejectMs, 0.99),
                              kDetectEjectP99Ms);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
        }
        std::printf("\n");
    }

    std::printf("chaos: %s\n", rc == 0 ? "PASS" : "FAIL");
    finishJson(args, json);
    return rc;
}
