/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench accepts `--quick` to shrink simulation windows (useful for
 * smoke runs and CI) and `--json=<path>` to export every experiment row
 * as a versioned JSON document, and prints the paper-format table plus
 * the paper's reference numbers for side-by-side comparison.
 */

#ifndef FSIM_BENCH_BENCH_COMMON_HH
#define FSIM_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "harness/bench_json.hh"
#include "harness/experiment.hh"
#include "overload/overload_config.hh"
#include "stats/metrics.hh"
#include "stats/stats.hh"
#include "stats/table.hh"
#include "trace/fleet_trace.hh"
#include "trace/perfetto_export.hh"
#include "trace/span_forensics.hh"

namespace fsim
{

/**
 * Parse shared bench flags.
 *
 * All flag handling lives here so a new shared flag lands in every bench
 * at once; bench-specific flags are consumed from `extra` (see
 * extraFlag/extraValue) instead of each bench re-walking argv.
 *
 * Unknown `--flag`s are rejected with a usage line and exit status 2: a
 * typo like `--forensic` must never silently run the bench without the
 * option the caller asked for. Benches with their own flags declare
 * them via parse()'s allowlist ("--name" exact, "--name=" prefix).
 */
struct BenchArgs
{
    bool quick = false;
    bool trace = true;      //!< --notrace disables event/phase recording
    bool fingerprint = false;   //!< --fingerprint prints per-row hashes
    bool forensics = false; //!< --forensics prints span-latency reports
    std::string jsonPath;   //!< --json=<path>; empty = no export
    std::string perfettoPath;   //!< --perfetto=<path>; empty = none
    std::string metricsPath;    //!< --metrics=<path>; Prometheus text
    std::string faultsSpec; //!< --faults=<plan>; raw text for the report
    FaultPlan faults;       //!< parsed --faults plan (empty = none)
    std::string overloadSpec;   //!< --overload=<spec>; raw text
    OverloadConfig overload;    //!< parsed --overload knobs
    std::uint64_t seed = 0;     //!< --seed=<n>; 0 = bench default
    /** Arguments no shared flag matched (bench-specific flags). */
    std::vector<std::string> extra;

    static BenchArgs
    parse(int argc, char **argv,
          std::initializer_list<const char *> allowed = {})
    {
        BenchArgs a;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--quick"))
                a.quick = true;
            else if (!std::strcmp(argv[i], "--notrace"))
                a.trace = false;
            else if (!std::strcmp(argv[i], "--fingerprint"))
                a.fingerprint = true;
            else if (!std::strcmp(argv[i], "--forensics"))
                a.forensics = true;
            else if (!std::strncmp(argv[i], "--json=", 7))
                a.jsonPath = argv[i] + 7;
            else if (!std::strncmp(argv[i], "--perfetto=", 11))
                a.perfettoPath = argv[i] + 11;
            else if (!std::strncmp(argv[i], "--metrics=", 10))
                a.metricsPath = argv[i] + 10;
            else if (!std::strncmp(argv[i], "--seed=", 7))
                a.seed = std::strtoull(argv[i] + 7, nullptr, 10);
            else if (!std::strncmp(argv[i], "--faults=", 9)) {
                a.faultsSpec = argv[i] + 9;
                std::string err;
                if (!parseFaultPlan(a.faultsSpec, a.faults, err)) {
                    std::fprintf(stderr, "--faults: %s\n", err.c_str());
                    std::fprintf(stderr,
                                 "valid fault event kinds: loss_burst, "
                                 "reorder, duplicate, syn_flood, "
                                 "backend_slow, backend_down, "
                                 "atr_shrink, machine_crash, "
                                 "rolling_restart, lb_crash, "
                                 "machine_degrade, net_partition\n");
                    std::exit(2);
                }
            } else if (!std::strncmp(argv[i], "--overload=", 11)) {
                a.overloadSpec = argv[i] + 11;
                std::string err;
                if (!parseOverloadSpec(a.overloadSpec, a.overload,
                                       err)) {
                    std::fprintf(stderr, "--overload: %s\n",
                                 err.c_str());
                    std::fprintf(stderr,
                                 "keys: budget, gate, deadline_ms, "
                                 "deadline_us, cap, brownout, "
                                 "brownout_bytes, brownout_divisor, "
                                 "health_bytes, high, critical, low\n");
                    std::exit(2);
                }
            } else if (!std::strncmp(argv[i], "--", 2) &&
                       !allowedMatch(argv[i], allowed)) {
                usage(argv[0], argv[i], allowed);
                std::exit(2);
            } else {
                a.extra.push_back(argv[i]);
            }
        }
        return a;
    }

    /** True when @p arg matches an allowlist entry: entries ending in
     *  '=' are prefix matches ("--runs=" accepts "--runs=50"), the rest
     *  are exact matches ("--nofaults"). */
    static bool
    allowedMatch(const char *arg,
                 std::initializer_list<const char *> allowed)
    {
        for (const char *spec : allowed) {
            std::size_t n = std::strlen(spec);
            if (n > 0 && spec[n - 1] == '=') {
                if (!std::strncmp(arg, spec, n))
                    return true;
            } else if (!std::strcmp(arg, spec)) {
                return true;
            }
        }
        return false;
    }

    static void
    usage(const char *prog, const char *bad,
          std::initializer_list<const char *> allowed)
    {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, bad);
        std::fprintf(stderr,
                     "usage: %s [--quick] [--notrace] [--fingerprint] "
                     "[--forensics] [--json=PATH] [--perfetto=PATH] "
                     "[--metrics=PATH] [--seed=N] [--faults=PLAN] "
                     "[--overload=SPEC]",
                     prog);
        for (const char *spec : allowed) {
            std::size_t n = std::strlen(spec);
            bool takesValue = n > 0 && spec[n - 1] == '=';
            std::fprintf(stderr, " [%s%s]", spec,
                         takesValue ? "..." : "");
        }
        std::fprintf(stderr, "\n");
    }

    /** Bench-specific boolean flag, e.g. extraFlag("--nofaults"). */
    bool
    extraFlag(const char *name) const
    {
        for (const std::string &e : extra)
            if (e == name)
                return true;
        return false;
    }

    /** Bench-specific value flag, e.g. extraValue("--runs=", out). */
    bool
    extraValue(const char *prefix, std::string &out) const
    {
        std::size_t n = std::strlen(prefix);
        bool found = false;
        for (const std::string &e : extra)
            if (!e.compare(0, n, prefix)) {
                out = e.substr(n);
                found = true;   // last occurrence wins, like argv scans
            }
        return found;
    }

    /**
     * Apply every shared knob to one experiment config: the fault plan,
     * the overload spec, and the seed override. Call once per row after
     * the bench's own config is final.
     */
    void
    apply(ExperimentConfig &cfg) const
    {
        applyFaults(cfg);
        if (!overloadSpec.empty())
            cfg.machine.overload = overload;
        if (seed != 0)
            cfg.machine.seed = seed;
        if (!trace)
            cfg.machine.traceEnabled = false;
        if (!perfettoPath.empty())
            cfg.keepSpanTraces = true;
    }

    /**
     * Arm the parsed --faults plan on @p cfg. Call after the row's
     * kernel config is final. Fault runs get a client give-up timeout
     * (stuck connections must not wedge the closed loop), and a SYN
     * flood additionally arms the embryonic-TCB reaper so the SYN queue
     * drains once the attack window closes.
     */
    void
    applyFaults(ExperimentConfig &cfg) const
    {
        if (faults.empty())
            return;
        cfg.faults = faults;
        // Cap the give-up at half the measurement window so --quick
        // runs (70ms end to end) still recycle wedged slots in-run.
        if (cfg.clientTimeout == 0)
            cfg.clientTimeout = ticksFromSeconds(
                std::min(0.1, cfg.measureSec / 2.0));
        if (faults.has(FaultKind::kSynFlood) &&
            cfg.machine.kernel.synRcvdJiffies == 0)
            cfg.machine.kernel.synRcvdJiffies = 300;
    }
};

/**
 * Shared bench epilogue: print per-row determinism fingerprints when
 * --fingerprint was given (same seed + config must reprint identical
 * values, with or without --notrace) and write the JSON report when
 * --json was given.
 */
/** "RFD+FDir_ATR" -> "rfd-fdir-atr" (per-row Perfetto file stems). */
inline std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    for (char ch : label) {
        if (std::isalnum(static_cast<unsigned char>(ch)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        else if (!out.empty() && out.back() != '-')
            out += '-';
    }
    while (!out.empty() && out.back() == '-')
        out.pop_back();
    return out.empty() ? "row" : out;
}

/** Per-row output path: base.json + "RSS" -> base.rss.json (single-row
 *  reports keep the path untouched). */
inline std::string
perfettoRowPath(const std::string &base, const std::string &label,
                std::size_t row_count)
{
    if (row_count <= 1)
        return base;
    std::size_t dot = base.rfind('.');
    std::size_t slash = base.rfind('/');
    std::string stem = base;
    std::string ext;
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
        stem = base.substr(0, dot);
        ext = base.substr(dot);
    }
    return stem + "." + sanitizeLabel(label) + ext;
}

inline void
finishJson(const BenchArgs &args, const BenchJsonReport &report)
{
    if (args.fingerprint) {
        std::printf("\nfingerprints:\n");
        for (std::size_t i = 0; i < report.rowCount(); ++i)
            std::printf("  %-32s 0x%016llx  [%s]\n",
                        report.rowLabel(i).c_str(),
                        static_cast<unsigned long long>(
                            report.rowFingerprint(i)),
                        report.rowInvariants(i).summary().c_str());
    }
    if (args.forensics) {
        for (std::size_t i = 0; i < report.rowCount(); ++i) {
            // Fleet rows print the end-to-end critical-path breakdown
            // instead of the single-machine stage table (which a
            // FleetTestbed collect does not populate).
            if (report.rowResult(i).fleetTrace.enabled)
                std::printf("%s", renderFleetTraceReport(
                    report.rowResult(i).fleetTrace,
                    report.rowLabel(i)).c_str());
            else
                std::printf("%s", renderSpanForensics(
                    report.rowResult(i).spanForensics,
                    report.rowLabel(i)).c_str());
        }
    }
    if (!args.metricsPath.empty()) {
        for (std::size_t i = 0; i < report.rowCount(); ++i) {
            const MetricsSnapshot &ts = report.rowResult(i).timeseries;
            if (!ts.enabled || ts.series.empty()) {
                std::fprintf(stderr,
                             "warning: --metrics: row %s sampled no "
                             "series (tracing disabled or not a fleet "
                             "bench?)\n",
                             report.rowLabel(i).c_str());
                continue;
            }
            std::string path = perfettoRowPath(args.metricsPath,
                                               report.rowLabel(i),
                                               report.rowCount());
            if (writePrometheusText(path, ts))
                std::printf("wrote %s (%zu series)\n", path.c_str(),
                            ts.series.size());
            else
                std::fprintf(stderr, "error: could not write %s\n",
                             path.c_str());
        }
    }
    if (!args.perfettoPath.empty()) {
        for (std::size_t i = 0; i < report.rowCount(); ++i) {
            const ExperimentResult &r = report.rowResult(i);
            if (!r.spanTraces) {
                std::fprintf(stderr,
                             "warning: --perfetto: row %s kept no span "
                             "traces (tracing disabled?)\n",
                             report.rowLabel(i).c_str());
                continue;
            }
            const ExperimentConfig &cfg = report.rowConfig(i);
            PerfettoMeta meta;
            meta.bench = report.benchName();
            meta.label = report.rowLabel(i);
            meta.cores = cfg.machine.cores;
            meta.rfd = cfg.machine.kernel.rfd;
            std::string path = perfettoRowPath(args.perfettoPath,
                                               report.rowLabel(i),
                                               report.rowCount());
            PerfettoStats st;
            if (writePerfettoTrace(path, *r.spanTraces, meta, &st))
                std::printf("wrote %s (%llu conns, %llu slices, "
                            "%llu waits, %llu cross-core flows%s)\n",
                            path.c_str(),
                            static_cast<unsigned long long>(
                                st.tracesExported),
                            static_cast<unsigned long long>(
                                st.durationEvents),
                            static_cast<unsigned long long>(
                                st.waitEvents),
                            static_cast<unsigned long long>(
                                st.flowPairs),
                            st.truncated ? ", truncated" : "");
            else
                std::fprintf(stderr, "error: could not write %s\n",
                             path.c_str());
        }
    }
    if (args.jsonPath.empty())
        return;
    if (report.writeFile(args.jsonPath))
        std::printf("\nwrote %s (%zu rows)\n", args.jsonPath.c_str(),
                    report.rowCount());
    else
        std::fprintf(stderr, "error: could not write %s\n",
                     args.jsonPath.c_str());
}

/**
 * Exact command that reruns a failing row's configuration: shared flags,
 * the row's seed, and its fault/overload specs. Gate-enforcing benches
 * print this next to every FAIL so a failure is reproducible without
 * reverse-engineering the row from the bench source.
 */
inline std::string
reproducerCommand(const char *bench, const BenchArgs &args,
                  const ExperimentConfig &cfg)
{
    std::string cmd = "./bench/";
    cmd += bench;
    if (args.quick)
        cmd += " --quick";
    if (!args.trace)
        cmd += " --notrace";
    char buf[48];
    std::snprintf(buf, sizeof(buf), " --seed=%llu",
                  static_cast<unsigned long long>(cfg.machine.seed));
    cmd += buf;
    std::string plan = serializeFaultPlan(cfg.faults);
    if (!plan.empty())
        cmd += " '--faults=" + plan + "'";
    std::string ospec = serializeOverloadSpec(cfg.machine.overload);
    if (!ospec.empty())
        cmd += " '--overload=" + ospec + "'";
    return cmd;
}

/** Print one gate failure with seed, specs, and the reproducer line. */
inline void
printGateFailure(const char *bench, const BenchArgs &args,
                 const ExperimentConfig &cfg, const std::string &what)
{
    std::printf("  FAIL: %s\n", what.c_str());
    std::printf("    seed=%llu faults=\"%s\" overload=\"%s\"\n",
                static_cast<unsigned long long>(cfg.machine.seed),
                serializeFaultPlan(cfg.faults).c_str(),
                serializeOverloadSpec(cfg.machine.overload).c_str());
    std::printf("    reproduce: %s\n",
                reproducerCommand(bench, args, cfg).c_str());
}

/** The three kernels Figure 4 compares. */
struct KernelUnderTest
{
    const char *name;
    KernelConfig config;
};

inline const KernelUnderTest kKernels[3] = {
    {"base-2.6.32", KernelConfig::base2632()},
    {"linux-3.13", KernelConfig::linux313()},
    {"fastsocket", KernelConfig::fastsocket()},
};

/** Core counts of the Figure 4 sweep. */
inline const int kCoreSweep[] = {1, 4, 8, 12, 16, 20, 24};

inline std::string
kcps(double cps)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0fK", cps / 1000.0);
    return buf;
}

inline void
banner(const char *title, const char *paper_note)
{
    std::printf("=== %s ===\n", title);
    std::printf("%s\n\n", paper_note);
}

} // namespace fsim

#endif // FSIM_BENCH_BENCH_COMMON_HH
