/**
 * @file
 * Reproduces Figure 3 and the production evaluation of section 4.2.1:
 * two 8-core HAProxy servers receive the same diurnal request stream
 * (open loop); one runs the base kernel, one runs Fastsocket. For every
 * "hour" the bench prints each server's average / min / max per-core
 * CPU utilization (the paper's box plot), then applies the paper's
 * effective-capacity formula.
 *
 * Paper reference: at the 18:30 peak the base server averages 45.1%
 * utilization with cores spread 31.7%..57.7%, while the Fastsocket
 * server averages 34.3% spread 32.7%..37.6% — a 31.5% CPU-efficiency
 * gain and, via 1/maxUtil, a 53.5% effective-capacity gain.
 */

#include <cmath>
#include <vector>

#include "bench_common.hh"

namespace
{

/** Diurnal load curve: fraction of peak per hour 0..23 (WeiBo-like). */
const double kDiurnal[24] = {
    0.45, 0.35, 0.28, 0.24, 0.22, 0.25, 0.35, 0.50,
    0.62, 0.72, 0.80, 0.85, 0.88, 0.85, 0.82, 0.80,
    0.83, 0.88, 1.00, 0.97, 0.92, 0.83, 0.70, 0.55,
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Figure 3: production CPU utilization, 8-core HAProxy",
           "Open-loop diurnal traffic replayed against base-2.6.32 and "
           "Fastsocket servers.\nPaper: Fastsocket lowers and flattens "
           "per-core utilization; effective capacity +53.5%.");

    // Peak request rate chosen so the base server's hottest core sits
    // near the paper's ~58% at the evening peak.
    const double peak_rate = 45000.0;
    const double hour_sim = args.quick ? 0.05 : 0.12;   // seconds/hour

    struct Server
    {
        const char *name;
        KernelConfig kernel;
        std::vector<double> avg, lo, hi;
    };
    Server servers[2] = {
        {"base-2.6.32", KernelConfig::base2632(), {}, {}, {}},
        {"fastsocket", KernelConfig::fastsocket(), {}, {}, {}},
    };

    BenchJsonReport json("fig3_production");
    for (Server &srv : servers) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 8;
        cfg.machine.kernel = srv.kernel;
        cfg.backendCount = 8;
        args.apply(cfg);
        Testbed bed(cfg);
        bed.load().startOpenLoop(peak_rate * kDiurnal[0]);

        for (int hour = 0; hour < 24; ++hour) {
            bed.load().setOpenLoopRate(peak_rate * kDiurnal[hour]);
            // Short settle, then measure the hour window.
            bed.eventQueue().runUntil(bed.eventQueue().now() +
                                      ticksFromSeconds(hour_sim * 0.3));
            bed.markWindows();
            bed.eventQueue().runUntil(bed.eventQueue().now() +
                                      ticksFromSeconds(hour_sim));
            ExperimentResult r = bed.collect();
            srv.avg.push_back(r.avgUtil());
            srv.lo.push_back(r.minUtil());
            srv.hi.push_back(r.maxUtil());
            char label[32];
            std::snprintf(label, sizeof(label), "%s@%02d:00", srv.name,
                          hour);
            json.addRow(label, cfg, r);
        }
        bed.load().stopOpenLoop();
    }

    TextTable table;
    table.header({"hour", "base avg", "base min..max", "fast avg",
                  "fast min..max"});
    for (int hour = 0; hour < 24; ++hour) {
        char brange[32], frange[32];
        std::snprintf(brange, sizeof(brange), "%4.1f%%..%4.1f%%",
                      servers[0].lo[hour] * 100, servers[0].hi[hour] * 100);
        std::snprintf(frange, sizeof(frange), "%4.1f%%..%4.1f%%",
                      servers[1].lo[hour] * 100, servers[1].hi[hour] * 100);
        char label[8];
        std::snprintf(label, sizeof(label), "%02d:00", hour);
        table.row({label, formatPercent(servers[0].avg[hour]), brange,
                   formatPercent(servers[1].avg[hour]), frange});
    }
    table.print();

    // Section 4.2.1 arithmetic at the evening peak (hour 18).
    int peak = 18;
    double base_max = servers[0].hi[peak];
    double fast_max = servers[1].hi[peak];
    double capacity_gain =
        (1.0 / fast_max - 1.0 / base_max) / (1.0 / base_max);
    double cpu_gain = (servers[0].avg[peak] - servers[1].avg[peak]) /
                      servers[1].avg[peak];
    std::printf("\nAt the %02d:00 peak:\n", peak);
    std::printf("  base: avg %s, hottest core %s   "
                "(paper: 45.1%%, 57.7%%)\n",
                formatPercent(servers[0].avg[peak]).c_str(),
                formatPercent(base_max).c_str());
    std::printf("  fast: avg %s, hottest core %s   "
                "(paper: 34.3%%, 37.6%%)\n",
                formatPercent(servers[1].avg[peak]).c_str(),
                formatPercent(fast_max).c_str());
    std::printf("  CPU efficiency gain:     %s   (paper: 31.5%%)\n",
                formatPercent(cpu_gain).c_str());
    std::printf("  effective capacity gain: %s   (paper: 53.5%%)\n",
                formatPercent(capacity_gain).c_str());
    finishJson(args, json);
    return 0;
}
