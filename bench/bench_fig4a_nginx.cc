/**
 * @file
 * Reproduces Figure 4(a): Nginx connections-per-second throughput versus
 * core count for base 2.6.32, Linux 3.13 (SO_REUSEPORT) and Fastsocket.
 *
 * Paper reference series (read off the plot / text, in Kcps):
 *   cores:        1    4    8    12   16   20   24
 *   base-2.6.32:  24   90   230  290  260  220  178
 *   linux-3.13:   24   95   180  230  255  270  283
 *   fastsocket:   24   95   190  280  360  420  475
 * Headline claims: Fastsocket reaches 475K cps at 24 cores (20.0x its
 * single-core run); base peaks near 12 cores then drops; 3.13 plateaus.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Figure 4(a): Nginx throughput vs cores",
           "http_load, concurrency 500 x cores, 64B cached page, "
           "keep-alive off.\nPaper shape: fastsocket ~20x at 24 cores; "
           "base peaks ~12 cores then collapses; 3.13 lands in between.");

    TextTable table;
    table.header({"cores", "base-2.6.32", "linux-3.13", "fastsocket",
                  "fast/base"});

    BenchJsonReport json("fig4a_nginx");
    double speedup_base[3] = {0, 0, 0};
    for (int cores : kCoreSweep) {
        double cps[3];
        for (int k = 0; k < 3; ++k) {
            ExperimentConfig cfg;
            cfg.app = AppKind::kNginx;
            cfg.machine.cores = cores;
            cfg.machine.kernel = kKernels[k].config;
            cfg.machine.traceEnabled = args.trace;
            cfg.concurrencyPerCore = args.quick ? 150 : 400;
            cfg.warmupSec = args.quick ? 0.02 : 0.05;
            cfg.measureSec = args.quick ? 0.05 : 0.15;
            args.apply(cfg);
            ExperimentResult r = runExperiment(cfg);
            json.addRow(std::string(kKernels[k].name) + "@" +
                            std::to_string(cores),
                        cfg, r);
            cps[k] = r.cps;
            if (cores == 1)
                speedup_base[k] = r.cps;
        }
        char ratio[16];
        std::snprintf(ratio, sizeof(ratio), "%.2fx", cps[2] / cps[0]);
        table.row({std::to_string(cores), kcps(cps[0]), kcps(cps[1]),
                   kcps(cps[2]), ratio});
    }
    table.print();

    std::printf("\nSpeedup at 24 cores vs each kernel's single core:\n");
    // Re-derive from the last sweep row is not retained; re-run cheaply.
    for (int k = 0; k < 3; ++k) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 24;
        cfg.machine.kernel = kKernels[k].config;
        cfg.concurrencyPerCore = args.quick ? 150 : 400;
        cfg.warmupSec = args.quick ? 0.02 : 0.05;
        cfg.measureSec = args.quick ? 0.05 : 0.15;
        args.apply(cfg);
        double at24 = runExperiment(cfg).cps;
        std::printf("  %-12s %5.1fx   (paper: base 7.5x, 3.13 ~12x, "
                    "fastsocket 20.0x)\n",
                    kKernels[k].name, at24 / speedup_base[k]);
    }
    finishJson(args, json);
    return 0;
}
