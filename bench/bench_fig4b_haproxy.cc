/**
 * @file
 * Reproduces Figure 4(b): HAProxy connections-per-second throughput
 * versus core count. HAProxy differs from Nginx in that it makes
 * frequent *active* connections to backends, which is what Receive Flow
 * Deliver accelerates.
 *
 * Paper reference (Kcps at 24 cores): fastsocket ~441, linux-3.13 ~302
 * (fastsocket +139K), base-2.6.32 ~71 (fastsocket +370K); single-core
 * throughputs are very close among all three kernels.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Figure 4(b): HAProxy throughput vs cores",
           "http_load, concurrency 500 x cores, 64B backend page, "
           "keep-alive off.\nPaper shape: fastsocket > 3.13 > base; "
           "single-core runs nearly tie; gaps widen with cores.");

    TextTable table;
    table.header({"cores", "base-2.6.32", "linux-3.13", "fastsocket",
                  "fast-313", "fast-base"});

    BenchJsonReport json("fig4b_haproxy");
    for (int cores : kCoreSweep) {
        double cps[3];
        for (int k = 0; k < 3; ++k) {
            ExperimentConfig cfg;
            cfg.app = AppKind::kHaproxy;
            cfg.machine.cores = cores;
            cfg.machine.kernel = kKernels[k].config;
            cfg.concurrencyPerCore = args.quick ? 150 : 400;
            cfg.backendCount = 16;
            cfg.warmupSec = args.quick ? 0.02 : 0.05;
            cfg.measureSec = args.quick ? 0.05 : 0.15;
            args.apply(cfg);
            ExperimentResult r = runExperiment(cfg);
            json.addRow(std::string(kKernels[k].name) + "@" +
                            std::to_string(cores),
                        cfg, r);
            cps[k] = r.cps;
        }
        table.row({std::to_string(cores), kcps(cps[0]), kcps(cps[1]),
                   kcps(cps[2]), kcps(cps[2] - cps[1]),
                   kcps(cps[2] - cps[0])});
    }
    table.print();
    std::printf("\nPaper at 24 cores: fastsocket beats 3.13 by 139K cps "
                "and base by 370K cps.\n");
    finishJson(args, json);
    return 0;
}
