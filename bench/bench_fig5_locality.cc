/**
 * @file
 * Reproduces Figure 5(a) and 5(b): throughput, L3 cache miss rate and
 * local-packet proportion for the five NIC-steering configurations the
 * paper evaluates on a 16-core machine (Fastsocket-aware VFS and the
 * Local Listen Table always enabled; Local Established Table follows
 * RFD, since it requires complete locality):
 *
 *   RSS, RFD+RSS, FDir_ATR, RFD+FDir_ATR, RFD+FDir_Perfect
 *
 * Paper reference (16 cores):
 *   throughput:  261K, 277K (+6.1%), ~291K, ~293K (+0.8%), 300K (+2.4%)
 *   L3 miss:     ~13%, ~7% (-6pp),   ~7%,   ~7%,           ~5.3% (-1.8pp)
 *   local pkts:  6.2%, 6.2%,         76.5%, 76.5%,         100%
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Figure 5: RFD x NIC steering (HAProxy, 16 cores)",
           "Local packet = active-connection packet the NIC already "
           "delivered to the owning core.\nPaper: RSS 6.2% local, "
           "FDir_ATR 76.5%, RFD+FDir_Perfect 100%; RFD+RSS gains +6.1% "
           "throughput and -6pp L3 misses over RSS.");

    const int cores = 16;

    struct Config
    {
        const char *name;
        bool rfd;
        bool atr;
        bool perfect;
    };
    const Config configs[] = {
        {"RSS", false, false, false},
        {"RFD+RSS", true, false, false},
        {"FDir_ATR", false, true, false},
        {"RFD+FDir_ATR", true, true, false},
        {"RFD+FDir_Perfect", true, false, true},
        // FDir_Perfect without RFD is omitted: without the encoded
        // source ports it cannot be programmed correctly (paper 4.2.4).
    };

    TextTable table;
    table.header({"config", "throughput", "L3 miss", "local pkts",
                  "sw-steered"});

    BenchJsonReport json("fig5_locality");
    for (const Config &c : configs) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = cores;
        KernelConfig kc = KernelConfig::base2632();
        kc.fastVfs = true;
        kc.localListen = true;
        kc.rfd = c.rfd;
        kc.localEstablished = c.rfd;   // E requires complete locality
        cfg.machine.kernel = kc;
        cfg.machine.nic.fdirAtr = c.atr;
        if (c.perfect) {
            cfg.machine.nic.fdirPerfect = true;
            cfg.machine.nic.perfectPortMask =
                ReceiveFlowDeliver::hashMask(cores);
        }
        cfg.concurrencyPerCore = args.quick ? 150 : 400;
        cfg.warmupSec = args.quick ? 0.02 : 0.06;
        cfg.measureSec = args.quick ? 0.05 : 0.15;
        args.apply(cfg);
        ExperimentResult r = runExperiment(cfg);
        json.addRow(c.name, cfg, r);

        table.row({c.name, kcps(r.cps), formatPercent(r.l3MissRate),
                   formatPercent(r.localPktProportion),
                   formatCount(static_cast<double>(r.steeredPackets))});
    }
    table.print();
    finishJson(args, json);
    return 0;
}
