/**
 * @file
 * Fleet resilience bench: N machines behind an L4 balancer tier under
 * orchestrated faults.
 *
 * Four scenarios, each on base-2.6.32 and Fastsocket, against a
 * 4-machine / 2-balancer fleet (consistent-hash steering with
 * bounded-load fallback, wire-level SYN health probes, full-NAT
 * forwarding over latency/bandwidth-modeled links):
 *
 *   - rolling-restart: a diurnal open-loop load curve while every
 *     server machine is drained, stopped, restarted and readmitted in
 *     sequence. Gates: request success ratio >= 99%, zero un-drained
 *     connection loss, every machine restarted exactly once.
 *   - machine-crash: one machine blackholes mid-run (cable pull) and
 *     comes back. Gates: the balancers eject it via probe failures and
 *     readmit it after restart; goodput recovers to >= 90% of the
 *     pre-fault level.
 *   - lb-failover: one balancer dies; the peer adopts its VIP after
 *     the takeover delay. Gates: >= 1 VIP takeover, goodput recovery
 *     >= 90%.
 *   - overload-cascade: an open-loop spike to far beyond fleet
 *     capacity with per-machine admission control armed. Gates: the
 *     shedding stays contained in the server tier — the balancer
 *     tier's flow table never overflows (shed_capacity == 0) and the
 *     health-probe view never loses the whole fleet
 *     (shed_no_backend == 0) — and goodput recovers after the spike.
 *
 * Every run's invariants must hold (checkLevel=periodic), and the
 * whole bench is deterministic for a fixed --seed: the CI smoke job
 * diffs two same-seed --json exports byte for byte.
 */

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fleet/fleet.hh"
#include "sim/logging.hh"

namespace
{

using namespace fsim;

const char *kBenchName = "bench_fleet_resilience";

/** Per-machine admission/pressure stack for the cascade scenario
 *  (same shape as bench_overload's protection spec). */
const char *kProtectSpec =
    "budget=256,gate=48,deadline_ms=5,cap=256,brownout=1,"
    "health_bytes=32,high=0.004,critical=0.5,low=0.002";

struct Scenario
{
    const char *name;
    std::string plan;           //!< fleet fault plan, absolute sim times
    double openLoopRate = 0.0;  //!< 0 = closed loop
    double spikeRate = 0.0;     //!< mid-run setOpenLoopRate target
    bool diurnal = false;       //!< shape the open loop per sub-window
    bool overloadStack = false; //!< arm kProtectSpec on every machine
    /** @name Gates */
    /** @{ */
    bool gateSuccess99 = false;
    bool gateRecovery = false;
    bool gateEjectReadmit = false;
    bool gateTakeover = false;
    bool gateContainment = false;
    bool gateAllRestarted = false;
    /** @} */
};

std::string
windowStr(double start, double end, const char *fmt_tail)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.3f-%.3f%s", start, end, fmt_tail);
    return buf;
}

double
meanGoodput(const std::vector<LockWindow> &ws, std::size_t first,
            std::size_t last)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = first; i <= last && i < ws.size(); ++i, ++n)
        sum += ws[i].goodput;
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Fleet resilience: rolling restarts, crashes, failover, "
           "cascade containment",
           "4 server machines behind 2 L4 balancers (consistent hash + "
           "bounded load + health probes).\nExpected: planned drains "
           "lose nothing, crashed machines are ejected and readmitted, "
           "a dead balancer's VIP fails over,\nand server-tier "
           "overload shedding never cascades into the balancer tier.");

    const int nMachines = 4;
    // 12 sub-windows; disruptive faults span sub-windows 4..7 (the
    // rolling sweep starts at window 2 so 4 drain+down cycles fit).
    const double warmup = args.quick ? 0.02 : 0.03;
    const double winLen = args.quick ? 0.015 : 0.03;
    const int nWin = 12;
    const double fs = warmup + 4 * winLen;
    const double fe = warmup + 8 * winLen;
    const double rollStart = warmup + 2 * winLen;
    // Aggregate open-loop rates: the steady rate keeps the 4-machine
    // fleet comfortably below saturation; the spike is sized to push
    // every machine's admission stack deep into shedding.
    const double steadyRate = args.quick ? 40'000.0 : 80'000.0;
    // The spike must clear the 4-machine fleet's capacity (~300-400K/s
    // at 4 cores each) by a wide margin or the cascade gate is vacuous.
    const double spikeRate = args.quick ? 900'000.0 : 1'200'000.0;

    const Scenario scenarios[] = {
        {"rolling-restart",
         "rolling_restart@" +
             windowStr(rollStart, rollStart + 0.001,
                       ":drain_ms=15,down_ms=5"),
         steadyRate, 0.0, /*diurnal=*/true, false,
         /*gateSuccess99=*/true, false, false, false, false,
         /*gateAllRestarted=*/true},
        {"machine-crash",
         "machine_crash@" + windowStr(fs, fe, ":target=1,mode=blackhole"),
         0.0, 0.0, false, false,
         false, /*gateRecovery=*/true, /*gateEjectReadmit=*/true,
         false, false, false},
        {"lb-failover",
         "lb_crash@" + windowStr(fs, fe, ":target=0"),
         0.0, 0.0, false, false,
         false, /*gateRecovery=*/true, false, /*gateTakeover=*/true,
         false, false},
        {"overload-cascade", "",
         steadyRate, spikeRate, false, /*overloadStack=*/true,
         false, /*gateRecovery=*/true, false, false,
         /*gateContainment=*/true, false},
    };
    const KernelUnderTest kernels[2] = {kKernels[0], kKernels[2]};

    // An explicit --faults plan replaces every scenario's plan; the
    // gates assume the built-in windows, so they are reported but not
    // enforced in that mode.
    const bool userPlan = !args.faults.empty();

    BenchJsonReport json("fleet_resilience");
    int rc = 0;

    for (const Scenario &sc : scenarios) {
        std::printf("--- scenario %s ---\n", sc.name);
        for (const KernelUnderTest &k : kernels) {
            FleetConfig fc;
            fc.serverMachines = nMachines;
            fc.balancers = 2;
            fc.base.app = AppKind::kNginx;
            fc.base.machine.cores = 4;
            fc.base.machine.kernel = k.config;
            fc.base.machine.traceEnabled = args.trace;
            fc.base.concurrencyPerCore = 50;
            fc.base.warmupSec = warmup;
            fc.base.measureSec = nWin * winLen;
            fc.base.statWindows = nWin;
            fc.base.checkLevel = CheckLevel::kPeriodic;
            fc.base.clientTimeout = ticksFromSeconds(0.08);
            // Flow-table sizing is part of the containment story: a
            // SYN the server tier silently gates out leaves a
            // half-open flow pinned until the client's 80ms give-up,
            // so the table must hold offered * give-up / balancers
            // (1.2M/s * 0.08s / 2 = 48K) or the spike evicts real
            // flows. NAT port space caps a balancer at 63487.
            fc.maxFlowsPerBalancer = 60'000;
            // Clients retransmit SYNs/requests: a connection steered
            // into a blackhole (dead machine, headless VIP) retries at
            // +15/+30ms and lands on the recovered path instead of
            // pinning its closed-loop slot for the full 80ms give-up.
            fc.base.clientRtoBase = ticksFromUsec(15000);
            // 1ms of probe grace is too tight when the machines run at
            // closed-loop saturation: handshake replies queue behind
            // softirq work and spurious ejections flap the target set.
            fc.probeTimeoutMsec = 1.8;
            fc.openLoopRate = sc.openLoopRate;
            if (!sc.plan.empty()) {
                std::string perr;
                bool ok = parseFaultPlan(sc.plan, fc.base.faults, perr);
                fsim_assert(ok && "scenario plans are hand-written");
            }
            if (sc.overloadStack) {
                std::string oerr;
                bool ok = parseOverloadSpec(
                    kProtectSpec, fc.base.machine.overload, oerr);
                fsim_assert(ok && "built-in overload spec must parse");
            }
            if (userPlan)
                args.apply(fc.base);
            else if (args.seed != 0)
                fc.base.machine.seed = args.seed;

            FleetTestbed bed(fc);

            // Shape the open loop before run(): a stepped diurnal
            // curve for the rolling restart, a square spike over the
            // fault window for the cascade scenario.
            if (sc.diurnal) {
                static const double curve[] = {0.6, 0.8, 1.0, 1.2,
                                               1.0, 0.8};
                for (int w = 0; w < nWin; ++w) {
                    const double mult = curve[w % 6];
                    bed.eventQueue().schedule(
                        ticksFromSeconds(warmup + w * winLen),
                        [&bed, mult, steadyRate] {
                            bed.load().setOpenLoopRate(steadyRate *
                                                       mult);
                        });
                }
            }
            if (sc.spikeRate > 0.0) {
                bed.eventQueue().schedule(
                    ticksFromSeconds(fs), [&bed, &sc] {
                        bed.load().setOpenLoopRate(sc.spikeRate);
                    });
                bed.eventQueue().schedule(
                    ticksFromSeconds(fe), [&bed, &sc] {
                        bed.load().setOpenLoopRate(sc.openLoopRate);
                    });
            }

            ExperimentResult r = bed.run();
            json.addRow(std::string(sc.name) + "/" + k.name, fc.base,
                        r);

            std::printf("%-12s goodput/s by sub-window:", k.name);
            for (const LockWindow &w : r.lockWindows)
                std::printf(" %5.0fK", w.goodput / 1000.0);
            std::printf("\n");
            const FleetResult &fl = r.fleet;
            std::printf(
                "%-12s fleet: success %.2f%%, flows %llu/%llu "
                "(undrained %llu), ejections %llu, readmissions %llu, "
                "takeovers %llu, shed cap/nb %llu/%llu\n",
                "", 100.0 * fl.requestSuccessRatio,
                static_cast<unsigned long long>(fl.flowsRetired),
                static_cast<unsigned long long>(fl.flowsCreated),
                static_cast<unsigned long long>(fl.undrainedFlows),
                static_cast<unsigned long long>(fl.ejections),
                static_cast<unsigned long long>(fl.readmissions),
                static_cast<unsigned long long>(fl.vipTakeovers),
                static_cast<unsigned long long>(fl.shedCapacity),
                static_cast<unsigned long long>(fl.shedNoBackend));

            // Windows 0..3 precede the fault (0 discarded as ramp),
            // 4..7 overlap it, 8..11 follow it (8 discarded as drain).
            double pre = meanGoodput(r.lockWindows, 1, 3);
            double post = meanGoodput(r.lockWindows, 9, 11);
            double ratio = pre > 0.0 ? post / pre : 0.0;
            std::printf("%-12s pre %.0fK  post %.0fK  recovery "
                        "%.0f%%  [%s]\n",
                        "", pre / 1000.0, post / 1000.0, 100.0 * ratio,
                        r.invariants.summary().c_str());

            if (r.invariants.violationCount > 0) {
                printGateFailure(kBenchName, args, fc.base,
                                 "invariant violations: " +
                                     r.invariants.summary());
                rc = 1;
            }
            if (userPlan)
                continue;
            char msg[160];
            if (sc.gateSuccess99 && fl.requestSuccessRatio < 0.99) {
                std::snprintf(msg, sizeof(msg),
                              "request success %.2f%% under rolling "
                              "restart (< 99%%)",
                              100.0 * fl.requestSuccessRatio);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (sc.gateSuccess99 && fl.undrainedFlows != 0) {
                std::snprintf(msg, sizeof(msg),
                              "%llu un-drained flows lost during "
                              "planned restarts",
                              static_cast<unsigned long long>(
                                  fl.undrainedFlows));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (sc.gateAllRestarted &&
                fl.restarts != static_cast<std::uint64_t>(nMachines)) {
                std::snprintf(msg, sizeof(msg),
                              "rolling restart covered %llu of %d "
                              "machines",
                              static_cast<unsigned long long>(
                                  fl.restarts),
                              nMachines);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (sc.gateRecovery && ratio < 0.9) {
                std::snprintf(msg, sizeof(msg),
                              "post-fault goodput %.0f%% of pre-fault "
                              "(< 90%%)",
                              100.0 * ratio);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (sc.gateEjectReadmit &&
                (fl.ejections == 0 || fl.readmissions == 0)) {
                std::snprintf(msg, sizeof(msg),
                              "crash not tracked by health probes "
                              "(%llu ejections, %llu readmissions)",
                              static_cast<unsigned long long>(
                                  fl.ejections),
                              static_cast<unsigned long long>(
                                  fl.readmissions));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (sc.gateTakeover && fl.vipTakeovers == 0) {
                printGateFailure(kBenchName, args, fc.base,
                                 "balancer loss produced no VIP "
                                 "takeover");
                rc = 1;
            }
            if (sc.gateContainment &&
                (fl.shedCapacity != 0 || fl.shedNoBackend != 0)) {
                std::snprintf(
                    msg, sizeof(msg),
                    "overload cascaded into the balancer tier "
                    "(shed_capacity=%llu, shed_no_backend=%llu)",
                    static_cast<unsigned long long>(fl.shedCapacity),
                    static_cast<unsigned long long>(fl.shedNoBackend));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
        }
        std::printf("\n");
    }

    std::printf("fleet_resilience: %s\n", rc == 0 ? "PASS" : "FAIL");
    finishJson(args, json);
    return rc;
}
