/**
 * @file
 * Fleet distributed-tracing bench: end-to-end trace stitching, metrics
 * time series, and SLO burn-rate gates.
 *
 * Three scenarios, each on base-2.6.32 and Fastsocket, against a
 * 4-machine / 2-balancer fleet with the trace context propagated
 * client -> balancer NAT -> server TCB:
 *
 *   - steady: clean open-loop load. Gates: lossless stitching — every
 *     request the client started has exactly one trace record, every
 *     finished request completed its trace (started == traces_started,
 *     completed + failed == traces_completed), zero orphans (a
 *     completed-ok trace with no balancer hop means the context was
 *     lost in the NAT rewrite), zero duplicates (a trace-id collision
 *     between distinct attempts), every successful request's trace
 *     carries its server-machine span, and recorded exec-span time
 *     reconciles against per-core busy ticks on every machine.
 *   - failover-churn: a machine blackholes mid-run and a balancer dies
 *     while it is down (VIP failover). Same lossless-stitching gates:
 *     crash, restart and failover must not orphan or duplicate any
 *     trace — retransmitted SYNs reuse the attempt's trace id, and the
 *     adopting balancer re-stamps the context from its own flow state.
 *   - gray-burn: one machine goes gray (CPU stretch + egress jitter)
 *     under the latency-aware scoring detector, with the SLO tracker
 *     armed (availability + latency objectives). Gates: the fast
 *     burn-rate alert fires, and it fires BEFORE the balancer's scorer
 *     ejects the gray machine — the pager learns about the incident
 *     from the error budget, not from remediation side effects.
 *
 * Every run's invariants must hold, and the whole bench is
 * deterministic for a fixed --seed. --metrics=<path> dumps the sampled
 * time series as Prometheus text; --perfetto=<path> exports the
 * stitched fleet traces (one track per machine/balancer, cross-machine
 * flow arrows); --forensics prints the end-to-end critical-path
 * breakdown per hop.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fleet/fleet.hh"
#include "sim/logging.hh"

namespace
{

using namespace fsim;

const char *kBenchName = "bench_fleet_trace";

struct Scenario
{
    const char *name;
    std::string plan;       //!< fleet fault plan, absolute sim times
    bool sloArmed = false;  //!< arm the SLO tracker + latency objective
    bool gateBurnBeforeEject = false;
};

/** Ok traces whose server span never joined (must be zero after the
 *  settle window: every successful request was served by SOMEONE). */
std::uint64_t
unstitchedOk(const FleetTraceLog &log)
{
    std::uint64_t n = 0;
    for (const auto &kv : log.records())
        if (kv.second.clientDone && kv.second.ok && !kv.second.stitched) {
            ++n;
#ifdef FSIM_TRACE_DEBUG
            std::printf("  [unstitched] trace=%llx start=%llu end=%llu "
                        "lbFlows=%llu lbForwards=%llu\n",
                        (unsigned long long)kv.second.traceId,
                        (unsigned long long)kv.second.clientStart,
                        (unsigned long long)kv.second.clientEnd,
                        (unsigned long long)kv.second.lbFlows,
                        (unsigned long long)kv.second.lbForwards);
#endif
        }
    return n;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Fleet tracing: end-to-end stitching, time-series metrics, "
           "SLO burn gates",
           "4 server machines behind 2 L4 balancers; a 64-bit trace "
           "context rides every packet through the NAT rewrite.\n"
           "Expected: every request stitches into exactly one "
           "end-to-end trace across crash/failover, span time "
           "reconciles\nagainst CPU busy ticks, and a gray degrade "
           "burns the error budget loudly before the scorer ejects "
           "the machine.");

    const int nMachines = 4;
    const int nWin = 24;
    const double warmup = args.quick ? 0.02 : 0.03;
    const double winLen = args.quick ? 0.0075 : 0.015;
    // Faults span sub-windows 8..16 (a third of the run), leaving a
    // clean lead-in and a recovery tail.
    const double fs = warmup + 8 * winLen;
    const double fe = warmup + 16 * winLen;
    const double steadyRate = args.quick ? 40'000.0 : 80'000.0;

    const auto window = [&](double s, double e, const char *tail) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%.4f-%.4f%s", s, e, tail);
        return std::string(buf);
    };

    const Scenario scenarios[] = {
        {"steady", "", false, false},
        {"failover-churn",
         "machine_crash@" +
             window(fs, fe - 2 * winLen, ":target=1,mode=blackhole") +
             ";lb_crash@" + window(fs + 2 * winLen, fe, ":target=0"),
         false, false},
        {"gray-burn",
         "machine_degrade@" +
             window(fs, fe, ":target=1,factor=1.3,jitter=800"),
         /*sloArmed=*/true, /*gateBurnBeforeEject=*/true},
    };
    const KernelUnderTest kernels[2] = {kKernels[0], kKernels[2]};

    // An explicit --faults plan replaces every scenario's plan; the
    // gates assume the built-in windows, so they are reported but not
    // enforced in that mode.
    const bool userPlan = !args.faults.empty();

    BenchJsonReport json("fleet_trace");
    int rc = 0;

    for (const Scenario &sc : scenarios) {
        std::printf("--- scenario %s ---\n", sc.name);
        for (const KernelUnderTest &k : kernels) {
            FleetConfig fc;
            fc.serverMachines = nMachines;
            fc.balancers = 2;
            fc.base.app = AppKind::kNginx;
            fc.base.machine.cores = 4;
            fc.base.machine.kernel = k.config;
            fc.base.machine.traceEnabled = args.trace;
            fc.base.concurrencyPerCore = 50;
            fc.base.warmupSec = warmup;
            fc.base.measureSec = nWin * winLen;
            fc.base.statWindows = nWin;
            fc.base.checkLevel = CheckLevel::kPeriodic;
            fc.base.clientTimeout = ticksFromSeconds(0.08);
            fc.maxFlowsPerBalancer = 60'000;
            fc.base.clientRtoBase = ticksFromUsec(15000);
            fc.probeTimeoutMsec = 1.8;
            fc.openLoopRate = steadyRate;
            if (sc.gateBurnBeforeEject) {
                // The point of the scenario: the SLO layer pages while
                // the scorer is still accumulating eject evidence. The
                // conservative outlier streak models a production
                // remediation loop that refuses to act on thin data.
                fc.healthMode = L4Balancer::HealthMode::kScore;
                fc.healthScore.outlierRounds = 10;
            }
            if (sc.sloArmed) {
                fc.sloEnabled = true;
                // One sub-window per SLO window; the fast arm reacts to
                // a single bad window (a gray machine serves ~25% of
                // requests — burn ~25x against a 1% latency budget).
                fc.slo.fastWindows = 1;
                fc.slo.latencyObjective = ticksFromUsec(3000);
            }
            if (!sc.plan.empty()) {
                std::string perr;
                bool ok = parseFaultPlan(sc.plan, fc.base.faults, perr);
                fsim_assert(ok && "scenario plans are hand-written");
            }
            if (userPlan)
                args.apply(fc.base);
            else if (args.seed != 0)
                fc.base.machine.seed = args.seed;

            FleetTestbed bed(fc);
            ExperimentResult r = bed.run();

            // Settle: stop launching and drain in-flight teardowns so
            // every finished request's server TCB has destructed (its
            // span completed). Without this, requests finishing in the
            // last RTT legitimately lack a machine span and the
            // unstitched gate would race the FIN exchange.
            bed.load().setOpenLoopRate(0.0);
            bed.runUntilChecked(bed.eventQueue().now() +
                                ticksFromSeconds(0.02));
            std::vector<LockWindow> windows =
                std::move(r.lockWindows);
            r = bed.collect();
            r.lockWindows = std::move(windows);
            json.addRow(std::string(sc.name) + "/" + k.name, fc.base,
                        r);

            const FleetResult &fl = r.fleet;
            const std::uint64_t finished =
                bed.load().completed() + bed.load().failed();
            const std::uint64_t unstitched =
                unstitchedOk(bed.traceLog());
            std::printf(
                "%-12s traces: started %llu/%llu, completed %llu/%llu, "
                "stitched %llu, orphans %llu, dups %llu, unstitched-ok "
                "%llu, reconcile-violations %llu\n",
                k.name,
                static_cast<unsigned long long>(fl.tracesStarted),
                static_cast<unsigned long long>(bed.load().started()),
                static_cast<unsigned long long>(fl.tracesCompleted),
                static_cast<unsigned long long>(finished),
                static_cast<unsigned long long>(fl.tracesStitched),
                static_cast<unsigned long long>(fl.traceOrphans),
                static_cast<unsigned long long>(fl.traceDuplicates),
                static_cast<unsigned long long>(unstitched),
                static_cast<unsigned long long>(
                    fl.spanReconcileViolations));
            const FleetTraceForensics &ft = r.fleetTrace;
            std::printf(
                "%-12s e2e p50/p99/p999 %llu/%llu/%llu ticks, critical "
                "path p50=%s p99=%s p999=%s  [%s]\n",
                "", static_cast<unsigned long long>(ft.e2eP50),
                static_cast<unsigned long long>(ft.e2eP99),
                static_cast<unsigned long long>(ft.e2eP999),
                ft.dominantP50.empty() ? "-" : ft.dominantP50.c_str(),
                ft.dominantP99.empty() ? "-" : ft.dominantP99.c_str(),
                ft.dominantP999.empty() ? "-" : ft.dominantP999.c_str(),
                r.invariants.summary().c_str());
            if (sc.sloArmed)
                std::printf(
                    "%-12s slo: fast alerts %llu (first at %.2fms), "
                    "slow alerts %llu, score ejections %llu\n",
                    "",
                    static_cast<unsigned long long>(fl.sloFastAlerts),
                    fl.sloFirstFastAlertMs,
                    static_cast<unsigned long long>(fl.sloSlowAlerts),
                    static_cast<unsigned long long>(fl.scoreEjections));

            if (!args.perfettoPath.empty() && args.trace) {
                FleetPerfettoMeta meta;
                meta.bench = kBenchName;
                meta.label = std::string(sc.name) + "/" + k.name;
                meta.machines = nMachines;
                meta.balancers = fc.balancers;
                std::string path = perfettoRowPath(
                    args.perfettoPath,
                    std::string(sc.name) + "-" + k.name, 2);
                PerfettoStats st;
                if (writeFleetPerfettoTrace(path, bed.traceLog(), meta,
                                            &st))
                    std::printf("wrote %s (%llu traces, %llu flow "
                                "arrows%s)\n",
                                path.c_str(),
                                static_cast<unsigned long long>(
                                    st.tracesExported),
                                static_cast<unsigned long long>(
                                    st.flowPairs),
                                st.truncated ? ", truncated" : "");
                else
                    std::fprintf(stderr,
                                 "error: could not write %s\n",
                                 path.c_str());
            }

            if (r.invariants.violationCount > 0) {
                printGateFailure(kBenchName, args, fc.base,
                                 "invariant violations: " +
                                     r.invariants.summary());
                rc = 1;
            }

            char msg[192];
            // Reconciliation holds with or without faults (vacuously
            // zero under --notrace).
            if (fl.spanReconcileViolations != 0) {
                std::snprintf(msg, sizeof(msg),
                              "%llu cores recorded more exec-span time "
                              "than they ran",
                              static_cast<unsigned long long>(
                                  fl.spanReconcileViolations));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (!args.trace)
                continue;   // stitching gates need the recorder on
            if (fl.tracesStarted != bed.load().started() ||
                fl.tracesCompleted != finished) {
                std::snprintf(
                    msg, sizeof(msg),
                    "trace accounting broke: started %llu != %llu or "
                    "completed %llu != %llu",
                    static_cast<unsigned long long>(fl.tracesStarted),
                    static_cast<unsigned long long>(
                        bed.load().started()),
                    static_cast<unsigned long long>(fl.tracesCompleted),
                    static_cast<unsigned long long>(finished));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (fl.traceOrphans != 0 || fl.traceDuplicates != 0) {
                std::snprintf(msg, sizeof(msg),
                              "lossless stitching broke: %llu orphans, "
                              "%llu duplicates",
                              static_cast<unsigned long long>(
                                  fl.traceOrphans),
                              static_cast<unsigned long long>(
                                  fl.traceDuplicates));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (unstitched != 0) {
                std::snprintf(msg, sizeof(msg),
                              "%llu successful requests have no "
                              "server-machine span",
                              static_cast<unsigned long long>(
                                  unstitched));
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
            if (userPlan || !sc.gateBurnBeforeEject)
                continue;
            // Burn-before-eject: the first kSloBurn detect stamp must
            // precede the degrade incident's eject stamp.
            Tick burnAt = 0;
            Tick ejectAt = 0;
            bool ejected = false;
            for (const Incident &inc : bed.incidents().incidents()) {
                if (inc.kind == IncidentKind::kSloBurn &&
                    inc.detected &&
                    (burnAt == 0 || inc.detectAt < burnAt))
                    burnAt = inc.detectAt;
                if (inc.kind == IncidentKind::kMachineDegrade &&
                    inc.ejected) {
                    ejected = true;
                    if (ejectAt == 0 || inc.ejectAt < ejectAt)
                        ejectAt = inc.ejectAt;
                }
            }
            if (fl.sloFastAlerts == 0 || burnAt == 0) {
                printGateFailure(kBenchName, args, fc.base,
                                 "gray degrade never fired a fast "
                                 "burn-rate alert");
                rc = 1;
            }
            if (!ejected) {
                printGateFailure(kBenchName, args, fc.base,
                                 "scorer never ejected the gray "
                                 "machine (calibration broke)");
                rc = 1;
            }
            if (burnAt != 0 && ejected && burnAt >= ejectAt) {
                std::snprintf(
                    msg, sizeof(msg),
                    "burn alert at %.2fms did not precede scorer "
                    "eject at %.2fms",
                    secondsFromTicks(burnAt) * 1000.0,
                    secondsFromTicks(ejectAt) * 1000.0);
                printGateFailure(kBenchName, args, fc.base, msg);
                rc = 1;
            }
        }
        std::printf("\n");
    }

    std::printf("fleet_trace: %s\n", rc == 0 ? "PASS" : "FAIL");
    finishJson(args, json);
    return rc;
}
