/**
 * @file
 * Micro-benchmark of inet_lookup_listener behavior (section 2.1).
 *
 * Two parts:
 *  1. google-benchmark timing of the *real* ListenTable::lookup as the
 *     SO_REUSEPORT clone chain grows — the O(n) walk is a property of
 *     the data structure itself, so real wall-clock numbers apply.
 *  2. A simulated estimate of the walk's share of per-core CPU cycles,
 *     reproducing the paper's 0.26% (1 core) -> 24.2% (24 cores) claim.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "harness/experiment.hh"

namespace
{

using namespace fsim;

void
BM_ListenerLookup(benchmark::State &state)
{
    int chain = static_cast<int>(state.range(0));
    ListenTable table;
    Rng rng(7);
    std::vector<std::unique_ptr<Socket>> clones;
    for (int i = 0; i < chain; ++i) {
        auto s = std::make_unique<Socket>();
        s->kind = SockKind::kListen;
        s->bindAddr = 10;
        s->bindPort = 80;
        table.insert(s.get());
        clones.push_back(std::move(s));
    }
    for (auto _ : state) {
        auto l = table.lookup(10, 80, rng);
        benchmark::DoNotOptimize(l.sock);
    }
    state.SetLabel("chain=" + std::to_string(chain));
}

BENCHMARK(BM_ListenerLookup)->Arg(1)->Arg(4)->Arg(8)->Arg(12)->Arg(24);

void
BM_EstablishedLookup(benchmark::State &state)
{
    LockRegistry locks;
    CacheModel cache(1, 400);
    CycleCosts costs;
    EstablishedTable table(16384, locks, cache, costs);
    std::vector<std::unique_ptr<Socket>> socks;
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        auto s = std::make_unique<Socket>();
        s->rxTuple = FiveTuple{1, 2, static_cast<Port>(1024 + i), 80};
        table.insert(0, 0, s.get());
        socks.push_back(std::move(s));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        auto l = table.lookup(0, 0, socks[i % socks.size()]->rxTuple);
        benchmark::DoNotOptimize(l.sock);
        ++i;
    }
}

BENCHMARK(BM_EstablishedLookup)->Arg(1024)->Arg(16384);

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();

    // Part 2: simulated cycle share of the reuseport chain walk.
    using namespace fsim;
    std::printf("\nSimulated share of per-core cycles spent in the "
                "listener chain walk (Linux 3.13 + SO_REUSEPORT):\n");
    std::printf("paper: 0.26%% at 1 core -> 24.2%% per core at 24 "
                "cores\n");
    for (int cores : {1, 8, 24}) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = cores;
        cfg.machine.kernel = KernelConfig::linux313();
        cfg.concurrencyPerCore = 150;
        cfg.warmupSec = 0.02;
        cfg.measureSec = 0.05;
        Testbed bed(cfg);
        bed.run();
        const KernelStats &ks = bed.machine().kernel().stats();
        const CycleCosts &costs = bed.machine().costs();
        // Walk cost = per-entry compare + one remote line per clone.
        double walk_cycles =
            static_cast<double>(ks.listenChainWalked) *
            (static_cast<double>(costs.listenLookupPerEntry) +
             (cores > 1 ? costs.cacheMissPenalty : 0));
        double total =
            static_cast<double>(bed.machine().cpu().totalBusyTicks());
        std::printf("  %2d cores: %5.2f%%\n", cores,
                    total > 0 ? 100.0 * walk_cycles / total : 0.0);
    }
    return 0;
}
