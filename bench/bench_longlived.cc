/**
 * @file
 * Extension bench: long-lived versus short-lived connections.
 *
 * Section 1 of the paper: "For long-lived connections, the metadata
 * management for new connections is not frequent enough to cause
 * significant contentions. Thus we do not observe scalability issues of
 * the TCP stack in these cases." This bench verifies that claim in the
 * simulator: as requests-per-connection grows (HTTP keep-alive), the
 * establishment/teardown machinery amortizes away and the gap between
 * the baseline kernel and Fastsocket collapses.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Extension: request/connection ratio (nginx, 16 cores)",
           "Paper section 1: long-lived connections do not suffer the "
           "short-lived scalability problem.\nMetric is requests/s; "
           "fast/base should shrink toward ~1x as keep-alive grows.");

    TextTable table;
    table.header({"reqs/conn", "base-2.6.32 rps", "fastsocket rps",
                  "fast/base"});

    BenchJsonReport json("longlived");
    for (int reqs : {1, 4, 16, 64}) {
        double rps[2];
        for (int k = 0; k < 2; ++k) {
            ExperimentConfig cfg;
            cfg.app = AppKind::kNginx;
            cfg.machine.cores = 16;
            cfg.machine.kernel = k == 0 ? KernelConfig::base2632()
                                        : KernelConfig::fastsocket();
            cfg.requestsPerConn = reqs;
            cfg.concurrencyPerCore = args.quick ? 100 : 250;
            cfg.warmupSec = args.quick ? 0.02 : 0.04;
            cfg.measureSec = args.quick ? 0.05 : 0.12;
            args.apply(cfg);
            ExperimentResult r = runExperiment(cfg);
            json.addRow(std::string(k == 0 ? "base-2.6.32" : "fastsocket") +
                            "-reqs-" + std::to_string(reqs),
                        cfg, r);
            rps[k] = r.rps;
        }
        char ratio[16];
        std::snprintf(ratio, sizeof(ratio), "%.2fx",
                      rps[0] > 0 ? rps[1] / rps[0] : 0.0);
        table.row({std::to_string(reqs), kcps(rps[0]), kcps(rps[1]),
                   ratio});
    }
    table.print();
    finishJson(args, json);
    return 0;
}
