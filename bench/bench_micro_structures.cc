/**
 * @file
 * google-benchmark micro-benchmarks of the substrate data structures:
 * event queue, timer wheel, fd bitmap, RFD hashing, NIC classification.
 * These are real (not simulated-time) costs of the library itself.
 */

#include <benchmark/benchmark.h>

#include "fastsocket/rfd.hh"
#include "net/nic.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "timerwheel/timer_wheel.hh"
#include "vfs/fd_table.hh"

namespace
{

using namespace fsim;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<Tick>(i * 7 % 997), [] {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TimerWheelAddCancel(benchmark::State &state)
{
    TimerWheel tw;
    std::uint64_t e = 1;
    for (auto _ : state) {
        auto id = tw.add(e + (e * 31 % 5000), [] {});
        tw.cancel(id);
        ++e;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerWheelAddCancel);

void
BM_TimerWheelChurnWithAdvance(benchmark::State &state)
{
    TimerWheel tw;
    std::uint64_t now = 0;
    Rng rng(3);
    for (auto _ : state) {
        tw.add(now + 1 + rng.range(3000), [] {});
        if ((now & 15) == 0)
            tw.advance(now + 4);
        now += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerWheelChurnWithAdvance);

void
BM_FdTableAllocFree(benchmark::State &state)
{
    FdTable t;
    std::vector<int> fds;
    fds.reserve(256);
    for (int i = 0; i < 256; ++i)
        fds.push_back(t.alloc());
    std::size_t i = 0;
    for (auto _ : state) {
        t.free(fds[i % 256]);
        fds[i % 256] = t.alloc();
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FdTableAllocFree);

void
BM_RfdHash(benchmark::State &state)
{
    ReceiveFlowDeliver rfd(24);
    Port p = 1024;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rfd.hash(p));
        ++p;
    }
}
BENCHMARK(BM_RfdHash);

void
BM_RfdClassify(benchmark::State &state)
{
    ReceiveFlowDeliver rfd(24);
    Packet p;
    p.tuple = FiveTuple{1, 2, 80, 40000};
    for (auto _ : state)
        benchmark::DoNotOptimize(rfd.classify(p, nullptr));
}
BENCHMARK(BM_RfdClassify);

void
BM_NicClassifyRss(benchmark::State &state)
{
    NicConfig cfg;
    cfg.numQueues = 24;
    Nic nic(cfg);
    Packet p;
    p.tuple = FiveTuple{1, 2, 1024, 80};
    for (auto _ : state) {
        ++p.tuple.sport;
        benchmark::DoNotOptimize(nic.classifyRx(p));
    }
}
BENCHMARK(BM_NicClassifyRss);

void
BM_NicClassifyFdirAtr(benchmark::State &state)
{
    NicConfig cfg;
    cfg.numQueues = 24;
    cfg.fdirAtr = true;
    cfg.atrSampleRate = 4;
    Nic nic(cfg);
    Packet out;
    out.tuple = FiveTuple{2, 1, 80, 1024};
    Packet in;
    in.tuple = out.tuple.reversed();
    for (auto _ : state) {
        nic.noteTx(out, 5);
        benchmark::DoNotOptimize(nic.classifyRx(in));
    }
}
BENCHMARK(BM_NicClassifyFdirAtr);

} // anonymous namespace

BENCHMARK_MAIN();
