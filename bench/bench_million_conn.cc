/**
 * @file
 * Million-connection machine: ramp one simulated server to a very large
 * concurrent TCB population under a mixed short-/long-lived workload and
 * measure what the paper's data structures cost per connection.
 *
 * Mechanism: an open-loop client fleet launches connections at a fixed
 * rate; 90% of them are long-lived keep-alive connections that issue one
 * request and then park (think time far beyond the run horizon), so the
 * ESTABLISHED population grows linearly. The remaining 10% are
 * "Connection: close" exchanges whose active close on the server side
 * keeps TIME_WAIT churn alive throughout the ramp.
 *
 * Metrics per ramp checkpoint: live TCBs, slab-arena bytes per
 * connection, and established-hash lookup cost (delta cycles/lookup and
 * chain probes/lookup). The paper's thesis in miniature: the base
 * kernel's global fixed-size ehash (16384 buckets) grows O(N/buckets)
 * chains — every SYN's duplicate check and every TIME_WAIT segment walks
 * them — while Fastsocket's per-core local tables resize and stay flat.
 *
 * Gates (exit 1 on violation, with a reproducer line):
 *   - fastsocket holds >= 1M live TCBs (>= 100k with --quick);
 *   - fastsocket cycles/lookup stays flat (last <= 1.10x first
 *     checkpoint), and so does bytes-per-connection;
 *   - base-2.6.32 cycles/lookup degrades (last >= 1.30x first).
 */

#include "bench_common.hh"

namespace
{

struct RampRow
{
    const char *name;
    fsim::KernelConfig kernel;
    double ratePerSec;          //!< open-loop launch rate
    std::uint64_t targetParked; //!< long-lived population to reach
    bool mustHoldTarget;        //!< gate: peak live >= target
    bool mustStayFlat;          //!< gate: lookup cost flat across ramp
    bool mustDegrade;           //!< gate: lookup cost grows across ramp
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv, {"--target="});

    banner("Million-connection machine (nginx, 24 cores, open loop)",
           "Connection-count ramp: 90% of connections park in "
           "ESTABLISHED, 10% churn through TIME_WAIT.\nThe base "
           "kernel's fixed global ehash degrades with population; "
           "Fastsocket's per-core tables stay flat.\n(Tracing is "
           "forced off: span logs do not scale to 1M connections.)");

    // --target=<n> overrides the parked-population target of every row
    // (the CI smoke job sizes the ramp explicitly).
    std::uint64_t target_override = 0;
    {
        std::string v;
        if (args.extraValue("--target=", v))
            target_override = std::strtoull(v.c_str(), nullptr, 10);
    }

    const std::uint64_t fast_target =
        target_override ? target_override
                        : (args.quick ? 105'000 : 1'050'000);
    // The base kernel is not asked to hold a million: its global ehash
    // is the thing under indictment, and 250k entries (15-deep chains)
    // already shows the slope without a ten-minute run.
    const std::uint64_t base_target =
        target_override ? target_override
                        : (args.quick ? 105'000 : 250'000);
    const std::uint64_t hold_gate = args.quick ? 100'000 : 1'000'000;

    const RampRow rows[] = {
        {"base-2.6.32", KernelConfig::base2632(), 100e3, base_target,
         /*hold=*/false, /*flat=*/false, /*degrade=*/true},
        {"fastsocket", KernelConfig::fastsocket(),
         args.quick ? 150e3 : 250e3, fast_target,
         /*hold=*/true, /*flat=*/true, /*degrade=*/false},
    };
    constexpr int kCheckpoints = 8;
    constexpr double kLongLivedShare = 0.9;   // longLivedPermille / 1000

    TextTable table;
    table.header({"kernel", "target", "peak live", "B/conn",
                  "probe 1st>last", "cyc/lkp 1st>last", "tw entered",
                  "gates"});

    BenchJsonReport json("million_conn");
    bool failed = false;

    for (const RampRow &row : rows) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 24;
        cfg.machine.kernel = row.kernel;
        cfg.machine.traceEnabled = false;   // span logs don't scale to 1M
        cfg.longLivedPermille =
            static_cast<int>(kLongLivedShare * 1000.0);
        cfg.longLivedRequests = 2;
        // Park far past the run horizon: the long-lived population only
        // releases its slots after the bench has already collected.
        cfg.longLivedThink = ticksFromSeconds(30.0);
        cfg.listenBacklog = 1024;
        cfg.synBacklog = 4096;
        args.apply(cfg);
        cfg.machine.traceEnabled = false;   // not even with --notrace off

        Testbed bed(cfg);
        KernelStack &kern = bed.machine().kernel();

        const double ramp_sec =
            static_cast<double>(row.targetParked) /
            (row.ratePerSec * kLongLivedShare);
        bed.load().startOpenLoop(row.ratePerSec);

        std::vector<ConnRampPoint> ramp;
        std::uint64_t prev_lookups = 0, prev_probes = 0, prev_cycles = 0;
        const Tick t0 = bed.eventQueue().now();
        for (int i = 1; i <= kCheckpoints; ++i) {
            bed.runUntilChecked(
                t0 + ticksFromSeconds(ramp_sec * i / kCheckpoints));
            ConnRampPoint pt;
            pt.live = kern.liveSockets();
            const TcbArena &arena = kern.tcbArena();
            pt.bytesPerConn =
                arena.peakLive()
                    ? static_cast<double>(arena.slabBytes()) /
                          static_cast<double>(arena.peakLive())
                    : 0.0;
            std::uint64_t lk = kern.ehashLookups() - prev_lookups;
            std::uint64_t pr = kern.ehashProbesWalked() - prev_probes;
            std::uint64_t cy = kern.ehashLookupCycles() - prev_cycles;
            prev_lookups += lk;
            prev_probes += pr;
            prev_cycles += cy;
            if (lk) {
                pt.cyclesPerLookup = static_cast<double>(cy) /
                                     static_cast<double>(lk);
                pt.avgProbeLen = static_cast<double>(pr) /
                                 static_cast<double>(lk);
            }
            ramp.push_back(pt);
        }

        // Measure a short steady window on top of the full population,
        // then collect the run census.
        bed.markWindows();
        bed.runUntilChecked(bed.eventQueue().now() +
                            ticksFromSeconds(args.quick ? 0.05 : 0.1));
        ExperimentResult r = bed.collect();
        r.conn.ramp = ramp;
        json.addRow(row.name, cfg, r);

        const ConnRampPoint &first = ramp.front();
        const ConnRampPoint &last = ramp.back();
        // Flatness reference: the cheapest second-half checkpoint. The
        // first half of the ramp fills an initially empty table toward
        // its operating load factor — cost legitimately rises there on
        // both kernels; what must NOT happen on a scalable design is
        // further growth once the table is at load (resize keeps the
        // load factor, and therefore the chains, population-invariant).
        double settled = 0.0;
        for (std::size_t i = ramp.size() / 2; i < ramp.size(); ++i)
            if (ramp[i].cyclesPerLookup > 0 &&
                (settled == 0.0 || ramp[i].cyclesPerLookup < settled))
                settled = ramp[i].cyclesPerLookup;

        std::string verdict = "ok";
        auto gate = [&](bool ok, const std::string &what) {
            if (ok)
                return;
            failed = true;
            verdict = "FAIL";
            printGateFailure("bench_million_conn", args, cfg,
                             row.name + (": " + what));
        };
        char buf[160];
        if (row.mustHoldTarget) {
            std::snprintf(buf, sizeof(buf),
                          "held %llu live TCBs at peak, gate >= %llu",
                          static_cast<unsigned long long>(
                              r.conn.tcbLivePeak),
                          static_cast<unsigned long long>(hold_gate));
            gate(r.conn.tcbLivePeak >= hold_gate, buf);
        }
        if (row.mustStayFlat && settled > 0) {
            std::snprintf(buf, sizeof(buf),
                          "cycles/lookup settled %.1f -> last %.1f, "
                          "flat gate 1.10x",
                          settled, last.cyclesPerLookup);
            gate(last.cyclesPerLookup <= 1.10 * settled, buf);
            std::snprintf(buf, sizeof(buf),
                          "bytes/conn %.1f -> %.1f, flat gate 1.10x",
                          first.bytesPerConn, last.bytesPerConn);
            gate(last.bytesPerConn <= 1.10 * first.bytesPerConn, buf);
        }
        if (row.mustDegrade && first.cyclesPerLookup > 0) {
            std::snprintf(buf, sizeof(buf),
                          "cycles/lookup %.1f -> %.1f, degradation "
                          "gate 1.30x (global ehash should not scale)",
                          first.cyclesPerLookup, last.cyclesPerLookup);
            gate(last.cyclesPerLookup >=
                     1.30 * first.cyclesPerLookup,
                 buf);
        }

        char probe[32], cyc[32], bpc[32], tgt[24], peak[24], tw[24];
        std::snprintf(probe, sizeof(probe), "%.2f > %.2f",
                      first.avgProbeLen, last.avgProbeLen);
        std::snprintf(cyc, sizeof(cyc), "%.0f > %.0f",
                      first.cyclesPerLookup, last.cyclesPerLookup);
        std::snprintf(bpc, sizeof(bpc), "%.0f", r.conn.bytesPerConn);
        std::snprintf(tgt, sizeof(tgt), "%lluK",
                      static_cast<unsigned long long>(
                          row.targetParked / 1000));
        std::snprintf(peak, sizeof(peak), "%lluK",
                      static_cast<unsigned long long>(
                          r.conn.tcbLivePeak / 1000));
        std::snprintf(tw, sizeof(tw), "%llu",
                      static_cast<unsigned long long>(
                          r.conn.timeWaitEntered));
        table.row({row.name, tgt, peak, bpc, probe, cyc, tw, verdict});
    }

    table.print();
    finishJson(args, json);
    if (failed) {
        std::printf("\nmillion-conn gates FAILED\n");
        return 1;
    }
    std::printf("\nall million-conn gates passed\n");
    return 0;
}
