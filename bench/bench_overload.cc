/**
 * @file
 * Overload bench: collapse vs shed under open-loop load beyond capacity.
 *
 * For each kernel (base-2.6.32, fastsocket) the bench first measures
 * closed-loop capacity, then drives an *open-loop* stepped ramp up to
 * 3x that capacity twice:
 *
 *   - unprotected: a deep accept queue (somaxconn 8192) and no overload
 *     control. Above capacity the queue fills with requests whose
 *     clients give up (50ms) long before the server reaches them, so
 *     the server burns its cycles serving the dead — goodput collapses
 *     (congestion collapse via receive livelock + stale queues);
 *   - protected: the src/overload stack armed — a SYN ingress gate that
 *     refuses excess connections before any handshake work, a softirq
 *     backlog budget, accept-queue pressure watermarks, CoDel-style
 *     queue-deadline shedding, brownout degradation, and a health
 *     priority class. Dropping early keeps every *served* connection
 *     fresh, so goodput holds near capacity and the latency tail stays
 *     bounded.
 *
 * Pass criteria (exit != 0 on violation; reported but not enforced when
 * --overload overrides the built-in spec):
 *   - unprotected goodput at 3x offered < 50% of capacity (the bench
 *     must reproduce the collapse, or the protection gate is vacuous);
 *   - protected goodput at 3x offered >= 85% of capacity;
 *   - protected p99 connect-to-response latency at 3x <= 25ms;
 *   - health probes through the protected stack succeed at >= 90%
 *     (of probes with a determined outcome; the priority mark must
 *     carry them past every shedding layer);
 *   - zero invariant violations in every run (checkLevel=periodic).
 */

#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace fsim;

const char *kBenchName = "bench_overload";

/**
 * Built-in protection spec. The SYN ingress gate (48 entries per accept
 * queue) is the load-bearing knob: past saturation the *handshake* work
 * of doomed connections is what starves process context (receive
 * livelock), so excess SYNs must die before the kernel invests in them
 * — app-level shedding alone starts too late. The gate also bounds the
 * queue sojourn (~gate / per-queue drain rate), which keeps every
 * accepted connection fresh: 48 entries is ~0.5ms for the baseline's
 * single shared queue and ~1.6ms for a Fastsocket per-core queue
 * (per-queue drain = capacity / cores), both safely under the 5ms
 * deadline shed that remains as a backstop along with the worker cap.
 * Watermarks are sized to the *gated* depth against somaxconn 8192:
 * elevated at ~0.004 x 8192 = 32 entries so brownout engages while the
 * gate holds the queue near 48, nominal again below ~16.
 */
const char *kProtectSpec =
    "budget=256,gate=48,deadline_ms=5,cap=256,brownout=1,"
    "health_bytes=32,high=0.004,critical=0.5,low=0.002";

struct StepRow
{
    double mult = 0.0;      //!< offered-rate multiplier vs capacity
    double offered = 0.0;   //!< conns/s actually launched
    double goodput = 0.0;   //!< completions/s
    Tick p99 = 0;           //!< window p99 connect-to-response latency
    std::uint64_t shed = 0;
    std::uint64_t gateDrops = 0;
    std::uint64_t backlogDrops = 0;
    std::uint64_t degraded = 0;
};

struct RampOutcome
{
    ExperimentResult res;       //!< final-step collect()
    std::vector<StepRow> steps;
    double finalGoodput = 0.0;
    Tick finalP99 = 0;
    double healthRate = 0.0;    //!< probe completions / probe starts
    double normalRate = 0.0;    //!< same for non-probe connections
};

RampOutcome
runRamp(const ExperimentConfig &cfg, double capacity,
        const std::vector<double> &mults, Tick warm_ticks,
        Tick step_ticks, Tick drain_ticks)
{
    RampOutcome out;
    Testbed bed(cfg);
    HttpLoad &load = bed.load();
    EventQueue &eq = bed.eventQueue();
    const KernelStats &ks = bed.machine().kernel().stats();
    AdmissionController *adm = bed.admission();

    load.startOpenLoop(capacity * mults.front());
    bed.runUntilChecked(eq.now() + warm_ticks);

    for (double m : mults) {
        load.setOpenLoopRate(capacity * m);
        bed.markWindows();
        std::uint64_t s0 = load.started();
        std::uint64_t c0 = load.completed();
        std::uint64_t shed0 = adm ? adm->shed() : 0;
        std::uint64_t deg0 = adm ? adm->degraded() : 0;
        std::uint64_t gate0 = ks.synGateDropped;
        std::uint64_t drop0 = ks.backlogDropped;
        bed.runUntilChecked(eq.now() + step_ticks);

        StepRow row;
        row.mult = m;
        double sec = secondsFromTicks(step_ticks);
        row.offered = static_cast<double>(load.started() - s0) / sec;
        row.goodput = static_cast<double>(load.completed() - c0) / sec;
        row.p99 = load.latencyPercentileSinceMark(0.99);
        row.shed = (adm ? adm->shed() : 0) - shed0;
        row.degraded = (adm ? adm->degraded() : 0) - deg0;
        row.gateDrops = ks.synGateDropped - gate0;
        row.backlogDrops = ks.backlogDropped - drop0;
        out.steps.push_back(row);
    }

    // Drain: stop launching and run one client give-up period further,
    // so every connection reaches a determined outcome (response or
    // timeout). Without this, conns launched near run end are neither
    // successes nor failures and the rates below read vacuously high.
    load.stopOpenLoop();
    bed.runUntilChecked(eq.now() + drain_ticks);

    out.res = bed.collect();
    out.finalGoodput = out.steps.back().goodput;
    out.finalP99 = out.steps.back().p99;
    // Success rates over connections with a *determined* outcome: a
    // probe launched milliseconds before the run ends is neither a
    // success nor a failure (a real failure shows up as a give-up
    // timeout or a shed within the run).
    std::uint64_t hc = load.healthCompleted();
    std::uint64_t hf = load.healthFailed();
    if (hc + hf > 0)
        out.healthRate = static_cast<double>(hc) /
                         static_cast<double>(hc + hf);
    std::uint64_t nc = load.completed() - hc;
    std::uint64_t nf = load.failed() - hf;
    if (nc + nf > 0)
        out.normalRate = static_cast<double>(nc) /
                         static_cast<double>(nc + nf);
    return out;
}

void
printSteps(const char *tag, const RampOutcome &o)
{
    std::printf("  %-12s mult  offered/s  goodput/s   p99(ms)  "
                "shed    degraded  gate-drops  budget-drops\n", tag);
    for (const StepRow &s : o.steps)
        std::printf("  %-12s %4.1f  %8.0f  %8.0f  %8.2f  %-7llu %-9llu"
                    " %-11llu %llu\n",
                    "", s.mult, s.offered, s.goodput,
                    1e3 * secondsFromTicks(s.p99),
                    static_cast<unsigned long long>(s.shed),
                    static_cast<unsigned long long>(s.degraded),
                    static_cast<unsigned long long>(s.gateDrops),
                    static_cast<unsigned long long>(s.backlogDrops));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Overload: collapse vs shed beyond saturation",
           "Open-loop ramp to 3x measured capacity. Unprotected, a deep "
           "accept queue turns every\nserved connection stale (client "
           "gave up at 50ms) and goodput collapses; with the\n"
           "src/overload stack armed, stale work is shed on accept and "
           "goodput holds.");

    // An explicit --overload spec replaces the built-in protection; the
    // gates assume the built-in knobs, so they are reported but not
    // enforced in that mode.
    const bool userSpec = !args.overloadSpec.empty();

    const Tick warm = ticksFromSeconds(args.quick ? 0.012 : 0.025);
    const Tick step = ticksFromSeconds(args.quick ? 0.012 : 0.025);
    const std::vector<double> mults = {1.0, 1.5, 2.0, 2.5, 3.0, 3.0};
    const Tick clientGiveUp = ticksFromUsec(50000);
    const Tick drain = clientGiveUp + ticksFromUsec(10000);
    const Tick p99Bound = ticksFromUsec(25000);

    const KernelUnderTest kernels[2] = {kKernels[0], kKernels[2]};
    BenchJsonReport json("overload");
    int rc = 0;

    for (const KernelUnderTest &k : kernels) {
        std::printf("--- %s ---\n", k.name);

        ExperimentConfig base;
        base.app = AppKind::kNginx;
        base.machine.cores = args.quick ? 4 : 8;
        base.machine.kernel = k.config;
        base.machine.traceEnabled = args.trace;

        // Phase 1: closed-loop capacity (the ramp's yardstick).
        ExperimentConfig ccfg = base;
        ccfg.concurrencyPerCore = args.quick ? 100 : 250;
        ccfg.warmupSec = args.quick ? 0.015 : 0.03;
        ccfg.measureSec = args.quick ? 0.04 : 0.08;
        args.apply(ccfg);
        ExperimentResult cres = runExperiment(ccfg);
        double capacity = cres.cps;
        json.addRow(std::string("capacity/") + k.name, ccfg, cres);
        std::printf("  capacity (closed loop): %.0f conns/s  [%s]\n",
                    capacity, cres.invariants.summary().c_str());
        if (capacity <= 0.0) {
            printGateFailure(kBenchName, args, ccfg,
                             "capacity measured as zero");
            rc = 1;
            continue;
        }

        // Phase 2: open-loop ramp, shared shape for both variants.
        ExperimentConfig ramp = base;
        ramp.listenBacklog = 8192;      // deep queue: the collapse fuel
        ramp.clientTimeout = clientGiveUp;
        ramp.clientHealthEvery = 20;    // 5% of conns are health probes
        ramp.checkLevel = CheckLevel::kPeriodic;

        ExperimentConfig uncfg = ramp;
        args.apply(uncfg);
        uncfg.machine.overload = OverloadConfig{};  // protection OFF
        RampOutcome un = runRamp(uncfg, capacity, mults, warm, step,
                                 drain);
        json.addRow(std::string("unprotected/") + k.name, uncfg, un.res);
        printSteps("unprotected", un);
        std::printf("  %-12s final goodput %.0f/s (%.0f%% of capacity), "
                    "p99 %.2fms, health %.0f%%  [%s]\n", "",
                    un.finalGoodput, 100.0 * un.finalGoodput / capacity,
                    1e3 * secondsFromTicks(un.finalP99),
                    100.0 * un.healthRate,
                    un.res.invariants.summary().c_str());

        ExperimentConfig prcfg = ramp;
        std::string perr;
        bool pok = parseOverloadSpec(kProtectSpec,
                                     prcfg.machine.overload, perr);
        fsim_assert(pok && "built-in overload spec must parse");
        args.apply(prcfg);              // --overload / --seed override
        RampOutcome pr = runRamp(prcfg, capacity, mults, warm, step,
                                 drain);
        json.addRow(std::string("protected/") + k.name, prcfg, pr.res);
        printSteps("protected", pr);
        std::printf("  %-12s final goodput %.0f/s (%.0f%% of capacity), "
                    "p99 %.2fms, health %.0f%% (normal %.0f%%), "
                    "degraded %llu  [%s]\n", "",
                    pr.finalGoodput, 100.0 * pr.finalGoodput / capacity,
                    1e3 * secondsFromTicks(pr.finalP99),
                    100.0 * pr.healthRate, 100.0 * pr.normalRate,
                    static_cast<unsigned long long>(
                        pr.res.overload.servedDegraded),
                    pr.res.invariants.summary().c_str());

        // Gates.
        if (un.res.invariants.violationCount > 0) {
            printGateFailure(kBenchName, args, uncfg,
                             "invariant violations (unprotected ramp): " +
                                 un.res.invariants.summary());
            rc = 1;
        }
        if (pr.res.invariants.violationCount > 0) {
            printGateFailure(kBenchName, args, prcfg,
                             "invariant violations (protected ramp): " +
                                 pr.res.invariants.summary());
            rc = 1;
        }
        if (!userSpec) {
            char msg[160];
            if (un.finalGoodput >= 0.5 * capacity) {
                std::snprintf(msg, sizeof(msg),
                              "unprotected goodput at 3x is %.0f%% of "
                              "capacity (expected < 50%%: no collapse "
                              "reproduced)",
                              100.0 * un.finalGoodput / capacity);
                printGateFailure(kBenchName, args, uncfg, msg);
                rc = 1;
            }
            if (pr.finalGoodput < 0.85 * capacity) {
                std::snprintf(msg, sizeof(msg),
                              "protected goodput at 3x is %.0f%% of "
                              "capacity (expected >= 85%%)",
                              100.0 * pr.finalGoodput / capacity);
                printGateFailure(kBenchName, args, prcfg, msg);
                rc = 1;
            }
            if (pr.finalP99 > p99Bound) {
                std::snprintf(msg, sizeof(msg),
                              "protected p99 at 3x is %.2fms (expected "
                              "<= %.0fms)",
                              1e3 * secondsFromTicks(pr.finalP99),
                              1e3 * secondsFromTicks(p99Bound));
                printGateFailure(kBenchName, args, prcfg, msg);
                rc = 1;
            }
            if (pr.healthRate < 0.9) {
                std::snprintf(msg, sizeof(msg),
                              "health probes completed at %.0f%% through "
                              "the protected stack (expected >= 90%%)",
                              100.0 * pr.healthRate);
                printGateFailure(kBenchName, args, prcfg, msg);
                rc = 1;
            }
        }
        std::printf("\n");
    }

    std::printf("overload: %s\n", rc == 0 ? "PASS" : "FAIL");
    finishJson(args, json);
    return rc;
}
