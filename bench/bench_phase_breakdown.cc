/**
 * @file
 * Observability bench: where does every simulated CPU cycle go?
 *
 * Runs the Figure 4(a) 24-core nginx endpoint on base-2.6.32 and
 * Fastsocket and prints, per kernel, the per-core phase breakdown table
 * (app / syscall / softirq / lock-spin / cache-stall / idle) and the
 * heaviest folded stacks, i.e. exactly the perf-style evidence behind
 * the paper's section 2 analysis: on the baseline the listen-socket and
 * VFS locks burn a large share of every core's cycles, while Fastsocket
 * returns those cycles to application and protocol work.
 *
 * Paper reference (section 2.1): at 24 cores the baseline spends 24.2%
 * of per-core CPU cycles in the accept path's contended locks.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Phase breakdown: per-core cycle attribution (nginx, 24 cores)",
           "Simulated perf: every busy cycle is attributed to a phase; "
           "idle is the derived remainder.\nExpected: lock-spin dominates "
           "the kernel share on base-2.6.32 and vanishes on fastsocket.");

    BenchJsonReport json("phase_breakdown");
    const KernelUnderTest kernels[2] = {kKernels[0], kKernels[2]};

    for (const KernelUnderTest &k : kernels) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 24;
        cfg.machine.kernel = k.config;
        cfg.concurrencyPerCore = args.quick ? 150 : 400;
        cfg.warmupSec = args.quick ? 0.02 : 0.05;
        cfg.measureSec = args.quick ? 0.05 : 0.15;
        cfg.statWindows = 5;
        args.apply(cfg);
        ExperimentResult r = runExperiment(cfg);
        json.addRow(k.name, cfg, r);

        std::printf("--- %s: %s cps ---\n", k.name, kcps(r.cps).c_str());
        phaseBreakdownTable(r.phases).print();

        std::printf("\ntop folded stacks (flamegraph.pl format):\n");
        std::size_t shown = 0;
        for (const auto &fs : r.foldedStacks) {
            if (shown++ == 6)
                break;
            std::printf("  %-40s %llu\n", fs.first.c_str(),
                        static_cast<unsigned long long>(fs.second));
        }
        double spin = r.phases.total(Phase::kLockSpin);
        double busy = 1.0 - r.phases.total(Phase::kIdle);
        std::printf("\nlock-spin share: %s of all cycles, %s of busy "
                    "cycles\n",
                    formatPercent(spin).c_str(),
                    formatPercent(busy > 0 ? spin / busy : 0.0).c_str());

        // SYN-path health per sub-window: all-zero on a clean run;
        // --faults=syn_flood@... makes retransmits/cookies/RSTs show up.
        std::printf("\nper-window SYN deltas (completed | syn-retx "
                    "cookies-sent cookies-ok rst):\n");
        for (std::size_t i = 0; i < r.lockWindows.size(); ++i) {
            const LockWindow &lw = r.lockWindows[i];
            std::printf("  w%zu: %8llu | %6llu %6llu %6llu %6llu\n", i,
                        static_cast<unsigned long long>(lw.completed),
                        static_cast<unsigned long long>(lw.synRetransmits),
                        static_cast<unsigned long long>(lw.synCookiesSent),
                        static_cast<unsigned long long>(
                            lw.synCookiesValidated),
                        static_cast<unsigned long long>(
                            lw.acceptQueueRsts));
        }
        std::printf("\n");
    }

    finishJson(args, json);
    return 0;
}
