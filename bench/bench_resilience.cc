/**
 * @file
 * Resilience bench: goodput and latency over time while faults fire.
 *
 * Four fault scenarios (wire loss burst, SYN flood, ATR flow-table
 * churn, backend outage+brownout) each run on base-2.6.32 and
 * Fastsocket with the matching hardening armed (client retransmission
 * backoff, stateless SYN cookies, RSS fallback, proxy failover). The
 * measurement window is split into 12 sub-windows so the per-window
 * goodput curve shows the dip during the fault window and the recovery
 * after it.
 *
 * Pass criteria (exit status != 0 on violation, skipped when --faults
 * overrides the scenario plans):
 *   - goodput after the fault window recovers to >= 90% of the
 *     pre-fault level, on both kernels;
 *   - under the SYN flood with cookies enabled, legitimate goodput
 *     stays nonzero inside the fault window;
 *   - every run's invariants hold (checkLevel=periodic).
 *
 * The paper's claim is about clean-network peak throughput; this bench
 * guards the complementary property that neither kernel model trades
 * robustness for that peak.
 */

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/logging.hh"

namespace
{

using namespace fsim;

struct Scenario
{
    const char *name;
    AppKind app;
    std::string plan;       //!< fault plan text, absolute sim times
    bool synCookies = false;
    std::size_t synBacklog = 0;
    bool clientRetx = false;    //!< arm client SYN/request backoff
    bool backendRetry = false;  //!< arm proxy timeout+retry+ejection
    bool duringNonzero = false; //!< require goodput > 0 inside the fault
};

std::string
windowStr(double start, double end, const char *fmt_tail)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.3f-%.3f%s", start, end, fmt_tail);
    return buf;
}

double
meanGoodput(const std::vector<LockWindow> &ws, std::size_t first,
            std::size_t last)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = first; i <= last && i < ws.size(); ++i, ++n)
        sum += ws[i].goodput;
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Resilience: goodput over time under injected faults",
           "Fault window covers the middle third of the measurement "
           "window (sub-windows 4-7 of 12).\nExpected: goodput dips "
           "while the fault is live and recovers to >=90% of the "
           "pre-fault level afterwards, on both kernels.");

    // 12 sub-windows; the fault spans sub-windows 4..7.
    const double warmup = args.quick ? 0.02 : 0.03;
    const double winLen = args.quick ? 0.01 : 0.03;
    const int nWin = 12;
    const double fs = warmup + 4 * winLen;
    const double fe = warmup + 8 * winLen;

    const Scenario scenarios[] = {
        {"loss-burst", AppKind::kNginx,
         "loss_burst@" + windowStr(fs, fe, ":rate=0.25"),
         false, 0, /*clientRetx=*/true, false, false},
        {"syn-flood", AppKind::kNginx,
         "syn_flood@" + windowStr(fs, fe, ":rate=200000"),
         /*synCookies=*/true, /*synBacklog=*/256, true, false,
         /*duringNonzero=*/true},
        {"flow-churn", AppKind::kNginx,
         "atr_shrink@" + windowStr(fs, fe, ":size=64"),
         false, 0, false, false, false},
        {"backend-flap", AppKind::kHaproxy,
         "backend_down@" + windowStr(fs, fe, ":target=0") +
             ";backend_slow@" + windowStr(fs, fe, ":factor=6,target=1"),
         false, 0, true, /*backendRetry=*/true, false},
    };
    const KernelUnderTest kernels[2] = {kKernels[0], kKernels[2]};

    // An explicit --faults plan replaces every scenario's plan; the
    // recovery gates assume the built-in windows, so they are reported
    // but not enforced in that mode.
    const bool userPlan = !args.faults.empty();

    BenchJsonReport json("resilience");
    int rc = 0;

    for (const Scenario &sc : scenarios) {
        std::printf("--- scenario %s (%s) ---\n", sc.name,
                    sc.app == AppKind::kHaproxy ? "haproxy" : "nginx");
        for (const KernelUnderTest &k : kernels) {
            ExperimentConfig cfg;
            cfg.app = sc.app;
            cfg.machine.cores = 8;
            cfg.machine.kernel = k.config;
            cfg.machine.traceEnabled = args.trace;
            // The backend-flap scenario runs at lower concurrency: a
            // saturated closed loop pushes the proxy's backend-leg tail
            // latency past any useful per-attempt timeout, so timeouts
            // would fire spuriously instead of indicating failure and
            // the resulting retries feed back into more queueing.
            if (sc.backendRetry)
                cfg.concurrencyPerCore = 40;
            else
                cfg.concurrencyPerCore = args.quick ? 100 : 250;
            cfg.warmupSec = warmup;
            cfg.measureSec = nWin * winLen;
            cfg.statWindows = nWin;
            cfg.checkLevel = CheckLevel::kPeriodic;

            std::string perr;
            bool ok = parseFaultPlan(sc.plan, cfg.faults, perr);
            fsim_assert(ok && "scenario plans are hand-written");
            cfg.clientTimeout = ticksFromSeconds(0.08);
            cfg.synCookies = sc.synCookies;
            cfg.synBacklog = sc.synBacklog;
            // Reap embryonic TCBs 30ms after the flood plants them so
            // the SYN queue drains shortly after the attack stops and
            // the recovery windows measure the normal (non-cookie)
            // path again. The stock 300-jiffy figure outlives the run.
            if (cfg.faults.has(FaultKind::kSynFlood))
                cfg.machine.kernel.synRcvdJiffies = 30;
            // The client RTO must clear the closed loop's saturated
            // end-to-end latency (concurrency / goodput, ~9ms here) or
            // retransmissions fire spuriously and feed back into load;
            // 15ms leaves the 15/30ms ladder inside the 80ms give-up.
            if (sc.clientRetx)
                cfg.clientRtoBase = ticksFromUsec(15000);
            if (sc.backendRetry)
                cfg.backendTimeout = ticksFromUsec(10000);
            if (userPlan)
                args.apply(cfg);

            Testbed bed(cfg);
            ExperimentResult r = bed.run();
            json.addRow(std::string(sc.name) + "/" + k.name, cfg, r);

            std::printf("%-12s goodput/s by sub-window:", k.name);
            for (const LockWindow &w : r.lockWindows)
                std::printf(" %5.0fK", w.goodput / 1000.0);
            std::printf("\n");

            if (const auto *px = dynamic_cast<const Proxy *>(&bed.app()))
                std::printf("%-12s proxy: %llu timeouts, %llu retries, "
                            "%llu ejections, %llu readmissions, %llu "
                            "session failures, %llu connect failures\n",
                            "",
                            static_cast<unsigned long long>(
                                px->backendTimeouts()),
                            static_cast<unsigned long long>(
                                px->backendRetries()),
                            static_cast<unsigned long long>(
                                px->backendEjections()),
                            static_cast<unsigned long long>(
                                px->backendReadmissions()),
                            static_cast<unsigned long long>(
                                px->sessionFailures()),
                            static_cast<unsigned long long>(
                                px->connectFailures()));

            // Windows 0..3 precede the fault (0 discarded as ramp),
            // 4..7 overlap it, 8..11 follow it (8 discarded as drain).
            double pre = meanGoodput(r.lockWindows, 1, 3);
            double during = meanGoodput(r.lockWindows, 4, 7);
            double post = meanGoodput(r.lockWindows, 9, 11);
            double ratio = pre > 0.0 ? post / pre : 0.0;
            std::printf("%-12s pre %.0fK  during %.0fK  post %.0fK  "
                        "recovery %.0f%%  [%s]\n",
                        "", pre / 1000.0, during / 1000.0, post / 1000.0,
                        100.0 * ratio, r.invariants.summary().c_str());

            if (r.invariants.violationCount > 0) {
                printGateFailure("bench_resilience", args, cfg,
                                 "invariant violations: " +
                                     r.invariants.summary());
                rc = 1;
            }
            if (!userPlan) {
                char msg[128];
                if (ratio < 0.9) {
                    std::snprintf(msg, sizeof(msg),
                                  "post-fault goodput %.0f%% of "
                                  "pre-fault (< 90%%)", 100.0 * ratio);
                    printGateFailure("bench_resilience", args, cfg, msg);
                    rc = 1;
                }
                if (sc.duringNonzero && during <= 0.0) {
                    printGateFailure("bench_resilience", args, cfg,
                                     "goodput hit zero during the "
                                     "fault window");
                    rc = 1;
                }
            }
        }
        std::printf("\n");
    }

    std::printf("resilience: %s\n", rc == 0 ? "PASS" : "FAIL");
    finishJson(args, json);
    return rc;
}
