/**
 * @file
 * DES-core throughput bench: how fast does the simulator itself run?
 *
 * Two families of rows, all wall-clock timed (the one bench whose JSON
 * rows carry the nondeterministic sim_core wall fields):
 *
 *  - fig4-nginx / million-conn: full-testbed runs of the paper
 *    workloads (short-lived nginx churn; open-loop long-lived ramp per
 *    bench_million_conn), reporting sim-events/sec and wall-seconds-
 *    per-simulated-second — the numbers CI tracks so a core regression
 *    shows up as a slower simulator even when every fingerprint still
 *    matches. Each run also RECORDS its EventQueue op stream
 *    (EventQueue::recordOps): the exact sequence of inter-event
 *    horizons and schedule/dispatch interleavings the workload applied.
 *
 *  - replay-*-heap / replay-*-ladder: those recorded op streams
 *    replayed verbatim through the ladder EventQueue and through the
 *    frozen pre-ladder binary-heap queue (tests/reference_event_queue).
 *    The million-conn replay additionally seeds the documented resting
 *    state of that workload — a million parked think-timer events ~30
 *    simulated seconds out — before the churn stream runs, exactly the
 *    population the full-scale ramp accumulates (http_load parks
 *    longLivedThink timers straight into the EventQueue). The printed
 *    speedup on that replay is the tentpole claim: the ladder core must
 *    hold >= 3x the heap core's events/sec, because its per-op cost is
 *    independent of the parked mass while the heap pays O(log n) sift
 *    steps and cache misses across a ~48MB array for every op.
 *
 * Wall-clock numbers vary by machine; tools/bench_compare.py gates
 * them with a generous threshold rather than byte-diffing.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "reference_event_queue.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace
{

using namespace fsim;

/** Where the million-conn parked mass lives: ~30 simulated seconds
 *  out (cfg.longLivedThink in bench_million_conn), spread over 1s. */
constexpr Tick kParkHorizon = 75'000'000'000ull;
constexpr Tick kParkSpread = 2'500'000'000ull;
/** Recorded deltas at or past this are "parked-class" (think timers,
 *  multi-second timeouts): they never come due inside a replay, so the
 *  churn-balance guard must not count them as dispatchable. */
constexpr Tick kFarHorizon = 25'000'000'000ull;

double
wallSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Stand-in for the wire's delivery capture [this, Packet] = 8 + 48
 * bytes — the closure EventFn's 56-byte budget was sized for. In the
 * pre-ladder core this capture exceeded std::function's 16-byte SBO,
 * so every packet delivery was a malloc/free round trip; about half of
 * all simulated events are wire deliveries (measured 49.7% on the
 * million-conn window), and the replay reproduces that mix.
 */
struct WirePayload
{
    std::uint64_t *sink;
    unsigned char packet[48];
};

/** Recorded deltas in [2^16, 2^20) are the wire-delay band (50us =
 *  125k ticks one way): those ops replay with the fat wire capture,
 *  everything else with a pointer-sized one. 48.2% of the recorded
 *  million-conn ops land in the band, matching the measured delivery
 *  share. */
inline bool
wireBand(Tick delta)
{
    return delta >= (Tick{1} << 16) && delta < (Tick{1} << 20);
}

struct RawOut
{
    std::uint64_t executed = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t pendingEnd = 0;
    Tick nowEnd = 0;
    double wall = 0.0;
};

/**
 * Replay a recorded op stream through queue @p q, looping over the
 * trace until at least @p target_ops schedules have been issued. With
 * @p parked > 0 the million-conn resting state is seeded first
 * (untimed). The runs-counts in the trace refer to the recording run's
 * pending population; at replay-window edges that population differs,
 * so dispatches are capped by the number of dispatchable (short-
 * horizon) events actually outstanding — the cap is deterministic and
 * identical for both queues, keeping the two replays op-for-op equal.
 */
template <typename Queue>
RawOut
rawReplay(Queue &q, std::uint64_t parked,
          const std::vector<EventQueue::SchedOp> &ops,
          std::uint64_t target_ops)
{
    std::uint64_t fired = 0;
    Rng rng(0x5eedc0de);
    for (std::uint64_t i = 0; i < parked; ++i)
        q.schedule(q.now() + kParkHorizon + rng.range(kParkSpread),
                   [&fired] { ++fired; });

    std::uint64_t scheduled = parked;
    std::uint64_t churn = 0;   // dispatchable events outstanding
    const auto t0 = std::chrono::steady_clock::now();
    while (scheduled - parked < target_ops) {
        for (const EventQueue::SchedOp &op : ops) {
            std::uint64_t runs = op.runs;
            if (runs > churn)
                runs = churn;
            for (std::uint64_t r = 0; r < runs; ++r)
                q.runOne();
            churn -= runs;
            if (wireBand(op.delta)) {
                WirePayload p{&fired, {}};
                q.schedule(q.now() + op.delta, [p] { ++*p.sink; });
            } else {
                q.schedule(q.now() + op.delta, [&fired] { ++fired; });
            }
            ++scheduled;
            if (op.delta < kFarHorizon)
                ++churn;
        }
    }
    RawOut out;
    out.wall = wallSince(t0);
    out.executed = q.executed();
    out.scheduled = scheduled;
    out.pendingEnd = q.pending();
    out.nowEnd = q.now();
    if (fired != out.executed)
        std::fprintf(stderr, "BUG: fired %llu != executed %llu\n",
                     static_cast<unsigned long long>(fired),
                     static_cast<unsigned long long>(out.executed));
    return out;
}

/**
 * Race both cores on one recorded stream: @p reps alternating
 * repetitions per core, keeping each core's best wall time. The
 * deterministic outputs (executed/scheduled/pending/now) are identical
 * across reps by construction; min-wall alternation sheds scheduler
 * noise that a single back-to-back pair of runs would bake into the
 * speedup ratio.
 */
void
raceReplays(std::uint64_t parked,
            const std::vector<EventQueue::SchedOp> &ops,
            std::uint64_t target_ops, int reps, RawOut *heapOut,
            RawOut *ladderOut)
{
    for (int i = 0; i < reps; ++i) {
        {
            ReferenceEventQueue q;
            RawOut o = rawReplay(q, parked, ops, target_ops);
            if (i == 0)
                *heapOut = o;
            else if (o.wall < heapOut->wall)
                heapOut->wall = o.wall;
        }
        {
            EventQueue q;
            RawOut o = rawReplay(q, parked, ops, target_ops);
            if (i == 0)
                *ladderOut = o;
            else if (o.wall < ladderOut->wall)
                ladderOut->wall = o.wall;
        }
    }
}

/** Row assembly for the replay rows (no testbed behind them). */
ExperimentResult
rawResult(const RawOut &o)
{
    ExperimentResult r;
    r.simEventsRun = o.executed;
    r.simEventsScheduled = o.scheduled;
    r.simTicks = o.nowEnd;
    r.simWallSeconds = o.wall;
    return r;
}

/**
 * Run one wall-timed testbed window, recording its op stream into
 * @p trace. The trace vector is pre-reserved so recording appends do
 * not reallocate inside the timed window (the push_back itself is a
 * couple of ns against ~us-scale simulated events).
 */
ExperimentResult
timedWindow(Testbed &bed, double measure_sec,
            std::vector<EventQueue::SchedOp> *trace)
{
    bed.markWindows();
    const Tick limit =
        bed.eventQueue().now() + ticksFromSeconds(measure_sec);
    if (trace) {
        trace->reserve(8'000'000);
        bed.eventQueue().recordOps(trace);
    }
    const auto t0 = std::chrono::steady_clock::now();
    bed.runUntilChecked(limit);
    const double wall = wallSince(t0);
    bed.eventQueue().recordOps(nullptr);
    ExperimentResult r = bed.collect();
    r.simWallSeconds = wall;
    return r;
}

void
printReplayRow(TextTable &t, const char *label, const RawOut &o)
{
    char ev[32], wall[32], mev[32];
    std::snprintf(ev, sizeof(ev), "%llu",
                  static_cast<unsigned long long>(o.executed));
    std::snprintf(wall, sizeof(wall), "%.3f", o.wall);
    std::snprintf(mev, sizeof(mev), "%.2f",
                  static_cast<double>(o.executed) / o.wall / 1e6);
    t.row({label, ev, wall, mev});
}

bool
agree(const char *what, const RawOut &a, const RawOut &b)
{
    if (a.executed == b.executed && a.scheduled == b.scheduled &&
        a.pendingEnd == b.pendingEnd && a.nowEnd == b.nowEnd)
        return true;
    std::fprintf(stderr,
                 "FAIL: %s replay disagrees (executed %llu vs %llu, "
                 "pending %llu vs %llu, now %llu vs %llu)\n",
                 what, static_cast<unsigned long long>(a.executed),
                 static_cast<unsigned long long>(b.executed),
                 static_cast<unsigned long long>(a.pendingEnd),
                 static_cast<unsigned long long>(b.pendingEnd),
                 static_cast<unsigned long long>(a.nowEnd),
                 static_cast<unsigned long long>(b.nowEnd));
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    const std::uint64_t replay_ops =
        args.quick ? 2'500'000 : 4'000'000;
    // The million-conn replay is a million parked events even in
    // --quick: the population is the workload's name and the heap's
    // handicap; only the churn volume shrinks.
    const std::uint64_t parked = 1'000'000;

    BenchJsonReport json("sim_core");
    ExperimentConfig raw_cfg;   // placeholder config for replay rows

    // --- testbed runs (recording their op streams) ------------------
    std::vector<EventQueue::SchedOp> fig4_trace, mc_trace;
    TextTable tb;
    tb.header({"workload", "sim events", "Mev/s", "wall/sim-sec"});

    auto addTestbedRow = [&](const char *label,
                             const ExperimentConfig &cfg,
                             const ExperimentResult &r) {
        json.addRow(label, cfg, r);
        const double eps = static_cast<double>(r.simEventsRun) /
                           r.simWallSeconds;
        const double wall_per_sim =
            r.simWallSeconds / secondsFromTicks(r.simTicks);
        char ev[32], mev[32], wps[32];
        std::snprintf(ev, sizeof(ev), "%llu",
                      static_cast<unsigned long long>(r.simEventsRun));
        std::snprintf(mev, sizeof(mev), "%.2f", eps / 1e6);
        std::snprintf(wps, sizeof(wps), "%.3f", wall_per_sim);
        tb.row({label, ev, mev, wps});
    };

    std::printf("DES-core throughput: testbed workloads (recording "
                "op streams)\n\n");
    {
        // Paper fig4(a) shape: short-lived keep-alive-off churn.
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 4;
        cfg.machine.kernel = KernelConfig::fastsocket();
        cfg.machine.traceEnabled = false;   // raw-speed contract
        cfg.checkLevel = CheckLevel::kOff;
        cfg.concurrencyPerCore = args.quick ? 100 : 250;
        cfg.warmupSec = 0.0;
        cfg.measureSec = 0.0;
        args.apply(cfg);
        cfg.machine.traceEnabled = false;

        Testbed bed(cfg);
        bed.startLoad();
        bed.runUntilChecked(ticksFromSeconds(args.quick ? 0.02 : 0.05));
        ExperimentResult r =
            timedWindow(bed, args.quick ? 0.05 : 0.15, &fig4_trace);
        addTestbedRow("fig4-nginx", cfg, r);
    }
    {
        // Million-conn shape per bench_million_conn: open-loop launch
        // ramp, 90% long-lived connections parking 30s think timers.
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = 24;
        cfg.machine.kernel = KernelConfig::fastsocket();
        cfg.machine.traceEnabled = false;
        cfg.checkLevel = CheckLevel::kOff;
        cfg.longLivedPermille = 900;
        cfg.longLivedRequests = 2;
        cfg.longLivedThink = ticksFromSeconds(30.0);
        cfg.listenBacklog = 1024;
        cfg.synBacklog = 4096;
        cfg.warmupSec = 0.0;
        cfg.measureSec = 0.0;
        args.apply(cfg);
        cfg.machine.traceEnabled = false;

        Testbed bed(cfg);
        bed.load().startOpenLoop(args.quick ? 150e3 : 250e3);
        bed.runUntilChecked(ticksFromSeconds(args.quick ? 0.10 : 0.30));
        ExperimentResult r =
            timedWindow(bed, args.quick ? 0.05 : 0.10, &mc_trace);
        addTestbedRow("million-conn", cfg, r);
    }
    tb.print();

    if (fig4_trace.empty() || mc_trace.empty()) {
        std::fprintf(stderr,
                     "FAIL: empty op trace (fig4 %zu ops, million-conn "
                     "%zu ops)\n",
                     fig4_trace.size(), mc_trace.size());
        return 1;
    }
    std::printf("\nrecorded op streams: fig4 %zu ops, million-conn "
                "%zu ops\n\n",
                fig4_trace.size(), mc_trace.size());

    // --- recorded-stream replays: ladder vs frozen heap -------------
    std::printf("replaying recorded streams through both cores "
                "(%llu churn ops each)\n\n",
                static_cast<unsigned long long>(replay_ops));

    TextTable raw;
    raw.header({"replay", "events", "wall s", "Mev/s"});

    constexpr int kReps = 9;
    RawOut f_h, f_l, m_h, m_l;
    raceReplays(0, fig4_trace, replay_ops, kReps, &f_h, &f_l);
    raceReplays(parked, mc_trace, replay_ops, kReps, &m_h, &m_l);

    json.addRow("replay-fig4-heap", raw_cfg, rawResult(f_h));
    printReplayRow(raw, "fig4 / binary heap", f_h);
    json.addRow("replay-fig4-ladder", raw_cfg, rawResult(f_l));
    printReplayRow(raw, "fig4 / ladder", f_l);
    json.addRow("replay-million-conn-heap", raw_cfg, rawResult(m_h));
    printReplayRow(raw, "million-conn / binary heap", m_h);
    json.addRow("replay-million-conn-ladder", raw_cfg, rawResult(m_l));
    printReplayRow(raw, "million-conn / ladder", m_l);

    raw.print();

    if (!agree("fig4", f_h, f_l) || !agree("million-conn", m_h, m_l))
        return 1;
    if (m_l.nowEnd >= kParkHorizon) {
        std::fprintf(stderr,
                     "FAIL: replay ran past the parked horizon "
                     "(now %llu) — the parked mass fired and the "
                     "workload shape is no longer million-conn\n",
                     static_cast<unsigned long long>(m_l.nowEnd));
        return 1;
    }

    const double fig4_speedup = f_h.wall / f_l.wall;
    const double mc_speedup = m_h.wall / m_l.wall;
    std::printf("\nladder/heap speedup: fig4 %.2fx, million-conn "
                "%.2fx (gate: million-conn >= 3x)\n",
                fig4_speedup, mc_speedup);

    finishJson(args, json);

    if (mc_speedup < 3.0) {
        std::fprintf(stderr,
                     "\nFAIL: million-conn replay speedup %.2fx below "
                     "the 3x floor\n",
                     mc_speedup);
        return 1;
    }
    return 0;
}
