/**
 * @file
 * Reproduces Table 1: lockstat contention counts for the HAProxy
 * benchmark on 24 cores, as each Fastsocket component is enabled on top
 * of the baseline:
 *
 *   V = Fastsocket-aware VFS, L = Local Listen Table,
 *   R = Receive Flow Deliver, E = Local Established Table.
 *
 * Paper reference (60 s of baseline): dcache_lock 26.4M, inode_lock
 * 4.3M, slock 422.7K, ep.lock 1.0M, base.lock 451.3K, ehash.lock 868;
 * the Fastsocket column is all zeros except 8 stray base.lock hits.
 * The paper also reports (section 1) that spin locks consume ~9% of CPU
 * cycles in TCB management and ~11% in VFS on a loaded 8-core baseline;
 * the second table prints the equivalent cycle shares.
 *
 * The simulated measurement window is shorter than 60 s; counts are
 * printed raw and scaled to a 60 s equivalent for comparison.
 */

#include <vector>

#include "bench_common.hh"

namespace
{

const char *kLockRows[] = {"dcache_lock", "inode_lock", "slock",
                           "ep.lock", "base.lock", "ehash.lock"};

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;
    BenchArgs args = BenchArgs::parse(argc, argv);

    banner("Table 1: lock contention counts (HAProxy, 24 cores)",
           "Counts scaled to the paper's 60s window. Expected shape: "
           "dcache >> inode >> ep/base/slock >> ehash for the baseline;\n"
           "+V zeroes the VFS locks, +L+R zero slock/ep/base, "
           "+E zeroes ehash (full partition = all-zero column).");

    struct Step
    {
        const char *name;
        KernelConfig config;
    };
    std::vector<Step> steps;
    steps.push_back({"Baseline", KernelConfig::base2632()});
    {
        KernelConfig c = KernelConfig::base2632();
        c.fastVfs = true;
        steps.push_back({"+V", c});
        c.localListen = true;
        steps.push_back({"+VL", c});
        c.rfd = true;
        steps.push_back({"+VLR", c});
        c.localEstablished = true;
        steps.push_back({"+VLRE", c});
    }

    double measure = args.quick ? 0.1 : 0.5;
    double scale = 60.0 / measure;

    TextTable table;
    table.header({"lock", "Baseline", "+V", "+VL", "+VLR", "+VLRE(=FS)"});

    BenchJsonReport json("table1_locks");
    std::vector<ExperimentResult> results;
    std::vector<double> cps;
    for (const Step &s : steps) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 24;
        cfg.machine.kernel = s.config;
        cfg.concurrencyPerCore = args.quick ? 150 : 300;
        cfg.warmupSec = args.quick ? 0.02 : 0.05;
        cfg.measureSec = measure;
        // Four sub-windows expose how contention evolves inside the
        // measurement window.
        cfg.statWindows = 4;
        args.apply(cfg);
        Testbed bed(cfg);
        results.push_back(bed.run());
        json.addRow(s.name, cfg, results.back());
        cps.push_back(results.back().cps);
    }

    for (const char *lock : kLockRows) {
        std::vector<std::string> row{lock};
        for (const ExperimentResult &r : results) {
            auto it = r.locks.find(lock);
            double cont = it == r.locks.end()
                              ? 0.0
                              : static_cast<double>(it->second.contentions);
            row.push_back(formatCount(cont * scale));
        }
        table.row(row);
    }
    table.print();

    std::printf("\nThroughput along the feature ladder:\n");
    for (std::size_t i = 0; i < steps.size(); ++i)
        std::printf("  %-10s %s cps\n", steps[i].name, kcps(cps[i]).c_str());

    // Cycle-share table: the paper's section-1 profile ("spin lock
    // consumes 9% of cycles in TCB management and 11% in VFS") was taken
    // on an 8-core production HAProxy at partial load; replicate that
    // setting rather than the saturated 24-core run.
    std::printf("\nSpin-wait cycle share per lock class on an 8-core "
                "baseline at ~50%% load\n(paper section 1: ~9%% TCB + "
                "~11%% VFS):\n");
    auto share = [](const ExperimentResult &r, const char *n) {
        auto it = r.lockCycleShare.find(n);
        return it == r.lockCycleShare.end() ? 0.0 : it->second;
    };
    {
        ExperimentConfig cfg;
        cfg.app = AppKind::kHaproxy;
        cfg.machine.cores = 8;
        cfg.machine.kernel = KernelConfig::base2632();
        args.apply(cfg);
        Testbed bed(cfg);
        // Open-loop partial load, like the production traffic sample.
        bed.load().startOpenLoop(75000.0);
        bed.eventQueue().runUntil(ticksFromSeconds(args.quick ? 0.03
                                                             : 0.06));
        bed.markWindows();
        bed.eventQueue().runUntil(bed.eventQueue().now() +
                                  ticksFromSeconds(measure));
        ExperimentResult r = bed.collect();
        bed.load().stopOpenLoop();
        double vfs = share(r, "dcache_lock") + share(r, "inode_lock");
        double tcb = share(r, "slock") + share(r, "ep.lock") +
                     share(r, "base.lock") + share(r, "ehash.lock") +
                     share(r, "portbind.lock");
        TextTable shares;
        shares.header({"class", "cycle share", "paper"});
        shares.row({"VFS (dcache+inode)", formatPercent(vfs), "~11%"});
        shares.row({"TCB (slock/ep/base/ehash/bind)", formatPercent(tcb),
                    "~9%"});
        shares.row({"avg core utilization", formatPercent(r.avgUtil()),
                    "~45%"});
        shares.print();
        json.addRow("8core-partial-load", cfg, r);
    }
    finishJson(args, json);
    return 0;
}
