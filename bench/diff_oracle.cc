/**
 * @file
 * Differential oracle driver (src/check/differential.hh).
 *
 * Runs the same bounded workload under the baseline 2.6.32 kernel and
 * under Fastsocket and asserts the paper's central split: identical
 * application-level output (connections, responses, bytes), different
 * performance (drain time / lock-wait cycles, from 4 cores up).
 *
 * Usage: diff_oracle [--cores=N] [--conns=N] [--seed=S] [--app=nginx|
 * haproxy|both]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "check/differential.hh"

namespace
{

int
runOne(const fsim::DifferentialWorkload &wl, const char *name)
{
    using namespace fsim;
    std::printf("=== %s, %d cores, %llu connections ===\n", name,
                wl.cores, static_cast<unsigned long long>(wl.maxConns));
    DifferentialOutcome out = runDifferential(wl);
    std::printf("%s\n\n", out.summary().c_str());
    return out.ok() ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;

    DifferentialWorkload wl;
    std::string app = "both";
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--cores=", 8))
            wl.cores = std::atoi(argv[i] + 8);
        else if (!std::strncmp(argv[i], "--conns=", 8))
            wl.maxConns = std::strtoull(argv[i] + 8, nullptr, 10);
        else if (!std::strncmp(argv[i], "--seed=", 7))
            wl.seed = std::strtoull(argv[i] + 7, nullptr, 10);
        else if (!std::strncmp(argv[i], "--app=", 6))
            app = argv[i] + 6;
        else {
            std::fprintf(stderr,
                         "usage: %s [--cores=N] [--conns=N] [--seed=S] "
                         "[--app=nginx|haproxy|both]\n",
                         argv[0]);
            return 2;
        }
    }

    int rc = 0;
    if (app == "nginx" || app == "both") {
        wl.app = AppKind::kNginx;
        rc |= runOne(wl, "nginx");
    }
    if (app == "haproxy" || app == "both") {
        wl.app = AppKind::kHaproxy;
        rc |= runOne(wl, "haproxy");
    }
    if (rc == 0)
        std::printf("differential oracle: PASS\n");
    else
        std::printf("differential oracle: FAIL\n");
    return rc;
}
