/**
 * @file
 * Differential oracle driver (src/check/differential.hh).
 *
 * Runs the same bounded workload under the baseline 2.6.32 kernel and
 * under Fastsocket and asserts the paper's central split: identical
 * application-level output (connections, responses, bytes), different
 * performance (drain time / lock-wait cycles, from 4 cores up).
 *
 * The nginx workload also runs a lossy pass (skip with --nofaults):
 * wire fault fates are pure content hashes, so both kernels face the
 * exact same packet losses and the equality bar holds under faults too.
 * Three conditions make that argument airtight:
 *   - the fault window covers the whole run, so window membership never
 *     depends on when a kernel happens to transmit a packet;
 *   - the client RTO (20ms) sits far above worst-case service latency,
 *     so every retransmission decision is loss-driven, never
 *     speed-driven, and give-up classification compares quantized
 *     retransmission offsets against the timeout, never near-ties;
 *   - the workload is passive-only (nginx). haproxy is excluded: the
 *     proxy's backend connections use kernel-chosen ephemeral ports, so
 *     the two kernels emit differently-identified packets and draw
 *     genuinely different fates.
 *
 * Usage: diff_oracle [--cores=N] [--conns=N] [--seed=S] [--app=nginx|
 * haproxy|both] [--nofaults]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hh"
#include "check/differential.hh"

namespace
{

int
runOne(const fsim::DifferentialWorkload &wl, const char *name)
{
    using namespace fsim;
    std::printf("=== %s, %d cores, %llu connections%s%s ===\n", name,
                wl.cores, static_cast<unsigned long long>(wl.maxConns),
                wl.faultPlan.empty() ? "" : ", faults ",
                wl.faultPlan.c_str());
    DifferentialOutcome out = runDifferential(wl);
    std::printf("%s\n\n", out.summary().c_str());
    return out.ok() ? 0 : 1;
}

/** The lossy pass: whole-run random drops both kernels must absorb
 *  with byte-identical application output (see the file comment for
 *  why the window must cover the entire run). */
fsim::DifferentialWorkload
withLossBurst(fsim::DifferentialWorkload wl)
{
    wl.faultPlan = "loss_burst@0-10:rate=0.25";
    wl.clientTimeoutSec = 0.1;
    wl.clientRtoMsec = 20.0;
    return wl;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;

    // Shared flags (--seed) come from BenchArgs; oracle-specific flags
    // are consumed from its leftover-argument list.
    BenchArgs args = BenchArgs::parse(
        argc, argv, {"--nofaults", "--cores=", "--conns=", "--app="});
    DifferentialWorkload wl;
    std::string app = "both";
    bool faults = !args.extraFlag("--nofaults");
    if (args.seed != 0)
        wl.seed = args.seed;
    std::string v;
    if (args.extraValue("--cores=", v))
        wl.cores = std::atoi(v.c_str());
    if (args.extraValue("--conns=", v))
        wl.maxConns = std::strtoull(v.c_str(), nullptr, 10);
    if (args.extraValue("--app=", v))
        app = v;

    int rc = 0;
    if (app == "nginx" || app == "both") {
        wl.app = AppKind::kNginx;
        rc |= runOne(wl, "nginx");
        if (faults)
            rc |= runOne(withLossBurst(wl), "nginx+loss-burst");
    }
    if (app == "haproxy" || app == "both") {
        wl.app = AppKind::kHaproxy;
        rc |= runOne(wl, "haproxy");
        // No lossy pass: backend-leg ephemeral ports are kernel-chosen,
        // so the two kernels' packets draw different content-hash fates.
    }
    if (rc == 0)
        std::printf("differential oracle: PASS\n");
    else
        std::printf("differential oracle: FAIL\n");
    return rc;
}
