/**
 * @file
 * Property-based scenario fuzzer (src/check/scenario.hh driver).
 *
 * Generates random, valid-by-construction experiment scenarios from a
 * seed and runs each with every invariant armed (periodic conservation
 * checks, quiesce leak checks, and a same-seed determinism double-run).
 * On a violation the scenario is greedily shrunk and written as a
 * reproducer file that --replay accepts — commit such files under
 * tests/corpus/ to turn them into regression tests.
 *
 * Usage:
 *   fuzz_scenarios [--runs=N] [--seed=S] [--out=DIR]   fuzz N scenarios
 *   fuzz_scenarios --replay=FILE                       rerun a reproducer
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "check/scenario.hh"

namespace
{

int
replay(const std::string &path)
{
    using namespace fsim;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Scenario s;
    std::string err;
    if (!parseScenario(text.str(), s, err)) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     err.c_str());
        return 2;
    }
    ScenarioResult r = runScenario(s);
    std::printf("%s: %s\n", path.c_str(), r.summary().c_str());
    return r.ok() ? 0 : 1;
}

bool
writeReproducer(const std::string &path, const fsim::Scenario &s)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << serializeScenario(s);
    return static_cast<bool>(out);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace fsim;

    // Shared flags (--seed) come from BenchArgs; fuzzer-specific flags
    // are consumed from its leftover-argument list.
    BenchArgs args = BenchArgs::parse(
        argc, argv, {"--runs=", "--out=", "--replay="});
    int runs = 50;
    std::uint64_t seed = args.seed != 0 ? args.seed : 1;
    std::string outDir = ".";
    std::string replayPath;
    std::string v;
    if (args.extraValue("--runs=", v))
        runs = std::atoi(v.c_str());
    if (args.extraValue("--out=", v))
        outDir = v;
    if (args.extraValue("--replay=", v))
        replayPath = v;

    if (!replayPath.empty())
        return replay(replayPath);

    std::printf("fuzzing %d scenarios from seed %llu "
                "(invariants: periodic + quiesce + determinism)\n",
                runs, static_cast<unsigned long long>(seed));

    Rng rng(seed);
    int failures = 0;
    for (int i = 0; i < runs; ++i) {
        Scenario s = randomScenario(rng);
        ScenarioResult r = runScenario(s);
        char fleet[32] = "";
        if (s.fleetMachines > 0)
            std::snprintf(fleet, sizeof(fleet), " fleet=%dx%d/%s",
                          s.fleetMachines, s.fleetBalancers,
                          s.fleetPolicy.c_str());
        std::printf("  [%3d/%d] cores=%d app=%s kernel=%-10s "
                    "conns=%llu loss=%.3f%s : %s\n",
                    i + 1, runs, s.cores,
                    s.app == AppKind::kHaproxy ? "haproxy" : "nginx",
                    s.kernel.c_str(),
                    static_cast<unsigned long long>(s.maxConns),
                    s.lossRate, fleet, r.summary().c_str());
        std::fflush(stdout);
        if (r.ok())
            continue;

        ++failures;
        std::printf("  shrinking...\n");
        Scenario small = shrinkScenario(
            s, [](const Scenario &c) { return !runScenario(c).ok(); },
            /*budget=*/40);
        std::string path = outDir + "/fuzz_repro_" +
                           std::to_string(seed) + "_" +
                           std::to_string(i) + ".scn";
        if (writeReproducer(path, small))
            std::printf("  reproducer written: %s\n", path.c_str());
        else
            std::fprintf(stderr, "  error: could not write %s\n",
                         path.c_str());
        std::printf("  shrunk scenario:\n%s",
                    serializeScenario(small).c_str());
    }

    std::printf("%d/%d scenarios ok, %d violation(s)\n", runs - failures,
                runs, failures);
    return failures ? 1 : 0;
}
