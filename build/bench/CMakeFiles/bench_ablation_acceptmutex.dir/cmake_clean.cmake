file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_acceptmutex.dir/bench_ablation_acceptmutex.cc.o"
  "CMakeFiles/bench_ablation_acceptmutex.dir/bench_ablation_acceptmutex.cc.o.d"
  "bench_ablation_acceptmutex"
  "bench_ablation_acceptmutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_acceptmutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
