# Empty compiler generated dependencies file for bench_ablation_acceptmutex.
# This may be replaced when dependencies are built.
