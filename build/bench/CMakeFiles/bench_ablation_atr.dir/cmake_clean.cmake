file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_atr.dir/bench_ablation_atr.cc.o"
  "CMakeFiles/bench_ablation_atr.dir/bench_ablation_atr.cc.o.d"
  "bench_ablation_atr"
  "bench_ablation_atr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_atr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
