# Empty compiler generated dependencies file for bench_ablation_atr.
# This may be replaced when dependencies are built.
