file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backlog.dir/bench_ablation_backlog.cc.o"
  "CMakeFiles/bench_ablation_backlog.dir/bench_ablation_backlog.cc.o.d"
  "bench_ablation_backlog"
  "bench_ablation_backlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
