# Empty dependencies file for bench_ablation_backlog.
# This may be replaced when dependencies are built.
