file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ehash.dir/bench_ablation_ehash.cc.o"
  "CMakeFiles/bench_ablation_ehash.dir/bench_ablation_ehash.cc.o.d"
  "bench_ablation_ehash"
  "bench_ablation_ehash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ehash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
