# Empty compiler generated dependencies file for bench_ablation_ehash.
# This may be replaced when dependencies are built.
