file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_numa.dir/bench_ablation_numa.cc.o"
  "CMakeFiles/bench_ablation_numa.dir/bench_ablation_numa.cc.o.d"
  "bench_ablation_numa"
  "bench_ablation_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
