# Empty dependencies file for bench_ablation_numa.
# This may be replaced when dependencies are built.
