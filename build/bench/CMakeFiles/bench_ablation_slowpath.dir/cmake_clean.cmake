file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slowpath.dir/bench_ablation_slowpath.cc.o"
  "CMakeFiles/bench_ablation_slowpath.dir/bench_ablation_slowpath.cc.o.d"
  "bench_ablation_slowpath"
  "bench_ablation_slowpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slowpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
