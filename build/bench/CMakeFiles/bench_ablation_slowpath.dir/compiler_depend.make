# Empty compiler generated dependencies file for bench_ablation_slowpath.
# This may be replaced when dependencies are built.
