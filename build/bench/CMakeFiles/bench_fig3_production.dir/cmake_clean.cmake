file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_production.dir/bench_fig3_production.cc.o"
  "CMakeFiles/bench_fig3_production.dir/bench_fig3_production.cc.o.d"
  "bench_fig3_production"
  "bench_fig3_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
