file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_nginx.dir/bench_fig4a_nginx.cc.o"
  "CMakeFiles/bench_fig4a_nginx.dir/bench_fig4a_nginx.cc.o.d"
  "bench_fig4a_nginx"
  "bench_fig4a_nginx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_nginx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
