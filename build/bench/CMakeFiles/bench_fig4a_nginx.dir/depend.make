# Empty dependencies file for bench_fig4a_nginx.
# This may be replaced when dependencies are built.
