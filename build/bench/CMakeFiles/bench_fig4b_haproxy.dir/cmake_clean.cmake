file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_haproxy.dir/bench_fig4b_haproxy.cc.o"
  "CMakeFiles/bench_fig4b_haproxy.dir/bench_fig4b_haproxy.cc.o.d"
  "bench_fig4b_haproxy"
  "bench_fig4b_haproxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_haproxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
