# Empty dependencies file for bench_fig4b_haproxy.
# This may be replaced when dependencies are built.
