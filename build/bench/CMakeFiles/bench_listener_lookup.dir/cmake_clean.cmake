file(REMOVE_RECURSE
  "CMakeFiles/bench_listener_lookup.dir/bench_listener_lookup.cc.o"
  "CMakeFiles/bench_listener_lookup.dir/bench_listener_lookup.cc.o.d"
  "bench_listener_lookup"
  "bench_listener_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listener_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
