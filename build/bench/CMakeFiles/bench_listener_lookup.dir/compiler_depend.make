# Empty compiler generated dependencies file for bench_listener_lookup.
# This may be replaced when dependencies are built.
