file(REMOVE_RECURSE
  "CMakeFiles/bench_longlived.dir/bench_longlived.cc.o"
  "CMakeFiles/bench_longlived.dir/bench_longlived.cc.o.d"
  "bench_longlived"
  "bench_longlived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_longlived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
