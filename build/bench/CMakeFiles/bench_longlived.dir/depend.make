# Empty dependencies file for bench_longlived.
# This may be replaced when dependencies are built.
