file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_structures.dir/bench_micro_structures.cc.o"
  "CMakeFiles/bench_micro_structures.dir/bench_micro_structures.cc.o.d"
  "bench_micro_structures"
  "bench_micro_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
