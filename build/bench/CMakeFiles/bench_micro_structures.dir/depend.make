# Empty dependencies file for bench_micro_structures.
# This may be replaced when dependencies are built.
