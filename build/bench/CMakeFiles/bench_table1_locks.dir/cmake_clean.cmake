file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_locks.dir/bench_table1_locks.cc.o"
  "CMakeFiles/bench_table1_locks.dir/bench_table1_locks.cc.o.d"
  "bench_table1_locks"
  "bench_table1_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
