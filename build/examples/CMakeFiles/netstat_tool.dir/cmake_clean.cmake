file(REMOVE_RECURSE
  "CMakeFiles/netstat_tool.dir/netstat_tool.cpp.o"
  "CMakeFiles/netstat_tool.dir/netstat_tool.cpp.o.d"
  "netstat_tool"
  "netstat_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netstat_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
