# Empty dependencies file for netstat_tool.
# This may be replaced when dependencies are built.
