file(REMOVE_RECURSE
  "CMakeFiles/production_capacity.dir/production_capacity.cpp.o"
  "CMakeFiles/production_capacity.dir/production_capacity.cpp.o.d"
  "production_capacity"
  "production_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
