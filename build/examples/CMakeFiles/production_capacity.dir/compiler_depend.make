# Empty compiler generated dependencies file for production_capacity.
# This may be replaced when dependencies are built.
