
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/proxy_locality.cpp" "examples/CMakeFiles/proxy_locality.dir/proxy_locality.cpp.o" "gcc" "examples/CMakeFiles/proxy_locality.dir/proxy_locality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/fsim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/fsim_app.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/fsim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/fastsocket/CMakeFiles/fsim_fastsocket.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/fsim_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/fsim_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/epollsim/CMakeFiles/fsim_epollsim.dir/DependInfo.cmake"
  "/root/repo/build/src/timerwheel/CMakeFiles/fsim_timerwheel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/fsim_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
