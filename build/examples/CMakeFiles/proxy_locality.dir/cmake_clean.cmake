file(REMOVE_RECURSE
  "CMakeFiles/proxy_locality.dir/proxy_locality.cpp.o"
  "CMakeFiles/proxy_locality.dir/proxy_locality.cpp.o.d"
  "proxy_locality"
  "proxy_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
