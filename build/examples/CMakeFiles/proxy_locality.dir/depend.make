# Empty dependencies file for proxy_locality.
# This may be replaced when dependencies are built.
