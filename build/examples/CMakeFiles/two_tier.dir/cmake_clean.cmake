file(REMOVE_RECURSE
  "CMakeFiles/two_tier.dir/two_tier.cpp.o"
  "CMakeFiles/two_tier.dir/two_tier.cpp.o.d"
  "two_tier"
  "two_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
