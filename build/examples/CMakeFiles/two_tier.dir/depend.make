# Empty dependencies file for two_tier.
# This may be replaced when dependencies are built.
