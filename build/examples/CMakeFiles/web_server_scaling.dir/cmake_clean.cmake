file(REMOVE_RECURSE
  "CMakeFiles/web_server_scaling.dir/web_server_scaling.cpp.o"
  "CMakeFiles/web_server_scaling.dir/web_server_scaling.cpp.o.d"
  "web_server_scaling"
  "web_server_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
