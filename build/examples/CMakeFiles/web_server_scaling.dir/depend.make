# Empty dependencies file for web_server_scaling.
# This may be replaced when dependencies are built.
