# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("stats")
subdirs("sync")
subdirs("cpu")
subdirs("net")
subdirs("timerwheel")
subdirs("vfs")
subdirs("epollsim")
subdirs("tcp")
subdirs("fastsocket")
subdirs("kernel")
subdirs("app")
subdirs("harness")
