file(REMOVE_RECURSE
  "CMakeFiles/fsim_app.dir/app_base.cc.o"
  "CMakeFiles/fsim_app.dir/app_base.cc.o.d"
  "CMakeFiles/fsim_app.dir/backend.cc.o"
  "CMakeFiles/fsim_app.dir/backend.cc.o.d"
  "CMakeFiles/fsim_app.dir/http_load.cc.o"
  "CMakeFiles/fsim_app.dir/http_load.cc.o.d"
  "CMakeFiles/fsim_app.dir/machine.cc.o"
  "CMakeFiles/fsim_app.dir/machine.cc.o.d"
  "CMakeFiles/fsim_app.dir/proxy.cc.o"
  "CMakeFiles/fsim_app.dir/proxy.cc.o.d"
  "CMakeFiles/fsim_app.dir/web_server.cc.o"
  "CMakeFiles/fsim_app.dir/web_server.cc.o.d"
  "libfsim_app.a"
  "libfsim_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
