file(REMOVE_RECURSE
  "libfsim_app.a"
)
