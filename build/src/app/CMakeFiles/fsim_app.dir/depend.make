# Empty dependencies file for fsim_app.
# This may be replaced when dependencies are built.
