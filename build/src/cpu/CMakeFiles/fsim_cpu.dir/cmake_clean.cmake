file(REMOVE_RECURSE
  "CMakeFiles/fsim_cpu.dir/cache_model.cc.o"
  "CMakeFiles/fsim_cpu.dir/cache_model.cc.o.d"
  "CMakeFiles/fsim_cpu.dir/core.cc.o"
  "CMakeFiles/fsim_cpu.dir/core.cc.o.d"
  "libfsim_cpu.a"
  "libfsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
