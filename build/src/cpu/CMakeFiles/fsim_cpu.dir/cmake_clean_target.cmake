file(REMOVE_RECURSE
  "libfsim_cpu.a"
)
