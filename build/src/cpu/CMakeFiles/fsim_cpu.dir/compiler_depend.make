# Empty compiler generated dependencies file for fsim_cpu.
# This may be replaced when dependencies are built.
