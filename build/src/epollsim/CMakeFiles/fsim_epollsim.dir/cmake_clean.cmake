file(REMOVE_RECURSE
  "CMakeFiles/fsim_epollsim.dir/epoll.cc.o"
  "CMakeFiles/fsim_epollsim.dir/epoll.cc.o.d"
  "libfsim_epollsim.a"
  "libfsim_epollsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_epollsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
