file(REMOVE_RECURSE
  "libfsim_epollsim.a"
)
