# Empty compiler generated dependencies file for fsim_epollsim.
# This may be replaced when dependencies are built.
