file(REMOVE_RECURSE
  "CMakeFiles/fsim_fastsocket.dir/local_tables.cc.o"
  "CMakeFiles/fsim_fastsocket.dir/local_tables.cc.o.d"
  "CMakeFiles/fsim_fastsocket.dir/rfd.cc.o"
  "CMakeFiles/fsim_fastsocket.dir/rfd.cc.o.d"
  "libfsim_fastsocket.a"
  "libfsim_fastsocket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_fastsocket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
