file(REMOVE_RECURSE
  "libfsim_fastsocket.a"
)
