# Empty compiler generated dependencies file for fsim_fastsocket.
# This may be replaced when dependencies are built.
