file(REMOVE_RECURSE
  "CMakeFiles/fsim_harness.dir/experiment.cc.o"
  "CMakeFiles/fsim_harness.dir/experiment.cc.o.d"
  "libfsim_harness.a"
  "libfsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
