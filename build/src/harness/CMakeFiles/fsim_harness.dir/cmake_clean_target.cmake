file(REMOVE_RECURSE
  "libfsim_harness.a"
)
