# Empty compiler generated dependencies file for fsim_harness.
# This may be replaced when dependencies are built.
