file(REMOVE_RECURSE
  "CMakeFiles/fsim_kernel.dir/kernel_stack.cc.o"
  "CMakeFiles/fsim_kernel.dir/kernel_stack.cc.o.d"
  "CMakeFiles/fsim_kernel.dir/timer_base.cc.o"
  "CMakeFiles/fsim_kernel.dir/timer_base.cc.o.d"
  "libfsim_kernel.a"
  "libfsim_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
