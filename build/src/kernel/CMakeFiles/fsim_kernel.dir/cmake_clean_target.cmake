file(REMOVE_RECURSE
  "libfsim_kernel.a"
)
