# Empty compiler generated dependencies file for fsim_kernel.
# This may be replaced when dependencies are built.
