
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/nic.cc" "src/net/CMakeFiles/fsim_net.dir/nic.cc.o" "gcc" "src/net/CMakeFiles/fsim_net.dir/nic.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/fsim_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/fsim_net.dir/packet.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/net/CMakeFiles/fsim_net.dir/wire.cc.o" "gcc" "src/net/CMakeFiles/fsim_net.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
