file(REMOVE_RECURSE
  "CMakeFiles/fsim_net.dir/nic.cc.o"
  "CMakeFiles/fsim_net.dir/nic.cc.o.d"
  "CMakeFiles/fsim_net.dir/packet.cc.o"
  "CMakeFiles/fsim_net.dir/packet.cc.o.d"
  "CMakeFiles/fsim_net.dir/wire.cc.o"
  "CMakeFiles/fsim_net.dir/wire.cc.o.d"
  "libfsim_net.a"
  "libfsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
