file(REMOVE_RECURSE
  "libfsim_net.a"
)
