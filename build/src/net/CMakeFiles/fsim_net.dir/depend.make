# Empty dependencies file for fsim_net.
# This may be replaced when dependencies are built.
