file(REMOVE_RECURSE
  "CMakeFiles/fsim_sim.dir/event_queue.cc.o"
  "CMakeFiles/fsim_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/fsim_sim.dir/logging.cc.o"
  "CMakeFiles/fsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/fsim_sim.dir/rng.cc.o"
  "CMakeFiles/fsim_sim.dir/rng.cc.o.d"
  "libfsim_sim.a"
  "libfsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
