file(REMOVE_RECURSE
  "libfsim_sim.a"
)
