# Empty compiler generated dependencies file for fsim_sim.
# This may be replaced when dependencies are built.
