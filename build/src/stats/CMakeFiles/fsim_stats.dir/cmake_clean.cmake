file(REMOVE_RECURSE
  "CMakeFiles/fsim_stats.dir/stats.cc.o"
  "CMakeFiles/fsim_stats.dir/stats.cc.o.d"
  "CMakeFiles/fsim_stats.dir/table.cc.o"
  "CMakeFiles/fsim_stats.dir/table.cc.o.d"
  "libfsim_stats.a"
  "libfsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
