file(REMOVE_RECURSE
  "libfsim_stats.a"
)
