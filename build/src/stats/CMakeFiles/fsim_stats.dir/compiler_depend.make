# Empty compiler generated dependencies file for fsim_stats.
# This may be replaced when dependencies are built.
