
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/lock_registry.cc" "src/sync/CMakeFiles/fsim_sync.dir/lock_registry.cc.o" "gcc" "src/sync/CMakeFiles/fsim_sync.dir/lock_registry.cc.o.d"
  "/root/repo/src/sync/spinlock.cc" "src/sync/CMakeFiles/fsim_sync.dir/spinlock.cc.o" "gcc" "src/sync/CMakeFiles/fsim_sync.dir/spinlock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/fsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
