file(REMOVE_RECURSE
  "CMakeFiles/fsim_sync.dir/lock_registry.cc.o"
  "CMakeFiles/fsim_sync.dir/lock_registry.cc.o.d"
  "CMakeFiles/fsim_sync.dir/spinlock.cc.o"
  "CMakeFiles/fsim_sync.dir/spinlock.cc.o.d"
  "libfsim_sync.a"
  "libfsim_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
