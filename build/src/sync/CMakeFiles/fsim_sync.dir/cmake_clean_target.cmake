file(REMOVE_RECURSE
  "libfsim_sync.a"
)
