# Empty compiler generated dependencies file for fsim_sync.
# This may be replaced when dependencies are built.
