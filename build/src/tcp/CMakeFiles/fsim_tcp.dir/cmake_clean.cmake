file(REMOVE_RECURSE
  "CMakeFiles/fsim_tcp.dir/established_table.cc.o"
  "CMakeFiles/fsim_tcp.dir/established_table.cc.o.d"
  "CMakeFiles/fsim_tcp.dir/listen_table.cc.o"
  "CMakeFiles/fsim_tcp.dir/listen_table.cc.o.d"
  "CMakeFiles/fsim_tcp.dir/port_alloc.cc.o"
  "CMakeFiles/fsim_tcp.dir/port_alloc.cc.o.d"
  "CMakeFiles/fsim_tcp.dir/socket.cc.o"
  "CMakeFiles/fsim_tcp.dir/socket.cc.o.d"
  "libfsim_tcp.a"
  "libfsim_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
