file(REMOVE_RECURSE
  "libfsim_tcp.a"
)
