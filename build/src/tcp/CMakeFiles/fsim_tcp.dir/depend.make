# Empty dependencies file for fsim_tcp.
# This may be replaced when dependencies are built.
