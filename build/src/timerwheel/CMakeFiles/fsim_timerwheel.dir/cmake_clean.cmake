file(REMOVE_RECURSE
  "CMakeFiles/fsim_timerwheel.dir/timer_wheel.cc.o"
  "CMakeFiles/fsim_timerwheel.dir/timer_wheel.cc.o.d"
  "libfsim_timerwheel.a"
  "libfsim_timerwheel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_timerwheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
