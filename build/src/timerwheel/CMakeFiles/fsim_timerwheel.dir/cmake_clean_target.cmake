file(REMOVE_RECURSE
  "libfsim_timerwheel.a"
)
