# Empty compiler generated dependencies file for fsim_timerwheel.
# This may be replaced when dependencies are built.
