file(REMOVE_RECURSE
  "CMakeFiles/fsim_vfs.dir/fd_table.cc.o"
  "CMakeFiles/fsim_vfs.dir/fd_table.cc.o.d"
  "CMakeFiles/fsim_vfs.dir/vfs.cc.o"
  "CMakeFiles/fsim_vfs.dir/vfs.cc.o.d"
  "libfsim_vfs.a"
  "libfsim_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsim_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
