file(REMOVE_RECURSE
  "libfsim_vfs.a"
)
