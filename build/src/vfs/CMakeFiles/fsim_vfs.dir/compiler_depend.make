# Empty compiler generated dependencies file for fsim_vfs.
# This may be replaced when dependencies are built.
