file(REMOVE_RECURSE
  "CMakeFiles/test_backend.dir/test_backend.cc.o"
  "CMakeFiles/test_backend.dir/test_backend.cc.o.d"
  "test_backend"
  "test_backend.pdb"
  "test_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
