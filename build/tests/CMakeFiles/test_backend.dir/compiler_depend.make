# Empty compiler generated dependencies file for test_backend.
# This may be replaced when dependencies are built.
