file(REMOVE_RECURSE
  "CMakeFiles/test_cache_model.dir/test_cache_model.cc.o"
  "CMakeFiles/test_cache_model.dir/test_cache_model.cc.o.d"
  "test_cache_model"
  "test_cache_model.pdb"
  "test_cache_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
