# Empty dependencies file for test_cache_model.
# This may be replaced when dependencies are built.
