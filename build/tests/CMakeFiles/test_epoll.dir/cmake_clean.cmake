file(REMOVE_RECURSE
  "CMakeFiles/test_epoll.dir/test_epoll.cc.o"
  "CMakeFiles/test_epoll.dir/test_epoll.cc.o.d"
  "test_epoll"
  "test_epoll.pdb"
  "test_epoll[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
