# Empty compiler generated dependencies file for test_epoll.
# This may be replaced when dependencies are built.
