file(REMOVE_RECURSE
  "CMakeFiles/test_established_table.dir/test_established_table.cc.o"
  "CMakeFiles/test_established_table.dir/test_established_table.cc.o.d"
  "test_established_table"
  "test_established_table.pdb"
  "test_established_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_established_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
