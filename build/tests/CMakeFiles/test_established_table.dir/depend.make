# Empty dependencies file for test_established_table.
# This may be replaced when dependencies are built.
