file(REMOVE_RECURSE
  "CMakeFiles/test_event_queue.dir/test_event_queue.cc.o"
  "CMakeFiles/test_event_queue.dir/test_event_queue.cc.o.d"
  "test_event_queue"
  "test_event_queue.pdb"
  "test_event_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
