file(REMOVE_RECURSE
  "CMakeFiles/test_fd_table.dir/test_fd_table.cc.o"
  "CMakeFiles/test_fd_table.dir/test_fd_table.cc.o.d"
  "test_fd_table"
  "test_fd_table.pdb"
  "test_fd_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fd_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
