# Empty dependencies file for test_fd_table.
# This may be replaced when dependencies are built.
