file(REMOVE_RECURSE
  "CMakeFiles/test_http_load.dir/test_http_load.cc.o"
  "CMakeFiles/test_http_load.dir/test_http_load.cc.o.d"
  "test_http_load"
  "test_http_load.pdb"
  "test_http_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
