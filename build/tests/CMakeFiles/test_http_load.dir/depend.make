# Empty dependencies file for test_http_load.
# This may be replaced when dependencies are built.
