file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_stack.dir/test_kernel_stack.cc.o"
  "CMakeFiles/test_kernel_stack.dir/test_kernel_stack.cc.o.d"
  "test_kernel_stack"
  "test_kernel_stack.pdb"
  "test_kernel_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
