# Empty dependencies file for test_kernel_stack.
# This may be replaced when dependencies are built.
