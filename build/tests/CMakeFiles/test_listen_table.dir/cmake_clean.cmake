file(REMOVE_RECURSE
  "CMakeFiles/test_listen_table.dir/test_listen_table.cc.o"
  "CMakeFiles/test_listen_table.dir/test_listen_table.cc.o.d"
  "test_listen_table"
  "test_listen_table.pdb"
  "test_listen_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_listen_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
