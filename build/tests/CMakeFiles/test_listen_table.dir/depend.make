# Empty dependencies file for test_listen_table.
# This may be replaced when dependencies are built.
