file(REMOVE_RECURSE
  "CMakeFiles/test_port_alloc.dir/test_port_alloc.cc.o"
  "CMakeFiles/test_port_alloc.dir/test_port_alloc.cc.o.d"
  "test_port_alloc"
  "test_port_alloc.pdb"
  "test_port_alloc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_port_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
