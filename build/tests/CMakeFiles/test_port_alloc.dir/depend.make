# Empty dependencies file for test_port_alloc.
# This may be replaced when dependencies are built.
