file(REMOVE_RECURSE
  "CMakeFiles/test_rfd.dir/test_rfd.cc.o"
  "CMakeFiles/test_rfd.dir/test_rfd.cc.o.d"
  "test_rfd"
  "test_rfd.pdb"
  "test_rfd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
