# Empty dependencies file for test_rfd.
# This may be replaced when dependencies are built.
