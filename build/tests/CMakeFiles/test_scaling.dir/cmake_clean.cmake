file(REMOVE_RECURSE
  "CMakeFiles/test_scaling.dir/test_scaling.cc.o"
  "CMakeFiles/test_scaling.dir/test_scaling.cc.o.d"
  "test_scaling"
  "test_scaling.pdb"
  "test_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
