file(REMOVE_RECURSE
  "CMakeFiles/test_spinlock.dir/test_spinlock.cc.o"
  "CMakeFiles/test_spinlock.dir/test_spinlock.cc.o.d"
  "test_spinlock"
  "test_spinlock.pdb"
  "test_spinlock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spinlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
