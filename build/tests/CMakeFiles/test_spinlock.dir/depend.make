# Empty dependencies file for test_spinlock.
# This may be replaced when dependencies are built.
