file(REMOVE_RECURSE
  "CMakeFiles/test_timer_base.dir/test_timer_base.cc.o"
  "CMakeFiles/test_timer_base.dir/test_timer_base.cc.o.d"
  "test_timer_base"
  "test_timer_base.pdb"
  "test_timer_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
