file(REMOVE_RECURSE
  "CMakeFiles/test_timer_wheel.dir/test_timer_wheel.cc.o"
  "CMakeFiles/test_timer_wheel.dir/test_timer_wheel.cc.o.d"
  "test_timer_wheel"
  "test_timer_wheel.pdb"
  "test_timer_wheel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_wheel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
