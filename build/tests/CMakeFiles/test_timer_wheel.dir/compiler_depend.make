# Empty compiler generated dependencies file for test_timer_wheel.
# This may be replaced when dependencies are built.
