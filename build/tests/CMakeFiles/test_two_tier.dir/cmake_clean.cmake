file(REMOVE_RECURSE
  "CMakeFiles/test_two_tier.dir/test_two_tier.cc.o"
  "CMakeFiles/test_two_tier.dir/test_two_tier.cc.o.d"
  "test_two_tier"
  "test_two_tier.pdb"
  "test_two_tier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_two_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
