# Empty dependencies file for test_two_tier.
# This may be replaced when dependencies are built.
