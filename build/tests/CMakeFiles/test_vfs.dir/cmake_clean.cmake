file(REMOVE_RECURSE
  "CMakeFiles/test_vfs.dir/test_vfs.cc.o"
  "CMakeFiles/test_vfs.dir/test_vfs.cc.o.d"
  "test_vfs"
  "test_vfs.pdb"
  "test_vfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
