# Empty dependencies file for test_vfs.
# This may be replaced when dependencies are built.
