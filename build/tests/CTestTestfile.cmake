# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_cache_model[1]_include.cmake")
include("/root/repo/build/tests/test_spinlock[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_timer_wheel[1]_include.cmake")
include("/root/repo/build/tests/test_timer_base[1]_include.cmake")
include("/root/repo/build/tests/test_fd_table[1]_include.cmake")
include("/root/repo/build/tests/test_vfs[1]_include.cmake")
include("/root/repo/build/tests/test_epoll[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_listen_table[1]_include.cmake")
include("/root/repo/build/tests/test_established_table[1]_include.cmake")
include("/root/repo/build/tests/test_port_alloc[1]_include.cmake")
include("/root/repo/build/tests/test_rfd[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_stack[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_http_load[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_two_tier[1]_include.cmake")
