/**
 * @file
 * Example: the compatibility story — system tooling keeps working.
 *
 * Megapipe-style designs break netstat and lsof because they bypass VFS;
 * Fastsocket keeps skeletal dentry/inode state precisely so /proc-based
 * tools stay functional (paper 3.4 and section 5). This example freezes
 * a loaded Fastsocket machine mid-run and prints what the standard tools
 * would show: a netstat connection table, a per-state census, and the
 * VFS socket-file count that lsof would enumerate.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "harness/experiment.hh"

int
main()
{
    using namespace fsim;

    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 4;
    cfg.machine.kernel = KernelConfig::fastsocket();
    cfg.concurrencyPerCore = 60;

    Testbed bed(cfg);
    bed.startLoad();
    bed.eventQueue().runUntil(ticksFromSeconds(0.02));

    KernelStack &k = bed.machine().kernel();

    std::printf("$ netstat -tn   (first 12 rows of %zu)\n",
                k.liveSockets());
    auto rows = k.netstat();
    std::sort(rows.begin(), rows.end());
    for (std::size_t i = 0; i < rows.size() && i < 12; ++i)
        std::printf("  %s\n", rows[i].c_str());

    std::map<std::string, int> census;
    for (const Socket *s : k.allSockets())
        ++census[tcpStateName(s->state)];
    std::printf("\nConnection-state census:\n");
    for (const auto &kv : census)
        std::printf("  %-12s %d\n", kv.first.c_str(), kv.second);

    std::printf("\n$ lsof -i   would enumerate %llu socket files "
                "(all allocated via the VFS fast path,\nyet still "
                "registered for /proc — that is the paper's "
                "compatibility compromise).\n",
                static_cast<unsigned long long>(k.vfs().liveFiles()));

    std::size_t fast = 0;
    for (const SocketFile *f : k.vfs().procWalk())
        fast += f->fastPath ? 1 : 0;
    std::printf("fast-path socket files: %zu of %llu\n", fast,
                static_cast<unsigned long long>(k.vfs().liveFiles()));
    return 0;
}
