/**
 * @file
 * Example: the production-operations view (paper section 4.2.1).
 *
 * Replays a rush-hour ramp (open-loop load) against an 8-core HAProxy
 * machine and reports what an SRE watches: per-core utilization spread
 * and the effective capacity implied by the hottest core and the SLA
 * threshold. Run with "base" or "fast" to feel the difference that made
 * Sina WeiBo deploy Fastsocket fleet-wide.
 *
 * Usage: production_capacity [base|fast]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;

    bool fast = !(argc > 1 && !std::strcmp(argv[1], "base"));
    const double sla_util = 0.75;   // paper: keep cores under 75%

    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 8;
    cfg.machine.kernel =
        fast ? KernelConfig::fastsocket() : KernelConfig::base2632();
    cfg.backendCount = 8;

    Testbed bed(cfg);
    std::printf("8-core HAProxy, %s kernel, SLA: every core under %.0f%%\n",
                fast ? "Fastsocket" : "base 2.6.32", sla_util * 100);
    std::printf("%-10s %-10s %-10s %-10s %s\n", "load(cps)", "avg util",
                "min util", "max util", "SLA headroom");

    const double steps[] = {10000, 20000, 30000, 40000, 50000};
    bed.load().startOpenLoop(steps[0]);
    for (double rate : steps) {
        bed.load().setOpenLoopRate(rate);
        bed.eventQueue().runUntil(bed.eventQueue().now() +
                                  ticksFromSeconds(0.03));
        bed.machine().markWindow();
        bed.eventQueue().runUntil(bed.eventQueue().now() +
                                  ticksFromSeconds(0.08));
        auto util = bed.machine().utilizationSinceMark();
        double avg = 0, lo = 1e9, hi = 0;
        for (double u : util) {
            avg += u;
            lo = std::min(lo, u);
            hi = std::max(hi, u);
        }
        avg /= util.size();
        std::printf("%-10.0f %-10.1f %-10.1f %-10.1f %+.1f%%\n", rate,
                    avg * 100, lo * 100, hi * 100,
                    (sla_util - hi) * 100);
    }
    bed.load().stopOpenLoop();

    std::printf("\nEffective capacity is set by the hottest core (the "
                "paper's 1/maxUtil rule): a balanced machine\nserves "
                "more traffic before any single core violates the "
                "latency SLA.\n");
    return 0;
}
