/**
 * @file
 * Example: connection locality on a proxy, inspected socket by socket.
 *
 * Runs an HAProxy-style load balancer on 8 cores under three steering
 * setups (RSS only, RFD software steering, RFD + FDir Perfect-Filtering)
 * and then walks the live socket census — the same information a
 * netstat/lsof user would see, which works because Fastsocket keeps the
 * /proc-compatible skeletal VFS state (paper 3.4).
 */

#include <cstdio>
#include <map>

#include "harness/experiment.hh"

namespace
{

void
runSetup(const char *name, bool rfd, bool perfect)
{
    using namespace fsim;

    ExperimentConfig cfg;
    cfg.app = AppKind::kHaproxy;
    cfg.machine.cores = 8;
    KernelConfig kc = KernelConfig::base2632();
    kc.fastVfs = true;
    kc.localListen = true;
    kc.rfd = rfd;
    kc.localEstablished = rfd;
    cfg.machine.kernel = kc;
    if (perfect) {
        cfg.machine.nic.fdirPerfect = true;
        cfg.machine.nic.perfectPortMask = ReceiveFlowDeliver::hashMask(8);
    }
    cfg.concurrencyPerCore = 150;

    Testbed bed(cfg);
    bed.startLoad();
    bed.eventQueue().runUntil(ticksFromSeconds(0.03));
    bed.markWindows();
    bed.eventQueue().runUntil(bed.eventQueue().now() +
                              ticksFromSeconds(0.05));
    ExperimentResult r = bed.collect();

    // Socket census: how many cores touched each live connection?
    std::map<int, int> touched;
    std::map<std::string, int> states;
    for (const Socket *s : bed.machine().kernel().allSockets()) {
        if (s->kind != SockKind::kConnection)
            continue;
        ++touched[s->touchedCount()];
        ++states[tcpStateName(s->state)];
    }

    std::printf("%s\n", name);
    std::printf("  throughput %.0f conns/s, NIC-local active packets "
                "%.1f%%, software-steered %llu\n",
                r.cps, r.localPktProportion * 100.0,
                static_cast<unsigned long long>(r.steeredPackets));
    std::printf("  live connection sockets by #cores that touched them: ");
    for (const auto &kv : touched)
        std::printf("[%d core%s: %d] ", kv.first,
                    kv.first == 1 ? "" : "s", kv.second);
    std::printf("\n  states: ");
    for (const auto &kv : states)
        std::printf("%s=%d ", kv.first.c_str(), kv.second);
    std::printf("\n\n");
}

} // anonymous namespace

int
main()
{
    std::printf("HAProxy on 8 cores: passive client connections plus "
                "active backend connections.\n\n");
    runSetup("RSS only (no RFD): active replies land on random cores",
             false, false);
    runSetup("RFD, software steering: every packet processed on the "
             "owning core", true, false);
    runSetup("RFD + FDir Perfect-Filtering: the NIC itself delivers "
             "100% locally", true, true);
    std::printf("With RFD every connection socket is single-core "
                "(complete connection locality, paper 3.3);\nwithout it, "
                "active connections are touched by two or more cores and "
                "bounce cache lines.\n");
    return 0;
}
