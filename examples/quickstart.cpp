/**
 * @file
 * Quickstart: build a simulated server machine, load it with short-lived
 * HTTP connections, and compare the stock kernel against Fastsocket.
 *
 * Usage: quickstart [cores]            (default 8)
 *
 * This is the 60-second tour of the library:
 *  - ExperimentConfig selects the application model, machine size and
 *    kernel flavor;
 *  - runExperiment() builds the testbed (cores + NIC + kernel + app +
 *    client fleet), runs warmup and a measurement window, and returns
 *    every metric the paper's evaluation uses.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;

    int cores = argc > 1 ? std::atoi(argv[1]) : 8;
    if (cores < 1 || cores > 64) {
        std::fprintf(stderr, "usage: %s [cores 1..64]\n", argv[0]);
        return 1;
    }

    std::printf("Simulating an nginx-style web server on %d cores under "
                "a short-lived-connection flood...\n\n", cores);

    struct
    {
        const char *name;
        KernelConfig kernel;
    } kernels[] = {
        {"base Linux 2.6.32", KernelConfig::base2632()},
        {"Linux 3.13 + SO_REUSEPORT", KernelConfig::linux313()},
        {"Fastsocket (V+L+R+E)", KernelConfig::fastsocket()},
    };

    for (const auto &k : kernels) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = cores;
        cfg.machine.kernel = k.kernel;
        cfg.concurrencyPerCore = 200;
        cfg.warmupSec = 0.03;
        cfg.measureSec = 0.08;

        ExperimentResult r = runExperiment(cfg);

        std::uint64_t contentions = 0;
        for (const auto &kv : r.locks)
            contentions += kv.second.contentions;

        std::printf("%-28s %8.0f conns/s   L3 miss %5.2f%%   "
                    "max core util %5.1f%%   lock contentions %llu\n",
                    k.name, r.cps, r.l3MissRate * 100.0,
                    r.maxUtil() * 100.0,
                    static_cast<unsigned long long>(contentions));
    }

    std::printf("\nFastsocket's full partition of TCB management is what "
                "drives the contention column to zero.\n"
                "Next steps: examples/web_server_scaling, "
                "examples/proxy_locality, bench/bench_fig4a_nginx.\n");
    return 0;
}
