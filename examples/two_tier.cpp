/**
 * @file
 * Example: a two-tier deployment of *two* simulated machines on one wire
 * — an HAProxy-style load balancer in front of a real simulated nginx
 * backend (not the ideal backend pool the benches use).
 *
 * This mirrors the paper's testbed note (4.1): "we have to deploy
 * Fastsocket on the clients and backend servers" so the proxy under test
 * is the bottleneck. Run both tiers on the stock kernel and then on
 * Fastsocket to see where the end-to-end ceiling moves.
 */

#include <cstdio>
#include <cstring>

#include "app/http_load.hh"
#include "app/proxy.hh"
#include "app/web_server.hh"
#include "harness/experiment.hh"

namespace
{

using namespace fsim;

double
runTier(const KernelConfig &kernel, int proxy_cores, int backend_cores)
{
    EventQueue eq;
    Wire wire(eq, ticksFromUsec(50));

    // Tier 2: a real nginx machine at 10.9.0.x serving port 80.
    MachineConfig bc;
    bc.cores = backend_cores;
    bc.kernel = kernel;
    bc.baseAddr = 0x0a090001;
    bc.seed = 11;
    Machine backend(eq, wire, bc);
    WebServer web(backend, 64);
    web.start();

    // Tier 1: the proxy at 10.0.0.x, forwarding to the backend's IPs.
    MachineConfig pc;
    pc.cores = proxy_cores;
    pc.kernel = kernel;
    pc.seed = 12;
    Machine proxy_machine(eq, wire, pc);
    Proxy proxy(proxy_machine, backend.addrs(), backend.servicePort(),
                64);
    proxy.start();

    HttpLoad::Config lc;
    lc.serverAddrs = proxy_machine.addrs();
    lc.concurrency = 200 * proxy_cores;
    HttpLoad load(eq, wire, lc);
    load.start();

    eq.runUntil(ticksFromSeconds(0.04));
    load.markWindow();
    eq.runUntil(eq.now() + ticksFromSeconds(0.08));
    return load.throughputSinceMark();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int proxy_cores = argc > 1 ? std::atoi(argv[1]) : 8;
    int backend_cores = argc > 2 ? std::atoi(argv[2]) : 8;

    std::printf("Two-tier: %d-core proxy -> %d-core nginx backend, both "
                "simulated end to end.\n\n", proxy_cores, backend_cores);

    double base = runTier(KernelConfig::base2632(), proxy_cores,
                          backend_cores);
    std::printf("both tiers on base-2.6.32:  %8.0f conns/s\n", base);
    double fast = runTier(KernelConfig::fastsocket(), proxy_cores,
                          backend_cores);
    std::printf("both tiers on fastsocket:   %8.0f conns/s  (%.2fx)\n",
                fast, fast / base);

    std::printf("\nThe backend terminates one short-lived connection per "
                "request too, so the whole chain\nbenefits — which is "
                "why Sina deployed Fastsocket beyond the proxies.\n");
    return 0;
}
