/**
 * @file
 * Example: drive the Testbed manually and watch a web server scale.
 *
 * Usage: web_server_scaling [flavor] [max_cores]
 *   flavor: base | 313 | fast        (default fast)
 *
 * Unlike the benches (which use runExperiment()), this example shows the
 * lower-level API: constructing a Testbed, starting the client fleet by
 * hand, taking measurement windows, and reading per-core utilization and
 * kernel statistics directly — the workflow for custom experiments.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace fsim;

    const char *flavor = argc > 1 ? argv[1] : "fast";
    int max_cores = argc > 2 ? std::atoi(argv[2]) : 16;

    KernelConfig kernel;
    if (!std::strcmp(flavor, "base"))
        kernel = KernelConfig::base2632();
    else if (!std::strcmp(flavor, "313"))
        kernel = KernelConfig::linux313();
    else
        kernel = KernelConfig::fastsocket();

    std::printf("kernel flavor: %s\n", flavor);
    std::printf("%-6s %-12s %-9s %-10s %-14s %s\n", "cores", "conns/s",
                "speedup", "avg util", "rx packets", "accepted");

    double single = 0.0;
    for (int cores = 1; cores <= max_cores; cores *= 2) {
        ExperimentConfig cfg;
        cfg.app = AppKind::kNginx;
        cfg.machine.cores = cores;
        cfg.machine.kernel = kernel;
        cfg.concurrencyPerCore = 200;

        Testbed bed(cfg);
        bed.startLoad();
        // Warm up until the closed loop reaches steady state.
        bed.eventQueue().runUntil(ticksFromSeconds(0.03));
        bed.markWindows();
        bed.eventQueue().runUntil(bed.eventQueue().now() +
                                  ticksFromSeconds(0.08));
        ExperimentResult r = bed.collect();

        if (cores == 1)
            single = r.cps;
        const KernelStats &ks = bed.machine().kernel().stats();
        std::printf("%-6d %-12.0f %-9.2f %-10.2f %-14llu %llu\n", cores,
                    r.cps, single > 0 ? r.cps / single : 0.0, r.avgUtil(),
                    static_cast<unsigned long long>(ks.rxPackets),
                    static_cast<unsigned long long>(ks.acceptedConns));
    }
    return 0;
}
