#include "app/app_base.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fsim
{

namespace
{

/** Insert @p fd into a sorted-unique vector (no-op if present). */
void
sortedInsert(std::vector<int> &v, int fd)
{
    auto pos = std::lower_bound(v.begin(), v.end(), fd);
    if (pos == v.end() || *pos != fd)
        v.insert(pos, fd);
}

/** Erase @p fd from a sorted-unique vector (no-op if absent). */
void
sortedErase(std::vector<int> &v, int fd)
{
    auto pos = std::lower_bound(v.begin(), v.end(), fd);
    if (pos != v.end() && *pos == fd)
        v.erase(pos);
}

} // namespace


AppBase::AppBase(Machine &m)
    : m_(m)
{
}

AppBase::~AppBase() = default;

void
AppBase::setAdmission(AdmissionController *adm, const OverloadConfig *cfg)
{
    adm_ = adm;
    admCfg_ = cfg;
}

bool
AppBase::connDegraded(int proc, int fd) const
{
    auto it = admState_.find(admKey(proc, fd));
    return it != admState_.end() && it->second;
}

void
AppBase::admRelease(int proc, int fd)
{
    auto it = admState_.find(admKey(proc, fd));
    if (it == admState_.end())
        return;
    admState_.erase(it);
    if (adm_)
        adm_->release(proc);
}

void
AppBase::start()
{
    KernelStack &k = m_.kernel();
    const KernelConfig &kc = m_.config().kernel;

    procs_.resize(m_.numCores());
    for (int c = 0; c < m_.numCores(); ++c) {
        ProcState &ps = procs_[c];
        ps.proc = k.addProcess(c);
        ps.core = c;
    }

    // The parent listens first (creating the global listen sockets), then
    // each child registers: a reuseport clone (3.13), a shared watcher
    // (baseline), or a local_listen() clone (Fastsocket).
    for (ProcState &ps : procs_) {
        for (IpAddr addr : m_.addrs()) {
            int fd = k.listen(ps.proc, addr, m_.servicePort());
            ps.listenFds.insert(fd);
            if (kc.localListen)
                k.localListen(ps.proc, addr, m_.servicePort());
        }
    }

    k.onProcessReady = [this](int proc, bool remote) {
        wake(proc, remote);
    };
}

void
AppBase::wake(int proc, bool remote)
{
    fsim_assert(proc >= 0 &&
                static_cast<std::size_t>(proc) < procs_.size());
    ProcState &ps = procs_[proc];
    ps.remoteWake = ps.remoteWake || remote;
    if (ps.wakePending)
        return;
    ps.wakePending = true;
    std::size_t idx = static_cast<std::size_t>(proc);
    m_.cpu().post(ps.core, TaskPrio::kProcess, [this, idx](Tick start) {
        return runLoop(idx, start);
    });
}

Tick
AppBase::onAccepted(ProcState &ps, int fd, Tick t)
{
    return m_.kernel().epollAdd(ps.proc, t, fd);
}

Tick
AppBase::runLoop(std::size_t idx, Tick start)
{
    ProcState &ps = procs_[idx];
    ps.wakePending = false;
    KernelStack &k = m_.kernel();

    m_.tracer().emit(ps.core, TraceEventType::kAppWake, start,
                     ps.remoteWake ? 1u : 0u,
                     static_cast<std::uint16_t>(ps.proc));

    // Scheduler wakeup cost; a cross-core wake pays the IPI + resched.
    Tick t = start + (ps.remoteWake ? m_.costs().schedWakeRemote
                                    : m_.costs().schedWakeLocal);
    ps.remoteWake = false;
    // Sticky scratch: the event loop runs once per wakeup, thousands of
    // times per simulated second; a fresh vector each round is exactly
    // the steady-state allocator churn the audit test forbids.
    std::vector<int> &fds = ps.fdScratch;
    fds.clear();
    t = k.epollWait(ps.proc, t, fds);

    // More events than maxevents? Come back for another round so one
    // loop iteration stays a bounded unit of work.
    if (k.process(ps.proc).epoll->hasReady())
        wake(ps.proc);

    bool rotateMutex = false;

    // Listen fds deferred from the previous round (accept batch limit).
    if (!ps.deferredAccept.empty()) {
        fds.insert(fds.begin(), ps.deferredAccept.begin(),
                   ps.deferredAccept.end());
        ps.deferredAccept.clear();
    }

    for (int fd : fds) {
        if (ps.listenFds.count(fd)) {
            Socket *lsock = k.sockFromFd(ps.proc, fd);
            bool shared = lsock && !lsock->isLocalListen &&
                          lsock->reuseportOwner < 0;
            if (acceptMutex_ && shared && idx != mutexHolder_) {
                // Another process holds the accept mutex: hand the event
                // over (flag the holder's own listen fds so it actually
                // drains the shared queues) and stay out of the accept
                // path. Per-core listen queues (local_listen / reuseport
                // clones) are exempt - only this process can drain them.
                ProcState &holder = procs_[mutexHolder_];
                for (int lfd : holder.listenFds)
                    sortedInsert(holder.deferredAccept, lfd);
                wake(static_cast<int>(mutexHolder_));
                continue;
            }
            // Batch-accept until EAGAIN or the batch limit; real event
            // loops bound the work done per event (nginx multi_accept,
            // HAProxy maxaccept).
            for (int i = 0; i < kAcceptBatch; ++i) {
                KernelStack::AcceptResult r = k.accept(ps.proc, t, fd);
                t = r.t;
                if (!r.sock) {
                    sortedErase(ps.deferredAccept, fd);
                    break;
                }
                if (adm_ && adm_->enabled()) {
                    // Health/control flows carry the packet priority
                    // mark end to end; the SYN inherited it into the
                    // TCB, so classification needs no payload peeking.
                    AdmitClass cls = r.sock->prio
                                         ? AdmitClass::kHealth
                                         : AdmitClass::kNormal;
                    AdmitDecision dec = adm_->decide(ps.proc, cls,
                                                     r.sojourn);
                    if (dec == AdmitDecision::kShed) {
                        ++shedConns_;
                        m_.tracer().emit(
                            ps.core, TraceEventType::kAdmissionShed, t,
                            static_cast<std::uint32_t>(ps.proc),
                            static_cast<std::uint16_t>(cls));
                        if (m_.tracer().enabled())
                            m_.tracer().connSpans().noteShed(
                                r.sock->id,
                                static_cast<std::uint8_t>(
                                    adm_->lastShedReason()));
                        t = k.close(ps.proc, t, r.fd);
                        if (i == kAcceptBatch - 1) {
                            sortedInsert(ps.deferredAccept, fd);
                            wake(ps.proc);
                        }
                        continue;
                    }
                    admState_[admKey(ps.proc, r.fd)] =
                        (dec == AdmitDecision::kDegrade);
                    if (dec == AdmitDecision::kDegrade)
                        m_.tracer().emit(
                            ps.core, TraceEventType::kAdmissionDegrade, t,
                            static_cast<std::uint32_t>(ps.proc));
                }
                t = onAccepted(ps, r.fd, t);
                // The request may have raced ahead of accept(); serve
                // immediately if bytes are already queued.
                if (r.sock->rxPending > 0 || r.sock->peerFin)
                    t = onConnReadable(ps, r.fd, t);
                if (i == kAcceptBatch - 1) {
                    // Come back for the rest next round.
                    sortedInsert(ps.deferredAccept, fd);
                    wake(ps.proc);
                }
            }
            rotateMutex = rotateMutex || acceptMutex_;
        } else {
            t = onConnReadable(ps, fd, t);
        }
    }
    if (rotateMutex)
        mutexHolder_ = (mutexHolder_ + 1) % procs_.size();
    return t;
}

} // namespace fsim
