/**
 * @file
 * Common machinery for event-loop server applications (nginx- and
 * HAProxy-style): one process per core, pinned, epoll-driven, accepting
 * from per-process or shared listen sockets depending on kernel flavor.
 */

#ifndef FSIM_APP_APP_BASE_HH
#define FSIM_APP_APP_BASE_HH

#include <unordered_set>
#include <vector>

#include "app/machine.hh"
#include "sim/types.hh"

namespace fsim
{

/** Base class for multi-process server applications. */
class AppBase
{
  public:
    explicit AppBase(Machine &m);
    virtual ~AppBase();

    /**
     * Fork one process per core, listen() on every service address, and
     * (in Fastsocket mode) local_listen() each of them.
     */
    void start();

    /**
     * Enable the nginx-style accept mutex: only one process at a time
     * accepts from the shared listen sockets, rotating after each batch.
     * The paper disables it for the Fastsocket runs (4.2.2) because the
     * Local Listen Table removes the contention it works around.
     */
    void setAcceptMutex(bool on) { acceptMutex_ = on; }
    bool acceptMutex() const { return acceptMutex_; }

    /** Requests fully served (response written). */
    std::uint64_t served() const { return served_; }

    Machine &machine() { return m_; }

  protected:
    /** Max connections accepted per listen-fd event (HAProxy maxaccept). */
    static constexpr int kAcceptBatch = 16;

    struct ProcState
    {
        int proc = -1;
        CoreId core = kInvalidCore;
        std::unordered_set<int> listenFds;
        std::unordered_set<int> deferredAccept;
        bool wakePending = false;
        bool remoteWake = false;
    };

    /** Handle a readable connection fd. @return the advanced tick. */
    virtual Tick onConnReadable(ProcState &ps, int fd, Tick t) = 0;

    /** A connection was just accepted; register interest etc. */
    virtual Tick onAccepted(ProcState &ps, int fd, Tick t);

    /** The application's per-request service cost in cycles. */
    virtual Tick serviceCost() const = 0;

    void wake(int proc, bool remote = false);
    Tick runLoop(std::size_t idx, Tick start);

    Machine &m_;
    std::vector<ProcState> procs_;
    std::uint64_t served_ = 0;
    bool acceptMutex_ = false;
    std::size_t mutexHolder_ = 0;
};

} // namespace fsim

#endif // FSIM_APP_APP_BASE_HH
