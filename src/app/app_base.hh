/**
 * @file
 * Common machinery for event-loop server applications (nginx- and
 * HAProxy-style): one process per core, pinned, epoll-driven, accepting
 * from per-process or shared listen sockets depending on kernel flavor.
 */

#ifndef FSIM_APP_APP_BASE_HH
#define FSIM_APP_APP_BASE_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "app/machine.hh"
#include "overload/admission.hh"
#include "sim/types.hh"

namespace fsim
{

/** Base class for multi-process server applications. */
class AppBase
{
  public:
    explicit AppBase(Machine &m);
    virtual ~AppBase();

    /**
     * Fork one process per core, listen() on every service address, and
     * (in Fastsocket mode) local_listen() each of them.
     */
    void start();

    /**
     * Enable the nginx-style accept mutex: only one process at a time
     * accepts from the shared listen sockets, rotating after each batch.
     * The paper disables it for the Fastsocket runs (4.2.2) because the
     * Local Listen Table removes the contention it works around.
     */
    void setAcceptMutex(bool on) { acceptMutex_ = on; }
    bool acceptMutex() const { return acceptMutex_; }

    /**
     * Arm the admission controller: every accepted connection is run
     * through @p adm before being served, and shed connections are
     * closed immediately without a response. Both pointers must outlive
     * the app; pass null to disarm.
     */
    void setAdmission(AdmissionController *adm, const OverloadConfig *cfg);

    /** Requests fully served (response written). */
    std::uint64_t served() const { return served_; }
    /** Subset of served() answered with the degraded brownout page. */
    std::uint64_t servedDegraded() const { return servedDegraded_; }
    /** Connections closed by the admission controller without service. */
    std::uint64_t shedConns() const { return shedConns_; }

    Machine &machine() { return m_; }

  protected:
    /** Max connections accepted per listen-fd event (HAProxy maxaccept). */
    static constexpr int kAcceptBatch = 16;

    struct ProcState
    {
        int proc = -1;
        CoreId core = kInvalidCore;
        std::unordered_set<int> listenFds;
        /** Listen fds deferred to the next round (accept batch limit).
         *  Sorted-unique sticky vector, not a hash set: inserts happen
         *  on the accept hot path and must not allocate once warm. */
        std::vector<int> deferredAccept;
        /** epoll_wait output buffer, reused across loop iterations. */
        std::vector<int> fdScratch;
        bool wakePending = false;
        bool remoteWake = false;
    };

    /** Handle a readable connection fd. @return the advanced tick. */
    virtual Tick onConnReadable(ProcState &ps, int fd, Tick t) = 0;

    /** A connection was just accepted; register interest etc. */
    virtual Tick onAccepted(ProcState &ps, int fd, Tick t);

    /** The application's per-request service cost in cycles. */
    virtual Tick serviceCost() const = 0;

    void wake(int proc, bool remote = false);
    Tick runLoop(std::size_t idx, Tick start);

    /** Was this admitted connection marked for brownout service? */
    bool connDegraded(int proc, int fd) const;
    /**
     * Forget an admitted connection and return its worker slot to the
     * admission controller. Subclasses must call this on every path
     * that closes a client connection; no-op for unadmitted fds.
     */
    void admRelease(int proc, int fd);

    Machine &m_;
    std::vector<ProcState> procs_;
    std::uint64_t served_ = 0;
    std::uint64_t servedDegraded_ = 0;
    std::uint64_t shedConns_ = 0;
    bool acceptMutex_ = false;
    std::size_t mutexHolder_ = 0;

    AdmissionController *adm_ = nullptr;
    const OverloadConfig *admCfg_ = nullptr;

  private:
    static std::uint64_t admKey(int proc, int fd)
    {
        return (static_cast<std::uint64_t>(proc) << 32) |
               static_cast<std::uint32_t>(fd);
    }

    /** (proc,fd) -> degraded flag, for connections currently admitted. */
    std::unordered_map<std::uint64_t, bool> admState_;
};

} // namespace fsim

#endif // FSIM_APP_APP_BASE_HH
