#include "app/backend.hh"

namespace fsim
{

BackendPool::BackendPool(EventQueue &eq, Wire &wire, IpAddr first,
                         IpAddr last, std::uint32_t response_bytes,
                         Tick service_delay)
    : eq_(eq), wire_(wire), first_(first), last_(last),
      responseBytes_(response_bytes), serviceDelay_(service_delay)
{
    wire_.attachRange(first_, last_,
                      [this](const Packet &pkt) { onPacket(pkt); });
}

void
BackendPool::addOutage(int target, Tick start, Tick end)
{
    faults_.push_back(FaultWindow{target, start, end, true, 1.0});
}

void
BackendPool::addSlowdown(int target, Tick start, Tick end, double factor)
{
    faults_.push_back(FaultWindow{target, start, end, false, factor});
}

void
BackendPool::onPacket(const Packet &pkt)
{
    // A packet addressed to a backend in an outage window vanishes (the
    // crashed host answers nothing, not even RST). Slowdown windows
    // stretch the service delay instead.
    const int index = static_cast<int>(pkt.tuple.daddr - first_);
    const Tick now = eq_.now();
    double slow = 1.0;
    for (const FaultWindow &w : faults_) {
        if (w.target != -1 && w.target != index)
            continue;
        if (now < w.start || now >= w.end)
            continue;
        if (w.down) {
            ++outageDrops_;
            return;
        }
        if (w.factor > slow)
            slow = w.factor;
    }
    const Tick service =
        static_cast<Tick>(static_cast<double>(serviceDelay_) * slow);

    Packet reply;
    reply.tuple = pkt.tuple.reversed();
    reply.connId = pkt.connId;

    if (pkt.has(kSyn) && !pkt.has(kAck)) {
        reply.flags = kSyn | kAck;
        wire_.transmit(reply, eq_.now());
        return;
    }
    if (pkt.payload > 0) {
        // Serve the request; without keep-alive, FIN rides on the
        // response (server closes after replying). With keep-alive the
        // connection stays open until the peer hangs up.
        reply.flags = kAck | kPsh;
        if (!keepAlive_)
            reply.flags |= kFin;
        reply.payload = responseBytes_;
        ++served_;
        wire_.transmit(reply, eq_.now() + service);
        return;
    }
    if (pkt.has(kFin)) {
        // ACK the peer's FIN; a kept-alive backend also closes its own
        // half now, so the active closer can reach TIME_WAIT.
        reply.flags = kAck;
        if (keepAlive_)
            reply.flags |= kFin;
        wire_.transmit(reply, eq_.now());
        return;
    }
    // Bare ACKs need no reply.
}

} // namespace fsim
