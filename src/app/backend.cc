#include "app/backend.hh"

namespace fsim
{

BackendPool::BackendPool(EventQueue &eq, Wire &wire, IpAddr first,
                         IpAddr last, std::uint32_t response_bytes,
                         Tick service_delay)
    : eq_(eq), wire_(wire), first_(first), last_(last),
      responseBytes_(response_bytes), serviceDelay_(service_delay)
{
    wire_.attachRange(first_, last_,
                      [this](const Packet &pkt) { onPacket(pkt); });
}

void
BackendPool::onPacket(const Packet &pkt)
{
    Packet reply;
    reply.tuple = pkt.tuple.reversed();
    reply.connId = pkt.connId;

    if (pkt.has(kSyn) && !pkt.has(kAck)) {
        reply.flags = kSyn | kAck;
        wire_.transmit(reply, eq_.now());
        return;
    }
    if (pkt.payload > 0) {
        // Serve the request; FIN rides on the response (server closes
        // after replying, keep-alive off).
        reply.flags = kAck | kPsh | kFin;
        reply.payload = responseBytes_;
        ++served_;
        wire_.transmit(reply, eq_.now() + serviceDelay_);
        return;
    }
    if (pkt.has(kFin)) {
        reply.flags = kAck;
        wire_.transmit(reply, eq_.now());
        return;
    }
    // Bare ACKs need no reply.
}

} // namespace fsim
