/**
 * @file
 * Ideal backend server pool.
 *
 * The paper saturates its proxy with Fastsocket-enabled backends; here the
 * backends are ideal wire endpoints (no CPU model of their own) that speak
 * just enough TCP: SYN -> SYN-ACK, request -> response carrying FIN
 * (server closes after the reply, keep-alive off), FIN -> ACK.
 */

#ifndef FSIM_APP_BACKEND_HH
#define FSIM_APP_BACKEND_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace fsim
{

/** A range of ideal backend servers attached to the wire. */
class BackendPool
{
  public:
    /**
     * @param first,last Inclusive address range served.
     * @param service_delay Ticks between request in and response out.
     */
    BackendPool(EventQueue &eq, Wire &wire, IpAddr first, IpAddr last,
                std::uint32_t response_bytes = 64,
                Tick service_delay = ticksFromUsec(100));

    std::uint64_t requestsServed() const { return served_; }

    /**
     * Keep-alive mode: responses no longer carry FIN, so the proxy side
     * becomes the active closer of every backend connection — the
     * configuration where its ephemeral ports linger in TIME_WAIT.
     */
    void setKeepAlive(bool ka) { keepAlive_ = ka; }
    /** Packets swallowed by outage windows. */
    std::uint64_t outageDrops() const { return outageDrops_; }

    /** Addresses usable by a Proxy. */
    IpAddr firstAddr() const { return first_; }
    IpAddr lastAddr() const { return last_; }

    /** @name Fault injection */
    /** @{ */
    /**
     * Backend @p target (index from firstAddr; -1 = every backend) drops
     * all packets during [start, end) — a crash with recovery at @p end.
     */
    void addOutage(int target, Tick start, Tick end);
    /** Same targeting, but service delay is multiplied by @p factor. */
    void addSlowdown(int target, Tick start, Tick end, double factor);
    /** @} */

  private:
    struct FaultWindow
    {
        int target;         //!< backend index, -1 = all
        Tick start;
        Tick end;
        bool down;          //!< outage vs slowdown
        double factor;      //!< slowdown multiplier
    };

    void onPacket(const Packet &pkt);

    EventQueue &eq_;
    Wire &wire_;
    IpAddr first_;
    IpAddr last_;
    std::uint32_t responseBytes_;
    Tick serviceDelay_;
    bool keepAlive_ = false;
    std::vector<FaultWindow> faults_;
    std::uint64_t served_ = 0;
    std::uint64_t outageDrops_ = 0;
};

} // namespace fsim

#endif // FSIM_APP_BACKEND_HH
