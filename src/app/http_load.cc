#include "app/http_load.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/fleet_trace.hh"

namespace fsim
{

namespace
{

/** Deterministic nonzero trace id from a connection epoch (splitmix64
 *  finalizer). Epochs are globally unique per attempt, so trace ids
 *  are too; retransmissions of one attempt share the epoch and hence
 *  the id, while a timeout relaunch draws a fresh one. */
std::uint64_t
traceIdFromEpoch(std::uint64_t epoch)
{
    std::uint64_t x = epoch + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x ? x : 1;
}

} // namespace

HttpLoad::HttpLoad(EventQueue &eq, Wire &wire, const Config &cfg)
    : eq_(eq), wire_(wire), cfg_(cfg), rng_(cfg.seed)
{
    fsim_assert(!cfg_.serverAddrs.empty());
    fsim_assert(cfg_.clientIps > 0);
    nextPort_.assign(cfg_.clientIps, 1024);
    // Latency samples accumulate for the whole run; reserving up front
    // keeps the per-completion append out of the steady-state
    // allocation profile (the vector doubles only past ~32k samples).
    latencySamples_.reserve(1 << 15);
    wire_.attachRange(cfg_.clientBase,
                      cfg_.clientBase +
                          static_cast<IpAddr>(cfg_.clientIps - 1),
                      [this](const Packet &pkt) { onPacket(pkt); });
}

std::uint64_t
HttpLoad::key(const FiveTuple &rx)
{
    // Key on the tuple of packets we *receive* (server -> client).
    std::uint64_t k = (static_cast<std::uint64_t>(rx.saddr) << 32) ^
                      rx.daddr;
    k = k * 0x9e3779b97f4a7c15ULL ^
        (static_cast<std::uint64_t>(rx.sport) << 16) ^ rx.dport;
    return k;
}

void
HttpLoad::start()
{
    closedLoop_ = true;
    for (int i = 0; i < cfg_.concurrency; ++i) {
        // Stagger the initial burst slightly so the first SYNs don't all
        // collide on one tick.
        eq_.scheduleIn(rng_.range(ticksFromUsec(200) + 1),
                       [this] { launch(); });
    }
}

void
HttpLoad::startOpenLoop(double per_second)
{
    closedLoop_ = false;
    openLoopActive_ = true;
    openLoopRate_ = per_second;
    scheduleOpenLoop();
}

void
HttpLoad::setOpenLoopRate(double per_second)
{
    openLoopRate_ = per_second;
}

void
HttpLoad::stopOpenLoop()
{
    openLoopActive_ = false;
}

void
HttpLoad::scheduleOpenLoop()
{
    if (!openLoopActive_ || openLoopRate_ <= 0.0)
        return;
    double gap_s = rng_.exponential(1.0 / openLoopRate_);
    eq_.scheduleIn(ticksFromSeconds(gap_s), [this] {
        if (!openLoopActive_)
            return;
        launch();
        scheduleOpenLoop();
    });
}

void
HttpLoad::launch()
{
    if (cfg_.maxConns > 0 && started_ >= cfg_.maxConns)
        return;   // bounded workload exhausted; let the loop drain

    const Port port_lo = 1024;
    const Port port_hi =
        cfg_.clientPortSpan > 0
            ? static_cast<Port>(
                  std::min(65535, 1024 + cfg_.clientPortSpan - 1))
            : 65535;

    // Pick a free client 4-tuple; with a narrowed port span the whole
    // space can be in flight, in which case the launch is skipped and
    // retried shortly (rather than recursing forever).
    IpAddr server = 0;
    IpAddr client = 0;
    Port sport = 0;
    std::uint64_t k = 0;
    const int span = port_hi - port_lo + 1;
    const long max_tries =
        static_cast<long>(cfg_.clientIps) * span;
    bool found = false;
    for (long tries = 0; tries < max_tries; ++tries) {
        server = cfg_.serverAddrs[serverCursor_++ %
                                  cfg_.serverAddrs.size()];
        std::size_t ci = clientCursor_++ % cfg_.clientIps;
        client = cfg_.clientBase + static_cast<IpAddr>(ci);
        sport = nextPort_[ci];
        nextPort_[ci] = sport >= port_hi ? port_lo
                                         : static_cast<Port>(sport + 1);
        k = key(FiveTuple{server, client, cfg_.serverPort, sport});
        if (!conns_.find(k)) {
            found = true;
            break;
        }
    }
    if (!found) {
        ++launchSkips_;
        eq_.scheduleIn(ticksFromUsec(100), [this] { launch(); });
        return;
    }

    Conn conn;
    conn.tx = FiveTuple{client, server, sport, cfg_.serverPort};
    conn.epoch = nextEpoch_++;
    conn.traceId = traceIdFromEpoch(conn.epoch);
    conn.startTick = eq_.now();
    conn.health =
        cfg_.healthEvery > 0 &&
        started_ % static_cast<std::uint64_t>(cfg_.healthEvery) == 0;
    // Bresenham stripe: exactly longLivedPermille long-lived conns per
    // 1000 launches, deterministically interleaved.
    const std::uint64_t pm =
        static_cast<std::uint64_t>(cfg_.longLivedPermille);
    conn.longLived = !conn.health && pm > 0 &&
                     ((started_ + 1) * pm) / 1000 >
                         (started_ * pm) / 1000;
    conn.remaining =
        conn.longLived
            ? std::max(1, cfg_.longLivedRequests)
            : (cfg_.requestsPerConn > 0 ? cfg_.requestsPerConn : 1);
    Conn &c = *conns_.insert(k, conn).first;
    ++started_;
    if (c.health)
        ++healthStarted_;
    if (traceLog_)
        traceLog_->clientStart(c.traceId, eq_.now());

    if (cfg_.timeout > 0) {
        std::uint64_t epoch = c.epoch;
        eq_.scheduleIn(cfg_.timeout, [this, k, epoch] {
            const Conn *cp = conns_.find(k);
            if (!cp || cp->epoch != epoch)
                return;   // finished (or tuple reused) in time
            ++timeouts_;
            finish(k, false);
        });
    }

    send(c, k, kSyn, 0);
    if (cfg_.rtoBase > 0)
        armRetx(k, c.epoch, State::kSynSent, 0, cfg_.rtoBase);
}

void
HttpLoad::send(Conn &c, std::uint64_t k, std::uint8_t flags,
               std::uint32_t payload)
{
    Packet pkt;
    pkt.tuple = c.tx;
    pkt.flags = flags;
    pkt.payload = payload;
    pkt.connId = k;
    pkt.cookie = c.cookie;
    pkt.txSeq = c.txSeq++;
    // Health probes mark their whole flow (DSCP/SO_PRIORITY analog) so
    // kernel-level overload drops can spare them.
    pkt.prio = c.health;
    pkt.traceId = c.traceId;
    wire_.transmit(pkt, eq_.now());
}

void
HttpLoad::armRetx(std::uint64_t k, std::uint64_t epoch, State armed_state,
                  std::uint64_t progress, Tick rto)
{
    eq_.scheduleIn(rto, [this, k, epoch, armed_state, progress, rto] {
        Conn *cp = conns_.find(k);
        if (!cp || cp->epoch != epoch)
            return;   // connection finished (or tuple reused)
        Conn &c = *cp;
        if (c.state != armed_state)
            return;   // moved on; the retx concern is gone
        if (armed_state == State::kWaitResponse &&
            c.rxResponses != progress)
            return;   // response arrived since the request went out
        if (c.retx >= cfg_.maxRetx) {
            ++retxGiveups_;
            finish(k, false);
            return;
        }
        ++c.retx;
        if (armed_state == State::kSynSent) {
            ++synRetx_;
            send(c, k, kSyn, 0);
        } else {
            ++reqRetx_;
            send(c, k, kAck | kPsh, reqBytes(c));
        }
        Tick cap = cfg_.rtoMax > 0 ? cfg_.rtoMax : 8 * cfg_.rtoBase;
        Tick next = rto * 2 > cap ? cap : rto * 2;
        armRetx(k, epoch, armed_state, progress, next);
    });
}

void
HttpLoad::finish(std::uint64_t k, bool ok)
{
    if (const Conn *cp = conns_.find(k)) {
        const Conn &c = *cp;
        if (c.health) {
            if (ok)
                ++healthCompleted_;
            else
                ++healthFailed_;
        }
        if (ok)
            latencySamples_.emplace_back(eq_.now(),
                                         eq_.now() - c.startTick);
        if (traceLog_)
            traceLog_->clientEnd(c.traceId, eq_.now(), ok);
        conns_.erase(k);
    }
    if (ok)
        ++completed_;
    else
        ++failed_;
    if (closedLoop_)
        launch();
}

void
HttpLoad::onPacket(const Packet &pkt)
{
    std::uint64_t k = key(pkt.tuple);
    Conn *cp = conns_.find(k);
    if (!cp)
        return;   // late packet of a finished connection
    Conn &c = *cp;

    if (pkt.has(kRst)) {
        // An RST during teardown (after the full response landed) is the
        // server aborting an already-served exchange; don't let it turn a
        // success into a failure.
        bool late = c.gotData && (c.state == State::kWaitFin ||
                                  c.state == State::kWaitLastAck ||
                                  c.state == State::kClosing);
        finish(k, late);
        return;
    }

    switch (c.state) {
      case State::kSynSent:
        if (pkt.has(kSyn) && pkt.has(kAck)) {
            // A cookie-carrying SYN-ACK means the server kept no state;
            // echo the cookie on everything we send from here on.
            if (pkt.cookie != 0)
                c.cookie = pkt.cookie;
            // ACK completes the handshake; the request follows at once
            // (both on the wire back to back, like a real client that
            // writes immediately after connect()).
            send(c, k, kAck, 0);
            sendRequest(c, k);
            c.state = State::kWaitResponse;
        }
        break;

      case State::kWaitResponse:
        if (pkt.payload > 0) {
            c.gotData = true;
            ++responses_;
            ++c.rxResponses;
            bytesReceived_ += pkt.payload;
            --c.remaining;
            if (c.remaining > 0 && !pkt.has(kFin)) {
                // Keep-alive: issue the next request on the same
                // connection, after think time for long-lived conns.
                if (c.longLived && cfg_.longLivedThink > 0) {
                    std::uint64_t epoch = c.epoch;
                    eq_.scheduleIn(cfg_.longLivedThink,
                                   [this, k, epoch] {
                                       Conn *c2 = conns_.find(k);
                                       if (!c2 || c2->epoch != epoch)
                                           return;
                                       sendRequest(*c2, k);
                                   });
                } else {
                    sendRequest(c, k);
                }
                break;
            }
        }
        if (pkt.has(kFin)) {
            // Server closed (keep-alive off). ACK its FIN and send ours.
            send(c, k, kAck | kFin, 0);
            c.state = State::kWaitLastAck;
        } else if (c.gotData && c.remaining <= 0) {
            if (cfg_.requestsPerConn > 1 && cfg_.longLivedPermille == 0) {
                // Uniform long-lived mode: the client closes first.
                send(c, k, kAck | kFin, 0);
                c.state = State::kClosing;
            } else {
                // Short-lived (and mixed-mode conns, whose last request
                // carried "Connection: close"): the server closes.
                c.state = State::kWaitFin;
            }
        }
        break;

      case State::kWaitFin:
        if (pkt.has(kFin)) {
            send(c, k, kAck | kFin, 0);
            c.state = State::kWaitLastAck;
        }
        break;

      case State::kWaitLastAck:
        if (pkt.has(kAck) && !pkt.has(kFin))
            finish(k, c.gotData);
        break;

      case State::kClosing:
        if (pkt.has(kFin)) {
            // Server answered our FIN with its own; final ACK and done.
            send(c, k, kAck, 0);
            finish(k, c.gotData);
        }
        break;
    }
}

void
HttpLoad::sendRequest(Conn &c, std::uint64_t k)
{
    std::uint8_t flags = kAck | kPsh;
    // Mixed-lifetime mode negotiates per request: only a long-lived
    // conn's non-final requests omit the close header, so a keep-alive
    // server still actively closes every other exchange.
    if (cfg_.longLivedPermille > 0 && c.remaining <= 1)
        flags |= kConnClose;
    send(c, k, flags, reqBytes(c));
    if (cfg_.rtoBase > 0)
        armRetx(k, c.epoch, State::kWaitResponse, c.rxResponses,
                cfg_.rtoBase);
}

void
HttpLoad::markWindow()
{
    windowStart_ = eq_.now();
    completedAtMark_ = completed_;
    responsesAtMark_ = responses_;
}

double
HttpLoad::throughputSinceMark() const
{
    double span = secondsFromTicks(eq_.now() - windowStart_);
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(completed_ - completedAtMark_) / span;
}

double
HttpLoad::requestThroughputSinceMark() const
{
    double span = secondsFromTicks(eq_.now() - windowStart_);
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(responses_ - responsesAtMark_) / span;
}

Tick
HttpLoad::latencyPercentileSinceMark(double p) const
{
    std::vector<Tick> lat;
    for (const auto &s : latencySamples_)
        if (s.first >= windowStart_)
            lat.push_back(s.second);
    if (lat.empty())
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(lat.size() - 1) + 0.5);
    std::nth_element(lat.begin(),
                     lat.begin() + static_cast<std::ptrdiff_t>(idx),
                     lat.end());
    return lat[idx];
}

std::uint64_t
HttpLoad::latencySamplesSinceMark() const
{
    std::uint64_t n = 0;
    for (const auto &s : latencySamples_)
        if (s.first >= windowStart_)
            ++n;
    return n;
}

} // namespace fsim
