/**
 * @file
 * http_load-style workload generator (closed loop) with an additional
 * open-loop mode for the production-trace experiment.
 *
 * Closed loop: keeps `concurrency` connections in flight; whenever one
 * finishes, a new one starts — the discipline the paper uses (concurrency
 * 500 x cores). Each connection is one short-lived HTTP exchange:
 *
 *     SYN -> (SYN-ACK) -> ACK + request -> (response) -> (server FIN)
 *         -> ACK+FIN -> (final ACK) -> done
 *
 * The client is ideal (no CPU model): the paper runs clients on separate
 * Fastsocket-boosted machines precisely so the server under test is the
 * bottleneck.
 */

#ifndef FSIM_APP_HTTP_LOAD_HH
#define FSIM_APP_HTTP_LOAD_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fsim
{

class FleetTraceLog;

/** Closed- or open-loop HTTP client fleet. */
class HttpLoad
{
  public:
    struct Config
    {
        std::vector<IpAddr> serverAddrs;
        Port serverPort = 80;
        /** Closed-loop outstanding connections (paper: 500 x cores). */
        int concurrency = 500;
        std::uint32_t requestBytes = 600;    //!< typical WeiBo request
        /** Requests pipelined per connection (1 = short-lived, the
         *  paper's default; >1 = HTTP keep-alive / long-lived mode,
         *  where the client closes first after the last response). */
        int requestsPerConn = 1;
        IpAddr clientBase = 0xac100001;      //!< 172.16.0.1
        int clientIps = 256;
        std::uint64_t seed = 7;
        /** Per-connection give-up timeout (0 = none). A timed-out
         *  connection counts as failed and is relaunched in closed
         *  loop — http_load's -timeout behavior, and the recovery
         *  mechanism under injected packet loss. */
        Tick timeout = 0;
        /** Bounded workload: stop launching after this many connections
         *  have been started (0 = unlimited). With a bound the closed
         *  loop drains and the run quiesces — the mode the differential
         *  oracle and quiesce-leak checks rely on. */
        std::uint64_t maxConns = 0;

        /** @name SYN/request retransmission (0 = disabled) */
        /** @{ */
        /** Initial retransmission timeout; doubles per attempt. */
        Tick rtoBase = 0;
        /** Backoff cap (0 = 8 x rtoBase). */
        Tick rtoMax = 0;
        /** Give up (connection fails) after this many retransmissions. */
        int maxRetx = 6;
        /** @} */

        /** @name Health probes (0 = disabled) */
        /** @{ */
        /** Every Nth launched connection is a health probe. */
        int healthEvery = 0;
        /** Probe request payload; must be <= the server's configured
         *  health_bytes so the admission controller classifies it. */
        std::uint32_t healthRequestBytes = 32;
        /** @} */

        /** @name Mixed connection lifetimes (0 = uniform workload) */
        /** @{ */
        /** Long-lived connections per 1000 launches (deterministically
         *  striped; 0 = mixed mode off, 1000 = all long-lived). A
         *  long-lived conn issues longLivedRequests keep-alive requests
         *  (pausing longLivedThink between them) and marks only its
         *  last request "Connection: close". All other connections
         *  carry the close header on their single request, so a
         *  keep-alive server still takes the active-close (TIME_WAIT)
         *  path for them. */
        int longLivedPermille = 0;
        /** Requests a long-lived connection issues before closing. */
        int longLivedRequests = 8;
        /** Idle think time between a long-lived conn's requests. */
        Tick longLivedThink = 0;
        /** Restrict each client IP's ephemeral ports to
         *  [1024, 1024 + span) (0 = full range): shrinks the client
         *  tuple space to force TIME_WAIT tuple-reuse pressure. */
        int clientPortSpan = 0;
        /** @} */
    };

    HttpLoad(EventQueue &eq, Wire &wire, const Config &cfg);

    /** Start the closed-loop fleet. */
    void start();

    /**
     * Open-loop mode: start connections at @p per_second (Poisson) until
     * stopOpenLoop(); completions do not trigger new starts.
     */
    void startOpenLoop(double per_second);
    void setOpenLoopRate(double per_second);
    void stopOpenLoop();

    /** @name Statistics */
    /** @{ */
    std::uint64_t started() const { return started_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t failed() const { return failed_; }
    /** Responses received (== completed x requestsPerConn at quiesce). */
    std::uint64_t responses() const { return responses_; }
    /** Connections abandoned by the give-up timer. */
    std::uint64_t timeouts() const { return timeouts_; }
    /** SYN retransmissions sent (client-side backoff). */
    std::uint64_t synRetransmits() const { return synRetx_; }
    /** Request retransmissions sent. */
    std::uint64_t requestRetransmits() const { return reqRetx_; }
    /** Connections abandoned after maxRetx retransmissions. */
    std::uint64_t retxGiveups() const { return retxGiveups_; }
    /** Launches skipped because the client tuple space was saturated
     *  (every candidate 4-tuple still in flight). */
    std::uint64_t launchSkips() const { return launchSkips_; }
    std::uint64_t inFlight() const { return conns_.size(); }
    /** Response payload bytes received (the "bytes served" oracle). */
    std::uint64_t bytesReceived() const { return bytesReceived_; }

    /** Begin a throughput window. */
    void markWindow();
    /** Completed connections per simulated second since markWindow(). */
    double throughputSinceMark() const;
    /** Responses per simulated second since markWindow(). */
    double requestThroughputSinceMark() const;
    /**
     * Connect-to-last-byte latency percentile (0 < p <= 1) over
     * connections completed since markWindow(); 0 if none completed.
     */
    Tick latencyPercentileSinceMark(double p) const;
    /** Completed connections with a latency sample since markWindow(). */
    std::uint64_t latencySamplesSinceMark() const;

    /** All (completion tick, latency) samples, completion order — the
     *  metrics layer and the SLO tracker window over these. */
    const std::vector<std::pair<Tick, Tick>> &latencySamples() const
    {
        return latencySamples_;
    }

    /**
     * Attach the fleet trace collector. Every launched connection mints
     * a deterministic nonzero trace id (a mix of its epoch, so retries
     * of one attempt share the id while a timeout relaunch gets a fresh
     * one) and stamps it on every packet; start/finish report the
     * client hop to @p log. Pure recording — simulated behavior and
     * fingerprints are identical with or without a log attached.
     */
    void setTraceLog(FleetTraceLog *log) { traceLog_ = log; }

    /** @name Health-probe statistics */
    /** @{ */
    std::uint64_t healthStarted() const { return healthStarted_; }
    std::uint64_t healthCompleted() const { return healthCompleted_; }
    std::uint64_t healthFailed() const { return healthFailed_; }
    /** @} */

  private:
    enum class State
    {
        kSynSent,
        kWaitResponse,   //!< request out, waiting for data
        kWaitFin,        //!< response in, waiting for server FIN
        kWaitLastAck,    //!< our ACK+FIN out, waiting for final ACK
        kClosing,        //!< keep-alive done: our FIN out, await server's
    };

    struct Conn
    {
        State state = State::kSynSent;
        FiveTuple tx;    //!< tuple of packets we send (client -> server)
        bool gotData = false;
        int remaining = 1;   //!< requests still to issue on this conn
        std::uint64_t epoch = 0;   //!< distinguishes timeout reuse
        std::uint32_t cookie = 0;  //!< SYN cookie echoed to the server
        std::uint32_t txSeq = 0;   //!< next transmit ordinal
        std::uint64_t rxResponses = 0; //!< progress marker for retx
        int retx = 0;              //!< retransmissions so far
        bool health = false;       //!< health probe (tiny request)
        bool longLived = false;    //!< keep-alive multi-request conn
        Tick startTick = 0;        //!< launch time, for latency samples
        /** End-to-end trace context stamped on every packet. */
        std::uint64_t traceId = 0;
    };

    static std::uint64_t key(const FiveTuple &rx);

    void launch();
    void onPacket(const Packet &pkt);
    void finish(std::uint64_t k, bool ok);
    void scheduleOpenLoop();
    /** Build + transmit one packet on @p c, stamping cookie and txSeq. */
    void send(Conn &c, std::uint64_t k, std::uint8_t flags,
              std::uint32_t payload);
    /**
     * Arm a retransmission check: fires after @p rto and re-sends if the
     * connection is still in @p armed_state with no progress (for
     * requests, @p progress = responses seen when the request went out).
     */
    void armRetx(std::uint64_t k, std::uint64_t epoch, State armed_state,
                 std::uint64_t progress, Tick rto);

    EventQueue &eq_;
    Wire &wire_;
    Config cfg_;
    Rng rng_;
    FleetTraceLog *traceLog_ = nullptr;

    bool closedLoop_ = true;
    bool openLoopActive_ = false;
    double openLoopRate_ = 0.0;

    std::size_t serverCursor_ = 0;
    std::size_t clientCursor_ = 0;
    std::vector<Port> nextPort_;    //!< per client IP

    /** Open-addressing map: per-connection insert/erase churn is the
     *  load generator's hot path and must stay allocation-free. */
    FlatMap<std::uint64_t, Conn> conns_;

    void sendRequest(Conn &c, std::uint64_t k);

    std::uint64_t started_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t responses_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t synRetx_ = 0;
    std::uint64_t reqRetx_ = 0;
    std::uint64_t retxGiveups_ = 0;
    std::uint64_t launchSkips_ = 0;
    std::uint64_t bytesReceived_ = 0;
    std::uint64_t nextEpoch_ = 1;
    std::uint64_t healthStarted_ = 0;
    std::uint64_t healthCompleted_ = 0;
    std::uint64_t healthFailed_ = 0;

    /** Per-conn request payload (health probes send the tiny one). */
    std::uint32_t reqBytes(const Conn &c) const
    {
        return c.health ? cfg_.healthRequestBytes : cfg_.requestBytes;
    }

    /** (completion tick, connect-to-last-byte latency) per success. */
    std::vector<std::pair<Tick, Tick>> latencySamples_;

    Tick windowStart_ = 0;
    std::uint64_t completedAtMark_ = 0;
    std::uint64_t responsesAtMark_ = 0;
};

} // namespace fsim

#endif // FSIM_APP_HTTP_LOAD_HH
