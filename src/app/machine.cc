#include "app/machine.hh"

#include "sim/logging.hh"

namespace fsim
{

Machine::Machine(EventQueue &eq, Wire &wire, const MachineConfig &cfg)
    : eq_(eq), cfg_(cfg), costs_(cfg.costs), rng_(cfg.seed)
{
    fsim_assert(cfg_.cores > 0);
    if (cfg_.listenIps <= 0)
        cfg_.listenIps = cfg_.cores;

    tracer_ = std::make_unique<Tracer>(cfg_.cores,
                                       cfg_.traceRingCapacity);
    tracer_->setEnabled(cfg_.traceEnabled);

    cache_ = std::make_unique<CacheModel>(cfg_.cores,
                                          costs_.cacheMissPenalty,
                                          costs_.numaNodeSize,
                                          costs_.numaRemotePenalty);
    cache_->setBackgroundMissRate(costs_.backgroundMissRate);
    cache_->setTracer(tracer_.get());
    cpu_ = std::make_unique<CpuModel>(eq_, *cache_, costs_, cfg_.cores);
    cpu_->setTracer(tracer_.get());
    locks_.setTracer(tracer_.get());

    NicConfig nic_cfg = cfg_.nic;
    nic_cfg.numQueues = cfg_.cores;
    nic_ = std::make_unique<Nic>(nic_cfg);

    pressure_ = std::make_unique<PressureState>(cfg_.overload);

    KernelStack::Deps deps;
    deps.eq = &eq_;
    deps.cpu = cpu_.get();
    deps.cache = cache_.get();
    deps.locks = &locks_;
    deps.costs = &costs_;
    deps.nic = nic_.get();
    deps.wire = &wire;
    deps.rng = &rng_;
    deps.tracer = tracer_.get();
    deps.overload = &cfg_.overload;
    deps.pressure = pressure_.get();
    kernel_ = std::make_unique<KernelStack>(deps, cfg_.kernel);

    for (int i = 0; i < cfg_.listenIps; ++i) {
        IpAddr a = cfg_.baseAddr + static_cast<IpAddr>(i);
        addrs_.push_back(a);
        wire.attach(a, [this](const Packet &pkt) {
            kernel_->packetArrived(pkt);
        });
    }

    busyAtMark_.assign(cfg_.cores, 0);
}

Machine::~Machine() = default;

void
Machine::markWindow()
{
    windowStart_ = eq_.now();
    for (int c = 0; c < cfg_.cores; ++c)
        busyAtMark_[c] = cpu_->core(c).busyTicks();
}

std::vector<double>
Machine::utilizationSinceMark() const
{
    std::vector<double> util(cfg_.cores, 0.0);
    Tick span = eq_.now() - windowStart_;
    if (span == 0)
        return util;
    for (int c = 0; c < cfg_.cores; ++c) {
        std::uint64_t busy = cpu_->core(c).busyTicks() - busyAtMark_[c];
        util[c] = static_cast<double>(busy) / static_cast<double>(span);
    }
    return util;
}

} // namespace fsim
