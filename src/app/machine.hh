/**
 * @file
 * A simulated server machine: cores + cache + NIC + kernel, attached to a
 * Wire. This is the unit the benchmark harness instantiates per
 * experiment.
 */

#ifndef FSIM_APP_MACHINE_HH
#define FSIM_APP_MACHINE_HH

#include <memory>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/core.hh"
#include "cpu/cycle_costs.hh"
#include "kernel/kernel_config.hh"
#include "kernel/kernel_stack.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "overload/overload_config.hh"
#include "overload/pressure.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sync/lock_registry.hh"
#include "trace/tracer.hh"

namespace fsim
{

/** Configuration of one simulated machine. */
struct MachineConfig
{
    int cores = 8;
    KernelConfig kernel;
    NicConfig nic;               //!< numQueues forced to `cores`
    CycleCosts costs;
    IpAddr baseAddr = 0x0a000001;    //!< 10.0.0.1
    /** Service IPs (the paper binds one listen IP per core; 0 = cores). */
    int listenIps = 0;
    Port servicePort = 80;
    std::uint64_t seed = 1;
    /** Leave the trace subsystem on (cheap; overhead bench gates it). */
    bool traceEnabled = true;
    /** Per-core trace ring capacity in events. */
    std::size_t traceRingCapacity = Tracer::kDefaultRingCapacity;
    /** Overload-control knobs (src/overload); disabled by default. */
    OverloadConfig overload;
};

/** One simulated server machine. */
class Machine
{
  public:
    Machine(EventQueue &eq, Wire &wire, const MachineConfig &cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    KernelStack &kernel() { return *kernel_; }
    CpuModel &cpu() { return *cpu_; }
    CacheModel &cache() { return *cache_; }
    Tracer &tracer() { return *tracer_; }
    const Tracer &tracer() const { return *tracer_; }
    LockRegistry &locks() { return locks_; }
    Nic &nic() { return *nic_; }
    Rng &rng() { return rng_; }
    EventQueue &eventQueue() { return eq_; }
    PressureState &pressure() { return *pressure_; }
    const PressureState &pressure() const { return *pressure_; }
    const CycleCosts &costs() const { return costs_; }
    const MachineConfig &config() const { return cfg_; }

    /** Service addresses (baseAddr .. baseAddr+listenIps-1). */
    const std::vector<IpAddr> &addrs() const { return addrs_; }

    int numCores() const { return cfg_.cores; }
    Port servicePort() const { return cfg_.servicePort; }

    /** Per-core utilization over a window started by markWindow(). */
    std::vector<double> utilizationSinceMark() const;
    /** Begin a measurement window. */
    void markWindow();

  private:
    EventQueue &eq_;
    MachineConfig cfg_;
    CycleCosts costs_;
    Rng rng_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<CacheModel> cache_;
    std::unique_ptr<CpuModel> cpu_;
    LockRegistry locks_;
    std::unique_ptr<Nic> nic_;
    std::unique_ptr<PressureState> pressure_;
    std::unique_ptr<KernelStack> kernel_;
    std::vector<IpAddr> addrs_;

    Tick windowStart_ = 0;
    std::vector<std::uint64_t> busyAtMark_;
};

} // namespace fsim

#endif // FSIM_APP_MACHINE_HH
