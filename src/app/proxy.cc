#include "app/proxy.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace fsim
{

Proxy::Proxy(Machine &m, std::vector<IpAddr> backends, Port backend_port,
             std::uint32_t response_bytes)
    : AppBase(m), backends_(std::move(backends)),
      backendPort_(backend_port), responseBytes_(response_bytes)
{
    fsim_assert(!backends_.empty());
    health_.resize(backends_.size());
}

Proxy::~Proxy()
{
    // Sessions still in flight when the run ends are owned here; each
    // may be keyed under both its client and backend fd, so dedupe.
    std::unordered_set<Session *> live;
    for (const auto &kv : sessions_)
        live.insert(kv.second);
    for (Session *s : live)
        delete s;
}

Tick
Proxy::serviceCost() const
{
    return m_.costs().appServiceProxy;
}

Tick
Proxy::closeSession(ProcState &ps, Session *s, Tick t)
{
    KernelStack &k = m_.kernel();
    if (s->backendFd >= 0) {
        sessions_.erase(skey(ps.proc, s->backendFd));
        if (k.sockFromFd(ps.proc, s->backendFd))
            t = k.close(ps.proc, t, s->backendFd);
    }
    if (s->clientFd >= 0) {
        sessions_.erase(skey(ps.proc, s->clientFd));
        admRelease(ps.proc, s->clientFd);
        if (k.sockFromFd(ps.proc, s->clientFd))
            t = k.close(ps.proc, t, s->clientFd);
    }
    byId_.erase(s->id);
    delete s;
    return t;
}

std::size_t
Proxy::pickBackend()
{
    // Plain rotation, skipping ejected backends. An ejected backend whose
    // sit-out elapsed is readmitted half-open: it gets real traffic again
    // but one more failure re-ejects it immediately.
    const std::size_t n = backends_.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t bi = backendCursor_++ % n;
        Health &h = health_[bi];
        if (!h.ejected)
            return bi;
        if (m_.eventQueue().now() >= h.retryAt) {
            h.ejected = false;
            h.consecFails = tuning_.ejectThreshold > 0
                                ? tuning_.ejectThreshold - 1
                                : 0;
            ++backendReadmissions_;
            return bi;
        }
    }
    // Everything ejected: no better choice than plain rotation.
    return backendCursor_++ % n;
}

void
Proxy::noteBackendFailure(std::size_t bi)
{
    Health &h = health_[bi];
    ++h.consecFails;
    if (!h.ejected && tuning_.ejectThreshold > 0 &&
        h.consecFails >= tuning_.ejectThreshold) {
        h.ejected = true;
        Tick period = tuning_.ejectPeriod > 0 ? tuning_.ejectPeriod
                                              : 4 * tuning_.backendTimeout;
        h.retryAt = m_.eventQueue().now() + period;
        ++backendEjections_;
    }
}

Tick
Proxy::connectBackend(ProcState &ps, Session *s, Tick t)
{
    KernelStack &k = m_.kernel();
    std::size_t bi = pickBackend();
    ++s->attempts;
    s->backendIdx = bi;
    KernelStack::ConnectResult cr =
        k.connect(ps.proc, t, backends_[bi], backendPort_);
    t = cr.t;
    if (!cr.sock) {
        ++connectFailures_;
        return closeSession(ps, s, t);
    }
    s->backendFd = cr.fd;
    s->phase = Phase::kBackendConnect;
    sessions_[skey(ps.proc, cr.fd)] = s;
    t = k.epollAdd(ps.proc, t, cr.fd);
    if (tuning_.backendTimeout > 0)
        armBackendTimeout(s->id, s->attempts);
    return t;
}

void
Proxy::armBackendTimeout(std::uint64_t sid, int attempt)
{
    m_.eventQueue().scheduleIn(tuning_.backendTimeout,
                               [this, sid, attempt] {
        auto it = byId_.find(sid);
        if (it == byId_.end())
            return;   // session finished in time
        Session *s = it->second;
        if (s->attempts != attempt)
            return;   // a newer attempt owns the timeout now
        if (s->phase != Phase::kBackendConnect &&
            s->phase != Phase::kBackendWait)
            return;
        ++backendTimeouts_;
        // The timeout fires in "kernel event" context; the proxy reacts
        // from process context, so post the recovery work to the owning
        // core where it is cycle-accounted like any other app work.
        ProcState &ps = procs_.at(s->procIdx);
        m_.cpu().post(ps.core, TaskPrio::kProcess,
                      [this, sid](Tick start) {
                          return onBackendTimeout(sid, start);
                      });
    });
}

Tick
Proxy::onBackendTimeout(std::uint64_t sid, Tick t)
{
    auto it = byId_.find(sid);
    if (it == byId_.end())
        return t;   // raced with completion
    Session *s = it->second;
    if (s->phase != Phase::kBackendConnect &&
        s->phase != Phase::kBackendWait)
        return t;
    ProcState &ps = procs_.at(s->procIdx);
    KernelStack &k = m_.kernel();

    noteBackendFailure(s->backendIdx);
    if (s->backendFd >= 0) {
        // Abandon the stuck backend connection.
        sessions_.erase(skey(ps.proc, s->backendFd));
        if (k.sockFromFd(ps.proc, s->backendFd))
            t = k.close(ps.proc, t, s->backendFd);
        s->backendFd = -1;
    }
    if (s->attempts > tuning_.maxRetries) {
        ++sessionFailures_;
        return closeSession(ps, s, t);
    }
    ++backendRetries_;
    const Tick redisp_begin = t;
    t += serviceCost() / 2;   // re-dispatch decision
    if (m_.tracer().enabled()) {
        if (Socket *cs = k.sockFromFd(ps.proc, s->clientFd))
            m_.tracer().connSpans().add(cs->id, ConnStage::kAppProcess,
                                        ps.core, redisp_begin, t);
    }
    return connectBackend(ps, s, t);
}

Tick
Proxy::onConnReadable(ProcState &ps, int fd, Tick t)
{
    KernelStack &k = m_.kernel();
    Socket *sock = k.sockFromFd(ps.proc, fd);
    if (!sock)
        return t;

    auto it = sessions_.find(skey(ps.proc, fd));
    Session *s = nullptr;
    if (it == sessions_.end()) {
        // First event on a freshly accepted client connection.
        s = new Session();
        s->id = nextSessionId_++;
        s->procIdx = static_cast<std::size_t>(&ps - procs_.data());
        s->clientFd = fd;
        sessions_[skey(ps.proc, fd)] = s;
        byId_[s->id] = s;
    } else {
        s = it->second;
    }

    if (fd == s->clientFd) {
        KernelStack::ReadResult r = k.read(ps.proc, t, fd);
        t = r.t;
        if (r.bytes > 0 && s->backendFd < 0) {
            // Got the request: pick a backend and connect (non-blocking).
            s->requestBytes = r.bytes;
            const Tick proc_begin = t;
            t += serviceCost();
            if (m_.tracer().enabled())
                m_.tracer().connSpans().add(sock->id,
                                            ConnStage::kAppProcess,
                                            ps.core, proc_begin, t);
            return connectBackend(ps, s, t);
        } else if (r.finSeen && r.bytes == 0) {
            // Client hung up.
            return closeSession(ps, s, t);
        }
        return t;
    }

    // Backend fd.
    if (s->phase == Phase::kBackendConnect) {
        Socket *bs = k.sockFromFd(ps.proc, fd);
        if (bs && bs->state == TcpState::kEstablished) {
            // Connect completed: forward the request.
            t = k.write(ps.proc, t, fd, s->requestBytes);
            s->phase = Phase::kBackendWait;
        }
        if (bs && bs->rxPending == 0 && !bs->peerFin)
            return t;
        // Fall through when the response already raced in.
    }

    KernelStack::ReadResult r = k.read(ps.proc, t, fd);
    t = r.t;
    if (r.bytes > 0) {
        // Relay the response to the client and tear the session down:
        // passive close toward the backend (it FINed with the response),
        // active close toward the client.
        health_[s->backendIdx].consecFails = 0;
        std::uint32_t respBytes = responseBytes_;
        if (connDegraded(ps.proc, s->clientFd)) {
            // Brownout: relay a trimmed response to shed downstream work.
            if (admCfg_)
                respBytes = admCfg_->brownoutBytes;
            ++servedDegraded_;
        }
        t = k.write(ps.proc, t, s->clientFd, respBytes);
        ++served_;
        return closeSession(ps, s, t);
    }
    if (r.finSeen) {
        // Backend closed without data: give up on the session.
        return closeSession(ps, s, t);
    }
    return t;
}

} // namespace fsim
