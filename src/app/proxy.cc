#include "app/proxy.hh"

#include <unordered_set>

#include "sim/logging.hh"

namespace fsim
{

Proxy::Proxy(Machine &m, std::vector<IpAddr> backends, Port backend_port,
             std::uint32_t response_bytes)
    : AppBase(m), backends_(std::move(backends)),
      backendPort_(backend_port), responseBytes_(response_bytes)
{
    fsim_assert(!backends_.empty());
}

Proxy::~Proxy()
{
    // Sessions still in flight when the run ends are owned here; each
    // may be keyed under both its client and backend fd, so dedupe.
    std::unordered_set<Session *> live;
    for (const auto &kv : sessions_)
        live.insert(kv.second);
    for (Session *s : live)
        delete s;
}

Tick
Proxy::serviceCost() const
{
    return m_.costs().appServiceProxy;
}

Tick
Proxy::closeSession(ProcState &ps, Session *s, Tick t)
{
    KernelStack &k = m_.kernel();
    if (s->backendFd >= 0) {
        sessions_.erase(skey(ps.proc, s->backendFd));
        if (k.sockFromFd(ps.proc, s->backendFd))
            t = k.close(ps.proc, t, s->backendFd);
    }
    if (s->clientFd >= 0) {
        sessions_.erase(skey(ps.proc, s->clientFd));
        if (k.sockFromFd(ps.proc, s->clientFd))
            t = k.close(ps.proc, t, s->clientFd);
    }
    delete s;
    return t;
}

Tick
Proxy::onConnReadable(ProcState &ps, int fd, Tick t)
{
    KernelStack &k = m_.kernel();
    Socket *sock = k.sockFromFd(ps.proc, fd);
    if (!sock)
        return t;

    auto it = sessions_.find(skey(ps.proc, fd));
    Session *s = nullptr;
    if (it == sessions_.end()) {
        // First event on a freshly accepted client connection.
        s = new Session();
        s->clientFd = fd;
        sessions_[skey(ps.proc, fd)] = s;
    } else {
        s = it->second;
    }

    if (fd == s->clientFd) {
        KernelStack::ReadResult r = k.read(ps.proc, t, fd);
        t = r.t;
        if (r.bytes > 0 && s->backendFd < 0) {
            // Got the request: pick a backend and connect (non-blocking).
            s->requestBytes = r.bytes;
            t += serviceCost();
            IpAddr backend = backends_[backendCursor_++ % backends_.size()];
            KernelStack::ConnectResult cr =
                k.connect(ps.proc, t, backend, backendPort_);
            t = cr.t;
            if (!cr.sock) {
                ++connectFailures_;
                return closeSession(ps, s, t);
            }
            s->backendFd = cr.fd;
            s->phase = Phase::kBackendConnect;
            sessions_[skey(ps.proc, cr.fd)] = s;
            t = k.epollAdd(ps.proc, t, cr.fd);
        } else if (r.finSeen && r.bytes == 0) {
            // Client hung up.
            return closeSession(ps, s, t);
        }
        return t;
    }

    // Backend fd.
    if (s->phase == Phase::kBackendConnect) {
        Socket *bs = k.sockFromFd(ps.proc, fd);
        if (bs && bs->state == TcpState::kEstablished) {
            // Connect completed: forward the request.
            t = k.write(ps.proc, t, fd, s->requestBytes);
            s->phase = Phase::kBackendWait;
        }
        if (bs && bs->rxPending == 0 && !bs->peerFin)
            return t;
        // Fall through when the response already raced in.
    }

    KernelStack::ReadResult r = k.read(ps.proc, t, fd);
    t = r.t;
    if (r.bytes > 0) {
        // Relay the response to the client and tear the session down:
        // passive close toward the backend (it FINed with the response),
        // active close toward the client.
        t = k.write(ps.proc, t, s->clientFd, responseBytes_);
        ++served_;
        return closeSession(ps, s, t);
    }
    if (r.finSeen) {
        // Backend closed without data: give up on the session.
        return closeSession(ps, s, t);
    }
    return t;
}

} // namespace fsim
