/**
 * @file
 * HAProxy-like HTTP load-balancer model.
 *
 * For every client request the proxy opens an *active* connection to a
 * backend, forwards the request, relays the response back, and closes
 * both sides (keep-alive off, as in the paper's production deployment).
 * The active side is what exercises Receive Flow Deliver: without it the
 * backend's reply lands on an RSS-random core.
 */

#ifndef FSIM_APP_PROXY_HH
#define FSIM_APP_PROXY_HH

#include <unordered_map>
#include <vector>

#include "app/app_base.hh"

namespace fsim
{

/** HTTP proxy (one process per core, active connections to backends). */
class Proxy : public AppBase
{
  public:
    /**
     * @param backends Backend server addresses (port 80 assumed so RFD
     *        rule 1 classifies replies as active incoming).
     */
    Proxy(Machine &m, std::vector<IpAddr> backends, Port backend_port = 80,
          std::uint32_t response_bytes = 64);
    ~Proxy() override;

    /** Backend fault-tolerance knobs. Defaults keep every legacy path:
     *  no timeout, no retries, no health ejection. */
    struct Tuning
    {
        /** Per-attempt backend timeout (0 = disabled). */
        Tick backendTimeout = 0;
        /** Retries after the first attempt before the session fails. */
        int maxRetries = 2;
        /** Consecutive failures that eject a backend from rotation. */
        int ejectThreshold = 3;
        /** Ejection duration (0 = 4 x backendTimeout). */
        Tick ejectPeriod = 0;
    };

    void setTuning(const Tuning &t) { tuning_ = t; }

    /** Active connections the proxy failed to open (port exhaustion). */
    std::uint64_t connectFailures() const { return connectFailures_; }
    /** @name Backend-fault statistics */
    /** @{ */
    std::uint64_t backendTimeouts() const { return backendTimeouts_; }
    std::uint64_t backendRetries() const { return backendRetries_; }
    std::uint64_t backendEjections() const { return backendEjections_; }
    std::uint64_t backendReadmissions() const
    {
        return backendReadmissions_;
    }
    /** Sessions abandoned after exhausting retries. */
    std::uint64_t sessionFailures() const { return sessionFailures_; }
    /** Is backend @p i currently ejected from the rotation? */
    bool backendEjected(std::size_t i) const
    {
        return health_.at(i).ejected;
    }
    /** @} */

  protected:
    Tick onConnReadable(ProcState &ps, int fd, Tick t) override;
    Tick serviceCost() const override;

  private:
    enum class Phase
    {
        kClientWait,     //!< client fd, waiting for the request
        kBackendConnect, //!< backend fd, waiting for SYN-ACK
        kBackendWait,    //!< backend fd, waiting for the response
    };

    struct Session
    {
        std::uint64_t id = 0;
        std::size_t procIdx = 0;
        int clientFd = -1;
        int backendFd = -1;
        Phase phase = Phase::kClientWait;
        std::uint32_t requestBytes = 0;
        int attempts = 0;           //!< backend connects tried so far
        std::size_t backendIdx = 0; //!< backend of the current attempt
    };

    /** Per-backend circuit-breaker state. */
    struct Health
    {
        int consecFails = 0;
        bool ejected = false;
        Tick retryAt = 0;   //!< when an ejected backend may be probed
    };

    /** Key sessions by (process, fd). */
    static std::uint64_t
    skey(int proc, int fd)
    {
        return (static_cast<std::uint64_t>(proc) << 32) |
               static_cast<std::uint32_t>(fd);
    }

    Tick closeSession(ProcState &ps, Session *s, Tick t);
    Tick connectBackend(ProcState &ps, Session *s, Tick t);
    Tick onBackendTimeout(std::uint64_t sid, Tick t);
    void armBackendTimeout(std::uint64_t sid, int attempt);
    std::size_t pickBackend();
    void noteBackendFailure(std::size_t bi);

    std::vector<IpAddr> backends_;
    Port backendPort_;
    std::uint32_t responseBytes_;
    Tuning tuning_;
    std::vector<Health> health_;
    std::size_t backendCursor_ = 0;
    std::uint64_t connectFailures_ = 0;
    std::uint64_t backendTimeouts_ = 0;
    std::uint64_t backendRetries_ = 0;
    std::uint64_t backendEjections_ = 0;
    std::uint64_t backendReadmissions_ = 0;
    std::uint64_t sessionFailures_ = 0;
    std::uint64_t nextSessionId_ = 1;
    std::unordered_map<std::uint64_t, Session *> sessions_;
    std::unordered_map<std::uint64_t, Session *> byId_;
};

} // namespace fsim

#endif // FSIM_APP_PROXY_HH
