/**
 * @file
 * HAProxy-like HTTP load-balancer model.
 *
 * For every client request the proxy opens an *active* connection to a
 * backend, forwards the request, relays the response back, and closes
 * both sides (keep-alive off, as in the paper's production deployment).
 * The active side is what exercises Receive Flow Deliver: without it the
 * backend's reply lands on an RSS-random core.
 */

#ifndef FSIM_APP_PROXY_HH
#define FSIM_APP_PROXY_HH

#include <unordered_map>
#include <vector>

#include "app/app_base.hh"

namespace fsim
{

/** HTTP proxy (one process per core, active connections to backends). */
class Proxy : public AppBase
{
  public:
    /**
     * @param backends Backend server addresses (port 80 assumed so RFD
     *        rule 1 classifies replies as active incoming).
     */
    Proxy(Machine &m, std::vector<IpAddr> backends, Port backend_port = 80,
          std::uint32_t response_bytes = 64);
    ~Proxy() override;

    /** Active connections the proxy failed to open (port exhaustion). */
    std::uint64_t connectFailures() const { return connectFailures_; }

  protected:
    Tick onConnReadable(ProcState &ps, int fd, Tick t) override;
    Tick serviceCost() const override;

  private:
    enum class Phase
    {
        kClientWait,     //!< client fd, waiting for the request
        kBackendConnect, //!< backend fd, waiting for SYN-ACK
        kBackendWait,    //!< backend fd, waiting for the response
    };

    struct Session
    {
        int clientFd = -1;
        int backendFd = -1;
        Phase phase = Phase::kClientWait;
        std::uint32_t requestBytes = 0;
    };

    /** Key sessions by (process, fd). */
    static std::uint64_t
    skey(int proc, int fd)
    {
        return (static_cast<std::uint64_t>(proc) << 32) |
               static_cast<std::uint32_t>(fd);
    }

    Tick closeSession(ProcState &ps, Session *s, Tick t);

    std::vector<IpAddr> backends_;
    Port backendPort_;
    std::uint32_t responseBytes_;
    std::size_t backendCursor_ = 0;
    std::uint64_t connectFailures_ = 0;
    std::unordered_map<std::uint64_t, Session *> sessions_;
};

} // namespace fsim

#endif // FSIM_APP_PROXY_HH
