#include "app/syn_flood.hh"

#include "sim/logging.hh"

namespace fsim
{

SynFlood::SynFlood(EventQueue &eq, Wire &wire, std::vector<IpAddr> targets,
                   Port target_port)
    : eq_(eq), wire_(wire), targets_(std::move(targets)),
      targetPort_(target_port)
{
    fsim_assert(!targets_.empty());
    // Absorb the victim's SYN-ACKs (and RSTs/cookies) without ever
    // answering: the attacker's half of the handshake stays silent.
    wire_.attachRange(kAttackerBase,
                      kAttackerBase + static_cast<IpAddr>(kAttackerIps - 1),
                      [this](const Packet &) { ++synAcksAbsorbed_; });
}

void
SynFlood::addWindow(Tick start, Tick end, double syns_per_sec)
{
    fsim_assert(end > start && syns_per_sec > 0.0);
    Tick spacing = ticksFromSeconds(1.0 / syns_per_sec);
    if (spacing == 0)
        spacing = 1;
    eq_.schedule(start, [this, end, spacing] { fire(end, spacing); });
}

void
SynFlood::fire(Tick end, Tick spacing)
{
    if (eq_.now() >= end)
        return;

    // Unique source tuple per SYN: rotate attacker IPs fastest, then
    // the ephemeral port space.
    IpAddr src = kAttackerBase +
                 static_cast<IpAddr>(cursor_ % kAttackerIps);
    Port sport = static_cast<Port>(
        1024 + (cursor_ / kAttackerIps) % (65536 - 1024));
    IpAddr dst = targets_[cursor_ % targets_.size()];
    ++cursor_;

    Packet syn;
    syn.tuple = FiveTuple{src, dst, sport, targetPort_};
    syn.flags = kSyn;
    wire_.transmit(syn, eq_.now());
    ++synsSent_;

    eq_.schedule(eq_.now() + spacing,
                 [this, end, spacing] { fire(end, spacing); });
}

} // namespace fsim
