/**
 * @file
 * SYN-flood attacker: an ideal wire endpoint that sprays SYNs at the
 * server's listen addresses and never answers the SYN-ACKs, so the
 * handshakes can never complete. Each half-open connection pins a
 * SynRcvd TCB (and a SYN-queue slot) on the victim until the kernel's
 * half-open reaper fires — exactly the resource-exhaustion attack SYN
 * cookies exist to absorb.
 *
 * The attacker is fully deterministic: SYN arrival ticks are computed
 * from the window bounds and rate (fixed spacing), and source tuples
 * rotate through a dedicated attacker address range, so armed floods
 * keep same-seed runs bit-identical.
 */

#ifndef FSIM_APP_SYN_FLOOD_HH
#define FSIM_APP_SYN_FLOOD_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace fsim
{

/** Deterministic SYN-flood source. */
class SynFlood
{
  public:
    /** Attacker source range: 198.18.0.0/15 (RFC 2544 benchmark space),
     *  disjoint from client (172.16/12) and backend (10/8) ranges. */
    static constexpr IpAddr kAttackerBase = 0xc6120001;   // 198.18.0.1
    static constexpr int kAttackerIps = 256;

    SynFlood(EventQueue &eq, Wire &wire, std::vector<IpAddr> targets,
             Port target_port);

    /**
     * Flood at @p syns_per_sec during [start, end). May be called once
     * per syn_flood fault window; windows schedule independently.
     */
    void addWindow(Tick start, Tick end, double syns_per_sec);

    std::uint64_t synsSent() const { return synsSent_; }
    /** SYN-ACKs the victim wasted on the flood (never answered). */
    std::uint64_t synAcksAbsorbed() const { return synAcksAbsorbed_; }

  private:
    void fire(Tick end, Tick spacing);

    EventQueue &eq_;
    Wire &wire_;
    std::vector<IpAddr> targets_;
    Port targetPort_;
    std::uint64_t synsSent_ = 0;
    std::uint64_t synAcksAbsorbed_ = 0;
    std::uint64_t cursor_ = 0;   //!< rotates target/src-ip/src-port
};

} // namespace fsim

#endif // FSIM_APP_SYN_FLOOD_HH
