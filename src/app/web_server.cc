#include "app/web_server.hh"

namespace fsim
{

WebServer::WebServer(Machine &m, std::uint32_t response_bytes,
                     bool keep_alive)
    : AppBase(m), responseBytes_(response_bytes), keepAlive_(keep_alive)
{
}

Tick
WebServer::serviceCost() const
{
    return m_.costs().appServiceWeb;
}

Tick
WebServer::onConnReadable(ProcState &ps, int fd, Tick t)
{
    KernelStack &k = m_.kernel();
    Socket *sock = k.sockFromFd(ps.proc, fd);
    if (!sock)
        return t;   // already closed earlier in this loop iteration

    KernelStack::ReadResult r = k.read(ps.proc, t, fd);
    t = r.t;

    if (r.bytes > 0) {
        // Parse request + build response from the in-memory cache. Under
        // brownout the degraded page is smaller and cheaper to build.
        bool degraded = connDegraded(ps.proc, fd);
        Tick cost = serviceCost();
        std::uint32_t respBytes = responseBytes_;
        if (degraded && admCfg_) {
            cost /= admCfg_->brownoutCostDivisor;
            respBytes = admCfg_->brownoutBytes;
        }
        const Tick proc_begin = t;
        t += cost;
        if (m_.tracer().enabled())
            m_.tracer().connSpans().add(sock->id, ConnStage::kAppProcess,
                                        ps.core, proc_begin, t);
        t = k.write(ps.proc, t, fd, respBytes);
        ++served_;
        if (degraded)
            ++servedDegraded_;
        if (!keepAlive_ || r.connClose) {
            // keep-alive off (or the request said "Connection: close"):
            // active close right after the response.
            admRelease(ps.proc, fd);
            t = k.close(ps.proc, t, fd);
        } else if (r.finSeen) {
            admRelease(ps.proc, fd);
            t = k.close(ps.proc, t, fd);
        }
    } else if (r.finSeen) {
        // Client closed (keep-alive) or went away before the request.
        admRelease(ps.proc, fd);
        t = k.close(ps.proc, t, fd);
    }
    return t;
}

} // namespace fsim
