/**
 * @file
 * Nginx-like static web server model.
 *
 * Serves a cached 64-byte page per request (the paper's Nginx benchmark:
 * 64 B file, in memory, HTTP keep-alive disabled). Each request is one
 * packet; after writing the response the server closes the connection
 * ("Connection: close"), taking the active-close path through FIN_WAIT
 * and TIME_WAIT.
 */

#ifndef FSIM_APP_WEB_SERVER_HH
#define FSIM_APP_WEB_SERVER_HH

#include "app/app_base.hh"

namespace fsim
{

/** Static web server (one process per core). */
class WebServer : public AppBase
{
  public:
    /**
     * @param response_bytes Served page size (paper: 64).
     * @param keep_alive Serve multiple requests per connection; the
     *        client closes (the paper's experiments disable this).
     */
    explicit WebServer(Machine &m, std::uint32_t response_bytes = 64,
                       bool keep_alive = false);

  protected:
    Tick onConnReadable(ProcState &ps, int fd, Tick t) override;
    Tick serviceCost() const override;

  private:
    std::uint32_t responseBytes_;
    bool keepAlive_;
};

} // namespace fsim

#endif // FSIM_APP_WEB_SERVER_HH
