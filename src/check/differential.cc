#include "check/differential.hh"

#include <algorithm>
#include <sstream>

#include "fault/fault_plan.hh"
#include "sim/logging.hh"

namespace fsim
{

namespace
{

KernelTotals
runOneKernel(const DifferentialWorkload &wl, const KernelConfig &kc,
             const std::string &name)
{
    ExperimentConfig cfg;
    cfg.app = wl.app;
    cfg.machine.cores = wl.cores;
    cfg.machine.kernel = kc;
    cfg.machine.seed = wl.seed;
    cfg.concurrencyPerCore = wl.concurrencyPerCore;
    cfg.requestsPerConn = wl.requestsPerConn;
    cfg.maxConns = wl.maxConns;
    cfg.checkLevel = CheckLevel::kPeriodic;
    cfg.clientTimeout = ticksFromSeconds(wl.clientTimeoutSec);
    cfg.clientRtoBase = ticksFromUsec(
        static_cast<std::uint64_t>(wl.clientRtoMsec * 1000.0));
    if (!wl.faultPlan.empty()) {
        std::string err;
        bool ok = parseFaultPlan(wl.faultPlan, cfg.faults, err);
        fsim_assert(ok);
        fsim_assert(wl.clientTimeoutSec > 0.0);
    }

    Testbed bed(cfg);
    // Quiesce (leak) checks live in their own registry: they only hold
    // once the run drains, so they must not join the periodic passes
    // bed.checks() performs mid-run. Under faults, abandoned handshakes
    // legitimately strand server TCBs until their keepalive horizon, so
    // the leak bar only applies to fault-free runs.
    InvariantRegistry quiesce;
    if (wl.faultPlan.empty())
        registerQuiesceInvariants(quiesce, bed.machine(), bed.load());

    EventQueue &eq = bed.eventQueue();
    HttpLoad &load = bed.load();
    Tick cap = ticksFromSeconds(wl.maxSimSec);
    Tick chunk = ticksFromSeconds(0.01);

    bed.startLoad();
    while (eq.now() < cap &&
           (load.inFlight() > 0 || load.started() < wl.maxConns))
        bed.runUntilChecked(std::min(cap, eq.now() + chunk));

    KernelTotals t;
    t.kernel = name;
    t.drained = load.inFlight() == 0 && load.started() >= wl.maxConns;
    t.drainTick = eq.now();

    // Let the kernel finish housekeeping (TIME_WAIT reaping, timer
    // bases going idle) so the leak checks see the true final state.
    // Bounded workloads quiesce: timer bases only reschedule their
    // jiffy tick while timers are pending.
    if (t.drained) {
        eq.runAll();
        quiesce.runAll(eq.now());
    }
    bed.checks().runAll(eq.now());

    t.started = load.started();
    t.completed = load.completed();
    t.failed = load.failed();
    t.timeouts = load.timeouts();
    t.responses = load.responses();
    t.bytesReceived = load.bytesReceived();
    t.served = bed.app().served();
    t.lockWaitTicks = 0;
    for (const auto &kv : bed.machine().locks().snapshot())
        t.lockWaitTicks += kv.second.waitTicks;
    t.busyTicks = bed.machine().cpu().totalBusyTicks();
    t.fingerprint = bed.currentFingerprint();
    t.invariants = bed.checks().report();
    t.invariants.merge(quiesce.report());
    return t;
}

void
diffField(std::vector<std::string> &out, const char *name,
          std::uint64_t base, std::uint64_t fast)
{
    if (base == fast)
        return;
    std::ostringstream os;
    os << name << ": " << base << " (base) vs " << fast << " (fastsocket)";
    out.push_back(os.str());
}

} // namespace

DifferentialOutcome
runDifferential(const DifferentialWorkload &wl)
{
    DifferentialOutcome out;
    out.base = runOneKernel(wl, KernelConfig::base2632(), "base-2.6.32");
    out.fast = runOneKernel(wl, KernelConfig::fastsocket(), "fastsocket");

    diffField(out.mismatches, "started", out.base.started,
              out.fast.started);
    diffField(out.mismatches, "completed", out.base.completed,
              out.fast.completed);
    diffField(out.mismatches, "failed", out.base.failed, out.fast.failed);
    diffField(out.mismatches, "timeouts", out.base.timeouts,
              out.fast.timeouts);
    diffField(out.mismatches, "responses", out.base.responses,
              out.fast.responses);
    diffField(out.mismatches, "bytesReceived", out.base.bytesReceived,
              out.fast.bytesReceived);
    diffField(out.mismatches, "served", out.base.served, out.fast.served);

    // Perf direction: on a contended machine Fastsocket must either
    // finish the fixed workload sooner or burn fewer lock-wait cycles
    // doing it (in practice both). Single-digit-core runs can tie, so
    // only assert from 4 cores up.
    if (wl.cores >= 4 && out.base.drained && out.fast.drained) {
        bool faster = out.fast.drainTick <= out.base.drainTick;
        bool cheaper = out.fast.lockWaitTicks < out.base.lockWaitTicks;
        out.perfDirectionOk = faster || cheaper;
        std::ostringstream os;
        os << "drain " << out.base.drainTick << " -> "
           << out.fast.drainTick << " ticks, lock-wait "
           << out.base.lockWaitTicks << " -> " << out.fast.lockWaitTicks;
        out.perfDetail = os.str();
    }
    return out;
}

std::string
DifferentialOutcome::summary() const
{
    std::ostringstream os;
    os << "app " << (appMatch() ? "MATCH" : "MISMATCH");
    for (const std::string &m : mismatches)
        os << "\n  " << m;
    if (!base.drained || !fast.drained)
        os << "\n  non-drain: base=" << (base.drained ? "ok" : "STUCK")
           << " fastsocket=" << (fast.drained ? "ok" : "STUCK");
    os << "\nperf " << (perfDirectionOk ? "OK" : "WRONG-DIRECTION");
    if (!perfDetail.empty())
        os << " (" << perfDetail << ")";
    os << "\ninvariants base: " << base.invariants.summary()
       << "\ninvariants fastsocket: " << fast.invariants.summary();
    return os.str();
}

} // namespace fsim
