/**
 * @file
 * Differential oracle: run the SAME bounded workload under the baseline
 * 2.6.32 kernel and under Fastsocket, then compare.
 *
 * The paper's whole claim is that Fastsocket changes *how fast* the
 * kernel serves connections without changing *what* it serves. That
 * split is directly checkable in the simulator: application-level
 * observables (connections completed, responses, bytes delivered to
 * clients) must be bit-identical across kernels, while performance
 * observables (drain time, lock wait cycles) must differ in the paper's
 * direction once enough cores are contended.
 *
 * Any app-level mismatch means one of the kernel models corrupted,
 * dropped, or duplicated work — exactly the class of bug a throughput
 * benchmark can never see.
 */

#ifndef FSIM_CHECK_DIFFERENTIAL_HH
#define FSIM_CHECK_DIFFERENTIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "harness/experiment.hh"

namespace fsim
{

/** A bounded workload both kernels must serve to completion. */
struct DifferentialWorkload
{
    AppKind app = AppKind::kNginx;
    int cores = 4;
    /** Total connections; bounded so both runs quiesce. */
    std::uint64_t maxConns = 2000;
    int concurrencyPerCore = 50;
    int requestsPerConn = 1;
    std::uint64_t seed = 1;
    /** Hard sim-time cap; exceeding it is reported as a non-drain. */
    double maxSimSec = 20.0;

    /**
     * Fault plan (parseFaultPlan text, empty = none). Wire-fault fates
     * are pure content hashes, so both kernels see the identical fault
     * pattern and the app-observable equality bar still applies. Pick a
     * client RTO well above worst-case latency (default 20ms) so
     * retransmission decisions cannot depend on kernel speed.
     */
    std::string faultPlan;
    double clientTimeoutSec = 0.0;  //!< required > 0 with a fault plan
    double clientRtoMsec = 0.0;     //!< client retx base RTO (0 = off)
};

/** What one kernel produced for the workload. */
struct KernelTotals
{
    std::string kernel;              //!< "base-2.6.32" / "fastsocket"
    bool drained = false;            //!< quiesced under the cap

    /** @name Application-level observables (must match across kernels) */
    /** @{ */
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t responses = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t served = 0;        //!< server-side response count
    /** @} */

    /** @name Performance observables (expected to differ) */
    /** @{ */
    Tick drainTick = 0;              //!< sim time at quiesce
    std::uint64_t lockWaitTicks = 0; //!< spin-wait cycles, all classes
    std::uint64_t busyTicks = 0;     //!< total core busy cycles
    /** @} */

    std::uint64_t fingerprint = 0;
    InvariantReport invariants;
};

/** Result of one differential run. */
struct DifferentialOutcome
{
    KernelTotals base;
    KernelTotals fast;
    /** App-level observables that differ ("completed: 2000 vs 1999"). */
    std::vector<std::string> mismatches;
    /** Perf moved in the paper's direction (only asserted >= 4 cores:
     *  below that the baseline is not meaningfully contended). */
    bool perfDirectionOk = true;
    std::string perfDetail;

    bool appMatch() const { return mismatches.empty(); }
    bool ok() const
    {
        return appMatch() && perfDirectionOk && base.invariants.ok() &&
               fast.invariants.ok() && base.drained && fast.drained;
    }
    std::string summary() const;
};

/** Run @p wl under both kernels and diff the outcomes. */
DifferentialOutcome runDifferential(const DifferentialWorkload &wl);

} // namespace fsim

#endif // FSIM_CHECK_DIFFERENTIAL_HH
