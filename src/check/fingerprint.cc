#include "check/fingerprint.hh"

#include <cstdio>
#include <cstring>

namespace fsim
{

void
Fingerprint::mix(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
}

void
Fingerprint::mix(const std::string &s)
{
    mix(static_cast<std::uint64_t>(s.size()));
    std::uint64_t word = 0;
    int n = 0;
    for (char c : s) {
        word = (word << 8) | static_cast<unsigned char>(c);
        if (++n == 8) {
            mix(word);
            word = 0;
            n = 0;
        }
    }
    if (n)
        mix(word);
}

std::string
Fingerprint::hex() const
{
    return hex(h_);
}

std::string
Fingerprint::hex(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace fsim
