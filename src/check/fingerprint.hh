/**
 * @file
 * Run fingerprinting for the determinism harness.
 *
 * A Fingerprint is a rolling 64-bit hash that components fold observable
 * run state into: the Wire folds every delivered packet (the full
 * network event sequence of a run), and the harness folds the final
 * counters of a run on top. Two runs with the same seed and config must
 * produce bit-identical fingerprints — and tracing must not perturb
 * them, which pins the "observability charges no virtual cycles"
 * guarantee.
 */

#ifndef FSIM_CHECK_FINGERPRINT_HH
#define FSIM_CHECK_FINGERPRINT_HH

#include <cstdint>
#include <string>

namespace fsim
{

/** Rolling FNV-1a-style 64-bit hash with avalanche mixing. */
class Fingerprint
{
  public:
    /** FNV-1a 64-bit offset basis. */
    static constexpr std::uint64_t kSeed = 0xcbf29ce484222325ULL;

    explicit Fingerprint(std::uint64_t seed = kSeed) : h_(seed) {}

    /** Fold one 64-bit word. */
    void
    mix(std::uint64_t v)
    {
        // FNV-1a over the 8 bytes, then a splitmix64 finalization round
        // so single-bit input changes avalanche across the whole state.
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
        std::uint64_t z = h_ + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        h_ = z ^ (z >> 31);
    }

    void mix(double v);
    void mix(const std::string &s);

    std::uint64_t value() const { return h_; }

    /** "0x%016x" rendering (the JSON/CLI format). */
    std::string hex() const;
    static std::string hex(std::uint64_t v);

  private:
    std::uint64_t h_;
};

} // namespace fsim

#endif // FSIM_CHECK_FINGERPRINT_HH
