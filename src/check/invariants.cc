#include "check/invariants.hh"

#include <cstdio>

#include "app/app_base.hh"
#include "app/http_load.hh"
#include "app/machine.hh"
#include "net/wire.hh"
#include "overload/admission.hh"

namespace fsim
{

std::string
InvariantReport::summary() const
{
    char buf[160];
    if (ok()) {
        std::snprintf(buf, sizeof(buf), "ok, %llu checks",
                      static_cast<unsigned long long>(checksRun));
        return buf;
    }
    std::string s;
    std::snprintf(buf, sizeof(buf), "%llu violation(s):",
                  static_cast<unsigned long long>(violationCount));
    s = buf;
    for (const InvariantViolation &v : violations) {
        s += " [";
        s += v.name;
        s += "]";
    }
    return s;
}

void
InvariantReport::merge(const InvariantReport &other)
{
    checksRun += other.checksRun;
    violationCount += other.violationCount;
    for (const InvariantViolation &v : other.violations) {
        if (violations.size() >= InvariantRegistry::kMaxStored)
            break;
        violations.push_back(v);
    }
}

void
InvariantRegistry::add(std::string name, Check fn)
{
    checks_.push_back(Entry{std::move(name), std::move(fn)});
}

std::size_t
InvariantRegistry::runAll(Tick t)
{
    std::size_t found = 0;
    for (const Entry &e : checks_) {
        ++report_.checksRun;
        std::string why;
        if (e.fn(t, why))
            continue;
        ++found;
        ++report_.violationCount;
        if (report_.violations.size() < kMaxStored)
            report_.violations.push_back(
                InvariantViolation{e.name, std::move(why), t});
    }
    return found;
}

namespace
{

std::string
eqDetail(const char *lhs, std::uint64_t lv, const char *rhs,
         std::uint64_t rv)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%s = %llu but %s = %llu", lhs,
                  static_cast<unsigned long long>(lv), rhs,
                  static_cast<unsigned long long>(rv));
    return buf;
}

} // anonymous namespace

void
registerStandardInvariants(InvariantRegistry &reg, Machine &machine,
                           HttpLoad &load, Wire &wire)
{
    reg.add("packet-conservation", [&wire](Tick, std::string &why) {
        // Every injected duplicate adds one extra delivery, so it sits on
        // the "sent" side of the ledger next to transmitted().
        std::uint64_t sent = wire.transmitted() + wire.duplicated();
        std::uint64_t accounted = wire.delivered() + wire.lost() +
                                  wire.dropped() + wire.inFlight();
        if (sent == accounted)
            return true;
        why = eqDetail("transmitted+duplicated", sent,
                       "delivered+lost+dropped+inflight", accounted);
        return false;
    });

    reg.add("connection-conservation", [&load](Tick, std::string &why) {
        std::uint64_t accounted = load.completed() + load.failed() +
                                  load.inFlight();
        if (load.started() == accounted)
            return true;
        why = eqDetail("started", load.started(),
                       "completed+failed+inflight", accounted);
        return false;
    });

    reg.add("socket-conservation", [&machine](Tick, std::string &why) {
        const KernelStats &ks = machine.kernel().stats();
        std::uint64_t accounted = ks.socketsDestroyed +
                                  machine.kernel().liveSockets();
        if (ks.socketsCreated == accounted)
            return true;
        why = eqDetail("sockets created", ks.socketsCreated,
                       "destroyed+live", accounted);
        return false;
    });

    if (machine.tracer().enabled()) {
        reg.add("cycle-conservation", [&machine](Tick, std::string &why) {
            PhaseSnapshot s = machine.tracer().phaseSnapshot();
            std::uint64_t attributed = 0;
            for (const auto &core : s.perCore)
                for (std::uint64_t v : core)
                    attributed += v;
            std::uint64_t busy = machine.cpu().totalBusyTicks();
            if (attributed == busy)
                return true;
            why = eqDetail("attributed cycles", attributed,
                           "CpuModel busy ticks", busy);
            return false;
        });
    }

    reg.add("fd-consistency", [&machine](Tick, std::string &why) {
        // Accounting identity: every VFS file is reachable from exactly
        // one process fd table, and each table's open-fd count matches
        // its file map. Killed processes keep their non-listen files
        // (the kernel only reaps their listen clones), so all processes
        // are counted, alive or not.
        KernelStack &k = machine.kernel();
        std::uint64_t total_files = 0;
        for (int p = 0; p < k.numProcesses(); ++p) {
            KProcess &proc = k.process(p);
            std::size_t files = proc.filesLive;
            int open = proc.fds.openCount();
            if (static_cast<std::size_t>(open) != files) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "process %d: %d open fds vs %zu files",
                              p, open, files);
                why = buf;
                return false;
            }
            total_files += files;
        }
        std::uint64_t vfs_live = k.vfs().liveFiles();
        if (vfs_live == total_files)
            return true;
        why = eqDetail("VFS live files", vfs_live,
                       "files reachable from process fd tables",
                       total_files);
        return false;
    });

    reg.add("accept-queue-bounds", [&machine](Tick, std::string &why) {
        for (const Socket *s : machine.kernel().allSockets()) {
            if (s->kind != SockKind::kListen)
                continue;
            if (s->acceptQueue.size() > s->backlog) {
                char buf[128];
                std::snprintf(buf, sizeof(buf),
                              "listener %u:%u queue depth %zu > backlog "
                              "%zu",
                              s->bindAddr, s->bindPort,
                              s->acceptQueue.size(), s->backlog);
                why = buf;
                return false;
            }
        }
        return true;
    });
}

void
registerQuiesceInvariants(InvariantRegistry &reg, Machine &machine,
                          HttpLoad &load)
{
    reg.add("client-drained", [&load](Tick, std::string &why) {
        if (load.inFlight() == 0)
            return true;
        why = eqDetail("client connections in flight", load.inFlight(),
                       "expected", 0);
        return false;
    });

    reg.add("tcb-leak", [&machine](Tick, std::string &why) {
        std::uint64_t conns = 0;
        for (const Socket *s : machine.kernel().allSockets())
            if (s->kind == SockKind::kConnection)
                ++conns;
        if (conns == 0)
            return true;
        why = eqDetail("connection TCBs alive after quiesce", conns,
                       "expected", 0);
        return false;
    });

    // Snapshot the file population now (setup done, listeners open, no
    // traffic yet): a drained run must return the VFS to exactly this
    // state, else connection files leaked.
    std::uint64_t baseline_files = machine.kernel().vfs().liveFiles();
    reg.add("vfs-leak", [&machine, baseline_files](Tick,
                                                   std::string &why) {
        std::uint64_t vfs_live = machine.kernel().vfs().liveFiles();
        if (vfs_live == baseline_files)
            return true;
        why = eqDetail("VFS live files after quiesce", vfs_live,
                       "listen-only baseline", baseline_files);
        return false;
    });
}

void
registerOverloadInvariants(InvariantRegistry &reg,
                           const AdmissionController &adm,
                           Machine &machine, const AppBase &app)
{
    reg.add("admission-conservation", [&adm](Tick, std::string &why) {
        std::uint64_t accounted = adm.admitted() + adm.degraded() +
                                  adm.shed();
        if (adm.offered() == accounted)
            return true;
        why = eqDetail("offered", adm.offered(),
                       "admitted+degraded+shed", accounted);
        return false;
    });

    reg.add("admission-inflight", [&adm](Tick, std::string &why) {
        std::uint64_t entered = adm.admitted() + adm.degraded();
        std::uint64_t accounted = adm.released() + adm.inflightTotal();
        if (entered == accounted)
            return true;
        why = eqDetail("admitted+degraded", entered,
                       "released+inflight", accounted);
        return false;
    });

    reg.add("admission-release-underflow",
            [&adm](Tick, std::string &why) {
        if (adm.releaseUnderflows() == 0)
            return true;
        why = eqDetail("release underflows", adm.releaseUnderflows(),
                       "expected", 0);
        return false;
    });

    reg.add("admission-offered-accepts",
            [&adm, &machine](Tick, std::string &why) {
        const KernelStats &ks = machine.kernel().stats();
        if (adm.offered() == ks.acceptedConns)
            return true;
        why = eqDetail("admission offered", adm.offered(),
                       "kernel accepted", ks.acceptedConns);
        return false;
    });

    reg.add("admission-app-shed", [&adm, &app](Tick, std::string &why) {
        if (app.shedConns() == adm.shed())
            return true;
        why = eqDetail("app shed closes", app.shedConns(),
                       "controller sheds", adm.shed());
        return false;
    });

    reg.add("pressure-backlog-drops",
            [&machine](Tick, std::string &why) {
        const KernelStats &ks = machine.kernel().stats();
        std::uint64_t ps = machine.pressure().backlogDrops();
        if (ps == ks.backlogDropped)
            return true;
        why = eqDetail("pressure backlog drops", ps,
                       "kernel backlogDropped", ks.backlogDropped);
        return false;
    });

    reg.add("syn-gate-accounting", [&machine](Tick, std::string &why) {
        // A disabled gate must never drop; the counter moving with the
        // knob off would mean the gate check leaked into stock paths.
        const KernelStats &ks = machine.kernel().stats();
        if (machine.config().overload.synGate > 0 ||
            ks.synGateDropped == 0)
            return true;
        why = eqDetail("SYN gate drops with gate disabled",
                       ks.synGateDropped, "expected", 0);
        return false;
    });
}

} // namespace fsim
