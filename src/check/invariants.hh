/**
 * @file
 * Runtime invariant checking for the simulator.
 *
 * The whole reproduction rests on the DES being *conservative*: packets,
 * connections, sockets, fds and cycles must never appear or vanish
 * unaccounted. An InvariantRegistry holds named conservation checks that
 * the harness evaluates at configurable sim-time intervals and at the end
 * of a run (ExperimentConfig::checkLevel); violations are recorded — with
 * the sim tick and a human-readable detail line — instead of aborting, so
 * the fuzzer can shrink a failing scenario and tests can assert on the
 * report.
 */

#ifndef FSIM_CHECK_INVARIANTS_HH
#define FSIM_CHECK_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

class AdmissionController;
class AppBase;
class Machine;
class HttpLoad;
class Wire;

/** How much invariant checking a run performs. */
enum class CheckLevel
{
    kOff = 0,       //!< no checks
    kFinal = 1,     //!< one pass at the end of the run (cheap default)
    kPeriodic = 2,  //!< passes at checkInterval through the run + final
};

/** One failed check instance. */
struct InvariantViolation
{
    std::string name;     //!< registered check name
    std::string detail;   //!< what was expected vs observed
    Tick tick = 0;        //!< sim time of the failing pass
};

/** Outcome of all passes of one run. */
struct InvariantReport
{
    /** Individual check evaluations performed (checks x passes). */
    std::uint64_t checksRun = 0;
    /** Total violations observed (may exceed violations.size()). */
    std::uint64_t violationCount = 0;
    /** First kMaxStored violations, in detection order. */
    std::vector<InvariantViolation> violations;

    bool ok() const { return violationCount == 0; }
    /** One-line summary ("ok, 42 checks" / "2 violations: ..."). */
    std::string summary() const;
    /** Fold another report into this one (stored list stays capped). */
    void merge(const InvariantReport &other);
};

/**
 * A named set of invariant checks over externally owned state.
 *
 * Checks are observers: they must not mutate simulation state or charge
 * simulated cycles. A check returns true if the invariant holds and fills
 * @p why with the expected-vs-observed detail otherwise.
 */
class InvariantRegistry
{
  public:
    using Check = std::function<bool(Tick t, std::string &why)>;

    /** Cap on stored (not counted) violations, to bound memory. */
    static constexpr std::size_t kMaxStored = 32;

    /** Register a check under @p name. */
    void add(std::string name, Check fn);

    /**
     * Evaluate every registered check at sim time @p t.
     *
     * @return Number of violations detected in this pass.
     */
    std::size_t runAll(Tick t);

    std::size_t size() const { return checks_.size(); }
    const InvariantReport &report() const { return report_; }

    /** Forget accumulated results (checks stay registered). */
    void resetReport() { report_ = InvariantReport{}; }

  private:
    struct Entry
    {
        std::string name;
        Check fn;
    };

    std::vector<Entry> checks_;
    InvariantReport report_;
};

/**
 * Register the standard cross-subsystem conservation checks:
 *
 *  - packet-conservation: wire transmitted == delivered + lost +
 *    dropped + in-flight
 *  - connection-conservation: client connections started == completed +
 *    failed + in-flight
 *  - socket-conservation: kernel sockets created == destroyed + live
 *  - cycle-conservation: phase-attributed cycles == CpuModel busy ticks
 *    (only registered when the machine's tracer is enabled)
 *  - fd-consistency: per-process open fd counts == file map sizes, and
 *    their sum == VFS live files (leak detection)
 *  - accept-queue-bounds: no listen socket's accept queue exceeds its
 *    backlog
 */
void registerStandardInvariants(InvariantRegistry &reg, Machine &machine,
                                HttpLoad &load, Wire &wire);

/**
 * Register teardown-only checks for a *drained* bounded workload (client
 * finished, event queue quiesced): no connection sockets may remain (all
 * survivors are listeners) and the VFS must hold exactly the listen
 * files. Used by the differential oracle and the scenario fuzzer.
 */
void registerQuiesceInvariants(InvariantRegistry &reg, Machine &machine,
                               HttpLoad &load);

/**
 * Register overload-control conservation checks (only meaningful when an
 * admission controller is armed):
 *
 *  - admission-conservation: offered == admitted + degraded + shed
 *  - admission-inflight: admitted + degraded == released + in-flight
 *  - admission-release-underflow: no release() without an in-flight
 *    connection
 *  - admission-offered-accepts: every kernel-accepted connection went
 *    through the admission gate (offered == KernelStats.acceptedConns)
 *  - admission-app-shed: the app closed exactly the connections the
 *    controller shed
 *  - pressure-backlog-drops: PressureState and KernelStats agree on the
 *    softirq-budget drop count
 */
void registerOverloadInvariants(InvariantRegistry &reg,
                                const AdmissionController &adm,
                                Machine &machine, const AppBase &app);

} // namespace fsim

#endif // FSIM_CHECK_INVARIANTS_HH
