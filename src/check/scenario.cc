#include "check/scenario.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "fault/fault_plan.hh"
#include "fleet/fleet.hh"
#include "harness/calibration.hh"
#include "sim/logging.hh"

namespace fsim
{

ExperimentConfig
Scenario::toConfig() const
{
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.machine.cores = cores;
    cfg.machine.seed = seed;
    cfg.machine.traceEnabled = traceEnabled;
    cfg.machine.costs = uma ? umaCosts() : calibratedCosts();
    if (kernel == "base2632") {
        cfg.machine.kernel = KernelConfig::base2632();
    } else if (kernel == "linux313") {
        cfg.machine.kernel = KernelConfig::linux313();
    } else if (kernel == "fastsocket") {
        cfg.machine.kernel = KernelConfig::fastsocket();
    } else {
        // "custom": feature bits on top of the 2.6.32 baseline, the
        // Table 1 ablation style.
        KernelConfig kc = KernelConfig::base2632();
        kc.fastVfs = fastVfs;
        kc.localListen = localListen;
        kc.rfd = rfd;
        kc.localEstablished = localEstablished;
        cfg.machine.kernel = kc;
    }
    cfg.machine.kernel.twReuse = twReuse;
    cfg.machine.kernel.twRecycle = twRecycle;
    if (ephemeralPorts > 0)
        cfg.machine.kernel.ephemeralPortHi = static_cast<Port>(
            cfg.machine.kernel.ephemeralPortLo + ephemeralPorts - 1);
    cfg.longLivedPermille = longLivedPermille;
    cfg.longLivedRequests = longLivedRequests;
    cfg.longLivedThink = ticksFromUsec(
        static_cast<std::uint64_t>(longLivedThinkMsec * 1000.0));
    cfg.clientPortSpan = clientPortSpan;
    if (clientIps > 0)
        cfg.clientIps = clientIps;
    cfg.backendKeepAlive = backendKeepAlive;
    cfg.concurrencyPerCore = concurrencyPerCore;
    cfg.requestsPerConn = requestsPerConn;
    cfg.maxConns = maxConns;
    cfg.lossRate = lossRate;
    cfg.clientTimeout = ticksFromSeconds(clientTimeoutSec);
    cfg.listenBacklog = listenBacklog;
    cfg.acceptMutex = acceptMutex;
    cfg.checkLevel = CheckLevel::kPeriodic;
    cfg.synCookies = synCookies;
    cfg.synBacklog = synBacklog;
    cfg.clientRtoBase = ticksFromUsec(
        static_cast<std::uint64_t>(clientRtoMsec * 1000.0));
    if (!faultPlan.empty()) {
        std::string err;
        bool ok = parseFaultPlan(faultPlan, cfg.faults, err);
        fsim_assert(ok);   // validity was enforced at parse/generate time
        // A flood fills a bounded SYN queue with half-opens nobody will
        // ever complete; the embryonic reaper is what lets it drain.
        if (cfg.faults.has(FaultKind::kSynFlood))
            cfg.machine.kernel.synRcvdJiffies = 300;
    }
    return cfg;
}

Scenario
randomScenario(Rng &rng)
{
    Scenario s;
    s.seed = rng.next() | 1;   // never the all-zero degenerate seed
    s.cores = 1 + static_cast<int>(rng.range(8));
    s.app = rng.chance(0.5) ? AppKind::kHaproxy : AppKind::kNginx;

    switch (rng.range(4)) {
      case 0: s.kernel = "base2632"; break;
      case 1: s.kernel = "linux313"; break;
      case 2: s.kernel = "fastsocket"; break;
      default:
        s.kernel = "custom";
        s.fastVfs = rng.chance(0.5);
        s.localListen = rng.chance(0.5);
        s.rfd = rng.chance(0.5);
        // Feature lattice: E needs complete locality (L and R).
        s.localEstablished = s.localListen && s.rfd && rng.chance(0.5);
        break;
    }

    s.concurrencyPerCore = 8 + static_cast<int>(rng.range(93));
    s.requestsPerConn = 1 + static_cast<int>(rng.range(4));
    s.maxConns = 200 + rng.range(1801);

    // Connection-lifetime pressure. Mixed lifetimes only make sense
    // against the web server (the proxy tears each session down after
    // one exchange); TIME_WAIT tuple collisions and ephemeral-port
    // exhaustion each get their own dice.
    if (s.app == AppKind::kNginx && rng.chance(0.3)) {
        s.longLivedPermille = 100 + static_cast<int>(rng.range(801));
        s.longLivedRequests = 2 + static_cast<int>(rng.range(3));
        s.longLivedThinkMsec = 0.2 + rng.uniform() * 3.0;
    }
    if (s.app == AppKind::kNginx && rng.chance(0.2)) {
        // Colliding four-tuples: fresh SYNs land on lingering entries.
        // The conservative path drops those SYNs, so the client RTO
        // retry is load-bearing for drain; recycle (half the time)
        // admits them instead.
        s.clientPortSpan = 8 << rng.range(3);
        s.clientIps = 1 + static_cast<int>(rng.range(4));
        s.clientRtoMsec = 2.0 + rng.uniform() * 10.0;
        s.twRecycle = rng.chance(0.5);
    }
    if (s.app == AppKind::kHaproxy && rng.chance(0.2)) {
        // Active-connect port pressure: keep-alive backends make the
        // proxy the active closer, and a small ephemeral range turns
        // the TIME_WAIT linger into EADDRNOTAVAIL unless reuse is on.
        s.backendKeepAlive = true;
        s.ephemeralPorts = 64 << rng.range(3);
        s.twReuse = rng.chance(0.5);
    }
    if (rng.chance(0.3)) {
        s.lossRate = rng.uniform() * 0.05;
        // Loss demands a give-up timer or stuck connections never drain.
        s.clientTimeoutSec = 0.05 + rng.uniform() * 0.1;
    }
    static const std::size_t kBacklogs[] = {0, 8, 32, 512};
    s.listenBacklog = kBacklogs[rng.range(4)];
    s.uma = rng.chance(0.5);
    s.acceptMutex = rng.chance(0.25);
    s.traceEnabled = rng.chance(0.75);

    if (rng.chance(0.25)) {
        // Fault plans: 1-2 scheduled windows early in the run, so a
        // bounded workload still sees them. Backend faults only make
        // sense against the proxy.
        FaultPlan plan;
        plan.seed = rng.next() | 1;
        int n = 1 + static_cast<int>(rng.range(2));
        for (int i = 0; i < n; ++i) {
            FaultEvent ev;
            ev.startSec = 0.002 + rng.uniform() * 0.03;
            ev.endSec = ev.startSec + 0.005 + rng.uniform() * 0.03;
            int pick = static_cast<int>(
                rng.range(s.app == AppKind::kHaproxy ? 7 : 5));
            switch (pick) {
              case 0:
                ev.kind = FaultKind::kLossBurst;
                ev.rate = 0.05 + rng.uniform() * 0.4;
                break;
              case 1:
                ev.kind = FaultKind::kReorder;
                ev.rate = 0.05 + rng.uniform() * 0.4;
                ev.jitterUsec = 20.0 + rng.uniform() * 400.0;
                break;
              case 2:
                ev.kind = FaultKind::kDuplicate;
                ev.rate = 0.05 + rng.uniform() * 0.3;
                break;
              case 3:
                ev.kind = FaultKind::kSynFlood;
                ev.rate = 50000.0 + rng.uniform() * 200000.0;
                s.synBacklog = 128u << rng.range(3);
                s.synCookies = rng.chance(0.5);
                break;
              case 4:
                ev.kind = FaultKind::kAtrShrink;
                ev.tableSize = 16u << rng.range(4);
                break;
              case 5:
                ev.kind = FaultKind::kBackendSlow;
                ev.factor = 2.0 + rng.uniform() * 6.0;
                ev.target = rng.chance(0.5) ? -1 : 0;
                break;
              default:
                ev.kind = FaultKind::kBackendDown;
                ev.target = rng.chance(0.5) ? -1 : 0;
                break;
            }
            plan.events.push_back(ev);
        }
        s.faultPlan = serializeFaultPlan(plan);
        // Any fault can strand a connection; the give-up timer (and,
        // half the time, client retransmission) is the way out.
        if (s.clientTimeoutSec <= 0.0)
            s.clientTimeoutSec = 0.05 + rng.uniform() * 0.1;
        if (rng.chance(0.5))
            s.clientRtoMsec = 2.0 + rng.uniform() * 10.0;
    }

    if (rng.chance(0.15)) {
        // Fleet tier: the same bounded workload steered across 2-4
        // server machines by 1-2 L4 balancers, optionally with one
        // fleet-orchestration event (crash, rolling restart, VIP loss).
        s.fleetMachines = 2 + static_cast<int>(rng.range(3));
        s.fleetBalancers = 1 + static_cast<int>(rng.range(2));
        s.fleetPolicy = rng.chance(0.25) ? "rr" : "chash";
        // Half the fleet runs arm the observability layer too: the
        // double-run then proves SLO burn accounting deterministic
        // (incidents fold into the fingerprint) and per-chunk metric
        // sampling perturbation-free.
        s.sloMetrics = rng.chance(0.5);
        // N machines multiply the event volume; keep the run bounded.
        s.cores = std::min(s.cores, 4);
        s.maxConns = std::min<std::uint64_t>(s.maxConns, 1200);
        // Crashes and failover strand in-flight connections across a
        // real fabric: the give-up timer and the SYN retransmit are
        // what let a closed loop drain past a blackholed window.
        if (s.clientTimeoutSec <= 0.0)
            s.clientTimeoutSec = 0.04 + rng.uniform() * 0.06;
        if (s.clientRtoMsec <= 0.0)
            s.clientRtoMsec = 3.0 + rng.uniform() * 9.0;
        if (rng.chance(0.6)) {
            FaultPlan plan;
            if (!s.faultPlan.empty()) {
                std::string perr;
                bool ok = parseFaultPlan(s.faultPlan, plan, perr);
                fsim_assert(ok);
            } else {
                plan.seed = rng.next() | 1;
            }
            FaultEvent ev;
            ev.startSec = 0.002 + rng.uniform() * 0.02;
            ev.endSec = ev.startSec + 0.004 + rng.uniform() * 0.02;
            // lb_crash only when a peer exists to adopt the VIP;
            // otherwise every client of that VIP is stuck until restore.
            int pick = static_cast<int>(
                rng.range(s.fleetBalancers > 1 ? 5 : 4));
            switch (pick) {
              case 0:
                ev.kind = FaultKind::kMachineCrash;
                ev.target =
                    static_cast<int>(rng.range(s.fleetMachines));
                ev.mode = rng.chance(0.5)
                              ? FaultEvent::CrashMode::kRst
                              : FaultEvent::CrashMode::kBlackhole;
                break;
              case 1:
                ev.kind = FaultKind::kRollingRestart;
                ev.drainMsec = 2.0 + rng.uniform() * 8.0;
                ev.downMsec = 1.0 + rng.uniform() * 3.0;
                break;
              case 2:
                // Gray machine: CPU slowdown + lossy/laggy NIC, with
                // a flapping variant. factor stays > 1 so the event
                // can never degenerate into the parser's no-op case.
                ev.kind = FaultKind::kMachineDegrade;
                ev.target =
                    static_cast<int>(rng.range(s.fleetMachines));
                ev.factor = 1.5 + rng.uniform() * 3.0;
                ev.rate = rng.uniform() * 0.15;
                ev.jitterUsec = 100.0 + rng.uniform() * 700.0;
                if (rng.chance(0.4))
                    ev.flapMsec = 2.0 + rng.uniform() * 5.0;
                break;
              case 3:
                // Partition one balancer from one machine: always two
                // distinct groups, and indices stay inside the fleet
                // (resolveGroup aborts on a token naming nothing).
                ev.kind = FaultKind::kNetPartition;
                ev.partA = "lb" + std::to_string(
                    rng.range(s.fleetBalancers));
                ev.partB = "m" + std::to_string(
                    rng.range(s.fleetMachines));
                break;
              default:
                ev.kind = FaultKind::kLbCrash;
                ev.target =
                    static_cast<int>(rng.range(s.fleetBalancers));
                break;
            }
            plan.events.push_back(ev);
            s.faultPlan = serializeFaultPlan(plan);
        }
    }
    return s;
}

std::string
serializeScenario(const Scenario &s)
{
    std::ostringstream os;
    // Doubles must round-trip bit-exactly: a reproducer that perturbs
    // lossRate in the 17th digit may no longer reproduce.
    os.precision(17);
    os << "# fsim fuzz scenario (replay: fuzz_scenarios --replay=FILE)\n";
    os << "seed = " << s.seed << "\n";
    os << "cores = " << s.cores << "\n";
    os << "app = " << (s.app == AppKind::kHaproxy ? "haproxy" : "nginx")
       << "\n";
    os << "kernel = " << s.kernel << "\n";
    if (s.kernel == "custom") {
        os << "fastVfs = " << (s.fastVfs ? 1 : 0) << "\n";
        os << "localListen = " << (s.localListen ? 1 : 0) << "\n";
        os << "rfd = " << (s.rfd ? 1 : 0) << "\n";
        os << "localEstablished = " << (s.localEstablished ? 1 : 0)
           << "\n";
    }
    os << "concurrencyPerCore = " << s.concurrencyPerCore << "\n";
    os << "requestsPerConn = " << s.requestsPerConn << "\n";
    os << "maxConns = " << s.maxConns << "\n";
    os << "lossRate = " << s.lossRate << "\n";
    os << "clientTimeoutSec = " << s.clientTimeoutSec << "\n";
    os << "listenBacklog = " << s.listenBacklog << "\n";
    os << "uma = " << (s.uma ? 1 : 0) << "\n";
    os << "acceptMutex = " << (s.acceptMutex ? 1 : 0) << "\n";
    os << "traceEnabled = " << (s.traceEnabled ? 1 : 0) << "\n";
    os << "maxSimSec = " << s.maxSimSec << "\n";
    if (s.longLivedPermille > 0) {
        os << "longLivedPermille = " << s.longLivedPermille << "\n";
        os << "longLivedRequests = " << s.longLivedRequests << "\n";
        os << "longLivedThinkMsec = " << s.longLivedThinkMsec << "\n";
    }
    if (s.clientPortSpan > 0)
        os << "clientPortSpan = " << s.clientPortSpan << "\n";
    if (s.clientIps > 0)
        os << "clientIps = " << s.clientIps << "\n";
    if (s.twReuse)
        os << "twReuse = 1\n";
    if (s.twRecycle)
        os << "twRecycle = 1\n";
    if (s.backendKeepAlive)
        os << "backendKeepAlive = 1\n";
    if (s.ephemeralPorts > 0)
        os << "ephemeralPorts = " << s.ephemeralPorts << "\n";
    if (s.fleetMachines > 0) {
        os << "fleetMachines = " << s.fleetMachines << "\n";
        os << "fleetBalancers = " << s.fleetBalancers << "\n";
        os << "fleetPolicy = " << s.fleetPolicy << "\n";
        if (s.sloMetrics)
            os << "sloMetrics = 1\n";
    }
    if (!s.faultPlan.empty())
        os << "faultPlan = " << s.faultPlan << "\n";
    if (s.synCookies)
        os << "synCookies = 1\n";
    if (s.synBacklog != 0)
        os << "synBacklog = " << s.synBacklog << "\n";
    if (s.clientRtoMsec > 0.0)
        os << "clientRtoMsec = " << s.clientRtoMsec << "\n";
    return os.str();
}

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

} // anonymous namespace

bool
parseScenario(const std::string &text, Scenario &out, std::string &err)
{
    Scenario s;   // start from defaults; keys override
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::size_t eq = t.find('=');
        if (eq == std::string::npos) {
            err = "line " + std::to_string(lineno) + ": expected key = "
                  "value";
            return false;
        }
        std::string key = trim(t.substr(0, eq));
        std::string val = trim(t.substr(eq + 1));
        if (key.empty() || val.empty()) {
            err = "line " + std::to_string(lineno) + ": empty key or "
                  "value";
            return false;
        }
        try {
            if (key == "seed")
                s.seed = std::stoull(val);
            else if (key == "cores")
                s.cores = std::stoi(val);
            else if (key == "app")
                s.app = val == "haproxy" ? AppKind::kHaproxy
                                         : AppKind::kNginx;
            else if (key == "kernel")
                s.kernel = val;
            else if (key == "fastVfs")
                s.fastVfs = std::stoi(val) != 0;
            else if (key == "localListen")
                s.localListen = std::stoi(val) != 0;
            else if (key == "rfd")
                s.rfd = std::stoi(val) != 0;
            else if (key == "localEstablished")
                s.localEstablished = std::stoi(val) != 0;
            else if (key == "concurrencyPerCore")
                s.concurrencyPerCore = std::stoi(val);
            else if (key == "requestsPerConn")
                s.requestsPerConn = std::stoi(val);
            else if (key == "maxConns")
                s.maxConns = std::stoull(val);
            else if (key == "lossRate")
                s.lossRate = std::stod(val);
            else if (key == "clientTimeoutSec")
                s.clientTimeoutSec = std::stod(val);
            else if (key == "listenBacklog")
                s.listenBacklog = std::stoull(val);
            else if (key == "uma")
                s.uma = std::stoi(val) != 0;
            else if (key == "acceptMutex")
                s.acceptMutex = std::stoi(val) != 0;
            else if (key == "traceEnabled")
                s.traceEnabled = std::stoi(val) != 0;
            else if (key == "maxSimSec")
                s.maxSimSec = std::stod(val);
            else if (key == "longLivedPermille")
                s.longLivedPermille = std::stoi(val);
            else if (key == "longLivedRequests")
                s.longLivedRequests = std::stoi(val);
            else if (key == "longLivedThinkMsec")
                s.longLivedThinkMsec = std::stod(val);
            else if (key == "clientPortSpan")
                s.clientPortSpan = std::stoi(val);
            else if (key == "clientIps")
                s.clientIps = std::stoi(val);
            else if (key == "twReuse")
                s.twReuse = std::stoi(val) != 0;
            else if (key == "twRecycle")
                s.twRecycle = std::stoi(val) != 0;
            else if (key == "backendKeepAlive")
                s.backendKeepAlive = std::stoi(val) != 0;
            else if (key == "ephemeralPorts")
                s.ephemeralPorts = std::stoi(val);
            else if (key == "fleetMachines")
                s.fleetMachines = std::stoi(val);
            else if (key == "fleetBalancers")
                s.fleetBalancers = std::stoi(val);
            else if (key == "fleetPolicy")
                s.fleetPolicy = val;
            else if (key == "sloMetrics")
                s.sloMetrics = std::stoi(val) != 0;
            else if (key == "faultPlan")
                s.faultPlan = val;
            else if (key == "synCookies")
                s.synCookies = std::stoi(val) != 0;
            else if (key == "synBacklog")
                s.synBacklog = std::stoull(val);
            else if (key == "clientRtoMsec")
                s.clientRtoMsec = std::stod(val);
            // Unknown keys are ignored (forward compatibility).
        } catch (const std::exception &) {
            err = "line " + std::to_string(lineno) + ": bad value for " +
                  key;
            return false;
        }
    }

    // Validity: the same constraints randomScenario() builds in.
    if (s.cores < 1 || s.cores > 64) {
        err = "cores out of range";
        return false;
    }
    if (s.kernel != "base2632" && s.kernel != "linux313" &&
        s.kernel != "fastsocket" && s.kernel != "custom") {
        err = "unknown kernel '" + s.kernel + "'";
        return false;
    }
    if (s.localEstablished && !(s.localListen && s.rfd)) {
        err = "localEstablished requires localListen and rfd";
        return false;
    }
    if (s.lossRate > 0.0 && s.clientTimeoutSec <= 0.0) {
        err = "lossRate > 0 requires clientTimeoutSec > 0";
        return false;
    }
    if (s.maxConns == 0) {
        err = "maxConns must be > 0 (fuzz runs must quiesce)";
        return false;
    }
    if (s.longLivedPermille < 0 || s.longLivedPermille > 1000) {
        err = "longLivedPermille out of [0,1000]";
        return false;
    }
    if (s.longLivedPermille > 0 && s.longLivedRequests < 1) {
        err = "longLivedRequests must be >= 1";
        return false;
    }
    if (s.clientPortSpan > 0 && s.clientRtoMsec <= 0.0 && !s.twRecycle) {
        err = "clientPortSpan > 0 requires clientRtoMsec > 0 or "
              "twRecycle (TIME_WAIT SYN drops need a retry to drain)";
        return false;
    }
    if (s.ephemeralPorts < 0 || s.ephemeralPorts > 28232) {
        err = "ephemeralPorts out of range";
        return false;
    }
    if (s.clientIps < 0 || s.clientPortSpan < 0) {
        err = "clientIps/clientPortSpan must be >= 0";
        return false;
    }
    if (s.fleetMachines < 0 || s.fleetMachines > 8) {
        err = "fleetMachines out of [0,8]";
        return false;
    }
    if (s.fleetBalancers < 1 || s.fleetBalancers > 4) {
        err = "fleetBalancers out of [1,4]";
        return false;
    }
    if (s.sloMetrics && s.fleetMachines <= 0) {
        err = "sloMetrics requires fleetMachines > 0";
        return false;
    }
    if (s.fleetPolicy != "chash" && s.fleetPolicy != "rr") {
        err = "unknown fleetPolicy '" + s.fleetPolicy + "'";
        return false;
    }
    if (!s.faultPlan.empty()) {
        FaultPlan plan;
        std::string perr;
        if (!parseFaultPlan(s.faultPlan, plan, perr)) {
            err = "faultPlan: " + perr;
            return false;
        }
        if (s.clientTimeoutSec <= 0.0) {
            err = "a fault plan requires clientTimeoutSec > 0";
            return false;
        }
        // Fleet orchestration events only mean something on the fleet
        // topology, and their targets must exist (the orchestrator
        // asserts the range).
        // Group tokens resolve against the fleet topology; resolveGroup
        // aborts on a token that names nothing, so reject those here.
        auto groupInRange = [&s](const std::string &tok) {
            if (tok == "clients" || tok == "lbs" || tok == "ms")
                return true;
            if (tok.rfind("lb", 0) == 0 && tok.size() > 2)
                return std::stoi(tok.substr(2)) < s.fleetBalancers;
            if (tok.size() > 1 && tok[0] == 'm')
                return std::stoi(tok.substr(1)) < s.fleetMachines;
            return false;
        };
        for (const FaultEvent &ev : plan.events) {
            if (ev.kind != FaultKind::kMachineCrash &&
                ev.kind != FaultKind::kRollingRestart &&
                ev.kind != FaultKind::kLbCrash &&
                ev.kind != FaultKind::kMachineDegrade &&
                ev.kind != FaultKind::kNetPartition)
                continue;
            if (s.fleetMachines <= 0) {
                err = "fleet fault events require fleetMachines > 0";
                return false;
            }
            if (ev.kind == FaultKind::kMachineCrash &&
                ev.target >= s.fleetMachines) {
                err = "machine_crash target out of range";
                return false;
            }
            if (ev.kind == FaultKind::kMachineDegrade &&
                (ev.target < 0 || ev.target >= s.fleetMachines)) {
                err = "machine_degrade target out of range";
                return false;
            }
            if (ev.kind == FaultKind::kLbCrash &&
                ev.target >= s.fleetBalancers) {
                err = "lb_crash target out of range";
                return false;
            }
            if (ev.kind == FaultKind::kNetPartition &&
                (!groupInRange(ev.partA) || !groupInRange(ev.partB))) {
                err = "net_partition group names nothing in this fleet";
                return false;
            }
        }
    }
    out = s;
    return true;
}

namespace
{

struct OneRun
{
    bool drained = false;
    std::uint64_t fingerprint = 0;
    InvariantReport invariants;
};

/** Drive @p bed until the bounded load drains or the sim-time cap. */
template <typename Bed>
bool
driveUntilDrained(Bed &bed, const Scenario &s)
{
    EventQueue &eq = bed.eventQueue();
    HttpLoad &load = bed.load();
    const Tick cap = ticksFromSeconds(s.maxSimSec);
    const Tick chunk = ticksFromSeconds(0.01);
    bed.startLoad();
    while (eq.now() < cap &&
           (load.inFlight() > 0 || load.started() < s.maxConns))
        bed.runUntilChecked(std::min(cap, eq.now() + chunk));
    return load.inFlight() == 0 && load.started() >= s.maxConns;
}

OneRun
runOnce(const Scenario &s)
{
    ExperimentConfig cfg = s.toConfig();
    OneRun r;

    if (s.fleetMachines > 0) {
        FleetConfig fc;
        fc.base = cfg;
        fc.serverMachines = s.fleetMachines;
        fc.balancers = s.fleetBalancers;
        bool ok = L4Balancer::policyFromName(s.fleetPolicy, fc.policy);
        fsim_assert(ok);   // validity was enforced at parse time
        fc.sloEnabled = s.sloMetrics;
        // Long-lived think pauses must stay well inside the balancer's
        // idle-flow GC horizon or mid-conversation flows get retired.
        fc.flowIdleTimeoutMsec = std::max(
            fc.flowIdleTimeoutMsec, 4.0 * s.longLivedThinkMsec + 100.0);
        FleetTestbed bed(fc);
        {
            // Fleet drive loop: same chunked cadence as
            // driveUntilDrained, but when the observability layer is
            // armed every chunk boundary also feeds the SLO tracker
            // and samples the metrics registry — the fuzzer's own
            // sub-window clock, since run() is bypassed here.
            EventQueue &eq = bed.eventQueue();
            HttpLoad &load = bed.load();
            const Tick cap = ticksFromSeconds(s.maxSimSec);
            const Tick chunk = ticksFromSeconds(0.01);
            bed.startLoad();
            while (eq.now() < cap &&
                   (load.inFlight() > 0 || load.started() < s.maxConns)) {
                const Tick wstart = eq.now();
                bed.runUntilChecked(std::min(cap, eq.now() + chunk));
                if (s.sloMetrics)
                    bed.sampleObservability(wstart, eq.now());
            }
            r.drained =
                load.inFlight() == 0 && load.started() >= s.maxConns;
        }
        // No quiesce leak pass on the fleet: probe and flow-GC timers
        // self-reschedule forever (runAll would never return), and a
        // crashed generation legitimately strands its server TCBs.
        bed.checks().runAll(bed.eventQueue().now());
        if (cfg.machine.traceEnabled) {
            // Stitching invariant: collect() reconciles every machine
            // span against the client-minted trace ids. After a full
            // drain no successful request may be missing its server
            // span, no id may be born twice, and no span may disagree
            // with its balancer flow's byte accounting.
            ExperimentResult fr = bed.collect();
            const FleetTraceLog &log = bed.traceLog();
            InvariantRegistry stitch;
            stitch.add("trace-stitch-lossless",
                       [&](Tick, std::string &why) {
                           std::uint64_t unstitched = 0;
                           for (const auto &kv : log.records())
                               if (kv.second.clientDone && kv.second.ok &&
                                   !kv.second.stitched)
                                   ++unstitched;
                           if (fr.fleet.traceOrphans == 0 &&
                               fr.fleet.traceDuplicates == 0 &&
                               unstitched == 0)
                               return true;
                           why = "orphans=" +
                                 std::to_string(fr.fleet.traceOrphans) +
                                 " duplicates=" +
                                 std::to_string(fr.fleet.traceDuplicates) +
                                 " unstitched-ok=" +
                                 std::to_string(unstitched);
                           return false;
                       });
            stitch.add("trace-span-reconcile",
                       [&](Tick, std::string &why) {
                           if (fr.fleet.spanReconcileViolations == 0)
                               return true;
                           why = "span reconcile violations=" +
                                 std::to_string(
                                     fr.fleet.spanReconcileViolations);
                           return false;
                       });
            stitch.runAll(bed.eventQueue().now());
            r.invariants = stitch.report();
        }
        r.fingerprint = bed.currentFingerprint();
        r.invariants.merge(bed.checks().report());
        return r;
    }

    Testbed bed(cfg);

    // Leak checks are only meaningful when every client connection runs
    // to a clean close: under injected loss, abandoned handshakes
    // legitimately strand server-side TCBs until their (long) keepalive
    // horizon, which is model behavior, not a leak.
    InvariantRegistry quiesce;
    if (s.lossRate == 0.0 && s.faultPlan.empty())
        registerQuiesceInvariants(quiesce, bed.machine(), bed.load());

    EventQueue &eq = bed.eventQueue();
    r.drained = driveUntilDrained(bed, s);
    if (r.drained) {
        eq.runAll();
        quiesce.runAll(eq.now());
    }
    bed.checks().runAll(eq.now());
    r.fingerprint = bed.currentFingerprint();
    r.invariants = bed.checks().report();
    r.invariants.merge(quiesce.report());
    return r;
}

} // anonymous namespace

ScenarioResult
runScenario(const Scenario &s)
{
    OneRun a = runOnce(s);
    OneRun b = runOnce(s);

    ScenarioResult r;
    r.drained = a.drained;
    r.fingerprint = a.fingerprint;
    r.fingerprint2 = b.fingerprint;
    r.deterministic = a.fingerprint == b.fingerprint;
    r.invariants = a.invariants;
    return r;
}

std::string
ScenarioResult::summary() const
{
    std::ostringstream os;
    if (ok()) {
        os << "ok (" << invariants.checksRun << " checks, fingerprint 0x"
           << std::hex << fingerprint << ")";
        return os.str();
    }
    if (!drained)
        os << "NOT-DRAINED ";
    if (!deterministic)
        os << "NON-DETERMINISTIC (0x" << std::hex << fingerprint
           << " vs 0x" << fingerprint2 << std::dec << ") ";
    if (!invariants.ok())
        os << invariants.summary();
    return os.str();
}

namespace
{

bool
isFleetKind(FaultKind k)
{
    return k == FaultKind::kMachineCrash ||
           k == FaultKind::kRollingRestart ||
           k == FaultKind::kLbCrash ||
           k == FaultKind::kMachineDegrade ||
           k == FaultKind::kNetPartition;
}

/** Plan text minus the fleet-orchestration events ("" if none left). */
std::string
withoutFleetEvents(const std::string &planText)
{
    if (planText.empty())
        return planText;
    FaultPlan plan;
    std::string err;
    if (!parseFaultPlan(planText, plan, err))
        return planText;
    FaultPlan kept;
    kept.seed = plan.seed;
    for (const FaultEvent &ev : plan.events)
        if (!isFleetKind(ev.kind))
            kept.events.push_back(ev);
    return serializeFaultPlan(kept);
}

/** Plan text with per-machine fleet targets clamped below @p machines:
 *  crash/degrade target indices and partition "m<s>" group tokens. */
std::string
clampFleetTargets(const std::string &planText, int machines)
{
    if (planText.empty())
        return planText;
    FaultPlan plan;
    std::string err;
    if (!parseFaultPlan(planText, plan, err))
        return planText;
    auto clampMachineTok = [machines](std::string &tok) {
        if (tok != "ms" && tok.size() > 1 && tok[0] == 'm')
            tok = "m" + std::to_string(std::min(
                            std::stoi(tok.substr(1)), machines - 1));
    };
    for (FaultEvent &ev : plan.events) {
        if (ev.kind == FaultKind::kMachineCrash ||
            ev.kind == FaultKind::kMachineDegrade)
            ev.target = std::min(ev.target, machines - 1);
        if (ev.kind == FaultKind::kNetPartition) {
            clampMachineTok(ev.partA);
            clampMachineTok(ev.partB);
        }
    }
    return serializeFaultPlan(plan);
}

bool
planHasKind(const std::string &planText, FaultKind kind)
{
    if (planText.empty())
        return false;
    FaultPlan plan;
    std::string err;
    if (!parseFaultPlan(planText, plan, err))
        return false;
    for (const FaultEvent &ev : plan.events)
        if (ev.kind == kind)
            return true;
    return false;
}

/** Single-step shrink candidates of @p s, most aggressive first. */
std::vector<Scenario>
shrinkCandidates(const Scenario &s)
{
    std::vector<Scenario> out;
    auto push = [&out](Scenario c) { out.push_back(std::move(c)); };

    if (s.fleetMachines > 0) {
        // Losing the whole fleet tier is the biggest simplification:
        // back to the single-machine Testbed, shedding the fleet-only
        // events (which are invalid without the tier). Then fewer
        // machines, fewer balancers, and the default steering policy.
        Scenario c = s;
        c.fleetMachines = 0;
        c.fleetBalancers = 1;
        c.fleetPolicy = "chash";
        c.sloMetrics = false;   // fleet-only knob
        c.faultPlan = withoutFleetEvents(s.faultPlan);
        push(c);
        if (s.sloMetrics) {
            Scenario d = s;
            d.sloMetrics = false;
            push(d);
        }
        if (s.fleetMachines > 2) {
            Scenario d = s;
            d.fleetMachines = 2;
            d.faultPlan = clampFleetTargets(s.faultPlan, 2);
            push(d);
        }
        // Dropping to one balancer invalidates events that name a
        // specific balancer (lb_crash target, partition lb<k> groups).
        if (s.fleetBalancers > 1 &&
            !planHasKind(s.faultPlan, FaultKind::kLbCrash) &&
            !planHasKind(s.faultPlan, FaultKind::kNetPartition)) {
            Scenario d = s;
            d.fleetBalancers = 1;
            push(d);
        }
        if (s.fleetPolicy != "chash") {
            Scenario d = s;
            d.fleetPolicy = "chash";
            push(d);
        }
    }

    if (s.maxConns > 50) {
        Scenario c = s;
        c.maxConns = std::max<std::uint64_t>(50, s.maxConns / 2);
        push(c);
    }
    if (s.cores > 1) {
        Scenario c = s;
        c.cores = std::max(1, s.cores / 2);
        push(c);
        if (s.cores - 1 != c.cores) {
            Scenario d = s;
            d.cores = s.cores - 1;
            push(d);
        }
    }
    if (s.concurrencyPerCore > 4) {
        Scenario c = s;
        c.concurrencyPerCore = std::max(4, s.concurrencyPerCore / 2);
        push(c);
    }
    if (!s.faultPlan.empty()) {
        // Drop the whole plan first, then the hardening knobs that only
        // existed because of it.
        Scenario c = s;
        c.faultPlan.clear();
        c.synCookies = false;
        c.synBacklog = 0;
        // The RTO can only go if nothing else depends on the retry
        // (tiny port spans drain through retransmitted SYNs).
        if (s.clientPortSpan == 0 || s.twRecycle)
            c.clientRtoMsec = 0.0;
        if (s.lossRate == 0.0)
            c.clientTimeoutSec = 0.0;
        push(c);
    } else if (s.clientRtoMsec > 0.0 &&
               (s.clientPortSpan == 0 || s.twRecycle)) {
        Scenario c = s;
        c.clientRtoMsec = 0.0;
        push(c);
    }
    if (s.lossRate > 0.0) {
        Scenario c = s;
        c.lossRate = 0.0;
        if (s.faultPlan.empty())
            c.clientTimeoutSec = 0.0;
        push(c);
    }
    if (s.requestsPerConn > 1) {
        Scenario c = s;
        c.requestsPerConn = 1;
        push(c);
    }
    if (s.longLivedPermille > 0) {
        Scenario c = s;
        c.longLivedPermille = 0;
        c.longLivedThinkMsec = 0.0;
        push(c);
    }
    if (s.clientPortSpan > 0 || s.clientIps > 0) {
        Scenario c = s;
        c.clientPortSpan = 0;
        c.clientIps = 0;
        c.twRecycle = false;
        push(c);
    } else if (s.twRecycle) {
        Scenario c = s;
        c.twRecycle = false;
        push(c);
    }
    if (s.backendKeepAlive || s.ephemeralPorts > 0) {
        Scenario c = s;
        c.backendKeepAlive = false;
        c.ephemeralPorts = 0;
        c.twReuse = false;
        push(c);
    } else if (s.twReuse) {
        Scenario c = s;
        c.twReuse = false;
        push(c);
    }
    if (s.listenBacklog != 0) {
        Scenario c = s;
        c.listenBacklog = 0;
        push(c);
    }
    if (s.acceptMutex) {
        Scenario c = s;
        c.acceptMutex = false;
        push(c);
    }
    if (s.uma) {
        Scenario c = s;
        c.uma = false;
        push(c);
    }
    if (s.traceEnabled) {
        Scenario c = s;
        c.traceEnabled = false;
        push(c);
    }
    // Kernel shrinks toward the baseline: presets drop to base2632;
    // custom sheds one feature at a time, top of the lattice first.
    if (s.kernel == "fastsocket" || s.kernel == "linux313") {
        Scenario c = s;
        c.kernel = "base2632";
        push(c);
    } else if (s.kernel == "custom") {
        if (s.localEstablished) {
            Scenario c = s;
            c.localEstablished = false;
            push(c);
        } else if (s.rfd) {
            Scenario c = s;
            c.rfd = false;
            push(c);
        } else if (s.localListen) {
            Scenario c = s;
            c.localListen = false;
            push(c);
        } else if (s.fastVfs) {
            Scenario c = s;
            c.fastVfs = false;
            push(c);
        } else {
            Scenario c = s;
            c.kernel = "base2632";
            push(c);
        }
    }
    return out;
}

} // anonymous namespace

Scenario
shrinkScenario(const Scenario &failing,
               const std::function<bool(const Scenario &)> &fails,
               int budget)
{
    Scenario cur = failing;
    int tried = 0;
    bool progress = true;
    while (progress && tried < budget) {
        progress = false;
        for (const Scenario &cand : shrinkCandidates(cur)) {
            if (tried >= budget)
                break;
            ++tried;
            if (fails(cand)) {
                cur = cand;
                progress = true;
                break;   // restart from the shrunk scenario
            }
        }
    }
    return cur;
}

} // namespace fsim
