/**
 * @file
 * Property-based scenario fuzzing for the simulator.
 *
 * A Scenario is a compact, serializable description of one bounded
 * experiment: core count, application, kernel flavor/features, load
 * shape, loss injection, backlog and NUMA knobs. Scenarios are generated
 * valid-by-construction from a seed (the Fastsocket feature lattice is
 * respected: E requires L and R), run with all invariants armed at
 * kPeriodic plus a same-seed determinism double-run, and — on violation —
 * greedily shrunk toward a minimal reproducer that can be committed to
 * tests/corpus/ and replayed as a regression test.
 */

#ifndef FSIM_CHECK_SCENARIO_HH
#define FSIM_CHECK_SCENARIO_HH

#include <cstdint>
#include <functional>
#include <string>

#include "check/invariants.hh"
#include "harness/experiment.hh"
#include "sim/rng.hh"

namespace fsim
{

/** One fuzzable experiment description (key=value serializable). */
struct Scenario
{
    std::uint64_t seed = 1;         //!< machine + load RNG seed
    int cores = 4;
    AppKind app = AppKind::kNginx;
    /** Kernel preset: "base2632", "linux313", "fastsocket", or "custom"
     *  (base 2.6.32 flavor + the feature bits below). */
    std::string kernel = "fastsocket";
    bool fastVfs = false;
    bool localListen = false;
    bool rfd = false;
    bool localEstablished = false;

    int concurrencyPerCore = 50;
    int requestsPerConn = 1;
    std::uint64_t maxConns = 1000;  //!< bounded so the run quiesces
    double lossRate = 0.0;
    double clientTimeoutSec = 0.0;  //!< required > 0 when lossRate > 0
    std::size_t listenBacklog = 0;  //!< 0 = socket default
    bool uma = false;               //!< UMA costs instead of calibrated
    bool acceptMutex = false;
    bool traceEnabled = true;
    double maxSimSec = 30.0;        //!< drain cap

    /** @name Connection-lifetime shape (TIME_WAIT / mixed-lifetime) */
    /** @{ */
    int longLivedPermille = 0;   //!< per-1000 launches parked long-lived
    int longLivedRequests = 2;   //!< requests per long-lived connection
    double longLivedThinkMsec = 0.0;
    /** Tiny client source-port space: four-tuples repeat fast, so fresh
     *  SYNs keep landing on lingering TIME_WAIT entries. Requires
     *  clientRtoMsec > 0 (conservative TW drops the SYN; the retry is
     *  what lets the run drain). */
    int clientPortSpan = 0;
    int clientIps = 0;           //!< client IP count (0 = default 256)
    bool twReuse = false;        //!< tcp_tw_reuse analog
    bool twRecycle = false;      //!< tcp_tw_recycle analog
    /** Keep-alive backends (haproxy): the proxy actively closes every
     *  backend connection, putting its ephemeral ports in TIME_WAIT. */
    bool backendKeepAlive = false;
    /** Shrink the ephemeral range to this many ports (0 = default),
     *  for connect()-side port-exhaustion pressure. */
    int ephemeralPorts = 0;
    /** @} */

    /** @name Fleet tier (0 machines = classic single-machine Testbed)
     *  When fleetMachines > 0 the scenario runs on a FleetTestbed:
     *  clients -> L4 balancer VIPs -> N server machines over modeled
     *  links. Drain deadlines and crash/restart timing ride in the
     *  fault plan through the fleet event kinds (machine_crash,
     *  rolling_restart, lb_crash); those kinds require the tier. */
    /** @{ */
    int fleetMachines = 0;
    int fleetBalancers = 1;
    std::string fleetPolicy = "chash";  //!< "chash" | "rr" steering
    /** Arm the SLO burn-rate tracker + per-window metrics sampling on
     *  the fleet (requires fleetMachines > 0). SLO incidents fold into
     *  the fingerprint, so the double-run also proves the whole
     *  observability layer deterministic; the stitching invariant
     *  (every ok request joins exactly one balancer flow and one
     *  server span, no orphans/duplicates) is checked after drain
     *  whenever tracing is on. */
    bool sloMetrics = false;
    /** @} */

    /** Fault plan in parseFaultPlan() text form (empty = no faults).
     *  A non-empty plan requires clientTimeoutSec > 0 so stuck
     *  connections still drain. */
    std::string faultPlan;
    bool synCookies = false;        //!< server answers full SYN queues
    std::size_t synBacklog = 0;     //!< SYN-queue cap (0 = kernel default)
    double clientRtoMsec = 0.0;     //!< client retx base RTO (0 = off)

    /** Materialize the harness config this scenario describes. */
    ExperimentConfig toConfig() const;
};

/** Draw a valid random scenario from @p rng. */
Scenario randomScenario(Rng &rng);

/** One-line-per-field "key = value" text form (reproducer files). */
std::string serializeScenario(const Scenario &s);

/**
 * Parse serializeScenario() output (unknown keys and blank/#-comment
 * lines are ignored). @return false and fills @p err on malformed input.
 */
bool parseScenario(const std::string &text, Scenario &out,
                   std::string &err);

/** Outcome of fuzzing one scenario. */
struct ScenarioResult
{
    bool drained = false;        //!< quiesced under the sim-time cap
    bool deterministic = false;  //!< double-run fingerprints matched
    std::uint64_t fingerprint = 0;
    std::uint64_t fingerprint2 = 0;
    InvariantReport invariants;  //!< periodic + final + quiesce checks

    bool ok() const { return drained && deterministic && invariants.ok(); }
    std::string summary() const;
};

/**
 * Run @p s twice with all invariants armed (periodic conservation plus
 * quiesce leak checks) and compare the two fingerprints.
 */
ScenarioResult runScenario(const Scenario &s);

/**
 * Greedily shrink @p failing while @p fails still returns true, trying
 * at most @p budget candidate scenarios. Shrink moves: drop the fleet
 * tier (then machines, balancers, steering policy), drop features
 * toward the baseline kernel, zero loss, shrink cores / concurrency /
 * maxConns / backlog, disable trace. Returns the smallest still-failing
 * scenario found (possibly @p failing itself).
 */
Scenario shrinkScenario(const Scenario &failing,
                        const std::function<bool(const Scenario &)> &fails,
                        int budget);

} // namespace fsim

#endif // FSIM_CHECK_SCENARIO_HH
