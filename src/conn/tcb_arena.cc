#include "conn/tcb_arena.hh"

#include <new>

#include "sim/logging.hh"

namespace fsim
{

TcbArena::~TcbArena()
{
    // Destroy any socket the kernel leaked (tests assert live() == 0
    // where it matters; the arena itself must still not leak dtors).
    for (auto &slab : slabs_) {
        for (std::size_t w = 0; w < kWordsPerSlab; ++w) {
            std::uint64_t bits = slab->liveBits[w];
            while (bits) {
                unsigned bit = static_cast<unsigned>(__builtin_ctzll(bits));
                bits &= bits - 1;
                slab->at(w * 64 + bit)->~Socket();
            }
        }
    }
}

Socket *
TcbArena::create()
{
    if (freelist_.empty()) {
        auto slab = std::make_unique<Slab>();
        std::size_t base = slabs_.size() * kSlabSize;
        // Push in reverse so the LIFO freelist hands out slot 0 first.
        freelist_.reserve(freelist_.size() + kSlabSize);
        for (std::size_t i = kSlabSize; i-- > 0;)
            freelist_.push_back(static_cast<std::uint32_t>(base + i));
        slabs_.push_back(std::move(slab));
    }
    std::uint32_t slot = freelist_.back();
    freelist_.pop_back();
    Slab &slab = *slabs_[slot / kSlabSize];
    std::size_t in_slab = slot % kSlabSize;
    fsim_assert((slab.liveBits[in_slab / 64] &
                 (1ull << (in_slab % 64))) == 0);
    Socket *sock = new (slab.at(in_slab)) Socket();
    sock->arenaSlot = slot;
    slab.liveBits[in_slab / 64] |= 1ull << (in_slab % 64);
    ++live_;
    ++created_;
    if (live_ > peakLive_)
        peakLive_ = live_;
    return sock;
}

void
TcbArena::destroy(Socket *sock)
{
    fsim_assert(sock && sock->arenaSlot != Socket::kNoArenaSlot);
    std::uint32_t slot = sock->arenaSlot;
    fsim_assert(slot / kSlabSize < slabs_.size());
    Slab &slab = *slabs_[slot / kSlabSize];
    std::size_t in_slab = slot % kSlabSize;
    fsim_assert(slab.at(in_slab) == sock);
    fsim_assert(slab.liveBits[in_slab / 64] & (1ull << (in_slab % 64)));
    slab.liveBits[in_slab / 64] &= ~(1ull << (in_slab % 64));
    sock->~Socket();
    freelist_.push_back(slot);
    fsim_assert(live_ > 0);
    --live_;
}

} // namespace fsim
