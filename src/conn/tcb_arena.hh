/**
 * @file
 * Slab arena for TCP control blocks.
 *
 * The kernel's TCBs come from a dedicated slab cache (tcp_sock kmem_cache);
 * at a million concurrent connections the allocator's per-object overhead
 * and fragmentation become first-order memory costs. This arena models
 * that: Sockets are placement-constructed into fixed-size slabs, freed
 * slots are recycled LIFO (hot-cache reuse like SLUB's per-cpu freelist),
 * and a per-slab live bitmap supports iteration without any side index.
 *
 * bytesPerConn() is the arena's whole-footprint-divided-by-live-peak
 * figure that bench_million_conn reports per kernel flavor: it captures
 * both the raw sizeof(Socket) and the slack from slabs kept alive by a
 * few stragglers (fragmentation under mixed short-/long-lived churn).
 */

#ifndef FSIM_CONN_TCB_ARENA_HH
#define FSIM_CONN_TCB_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tcp/socket.hh"

namespace fsim
{

/** Slab allocator + registry for every live Socket of one machine. */
class TcbArena
{
  public:
    /** Sockets per slab; 4096 * ~0.5 KiB ~= a 2 MiB hugepage-ish slab. */
    static constexpr std::size_t kSlabSize = 4096;

    TcbArena() = default;
    ~TcbArena();

    TcbArena(const TcbArena &) = delete;
    TcbArena &operator=(const TcbArena &) = delete;

    /** Construct a new Socket in the arena. */
    Socket *create();

    /** Destroy @p sock and recycle its slot. */
    void destroy(Socket *sock);

    /** Live (created, not yet destroyed) sockets. */
    std::size_t live() const { return live_; }

    /** High-water mark of live(). */
    std::size_t peakLive() const { return peakLive_; }

    std::uint64_t totalCreated() const { return created_; }

    /** Slabs currently allocated (never shrinks; models slab caches). */
    std::size_t slabCount() const { return slabs_.size(); }

    /** Bytes of slab memory backing the arena (capacity, not live). */
    std::size_t slabBytes() const
    {
        return slabs_.size() * kSlabSize * sizeof(Socket);
    }

    /**
     * Arena bytes per connection at the live high-water mark; 0 before
     * any socket exists.
     */
    double
    bytesPerConn() const
    {
        return peakLive_ == 0
                   ? 0.0
                   : static_cast<double>(slabBytes()) /
                         static_cast<double>(peakLive_);
    }

    /**
     * Visit every live socket in deterministic (slab, slot) order.
     *
     * @param fn Callable taking (Socket *); must not create or destroy
     *           arena sockets during the walk.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &slab : slabs_) {
            for (std::size_t w = 0; w < kWordsPerSlab; ++w) {
                std::uint64_t bits = slab->liveBits[w];
                while (bits) {
                    unsigned bit =
                        static_cast<unsigned>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    fn(slab->at(w * 64 + bit));
                }
            }
        }
    }

  private:
    static constexpr std::size_t kWordsPerSlab = kSlabSize / 64;

    struct Slab
    {
        /** Raw storage; Sockets are placement-new'd into slots. */
        alignas(Socket) unsigned char storage[kSlabSize * sizeof(Socket)];
        std::uint64_t liveBits[kWordsPerSlab] = {};

        Socket *
        at(std::size_t slot)
        {
            return reinterpret_cast<Socket *>(storage +
                                              slot * sizeof(Socket));
        }

        const Socket *
        at(std::size_t slot) const
        {
            return const_cast<Slab *>(this)->at(slot);
        }
    };

    /** Global slot index = slab * kSlabSize + slot-in-slab. */
    std::vector<std::unique_ptr<Slab>> slabs_;
    std::vector<std::uint32_t> freelist_;
    std::size_t live_ = 0;
    std::size_t peakLive_ = 0;
    std::uint64_t created_ = 0;
};

} // namespace fsim

#endif // FSIM_CONN_TCB_ARENA_HH
