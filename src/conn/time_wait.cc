#include "conn/time_wait.hh"

#include "sim/logging.hh"

namespace fsim
{

TimeWaitTable::TimeWaitTable(int n_buckets)
{
    fsim_assert(n_buckets > 0);
    fifos_.resize(n_buckets);
}

void
TimeWaitTable::add(int bucket, const FiveTuple &tuple,
                   std::uint64_t expires, bool holds_port)
{
    fsim_assert(bucket >= 0 && bucket < bucketCount());
    TupleKey key{tuple};
    std::uint64_t gen = nextGen_++;
    auto [slot, inserted] =
        index_.insert(key, IndexedEntry{{tuple, expires, holds_port},
                                        bucket, gen});
    // A tuple cannot linger twice: the old entry is always removed
    // (recycled) before the tuple can complete another handshake.
    fsim_assert(inserted);
    (void)slot;
    fifos_[bucket].push_back(FifoSlot{key, gen});
    if (index_.size() > peak_)
        peak_ = index_.size();
}

const TimeWaitTable::Entry *
TimeWaitTable::find(const FiveTuple &tuple) const
{
    const IndexedEntry *ie = index_.find(TupleKey{tuple});
    return ie ? &ie->entry : nullptr;
}

bool
TimeWaitTable::remove(const FiveTuple &tuple, Entry *out)
{
    const TupleKey key{tuple};
    const IndexedEntry *ie = index_.find(key);
    if (!ie)
        return false;
    if (out)
        *out = ie->entry;
    // The FIFO slot goes stale and is skipped at reap/headExpiry time;
    // eager middle-of-queue removal would be O(n) per recycled tuple.
    index_.erase(key);
    return true;
}

std::uint64_t
TimeWaitTable::headExpiry(int bucket)
{
    fsim_assert(bucket >= 0 && bucket < bucketCount());
    auto &fifo = fifos_[bucket];
    while (!fifo.empty()) {
        const IndexedEntry *ie = index_.find(fifo.front().key);
        if (ie && ie->gen == fifo.front().gen)
            return ie->entry.expires;
        fifo.pop_front();    // stale: removed, or a later re-add's entry
    }
    return 0;
}

std::uint64_t
TimeWaitTable::reapExpired(int bucket, std::uint64_t now_jiffy,
                           std::vector<Entry> &reaped)
{
    while (true) {
        std::uint64_t head = headExpiry(bucket);
        if (head == 0 || head > now_jiffy)
            return head;
        auto &fifo = fifos_[bucket];
        const TupleKey key = fifo.front().key;
        const IndexedEntry *ie = index_.find(key);
        fsim_assert(ie != nullptr);
        reaped.push_back(ie->entry);
        index_.erase(key);
        fifo.pop_front();
    }
}

} // namespace fsim
