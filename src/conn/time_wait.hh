/**
 * @file
 * Compact TIME_WAIT table.
 *
 * Linux does not keep a full tcp_sock for a connection in TIME_WAIT: it
 * swaps the TCB for a ~10x smaller inet_timewait_sock holding just the
 * tuple, the timestamps and the expiry, threaded on a shared reaper
 * timer. This table models that: when a connection enters TIME_WAIT its
 * Socket is destroyed and replaced by a 32-byte Entry; one reaper timer
 * per bucket (per core when the established tables are partitioned)
 * replaces the per-socket timers, so a million lingering connections arm
 * a handful of wheel entries instead of a million.
 *
 * Buckets use expiry-ordered FIFOs (the linger is a constant, so insert
 * order is expiry order) plus a tuple-keyed index for the two packets a
 * TIME_WAIT tuple can still see: a retransmitted FIN (re-ACK it) and a
 * new SYN reusing the tuple (drop, or recycle under tcp_tw_recycle).
 */

#ifndef FSIM_CONN_TIME_WAIT_HH
#define FSIM_CONN_TIME_WAIT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "sim/flat_map.hh"
#include "sim/ring_queue.hh"
#include "sim/types.hh"

namespace fsim
{

/** Machine-wide registry of connections lingering in TIME_WAIT. */
class TimeWaitTable
{
  public:
    /** One lingering connection (the inet_timewait_sock analog). */
    struct Entry
    {
        FiveTuple tuple;            //!< rx orientation (saddr = peer)
        std::uint64_t expires = 0;  //!< absolute jiffy
        /** Entry still owns the local ephemeral port (active close
         *  without tcp_tw_reuse); the reaper must release it. */
        bool holdsPort = false;
    };

    /**
     * @param n_buckets One per core under per-core partitioning (entries
     *                  bucketed by closing core), else 1.
     */
    explicit TimeWaitTable(int n_buckets);

    /**
     * Add a lingering tuple to @p bucket.
     *
     * The linger must be a per-table constant (entries of a bucket are
     * kept in insert order and reaped from the head).
     */
    void add(int bucket, const FiveTuple &tuple, std::uint64_t expires,
             bool holds_port);

    /** Lookup a lingering entry (any bucket). @return nullptr if none. */
    const Entry *find(const FiveTuple &tuple) const;

    /**
     * Remove a lingering entry (recycle-on-SYN, or tests).
     *
     * @return true and copy the entry to @p out if it existed.
     */
    bool remove(const FiveTuple &tuple, Entry *out = nullptr);

    /**
     * Pop every entry of @p bucket whose expiry is <= @p now_jiffy into
     * @p reaped (in expiry order).
     *
     * @return expiry jiffy of the new head entry, or 0 if the bucket
     *         emptied.
     */
    std::uint64_t reapExpired(int bucket, std::uint64_t now_jiffy,
                              std::vector<Entry> &reaped);

    /** Expiry of @p bucket's head entry (0 if empty); prunes any stale
     *  head slots left by remove(). */
    std::uint64_t headExpiry(int bucket);

    std::size_t size() const { return index_.size(); }
    std::size_t peakSize() const { return peak_; }
    int bucketCount() const { return static_cast<int>(fifos_.size()); }

    /** Approximate bytes held per lingering connection. */
    static constexpr std::size_t kBytesPerEntry = sizeof(Entry);

  private:
    struct TupleKey
    {
        FiveTuple t;

        bool operator==(const TupleKey &o) const { return t == o.t; }
    };

    struct TupleKeyHash
    {
        std::size_t
        operator()(const TupleKey &k) const
        {
            // flowHash alone is 32-bit; fold in the raw fields so index
            // collisions stay hash-map-internal.
            std::uint64_t h = flowHash(k.t);
            h = h * 0x9e3779b97f4a7c15ull + k.t.saddr;
            h = h * 0x9e3779b97f4a7c15ull + k.t.daddr;
            h = h * 0x9e3779b97f4a7c15ull +
                ((static_cast<std::uint64_t>(k.t.sport) << 16) |
                 k.t.dport);
            return static_cast<std::size_t>(h);
        }
    };

    struct IndexedEntry
    {
        Entry entry;
        int bucket = 0;
        /** Matches the FIFO slot of *this* lingering episode, so a slot
         *  left stale by remove() cannot alias a later re-add of the
         *  same tuple. */
        std::uint64_t gen = 0;
    };

    struct FifoSlot
    {
        TupleKey key;
        std::uint64_t gen = 0;
    };

    /** FIFO per bucket; stale entries (removed via the index) are
     *  skipped lazily at reap time. Ring buffers and a flat map keep
     *  the add/remove/reap churn off the allocator in steady state. */
    std::vector<RingQueue<FifoSlot>> fifos_;
    FlatMap<TupleKey, IndexedEntry, TupleKeyHash> index_;
    std::uint64_t nextGen_ = 1;
    std::size_t peak_ = 0;
};

} // namespace fsim

#endif // FSIM_CONN_TIME_WAIT_HH
