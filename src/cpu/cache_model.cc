#include "cpu/cache_model.hh"

#include <numeric>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

CacheModel::CacheModel(int n_cores, Tick miss_penalty, int node_size,
                       Tick remote_penalty)
    : missPenalty_(miss_penalty),
      remotePenalty_(remote_penalty ? remote_penalty : miss_penalty),
      nodeSize_(node_size),
      bgAccum_(n_cores, 0.0),
      accesses_(n_cores, 0),
      misses_(n_cores, 0)
{
    fsim_assert(n_cores > 0);
    owner_.reserve(1 << 16);
}

std::uint64_t
CacheModel::newObject()
{
    if (!freeIds_.empty()) {
        std::uint64_t id = freeIds_.back();
        freeIds_.pop_back();
        owner_[id] = kInvalidCore;
        return id;
    }
    owner_.push_back(kInvalidCore);
    return owner_.size() - 1;
}

void
CacheModel::freeObject(std::uint64_t id)
{
    fsim_assert(id < owner_.size());
    freeIds_.push_back(id);
}

Tick
CacheModel::access(CoreId c, std::uint64_t obj, bool write, int lines)
{
    fsim_assert(obj < owner_.size());
    fsim_assert(c >= 0 && c < numCores());
    accesses_[c] += lines;
    CoreId &own = owner_[obj];
    if (own == c)
        return 0;
    misses_[c] += lines;
    // A cold first touch (no prior owner) claims the line for free in terms
    // of coherence traffic but still counts as a (compulsory) miss.
    Tick penalty;
    if (own == kInvalidCore)
        penalty = missPenalty_ / 4;
    else if (node(own) == node(c))
        penalty = missPenalty_;
    else
        penalty = remotePenalty_;   // cross-socket transfer
    if (write || own == kInvalidCore)
        own = c;
    Tick stall = penalty * static_cast<Tick>(lines);
    if (tracer_)
        tracer_->noteCacheStall(c, stall);
    return stall;
}

void
CacheModel::noteLocalAccesses(CoreId c, std::uint64_t n)
{
    fsim_assert(c >= 0 && c < numCores());
    accesses_[c] += n;
    bgAccum_[c] += static_cast<double>(n) * bgMissRate_;
    if (bgAccum_[c] >= 1.0) {
        auto whole = static_cast<std::uint64_t>(bgAccum_[c]);
        misses_[c] += whole;
        bgAccum_[c] -= static_cast<double>(whole);
    }
}

std::uint64_t
CacheModel::totalAccesses() const
{
    return std::accumulate(accesses_.begin(), accesses_.end(),
                           std::uint64_t{0});
}

std::uint64_t
CacheModel::totalMisses() const
{
    return std::accumulate(misses_.begin(), misses_.end(),
                           std::uint64_t{0});
}

double
CacheModel::missRate() const
{
    std::uint64_t a = totalAccesses();
    return a ? static_cast<double>(totalMisses()) / static_cast<double>(a)
             : 0.0;
}

} // namespace fsim
