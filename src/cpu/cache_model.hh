/**
 * @file
 * Ownership-based cache/coherence model.
 *
 * Every shared kernel object that matters for connection locality (socket
 * TCBs, table buckets, lock words, epoll instances) registers a cache
 * object id. Accessing an object from a core other than its current owner
 * costs a remote-transfer penalty and counts as an L3 miss; write accesses
 * migrate ownership. Useful work additionally charges implicit always-local
 * accesses so that the reported L3 miss *rate* stays in a realistic band
 * (the paper's Figure 5(a) reports 5-13%).
 */

#ifndef FSIM_CPU_CACHE_MODEL_HH
#define FSIM_CPU_CACHE_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

class Tracer;

/** Per-machine cache coherence model and L3 statistics. */
class CacheModel
{
  public:
    /**
     * @param n_cores Number of cores.
     * @param miss_penalty Cycles per remote-owned access within a NUMA
     *        node (shared L3).
     * @param node_size Cores per NUMA node (0 = single node). The
     *        paper's testbed is 2 x 12-core Xeon E5-2697v2, so lines
     *        crossing the socket boundary pay @p remote_penalty instead.
     * @param remote_penalty Cycles per cross-node transfer.
     */
    explicit CacheModel(int n_cores, Tick miss_penalty,
                        int node_size = 0, Tick remote_penalty = 0);

    /** Register a new cache object (e.g.\ a socket). @return its id. */
    std::uint64_t newObject();

    /** Recycle an object id once the owning structure is destroyed. */
    void freeObject(std::uint64_t id);

    /**
     * Access @p obj from core @p c.
     *
     * @param write Whether ownership should migrate to @p c.
     * @param lines Cache lines the object spans (a TCB is several).
     * @return extra cycles caused by a remote transfer (0 on a hit).
     */
    Tick access(CoreId c, std::uint64_t obj, bool write = true,
                int lines = 1);

    /**
     * Charge @p n implicit local accesses to core @p c. A configurable
     * background fraction of them miss (cold app/kernel working set),
     * which anchors the absolute L3 miss rate; connection locality then
     * moves the rate by the coherence misses it saves.
     */
    void noteLocalAccesses(CoreId c, std::uint64_t n);

    /** Set the background miss rate charged by noteLocalAccesses. */
    void setBackgroundMissRate(double rate) { bgMissRate_ = rate; }

    /** Attach the machine tracer: transfer penalties are then charged
     *  to the cache-stall phase of the accessing core. */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** @name Statistics */
    /** @{ */
    std::uint64_t accesses(CoreId c) const { return accesses_[c]; }
    std::uint64_t misses(CoreId c) const { return misses_[c]; }
    std::uint64_t totalAccesses() const;
    std::uint64_t totalMisses() const;
    /** Machine-wide L3 miss rate over the whole run. */
    double missRate() const;
    /** @} */

    /** NUMA node of a core. */
    int node(CoreId c) const
    {
        return nodeSize_ > 0 ? c / nodeSize_ : 0;
    }

    int numCores() const { return static_cast<int>(accesses_.size()); }
    Tick missPenalty() const { return missPenalty_; }

  private:
    Tick missPenalty_;
    Tick remotePenalty_;
    int nodeSize_;
    double bgMissRate_ = 0.0;
    Tracer *tracer_ = nullptr;
    std::vector<CoreId> owner_;
    std::vector<std::uint64_t> freeIds_;
    std::vector<double> bgAccum_;
    std::vector<std::uint64_t> accesses_;
    std::vector<std::uint64_t> misses_;
};

} // namespace fsim

#endif // FSIM_CPU_CACHE_MODEL_HH
