#include "cpu/core.hh"

#include <utility>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

CpuModel::CpuModel(EventQueue &eq, CacheModel &cache,
                   const CycleCosts &costs, int n_cores)
    : eq_(eq), cache_(cache), costs_(costs), cores_(n_cores)
{
    fsim_assert(n_cores > 0);
    for (int i = 0; i < n_cores; ++i)
        cores_[i].id_ = i;
}

void
CpuModel::post(CoreId c, TaskPrio prio, Task task)
{
    Core &core = cores_.at(c);
    core.queues_[static_cast<int>(prio)].push_back(std::move(task));
    if (tracer_) {
        auto qid = prio == TaskPrio::kSoftIrq
                       ? TraceQueueId::kSoftirqBacklog
                       : TraceQueueId::kProcessBacklog;
        tracer_->emit(c, TraceEventType::kQueueEnqueue, eq_.now(),
                      static_cast<std::uint32_t>(
                          core.queues_[static_cast<int>(prio)].size()),
                      static_cast<std::uint16_t>(qid));
    }
    if (!core.running_) {
        core.running_ = true;
        Tick start = std::max(eq_.now(), core.busyUntil_);
        eq_.schedule(start, [this, c] { runNext(c); });
    }
}

void
CpuModel::runNext(CoreId c)
{
    Core &core = cores_.at(c);
    RingQueue<Task> *q = nullptr;
    if (!core.queues_[0].empty())
        q = &core.queues_[0];
    else if (!core.queues_[1].empty())
        q = &core.queues_[1];

    if (!q) {
        core.running_ = false;
        return;
    }

    bool softirq = q == &core.queues_[0];
    Task task = std::move(q->front());
    q->pop_front();

    Tick start = eq_.now();
    if (start < core.busyUntil_)
        fsim_panic("core %d task overlap: start=%llu busyUntil=%llu",
                   c, (unsigned long long)start,
                   (unsigned long long)core.busyUntil_);
    if (tracer_) {
        tracer_->emit(c, TraceEventType::kQueueDequeue, start,
                      static_cast<std::uint32_t>(q->size()),
                      static_cast<std::uint16_t>(
                          softirq ? TraceQueueId::kSoftirqBacklog
                                  : TraceQueueId::kProcessBacklog));
        if (softirq)
            tracer_->emit(c, TraceEventType::kSoftirqEnter, start);
        // The root frame: everything the task does nests under it, so
        // attributed cycles partition the core's busy time exactly.
        tracer_->pushPhase(c, softirq ? Phase::kSoftirq : Phase::kApp,
                           start);
    }
    Tick end = task(start);
    if (end < start)
        fsim_panic("task finished before it started");
    // Gray-machine degrade: stretch the task's busy window. Integer
    // math keeps same-seed runs bit-identical; stretching before the
    // root phase frame closes keeps attributed cycles == busy ticks.
    if (slowdownPermille_ > 1000) {
        Tick work = end - start;
        end += work * (slowdownPermille_ - 1000) / 1000;
    }
    if (tracer_) {
        tracer_->popPhase(c, end);
        if (softirq)
            tracer_->emit(c, TraceEventType::kSoftirqExit, end);
    }

    Tick work = end - start;
    core.busyTicks_ += work;
    core.busyUntil_ = end;
    ++core.tasksRun_;
    // Implicit always-local accesses for miss-rate realism.
    cache_.noteLocalAccesses(c, work / costs_.cyclesPerLocalAccess);

    if (core.queues_[0].empty() && core.queues_[1].empty()) {
        core.running_ = false;
    } else {
        eq_.schedule(end, [this, c] { runNext(c); });
    }
}

std::uint64_t
CpuModel::totalBusyTicks() const
{
    std::uint64_t total = 0;
    for (const Core &core : cores_)
        total += core.busyTicks_;
    return total;
}

} // namespace fsim
