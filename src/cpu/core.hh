/**
 * @file
 * Simulated CPU cores and their run-to-completion task scheduler.
 *
 * Each core executes tasks serially. A task is a closure that receives its
 * start tick and returns its finish tick; inside, it charges cycle costs,
 * acquires simulated locks (which may extend its timeline by spin waiting)
 * and performs cache-model accesses. Two priority levels model the kernel's
 * execution contexts: SoftIRQ work always preempts (runs before) queued
 * process-context work, like NET_RX SoftIRQ does in Linux.
 */

#ifndef FSIM_CPU_CORE_HH
#define FSIM_CPU_CORE_HH

#include <cstdint>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/cycle_costs.hh"
#include "sim/event_fn.hh"
#include "sim/event_queue.hh"
#include "sim/ring_queue.hh"
#include "sim/types.hh"

namespace fsim
{

class Tracer;

/** Scheduling class of a task. Lower value runs first. */
enum class TaskPrio
{
    kSoftIrq = 0,  //!< NET_RX SoftIRQ / timer SoftIRQ context
    kProcess = 1,  //!< application process context
};

/**
 * A unit of work: start tick in, finish tick out.
 *
 * Stored inline (no heap): the capture budget is sized by the largest
 * post() site in the tree, the kernel's RFD steering closure
 * [this, target, Packet, steer-timestamp, steer-from] in
 * kernel_stack.cc (~80 bytes now that the Packet carries the 8-byte
 * distributed trace context), with headroom for alignment padding.
 */
constexpr std::size_t kTaskCaptureMax = 96;
using Task = InlineFn<Tick(Tick), kTaskCaptureMax>;

class CpuModel;

/** One simulated CPU core. */
class Core
{
  public:
    CoreId id() const { return id_; }

    /** Cycles this core spent executing tasks since construction. */
    std::uint64_t busyTicks() const { return busyTicks_; }

    /** Number of tasks executed. */
    std::uint64_t tasksRun() const { return tasksRun_; }

    /** Tick at which the currently queued work will have drained. */
    Tick busyUntil() const { return busyUntil_; }

    /** Queued but not yet started tasks. */
    std::size_t backlog() const
    {
        return queues_[0].size() + queues_[1].size();
    }

    /** Queued SoftIRQ tasks only (the netdev_max_backlog analogue the
     *  overload subsystem budgets against). */
    std::size_t softirqBacklog() const
    {
        return queues_[static_cast<int>(TaskPrio::kSoftIrq)].size();
    }

  private:
    friend class CpuModel;

    CoreId id_ = kInvalidCore;
    RingQueue<Task> queues_[2];
    bool running_ = false;
    Tick busyUntil_ = 0;
    std::uint64_t busyTicks_ = 0;
    std::uint64_t tasksRun_ = 0;
};

/** The set of cores of one simulated machine. */
class CpuModel
{
  public:
    CpuModel(EventQueue &eq, CacheModel &cache, const CycleCosts &costs,
             int n_cores);

    int numCores() const { return static_cast<int>(cores_.size()); }
    Core &core(CoreId c) { return cores_.at(c); }
    const Core &core(CoreId c) const { return cores_.at(c); }

    /**
     * Enqueue @p task on core @p c.
     *
     * The task starts as soon as the core is free and no higher-priority
     * work is pending.
     */
    void post(CoreId c, TaskPrio prio, Task task);

    /** Sum of busyTicks over all cores. */
    std::uint64_t totalBusyTicks() const;

    EventQueue &eventQueue() { return eq_; }
    CacheModel &cache() { return cache_; }
    const CycleCosts &costs() const { return costs_; }

    /**
     * Attach the machine tracer. Every task then runs under a root
     * phase frame (SoftIRQ tasks under softirq, process tasks under
     * app), which is what makes the cycle-attribution sum equal the
     * measured busy cycles, and backlog depths are recorded as queue
     * events.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }
    Tracer *tracer() { return tracer_; }

    /**
     * Degrade (or restore) the whole machine's execution speed: every
     * task's charged cycles are stretched by @p permille / 1000 at
     * completion (1000 = nominal, 4000 = 4x slower). Models a gray
     * machine — thermal throttling, a noisy neighbor, a dying disk
     * stalling the kernel — whose work still completes, just late.
     * The stretch is applied before phase attribution closes, so the
     * attributed-cycles == busy-ticks invariant holds while degraded.
     */
    void setSlowdownPermille(std::uint32_t permille)
    {
        slowdownPermille_ = permille < 1000 ? 1000 : permille;
    }
    std::uint32_t slowdownPermille() const { return slowdownPermille_; }

  private:
    void runNext(CoreId c);

    EventQueue &eq_;
    CacheModel &cache_;
    const CycleCosts &costs_;
    Tracer *tracer_ = nullptr;
    std::uint32_t slowdownPermille_ = 1000;
    std::vector<Core> cores_;
};

} // namespace fsim

#endif // FSIM_CPU_CORE_HH
