/**
 * @file
 * Calibrated cycle costs of every modeled kernel and application operation.
 *
 * One CycleCosts instance is owned by each simulated Machine. The defaults
 * are calibrated (see src/harness/calibration.hh and EXPERIMENTS.md) so that
 * single-core nginx throughput lands near the paper's ~23 K connections/s;
 * every multi-core effect (lock collapse, cache bouncing, O(n) listener
 * walks) must then emerge from the simulation rather than from constants.
 */

#ifndef FSIM_CPU_CYCLE_COSTS_HH
#define FSIM_CPU_CYCLE_COSTS_HH

#include "sim/types.hh"

namespace fsim
{

/** Cycle cost table. All values are in core clock cycles. */
struct CycleCosts
{
    /** @name Memory system */
    /** @{ */
    /** Remote cache-line transfer (L3/ coherence miss) penalty. */
    Tick cacheMissPenalty = 400;
    /** Cross-NUMA-node (socket interconnect) transfer penalty. */
    Tick numaRemotePenalty = 1000;
    /** Cores per NUMA node (the paper's testbed: 2 x 12 cores). */
    int numaNodeSize = 12;
    /** One implicit LLC-level access is charged per this many cycles of
     *  useful work (L1/L2 filter the rest), so modeled miss *rates* stay
     *  in a realistic band. */
    Tick cyclesPerLocalAccess = 300;
    /** Fraction of implicit accesses that miss anyway (cold app/kernel
     *  working set); anchors the absolute L3 miss rate of Figure 5(a). */
    double backgroundMissRate = 0.05;
    /** Cache lines a TCB access touches (sock struct, queues, skbs). */
    int tcbLines = 3;
    /** @} */

    /** @name Interrupt and SoftIRQ path (per packet) */
    /** @{ */
    Tick irqPerPacket = 600;     //!< hardirq + NAPI dispatch
    Tick netRxBase = 1800;       //!< driver + IP layer processing
    Tick txPacket = 1300;        //!< qdisc + driver transmit
    Tick steerCost = 550;        //!< RFD software steering to another core
    /** @} */

    /** @name TCP layer */
    /** @{ */
    Tick listenLookupBase = 150;     //!< hash + first bucket probe
    Tick listenLookupPerEntry = 140; //!< per extra socket walked (reuseport)
    Tick synProcess = 2600;          //!< request sock create + SYN-ACK build
    Tick establish = 3600;           //!< full TCB create on final ACK
    Tick ehashLookup = 220;          //!< established table probe
    Tick ehashChainProbe = 60;       //!< per extra chain entry walked
                                     //!< (tuple compare + next pointer)
    Tick ehashInsertHold = 260;      //!< bucket lock hold for insert/remove
    Tick acceptQueuePushHold = 320;  //!< listen slock hold to enqueue
    Tick slockHoldRx = 650;          //!< TCB processing under slock (softirq)
    Tick slockHoldApp = 520;         //!< TCB processing under slock (app ctx)
    Tick dataSegment = 2300;         //!< TCP data segment receive processing
    Tick timerOpHold = 260;          //!< timer wheel add/mod/del under lock
    Tick timerTickCost = 150;        //!< per-jiffy timer SoftIRQ base cost
    Tick portAllocCost = 500;        //!< ephemeral source port selection
    Tick portBindHold = 900;         //!< global bind-hash lock hold
                                     //!< (inet_csk_get_port, 2.6.32)
    Tick synQueueHold = 300;         //!< listen slock hold for SYN queue add
    Tick synCookieCost = 900;        //!< encode or validate a SYN cookie
    Tick rstCost = 800;              //!< build + send an RST
    /** @} */

    /** @name Epoll */
    /** @{ */
    Tick epollWakeHold = 360;    //!< ready-list push under ep.lock
    Tick epollCtl = 750;         //!< EPOLL_CTL_ADD/DEL
    Tick epollWaitBase = 900;    //!< epoll_wait syscall + drain loop
    /** @} */

    /** @name VFS */
    /** @{ */
    Tick vfsAllocHeavy = 2600;   //!< dentry+inode alloc/init (outside locks)
    Tick vfsFreeHeavy = 2100;    //!< dentry+inode teardown (outside locks)
    Tick dcacheLockHold = 2600;  //!< global dcache_lock hold per op
                                 //!< (hash chain + LRU + refcount work,
                                 //!< all under the one 2.6.32 lock)
    Tick inodeLockHold = 350;    //!< global inode_lock hold per op
    Tick vfsFineLockHold = 180;  //!< 3.13-style per-bucket lock hold
    Tick vfsAllocFast = 650;     //!< Fastsocket-aware VFS fast-path alloc
    Tick vfsFreeFast = 550;      //!< Fastsocket-aware VFS fast-path free
    Tick fdBitmapCost = 180;     //!< lowest-fd bitmap scan + set
    /** @} */

    /** @name Syscall and application layer */
    /** @{ */
    Tick syscallOverhead = 300;
    Tick schedWakeLocal = 800;   //!< wakeup of a process on this core
    Tick schedWakeRemote = 2600; //!< cross-core wakeup (IPI + resched)
    Tick acceptCost = 1500;      //!< accept() excluding VFS and locks
    Tick connectCost = 2400;     //!< connect() excluding port alloc
    Tick readCost = 1600;
    Tick writeCost = 1900;
    Tick closeCost = 1300;
    Tick appServiceWeb = 45000;  //!< nginx: parse + log + serve cached page
    Tick appServiceProxy = 12000; //!< haproxy: parse + forwarding decision
    /** @} */

    /** @name Locks */
    /** @{ */
    Tick lockAcquireBase = 40;   //!< uncontended acquire+release cost
    /** Extra serialized cycles per already-spinning core on a contended
     *  handoff: every waiter re-reads the lock line when it is released,
     *  so handoff latency grows with the spinner count. This is the
     *  superlinear-collapse term for hot global spinlocks. */
    Tick lockHandoffStorm = 250;
    /** @} */
};

} // namespace fsim

#endif // FSIM_CPU_CYCLE_COSTS_HH
