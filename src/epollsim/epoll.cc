#include "epollsim/epoll.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

EventPoll::EventPoll(LockRegistry &locks, CacheModel &cache,
                     const CycleCosts &costs)
    : cache_(cache), costs_(costs), tracer_(locks.tracer())
{
    epLock_.init(locks.getClass("ep.lock"), &cache_,
                 costs_.lockAcquireBase, costs_.lockHandoffStorm);
    readyListObj_ = cache_.newObject();
}

Tick
EventPoll::ctlAdd(CoreId c, Tick t, int fd)
{
    t += costs_.epollCtl;
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold);
    interest_[fd] = false;
    return end;
}

Tick
EventPoll::ctlDel(CoreId c, Tick t, int fd)
{
    t += costs_.epollCtl;
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold);
    // Any pending ready entry is left in place and skipped lazily by
    // wait(): an eager O(ready) scan here is quadratic when a worker
    // closes fds while its ready list is deep (million-connection churn).
    interest_.erase(fd);
    wakeTicks_.erase(fd);
    return end;
}

Tick
EventPoll::wake(CoreId c, Tick t, int fd)
{
    auto it = interest_.find(fd);
    if (it == interest_.end())
        return t;    // not watched; nothing to do
    Tick penalty = cache_.access(c, readyListObj_, /*write=*/true);
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold + penalty);
    if (!it->second) {
        it->second = true;
        ready_.push_back(fd);
        if (ready_.size() > readyPeak_)
            readyPeak_ = ready_.size();
        if (tracer_ && tracer_->enabled()) {
            tracer_->emit(c, TraceEventType::kEpollWake, end,
                          static_cast<std::uint32_t>(fd));
            wakeTicks_.emplace(fd, end);
        }
    }
    return end;
}

Tick
EventPoll::consumeWakeTick(int fd)
{
    auto it = wakeTicks_.find(fd);
    if (it == wakeTicks_.end())
        return 0;
    Tick t = it->second;
    wakeTicks_.erase(it);
    return t;
}

Tick
EventPoll::wait(CoreId c, Tick t, std::vector<int> &out, int max_events)
{
    t += costs_.epollWaitBase;
    Tick penalty = cache_.access(c, readyListObj_, /*write=*/true);
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold + penalty);
    while (!ready_.empty() &&
           static_cast<int>(out.size()) < max_events) {
        int fd = ready_.front();
        ready_.pop_front();
        auto it = interest_.find(fd);
        // The linked check matters: a stale entry left by ctlDel must not
        // be delivered against a re-added fd of the same number (the new
        // registration has its own wakeup or none at all).
        if (it != interest_.end() && it->second) {
            it->second = false;
            out.push_back(fd);
        }
    }
    return end;
}

} // namespace fsim
