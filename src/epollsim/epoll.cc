#include "epollsim/epoll.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

EventPoll::EventPoll(LockRegistry &locks, CacheModel &cache,
                     const CycleCosts &costs)
    : cache_(cache), costs_(costs), tracer_(locks.tracer())
{
    epLock_.init(locks.getClass("ep.lock"), &cache_,
                 costs_.lockAcquireBase, costs_.lockHandoffStorm);
    readyListObj_ = cache_.newObject();
}

void
EventPoll::ensureFd(int fd)
{
    fsim_assert(fd >= 0);
    if (static_cast<std::size_t>(fd) >= interest_.size()) {
        // Double rather than grow to fd+1: fd numbers climb to a
        // high-water mark and recycle, so growth is a warm-up cost.
        const std::size_t cap =
            std::max<std::size_t>(fd + 1, interest_.size() * 2);
        interest_.resize(cap, kUnwatched);
        wakeTicks_.resize(cap, 0);
    }
}

Tick
EventPoll::ctlAdd(CoreId c, Tick t, int fd)
{
    t += costs_.epollCtl;
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold);
    ensureFd(fd);
    if (interest_[fd] == kUnwatched)
        ++interestCount_;
    interest_[fd] = kWatched;
    return end;
}

Tick
EventPoll::ctlDel(CoreId c, Tick t, int fd)
{
    t += costs_.epollCtl;
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold);
    // Any pending ready entry is left in place and skipped lazily by
    // wait(): an eager O(ready) scan here is quadratic when a worker
    // closes fds while its ready list is deep (million-connection churn).
    if (watching(fd)) {
        interest_[fd] = kUnwatched;
        --interestCount_;
    }
    if (static_cast<std::size_t>(fd) < wakeTicks_.size())
        wakeTicks_[fd] = 0;
    return end;
}

Tick
EventPoll::wake(CoreId c, Tick t, int fd)
{
    if (!watching(fd))
        return t;    // not watched; nothing to do
    Tick penalty = cache_.access(c, readyListObj_, /*write=*/true);
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold + penalty);
    if (interest_[fd] == kWatched) {
        interest_[fd] = kLinked;
        ready_.push_back(fd);
        if (ready_.size() > readyPeak_)
            readyPeak_ = ready_.size();
        if (tracer_ && tracer_->enabled()) {
            tracer_->emit(c, TraceEventType::kEpollWake, end,
                          static_cast<std::uint32_t>(fd));
            if (wakeTicks_[fd] == 0)    // keep the earliest wakeup
                wakeTicks_[fd] = end;
        }
    }
    return end;
}

Tick
EventPoll::consumeWakeTick(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= wakeTicks_.size())
        return 0;
    Tick t = wakeTicks_[fd];
    wakeTicks_[fd] = 0;
    return t;
}

Tick
EventPoll::wait(CoreId c, Tick t, std::vector<int> &out, int max_events)
{
    t += costs_.epollWaitBase;
    Tick penalty = cache_.access(c, readyListObj_, /*write=*/true);
    Tick end = epLock_.runLocked(c, t, costs_.epollWakeHold + penalty);
    while (!ready_.empty() &&
           static_cast<int>(out.size()) < max_events) {
        int fd = ready_.front();
        ready_.pop_front();
        // The linked check matters: a stale entry left by ctlDel must not
        // be delivered against a re-added fd of the same number (the new
        // registration has its own wakeup or none at all).
        if (interest_[fd] == kLinked) {
            interest_[fd] = kWatched;
            out.push_back(fd);
        }
    }
    return end;
}

} // namespace fsim
