/**
 * @file
 * Simulated epoll instance.
 *
 * The ready list is guarded by ep.lock, which in the stock kernel is taken
 * from the SoftIRQ context (socket wakeups) *and* from the process context
 * (epoll_wait drain, epoll_ctl) — so without connection locality the two
 * contexts run on different cores and contend, which is the ep.lock row of
 * the paper's Table 1.
 */

#ifndef FSIM_EPOLLSIM_EPOLL_HH
#define FSIM_EPOLLSIM_EPOLL_HH

#include <cstdint>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/cycle_costs.hh"
#include "sim/ring_queue.hh"
#include "sim/types.hh"
#include "sync/lock_registry.hh"
#include "sync/spinlock.hh"

namespace fsim
{

class Tracer;

/** One epoll instance (each simulated process owns one). */
class EventPoll
{
  public:
    EventPoll(LockRegistry &locks, CacheModel &cache,
              const CycleCosts &costs);

    /** EPOLL_CTL_ADD. @return completion tick. */
    Tick ctlAdd(CoreId c, Tick t, int fd);

    /** EPOLL_CTL_DEL; also removes any pending ready entry. */
    Tick ctlDel(CoreId c, Tick t, int fd);

    /**
     * Kernel-side wakeup: mark @p fd ready.
     *
     * Duplicate wakeups while the fd is already on the ready list collapse,
     * like the epoll item linked state does.
     *
     * @return completion tick.
     */
    Tick wake(CoreId c, Tick t, int fd);

    /**
     * Process-side epoll_wait: drain up to @p max_events ready fds into
     * @p out (the maxevents argument of the real syscall).
     *
     * @return completion tick.
     */
    Tick wait(CoreId c, Tick t, std::vector<int> &out,
              int max_events = 64);

    bool hasReady() const { return !ready_.empty(); }
    std::size_t interestCount() const { return interestCount_; }

    bool
    watching(int fd) const
    {
        return fd >= 0 &&
               static_cast<std::size_t>(fd) < interest_.size() &&
               interest_[fd] != kUnwatched;
    }

    /** Deepest the ready list ever got — a process-side pressure signal
     *  (a worker whose ready list keeps growing is not keeping up). */
    std::size_t readyPeak() const { return readyPeak_; }

    /**
     * Tick of the earliest un-consumed wakeup on @p fd (0 = none), then
     * forget it. Pure trace bookkeeping for the dispatch-latency span
     * (wakeup -> the app's read syscall); never affects simulation
     * state, and records nothing while tracing is disabled.
     */
    Tick consumeWakeTick(int fd);

  private:
    CacheModel &cache_;
    const CycleCosts &costs_;
    Tracer *tracer_;   //!< borrowed from the lock registry; may be null
    SimSpinLock epLock_;
    std::uint64_t readyListObj_;

    enum : std::uint8_t
    {
        kUnwatched = 0,
        kWatched = 1,    //!< registered, not on the ready list
        kLinked = 2,     //!< registered and linked on the ready list
    };

    /** Grow the fd-indexed tables to cover @p fd (sticky capacity). */
    void ensureFd(int fd);

    /** Watch state per fd. Dense fd-indexed arrays, not hash maps: fds
     *  are small integers recycled by the fd table, and per-connection
     *  map-node churn is exactly what the allocation audit forbids. */
    std::vector<std::uint8_t> interest_;
    std::size_t interestCount_ = 0;
    RingQueue<int> ready_;
    std::size_t readyPeak_ = 0;
    /** fd -> tick of its earliest pending wakeup (trace-only; 0 = none,
     *  wakeups never happen at tick 0). */
    std::vector<Tick> wakeTicks_;
};

} // namespace fsim

#endif // FSIM_EPOLLSIM_EPOLL_HH
