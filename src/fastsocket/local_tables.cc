#include "fastsocket/local_tables.hh"

#include "sim/logging.hh"

namespace fsim
{

LocalListenTable::LocalListenTable(int n_cores, CacheModel &cache)
    : tables_(n_cores)
{
    fsim_assert(n_cores > 0);
    cacheObjs_.reserve(n_cores);
    for (int i = 0; i < n_cores; ++i)
        cacheObjs_.push_back(cache.newObject());
}

std::size_t
LocalListenTable::totalSockets() const
{
    std::size_t n = 0;
    for (const ListenTable &t : tables_)
        n += t.size();
    return n;
}

LocalEstablishedTable::LocalEstablishedTable(int n_cores, int n_buckets,
                                             LockRegistry &locks,
                                             CacheModel &cache,
                                             const CycleCosts &costs)
{
    fsim_assert(n_cores > 0);
    tables_.reserve(n_cores);
    for (int i = 0; i < n_cores; ++i) {
        // Per-core tables are private to their owning core (RFD steers
        // every packet of a connection to the inserting core), so they can
        // grow with load; the global ehash cannot and its chains lengthen.
        tables_.push_back(std::make_unique<EstablishedTable>(
            n_buckets, locks, cache, costs, "ehash.lock",
            /*resizable=*/true));
    }
}

std::size_t
LocalEstablishedTable::totalSockets() const
{
    std::size_t n = 0;
    for (const auto &t : tables_)
        n += t->size();
    return n;
}

} // namespace fsim
