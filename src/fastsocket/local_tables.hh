/**
 * @file
 * The per-core table partitions at the heart of Fastsocket:
 *
 *  - LocalListenTable (section 3.2.1): one listen table per core holding
 *    the local listen socket clones created by local_listen(); the global
 *    listen table is kept alongside for the robustness slow path.
 *  - LocalEstablishedTable (section 3.2.2): one established table per
 *    core; combined with RFD's steering guarantee, a connection's socket
 *    is inserted and looked up by the same core, so the per-core bucket
 *    locks never contend.
 */

#ifndef FSIM_FASTSOCKET_LOCAL_TABLES_HH
#define FSIM_FASTSOCKET_LOCAL_TABLES_HH

#include <memory>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/cycle_costs.hh"
#include "sync/lock_registry.hh"
#include "tcp/established_table.hh"
#include "tcp/listen_table.hh"

namespace fsim
{

/** Per-core listen tables (plus cache lines for access costing). */
class LocalListenTable
{
  public:
    LocalListenTable(int n_cores, CacheModel &cache);

    ListenTable &table(CoreId c) { return tables_.at(c); }
    const ListenTable &table(CoreId c) const { return tables_.at(c); }

    /** Cache object of core @p c's table head (local by construction). */
    std::uint64_t cacheObj(CoreId c) const { return cacheObjs_.at(c); }

    int numCores() const { return static_cast<int>(tables_.size()); }

    /** Total local listen sockets across all cores. */
    std::size_t totalSockets() const;

  private:
    std::vector<ListenTable> tables_;
    std::vector<std::uint64_t> cacheObjs_;
};

/** Per-core established tables. */
class LocalEstablishedTable
{
  public:
    /**
     * @param n_buckets Buckets of each per-core table (power of two).
     */
    LocalEstablishedTable(int n_cores, int n_buckets, LockRegistry &locks,
                          CacheModel &cache, const CycleCosts &costs);

    EstablishedTable &table(CoreId c) { return *tables_.at(c); }
    const EstablishedTable &table(CoreId c) const { return *tables_.at(c); }

    int numCores() const { return static_cast<int>(tables_.size()); }

    /** Total established sockets across all cores (leak checks). */
    std::size_t totalSockets() const;

  private:
    std::vector<std::unique_ptr<EstablishedTable>> tables_;
};

} // namespace fsim

#endif // FSIM_FASTSOCKET_LOCAL_TABLES_HH
