#include "fastsocket/rfd.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fsim
{

namespace
{

std::uint32_t
roundUpPow2(std::uint32_t x)
{
    std::uint32_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

} // anonymous namespace

ReceiveFlowDeliver::ReceiveFlowDeliver(int n_cores, bool precise)
    : nCores_(n_cores), precise_(precise)
{
    fsim_assert(n_cores >= 1 && n_cores <= 64);
    std::uint32_t width = roundUpPow2(static_cast<std::uint32_t>(n_cores));
    for (int b = 0; (1u << b) < width; ++b)
        bits_.push_back(b);
}

Port
ReceiveFlowDeliver::hashMask(int n_cores)
{
    return static_cast<Port>(
        roundUpPow2(static_cast<std::uint32_t>(n_cores)) - 1);
}

CoreId
ReceiveFlowDeliver::hash(Port p) const
{
    std::uint32_t h = 0;
    for (std::size_t i = 0; i < bits_.size(); ++i)
        h |= ((static_cast<std::uint32_t>(p) >> bits_[i]) & 1u) << i;
    return static_cast<CoreId>(h);
}

PacketClass
ReceiveFlowDeliver::classify(
    const Packet &pkt,
    const std::function<bool(IpAddr, Port)> &has_listener) const
{
    // Rule 1: a well-known *source* port means the packet is a reply from
    // a server we connected to — the kernel never picks a well-known port
    // as an ephemeral source port.
    if (pkt.tuple.sport <= kWellKnownPortMax) {
        ++stats_.classifiedActive;
        return PacketClass::kActiveIncoming;
    }

    // Rule 2: a well-known *destination* port means it targets one of our
    // services: passive.
    if (pkt.tuple.dport <= kWellKnownPortMax) {
        ++stats_.classifiedPassive;
        return PacketClass::kPassiveIncoming;
    }

    // Rule 3 (optional precise mode): a destination port somebody listens
    // on cannot have been used as an active source port.
    if (precise_ && has_listener) {
        ++stats_.preciseProbes;
        if (has_listener(pkt.tuple.daddr, pkt.tuple.dport)) {
            ++stats_.classifiedPassive;
            return PacketClass::kPassiveIncoming;
        }
    }

    ++stats_.classifiedActive;
    return PacketClass::kActiveIncoming;
}

CoreId
ReceiveFlowDeliver::steerTarget(const Packet &pkt, PacketClass cls) const
{
    if (cls != PacketClass::kActiveIncoming)
        return kInvalidCore;
    CoreId c = hash(pkt.tuple.dport);
    // Ports we allocated always hash below nCores_; foreign traffic is
    // wrapped defensively.
    return c < nCores_ ? c : c % nCores_;
}

void
ReceiveFlowDeliver::randomizeBits(Rng &rng)
{
    std::size_t width = bits_.size();
    std::vector<int> pool;
    for (int b = 0; b < 16; ++b)
        pool.push_back(b);
    // Fisher-Yates draw of `width` distinct bit positions.
    for (std::size_t i = 0; i < width; ++i) {
        std::size_t j = i + rng.range(pool.size() - i);
        std::swap(pool[i], pool[j]);
    }
    bits_.assign(pool.begin(), pool.begin() + width);
    std::sort(bits_.begin(), bits_.end());
}

Port
ReceiveFlowDeliver::portCandidate(CoreId core, std::uint32_t idx) const
{
    fsim_assert(core >= 0 &&
                static_cast<std::uint32_t>(core) < (1u << bits_.size()));
    fsim_assert(idx < candidateCount());

    std::uint32_t port = 0;
    // Scatter the core id into the hash bits.
    for (std::size_t i = 0; i < bits_.size(); ++i)
        port |= ((static_cast<std::uint32_t>(core) >> i) & 1u) << bits_[i];
    // Scatter idx into the remaining bits, LSB-first.
    std::uint32_t k = 0;
    for (int b = 0; b < 16; ++b) {
        if (std::find(bits_.begin(), bits_.end(), b) != bits_.end())
            continue;
        port |= ((idx >> k) & 1u) << b;
        ++k;
    }
    return static_cast<Port>(port);
}

std::uint32_t
ReceiveFlowDeliver::candidateCount() const
{
    return 1u << (16 - bits_.size());
}

} // namespace fsim
