/**
 * @file
 * Receive Flow Deliver (RFD) — the paper's mechanism for *active*
 * connection locality (section 3.3).
 *
 * When a process on core c opens an active connection, RFD picks a source
 * port p with hash(p) == c, where
 *
 *     hash(p) = p & (ROUND_UP_POWER_OF_2(ncores) - 1)
 *
 * Response packets carry p as their destination port, so the kernel (or the
 * NIC via FDir Perfect-Filtering, which supports exactly this kind of
 * bit-wise match) can recover the owning core from the header alone.
 *
 * Incoming packets must first be classified, because the hash only applies
 * to active incoming packets (otherwise RFD would break passive locality).
 * The paper's three rules, applied in order:
 *
 *   1. source port well-known (<1024)      -> active incoming
 *   2. destination port well-known         -> passive incoming
 *   3. (optional, precise) destination port matches a local listener
 *                                          -> passive, else active
 *
 * As a hardening extension the paper sketches, the bits used by the hash
 * can be randomized (randomizeBits()) so an attacker cannot aim all
 * connections at one core.
 */

#ifndef FSIM_FASTSOCKET_RFD_HH
#define FSIM_FASTSOCKET_RFD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fsim
{

/** Classification of an incoming packet (paper section 3.3). */
enum class PacketClass
{
    kPassiveIncoming,   //!< belongs to a passive (accepted) connection
    kActiveIncoming,    //!< reply traffic of an active (connect()) flow
};

/** Classification census, exported by the trace/JSON reports. */
struct RfdStats
{
    std::uint64_t classifiedActive = 0;
    std::uint64_t classifiedPassive = 0;
    /** Times rule 3 (the listener-table probe) had to run. */
    std::uint64_t preciseProbes = 0;
};

/** Receive Flow Deliver. */
class ReceiveFlowDeliver
{
  public:
    /**
     * @param n_cores Cores participating in steering.
     * @param precise Apply rule 3 (listener probe) when rules 1-2 are
     *                inconclusive; otherwise default to active.
     */
    explicit ReceiveFlowDeliver(int n_cores, bool precise = true);

    /** roundup_pow2(n)-1, the mask the paper programs into FDir. */
    static Port hashMask(int n_cores);

    /** The RFD hash: which core a (destination) port maps to. */
    CoreId hash(Port p) const;

    /**
     * Classify an incoming packet using the three ordered rules.
     *
     * @param has_listener Probe "is anyone listening on (addr, port)?";
     *        only consulted by rule 3.
     */
    PacketClass classify(
        const Packet &pkt,
        const std::function<bool(IpAddr, Port)> &has_listener) const;

    /**
     * Core that should process an incoming packet, or kInvalidCore when
     * RFD does not redirect (passive traffic is left to the Local Listen
     * Table / RSS placement).
     */
    CoreId steerTarget(const Packet &pkt, PacketClass cls) const;

    /**
     * Randomize which port bits feed the hash (security hardening).
     *
     * After this, hash() gathers the selected bits and portCandidate()
     * scatters a core id back into them.
     */
    void randomizeBits(Rng &rng);

    /** Bit positions currently used by the hash, LSB-first. */
    const std::vector<int> &hashBits() const { return bits_; }

    /**
     * The @p idx -th source-port candidate for core @p core: a port whose
     * hash() equals @p core. Candidates are distinct for distinct idx
     * within [0, candidateCount()).
     */
    Port portCandidate(CoreId core, std::uint32_t idx) const;

    /** Number of distinct port candidates per core. */
    std::uint32_t candidateCount() const;

    int numCores() const { return nCores_; }

    /** Rule-hit counters (classify() is logically const; the census is
     *  observability state, not steering state). */
    const RfdStats &stats() const { return stats_; }

  private:
    int nCores_;
    bool precise_;
    std::vector<int> bits_;     //!< positions of hash bits, LSB-first
    mutable RfdStats stats_;
};

} // namespace fsim

#endif // FSIM_FASTSOCKET_RFD_HH
