#include "fault/fault_injector.hh"

#include "sim/logging.hh"

namespace fsim
{

FaultInjector::FaultInjector(EventQueue &eq, Wire &wire, Nic &nic,
                             BackendPool *backends, const FaultPlan &plan)
    : eq_(eq), wire_(wire), nic_(nic), backends_(backends), plan_(plan)
{
}

void
FaultInjector::arm(const std::vector<IpAddr> &server_addrs,
                   Port server_port)
{
    fsim_assert(!armed_);
    armed_ = true;
    wire_.setFaultSeed(plan_.seed);

    for (const FaultEvent &e : plan_.events) {
        Tick start = ticksFromSeconds(e.startSec);
        Tick end = ticksFromSeconds(e.endSec);

        switch (e.kind) {
          case FaultKind::kLossBurst: {
            Wire::FaultWindow w;
            w.start = start;
            w.end = end;
            w.lossRate = e.rate;
            wire_.addFaultWindow(w);
            break;
          }
          case FaultKind::kReorder: {
            Wire::FaultWindow w;
            w.start = start;
            w.end = end;
            w.reorderRate = e.rate;
            w.reorderJitter = ticksFromUsec(e.jitterUsec);
            wire_.addFaultWindow(w);
            break;
          }
          case FaultKind::kDuplicate: {
            Wire::FaultWindow w;
            w.start = start;
            w.end = end;
            w.dupRate = e.rate;
            wire_.addFaultWindow(w);
            break;
          }
          case FaultKind::kSynFlood: {
            if (!flood_)
                flood_ = std::make_unique<SynFlood>(eq_, wire_,
                                                    server_addrs,
                                                    server_port);
            flood_->addWindow(start, end, e.rate);
            break;
          }
          case FaultKind::kBackendSlow:
            if (!backends_) {
                ++ignoredEvents_;
                break;
            }
            backends_->addSlowdown(e.target, start, end, e.factor);
            break;
          case FaultKind::kBackendDown:
            if (!backends_) {
                ++ignoredEvents_;
                break;
            }
            backends_->addOutage(e.target, start, end);
            break;
          case FaultKind::kAtrShrink: {
            std::uint32_t size = e.tableSize;
            eq_.schedule(start, [this, size] {
                nic_.setAtrCapacityClamp(size);
            });
            eq_.schedule(end, [this] { nic_.setAtrCapacityClamp(0); });
            break;
          }
          case FaultKind::kMachineCrash:
          case FaultKind::kRollingRestart:
          case FaultKind::kLbCrash:
          case FaultKind::kMachineDegrade:
          case FaultKind::kNetPartition:
            // Fleet orchestration: meaningless on a single machine.
            // The FleetTestbed consumes these itself before arming the
            // injector with the remaining wire/backend events.
            ++ignoredEvents_;
            break;
        }
    }
}

} // namespace fsim
