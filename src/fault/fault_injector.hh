/**
 * @file
 * FaultInjector: arms a FaultPlan against a wired testbed.
 *
 * Wire events (loss bursts, reordering, duplication) become data windows
 * the Wire consults at transmit time; NIC events schedule ATR-table
 * clamps on the event queue; syn_flood windows instantiate a SynFlood
 * attacker endpoint; backend events register outage/slowdown windows
 * with the BackendPool. Everything is scheduled up front from the plan,
 * so an armed injector adds no per-packet RNG draws and cannot perturb
 * the workload's random streams.
 */

#ifndef FSIM_FAULT_FAULT_INJECTOR_HH
#define FSIM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "app/backend.hh"
#include "app/syn_flood.hh"
#include "fault/fault_plan.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace fsim
{

/** Arms one FaultPlan against one testbed's wire/NIC/backends. */
class FaultInjector
{
  public:
    /**
     * @param backends May be null (nginx runs); backend_* events are
     *        then counted as ignored instead of armed.
     */
    FaultInjector(EventQueue &eq, Wire &wire, Nic &nic,
                  BackendPool *backends, const FaultPlan &plan);

    /**
     * Schedule every event. Must be called once, before the run starts.
     *
     * @param server_addrs,server_port SYN-flood victim addresses.
     */
    void arm(const std::vector<IpAddr> &server_addrs, Port server_port);

    const FaultPlan &plan() const { return plan_; }
    /** The attacker, when the plan floods (else null). */
    SynFlood *flood() { return flood_.get(); }
    /** Events skipped because their target is absent (no backends). */
    int ignoredEvents() const { return ignoredEvents_; }

  private:
    EventQueue &eq_;
    Wire &wire_;
    Nic &nic_;
    BackendPool *backends_;
    FaultPlan plan_;
    std::unique_ptr<SynFlood> flood_;
    bool armed_ = false;
    int ignoredEvents_ = 0;
};

} // namespace fsim

#endif // FSIM_FAULT_FAULT_INJECTOR_HH
