#include "fault/fault_plan.hh"

#include <sstream>

namespace fsim
{

namespace
{

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr KindName kKinds[] = {
    {FaultKind::kLossBurst, "loss_burst"},
    {FaultKind::kReorder, "reorder"},
    {FaultKind::kDuplicate, "duplicate"},
    {FaultKind::kSynFlood, "syn_flood"},
    {FaultKind::kBackendSlow, "backend_slow"},
    {FaultKind::kBackendDown, "backend_down"},
    {FaultKind::kAtrShrink, "atr_shrink"},
    {FaultKind::kMachineCrash, "machine_crash"},
    {FaultKind::kRollingRestart, "rolling_restart"},
    {FaultKind::kLbCrash, "lb_crash"},
};

std::string
validKindList()
{
    std::string s;
    for (const KindName &k : kKinds) {
        if (!s.empty())
            s += ", ";
        s += k.name;
    }
    return s;
}

bool
kindFromName(const std::string &name, FaultKind &out)
{
    for (const KindName &k : kKinds) {
        if (name == k.name) {
            out = k.kind;
            return true;
        }
    }
    return false;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string part;
    while (std::getline(is, part, sep))
        out.push_back(part);
    return out;
}

/** Compact double formatting that round-trips through parse. */
std::string
numStr(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // anonymous namespace

const char *
faultKindName(FaultKind kind)
{
    for (const KindName &k : kKinds)
        if (k.kind == kind)
            return k.name;
    return "?";
}

bool
FaultPlan::has(FaultKind kind) const
{
    for (const FaultEvent &e : events)
        if (e.kind == kind)
            return true;
    return false;
}

bool
parseFaultPlan(const std::string &text, FaultPlan &out, std::string &err)
{
    FaultPlan plan;
    for (const std::string &raw : split(text, ';')) {
        std::string item = trim(raw);
        if (item.empty())
            continue;

        // Plan-level seed: a bare "seed=N" element.
        if (item.compare(0, 5, "seed=") == 0) {
            try {
                plan.seed = std::stoull(trim(item.substr(5)));
            } catch (const std::exception &) {
                err = "bad fault plan seed '" + item + "'";
                return false;
            }
            continue;
        }

        std::size_t at = item.find('@');
        if (at == std::string::npos) {
            err = "fault event '" + item + "' missing '@start-end'; "
                  "expected kind@startSec-endSec[:param=value,...]";
            return false;
        }
        FaultEvent ev;
        std::string kind = trim(item.substr(0, at));
        if (!kindFromName(kind, ev.kind)) {
            err = "unknown fault kind '" + kind + "'; valid kinds: " +
                  validKindList();
            return false;
        }

        std::string rest = item.substr(at + 1);
        std::size_t colon = rest.find(':');
        std::string window = trim(colon == std::string::npos
                                      ? rest
                                      : rest.substr(0, colon));
        std::size_t dash = window.find('-');
        if (dash == std::string::npos) {
            err = "fault event '" + item + "': window must be "
                  "startSec-endSec";
            return false;
        }
        try {
            ev.startSec = std::stod(trim(window.substr(0, dash)));
            ev.endSec = std::stod(trim(window.substr(dash + 1)));
        } catch (const std::exception &) {
            err = "fault event '" + item + "': bad window time";
            return false;
        }
        if (ev.startSec < 0.0 || ev.endSec <= ev.startSec) {
            err = "fault event '" + item + "': window must satisfy "
                  "0 <= start < end";
            return false;
        }

        if (colon != std::string::npos) {
            for (const std::string &p : split(rest.substr(colon + 1),
                                              ',')) {
                std::string kv = trim(p);
                if (kv.empty())
                    continue;
                std::size_t eq = kv.find('=');
                if (eq == std::string::npos) {
                    err = "fault event '" + item + "': parameter '" + kv +
                          "' is not key=value";
                    return false;
                }
                std::string key = trim(kv.substr(0, eq));
                std::string val = trim(kv.substr(eq + 1));
                try {
                    if (key == "rate")
                        ev.rate = std::stod(val);
                    else if (key == "factor")
                        ev.factor = std::stod(val);
                    else if (key == "target")
                        ev.target = std::stoi(val);
                    else if (key == "jitter")
                        ev.jitterUsec = std::stod(val);
                    else if (key == "size")
                        ev.tableSize = static_cast<std::uint32_t>(
                            std::stoul(val));
                    else if (key == "mode") {
                        if (val == "rst")
                            ev.mode = FaultEvent::CrashMode::kRst;
                        else if (val == "blackhole")
                            ev.mode = FaultEvent::CrashMode::kBlackhole;
                        else {
                            err = "fault event '" + item + "': mode must "
                                  "be rst or blackhole";
                            return false;
                        }
                    } else if (key == "drain_ms")
                        ev.drainMsec = std::stod(val);
                    else if (key == "down_ms")
                        ev.downMsec = std::stod(val);
                    else {
                        err = "fault event '" + item + "': unknown "
                              "parameter '" + key + "' (valid: rate, "
                              "factor, target, jitter, size, mode, "
                              "drain_ms, down_ms)";
                        return false;
                    }
                } catch (const std::exception &) {
                    err = "fault event '" + item + "': bad value for '" +
                          key + "'";
                    return false;
                }
            }
        }

        // Per-kind validity so armed plans cannot misbehave silently.
        switch (ev.kind) {
          case FaultKind::kLossBurst:
          case FaultKind::kReorder:
          case FaultKind::kDuplicate:
            if (ev.rate <= 0.0 || ev.rate >= 1.0) {
                err = "fault event '" + item + "': rate must be in "
                      "(0, 1)";
                return false;
            }
            break;
          case FaultKind::kSynFlood:
            if (ev.rate <= 0.0) {
                err = "fault event '" + item + "': syn_flood needs "
                      "rate > 0 (SYNs per second)";
                return false;
            }
            break;
          case FaultKind::kBackendSlow:
            if (ev.factor <= 1.0) {
                err = "fault event '" + item + "': backend_slow needs "
                      "factor > 1";
                return false;
            }
            break;
          case FaultKind::kBackendDown:
            break;
          case FaultKind::kAtrShrink:
            if (ev.tableSize == 0 ||
                (ev.tableSize & (ev.tableSize - 1)) != 0) {
                err = "fault event '" + item + "': size must be a "
                      "power of two";
                return false;
            }
            break;
          case FaultKind::kMachineCrash:
          case FaultKind::kLbCrash:
            if (ev.target < 0) {
                err = "fault event '" + item + "': needs target >= 0 "
                      "(machine index)";
                return false;
            }
            break;
          case FaultKind::kRollingRestart:
            if (ev.drainMsec <= 0.0 || ev.downMsec <= 0.0) {
                err = "fault event '" + item + "': drain_ms and down_ms "
                      "must be > 0";
                return false;
            }
            break;
        }
        plan.events.push_back(ev);
    }
    out = plan;
    return true;
}

std::string
serializeFaultPlan(const FaultPlan &plan)
{
    if (plan.empty())
        return "";
    std::string s;
    for (const FaultEvent &e : plan.events) {
        if (!s.empty())
            s += ";";
        s += faultKindName(e.kind);
        s += '@';
        s += numStr(e.startSec);
        s += '-';
        s += numStr(e.endSec);
        switch (e.kind) {
          case FaultKind::kLossBurst:
          case FaultKind::kReorder:
          case FaultKind::kDuplicate:
            s += ":rate=";
            s += numStr(e.rate);
            if (e.kind == FaultKind::kReorder) {
                s += ",jitter=";
                s += numStr(e.jitterUsec);
            }
            break;
          case FaultKind::kSynFlood:
            s += ":rate=";
            s += numStr(e.rate);
            break;
          case FaultKind::kBackendSlow:
            s += ":factor=";
            s += numStr(e.factor);
            s += ",target=";
            s += std::to_string(e.target);
            break;
          case FaultKind::kBackendDown:
            s += ":target=";
            s += std::to_string(e.target);
            break;
          case FaultKind::kAtrShrink:
            s += ":size=";
            s += std::to_string(e.tableSize);
            break;
          case FaultKind::kMachineCrash:
            s += ":target=";
            s += std::to_string(e.target);
            s += ",mode=";
            s += e.mode == FaultEvent::CrashMode::kRst ? "rst"
                                                       : "blackhole";
            break;
          case FaultKind::kRollingRestart:
            s += ":drain_ms=";
            s += numStr(e.drainMsec);
            s += ",down_ms=";
            s += numStr(e.downMsec);
            break;
          case FaultKind::kLbCrash:
            s += ":target=";
            s += std::to_string(e.target);
            break;
        }
    }
    if (plan.seed != FaultPlan{}.seed) {
        s += ";seed=";
        s += std::to_string(plan.seed);
    }
    return s;
}

} // namespace fsim
