#include "fault/fault_plan.hh"

#include <cctype>
#include <cmath>
#include <sstream>

namespace fsim
{

namespace
{

struct KindName
{
    FaultKind kind;
    const char *name;
};

constexpr KindName kKinds[] = {
    {FaultKind::kLossBurst, "loss_burst"},
    {FaultKind::kReorder, "reorder"},
    {FaultKind::kDuplicate, "duplicate"},
    {FaultKind::kSynFlood, "syn_flood"},
    {FaultKind::kBackendSlow, "backend_slow"},
    {FaultKind::kBackendDown, "backend_down"},
    {FaultKind::kAtrShrink, "atr_shrink"},
    {FaultKind::kMachineCrash, "machine_crash"},
    {FaultKind::kRollingRestart, "rolling_restart"},
    {FaultKind::kLbCrash, "lb_crash"},
    {FaultKind::kMachineDegrade, "machine_degrade"},
    {FaultKind::kNetPartition, "net_partition"},
};

std::string
validKindList()
{
    std::string s;
    for (const KindName &k : kKinds) {
        if (!s.empty())
            s += ", ";
        s += k.name;
    }
    return s;
}

bool
kindFromName(const std::string &name, FaultKind &out)
{
    for (const KindName &k : kKinds) {
        if (name == k.name) {
            out = k.kind;
            return true;
        }
    }
    return false;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string part;
    while (std::getline(is, part, sep))
        out.push_back(part);
    return out;
}

/** Compact double formatting that round-trips through parse. */
std::string
numStr(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** @name Strict numeric parsing
 *  std::stod/stoi happily stop at the first bad character ("1.5x"
 *  parses as 1.5) and accept inf/nan, which sail through range checks
 *  like `0 <= start < end` (every NaN comparison is false). Plans are
 *  user input, so every number must consume the whole token and be
 *  finite; the caller reports the offending token.
 */
/** @{ */
bool
strictDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    try {
        std::size_t pos = 0;
        double v = std::stod(s, &pos);
        if (pos != s.size() || !std::isfinite(v))
            return false;
        out = v;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

bool
strictInt(const std::string &s, int &out)
{
    if (s.empty())
        return false;
    try {
        std::size_t pos = 0;
        int v = std::stoi(s, &pos);
        if (pos != s.size())
            return false;
        out = v;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

bool
strictU32(const std::string &s, std::uint32_t &out)
{
    if (s.empty() || s[0] == '-')
        return false;
    try {
        std::size_t pos = 0;
        unsigned long v = std::stoul(s, &pos);
        if (pos != s.size() || v > 0xffffffffUL)
            return false;
        out = static_cast<std::uint32_t>(v);
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

bool
strictU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-')
        return false;
    try {
        std::size_t pos = 0;
        unsigned long long v = std::stoull(s, &pos);
        if (pos != s.size())
            return false;
        out = v;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}
/** @} */

/** net_partition group token: clients | lbs | ms | lb<k> | m<s>. */
bool
validGroupToken(const std::string &tok)
{
    if (tok == "clients" || tok == "lbs" || tok == "ms")
        return true;
    std::size_t digits = 0;
    if (tok.compare(0, 2, "lb") == 0)
        digits = 2;
    else if (tok.compare(0, 1, "m") == 0)
        digits = 1;
    else
        return false;
    if (tok.size() == digits)
        return false;
    for (std::size_t i = digits; i < tok.size(); ++i)
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return false;
    return true;
}

} // anonymous namespace

const char *
faultKindName(FaultKind kind)
{
    for (const KindName &k : kKinds)
        if (k.kind == kind)
            return k.name;
    return "?";
}

bool
FaultPlan::has(FaultKind kind) const
{
    for (const FaultEvent &e : events)
        if (e.kind == kind)
            return true;
    return false;
}

bool
parseFaultPlan(const std::string &text, FaultPlan &out, std::string &err)
{
    FaultPlan plan;
    for (const std::string &raw : split(text, ';')) {
        std::string item = trim(raw);
        if (item.empty())
            continue;

        // Plan-level seed: a bare "seed=N" element.
        if (item.compare(0, 5, "seed=") == 0) {
            if (!strictU64(trim(item.substr(5)), plan.seed)) {
                err = "bad fault plan seed '" + item + "'";
                return false;
            }
            continue;
        }

        std::size_t at = item.find('@');
        if (at == std::string::npos) {
            err = "fault event '" + item + "' missing '@start-end'; "
                  "expected kind@startSec-endSec[:param=value,...]";
            return false;
        }
        FaultEvent ev;
        std::string kind = trim(item.substr(0, at));
        if (!kindFromName(kind, ev.kind)) {
            err = "unknown fault kind '" + kind + "'; valid kinds: " +
                  validKindList();
            return false;
        }

        std::string rest = item.substr(at + 1);
        std::size_t colon = rest.find(':');
        std::string window = trim(colon == std::string::npos
                                      ? rest
                                      : rest.substr(0, colon));
        std::size_t dash = window.find('-');
        if (dash == std::string::npos) {
            err = "fault event '" + item + "': window must be "
                  "startSec-endSec";
            return false;
        }
        if (!strictDouble(trim(window.substr(0, dash)), ev.startSec) ||
            !strictDouble(trim(window.substr(dash + 1)), ev.endSec)) {
            err = "fault event '" + item + "': bad window time '" +
                  window + "' (want finite startSec-endSec)";
            return false;
        }
        if (ev.startSec < 0.0 || ev.endSec <= ev.startSec) {
            err = "fault event '" + item + "': window must satisfy "
                  "0 <= start < end";
            return false;
        }

        if (colon != std::string::npos) {
            for (const std::string &p : split(rest.substr(colon + 1),
                                              ',')) {
                std::string kv = trim(p);
                if (kv.empty())
                    continue;
                std::size_t eq = kv.find('=');
                if (eq == std::string::npos) {
                    err = "fault event '" + item + "': parameter '" + kv +
                          "' is not key=value";
                    return false;
                }
                std::string key = trim(kv.substr(0, eq));
                std::string val = trim(kv.substr(eq + 1));
                bool numOk = true;
                if (key == "rate")
                    numOk = strictDouble(val, ev.rate);
                else if (key == "factor")
                    numOk = strictDouble(val, ev.factor);
                else if (key == "target")
                    numOk = strictInt(val, ev.target);
                else if (key == "jitter")
                    numOk = strictDouble(val, ev.jitterUsec);
                else if (key == "size")
                    numOk = strictU32(val, ev.tableSize);
                else if (key == "mode") {
                    if (val == "rst")
                        ev.mode = FaultEvent::CrashMode::kRst;
                    else if (val == "blackhole")
                        ev.mode = FaultEvent::CrashMode::kBlackhole;
                    else {
                        err = "fault event '" + item + "': mode must "
                              "be rst or blackhole";
                        return false;
                    }
                } else if (key == "drain_ms")
                    numOk = strictDouble(val, ev.drainMsec);
                else if (key == "down_ms")
                    numOk = strictDouble(val, ev.downMsec);
                else if (key == "flap_ms")
                    numOk = strictDouble(val, ev.flapMsec);
                else if (key == "a") {
                    if (!validGroupToken(val)) {
                        err = "fault event '" + item + "': bad group "
                              "token '" + val + "' for 'a' (valid: "
                              "clients, lbs, ms, lb<k>, m<s>)";
                        return false;
                    }
                    ev.partA = val;
                } else if (key == "b") {
                    if (!validGroupToken(val)) {
                        err = "fault event '" + item + "': bad group "
                              "token '" + val + "' for 'b' (valid: "
                              "clients, lbs, ms, lb<k>, m<s>)";
                        return false;
                    }
                    ev.partB = val;
                } else {
                    err = "fault event '" + item + "': unknown "
                          "parameter '" + key + "' (valid: rate, "
                          "factor, target, jitter, size, mode, "
                          "drain_ms, down_ms, flap_ms, a, b)";
                    return false;
                }
                if (!numOk) {
                    err = "fault event '" + item + "': bad value '" +
                          val + "' for '" + key + "' (must be a whole, "
                          "finite number)";
                    return false;
                }
            }
        }

        // Per-kind validity so armed plans cannot misbehave silently.
        switch (ev.kind) {
          case FaultKind::kLossBurst:
          case FaultKind::kReorder:
          case FaultKind::kDuplicate:
            if (ev.rate <= 0.0 || ev.rate >= 1.0) {
                err = "fault event '" + item + "': rate must be in "
                      "(0, 1)";
                return false;
            }
            break;
          case FaultKind::kSynFlood:
            if (ev.rate <= 0.0) {
                err = "fault event '" + item + "': syn_flood needs "
                      "rate > 0 (SYNs per second)";
                return false;
            }
            break;
          case FaultKind::kBackendSlow:
            if (ev.factor <= 1.0) {
                err = "fault event '" + item + "': backend_slow needs "
                      "factor > 1";
                return false;
            }
            break;
          case FaultKind::kBackendDown:
            break;
          case FaultKind::kAtrShrink:
            if (ev.tableSize == 0 ||
                (ev.tableSize & (ev.tableSize - 1)) != 0) {
                err = "fault event '" + item + "': size must be a "
                      "power of two";
                return false;
            }
            break;
          case FaultKind::kMachineCrash:
          case FaultKind::kLbCrash:
            if (ev.target < 0) {
                err = "fault event '" + item + "': needs target >= 0 "
                      "(machine index)";
                return false;
            }
            break;
          case FaultKind::kRollingRestart:
            if (ev.drainMsec <= 0.0 || ev.downMsec <= 0.0) {
                err = "fault event '" + item + "': drain_ms and down_ms "
                      "must be > 0";
                return false;
            }
            break;
          case FaultKind::kMachineDegrade:
            if (ev.target < 0) {
                err = "fault event '" + item + "': needs target >= 0 "
                      "(machine index)";
                return false;
            }
            if (ev.factor < 1.0) {
                err = "fault event '" + item + "': machine_degrade "
                      "needs factor >= 1 (CPU slowdown multiplier)";
                return false;
            }
            if (ev.rate < 0.0 || ev.rate >= 1.0) {
                err = "fault event '" + item + "': rate (NIC egress "
                      "loss) must be in [0, 1)";
                return false;
            }
            if (ev.jitterUsec < 0.0 || ev.flapMsec < 0.0) {
                err = "fault event '" + item + "': jitter and flap_ms "
                      "must be >= 0";
                return false;
            }
            if (ev.factor == 1.0 && ev.rate == 0.0 &&
                ev.jitterUsec == 0.0) {
                err = "fault event '" + item + "': degrade is a no-op "
                      "(factor=1, rate=0, jitter=0)";
                return false;
            }
            break;
          case FaultKind::kNetPartition:
            if (ev.partA == ev.partB) {
                err = "fault event '" + item + "': partition groups "
                      "'a' and 'b' must differ";
                return false;
            }
            break;
        }
        plan.events.push_back(ev);
    }
    out = plan;
    return true;
}

std::string
serializeFaultPlan(const FaultPlan &plan)
{
    if (plan.empty())
        return "";
    std::string s;
    for (const FaultEvent &e : plan.events) {
        if (!s.empty())
            s += ";";
        s += faultKindName(e.kind);
        s += '@';
        s += numStr(e.startSec);
        s += '-';
        s += numStr(e.endSec);
        switch (e.kind) {
          case FaultKind::kLossBurst:
          case FaultKind::kReorder:
          case FaultKind::kDuplicate:
            s += ":rate=";
            s += numStr(e.rate);
            if (e.kind == FaultKind::kReorder) {
                s += ",jitter=";
                s += numStr(e.jitterUsec);
            }
            break;
          case FaultKind::kSynFlood:
            s += ":rate=";
            s += numStr(e.rate);
            break;
          case FaultKind::kBackendSlow:
            s += ":factor=";
            s += numStr(e.factor);
            s += ",target=";
            s += std::to_string(e.target);
            break;
          case FaultKind::kBackendDown:
            s += ":target=";
            s += std::to_string(e.target);
            break;
          case FaultKind::kAtrShrink:
            s += ":size=";
            s += std::to_string(e.tableSize);
            break;
          case FaultKind::kMachineCrash:
            s += ":target=";
            s += std::to_string(e.target);
            s += ",mode=";
            s += e.mode == FaultEvent::CrashMode::kRst ? "rst"
                                                       : "blackhole";
            break;
          case FaultKind::kRollingRestart:
            s += ":drain_ms=";
            s += numStr(e.drainMsec);
            s += ",down_ms=";
            s += numStr(e.downMsec);
            break;
          case FaultKind::kLbCrash:
            s += ":target=";
            s += std::to_string(e.target);
            break;
          case FaultKind::kMachineDegrade:
            s += ":target=";
            s += std::to_string(e.target);
            s += ",factor=";
            s += numStr(e.factor);
            s += ",rate=";
            s += numStr(e.rate);
            s += ",jitter=";
            s += numStr(e.jitterUsec);
            s += ",flap_ms=";
            s += numStr(e.flapMsec);
            break;
          case FaultKind::kNetPartition:
            s += ":a=";
            s += e.partA;
            s += ",b=";
            s += e.partB;
            break;
        }
    }
    if (plan.seed != FaultPlan{}.seed) {
        s += ";seed=";
        s += std::to_string(plan.seed);
    }
    return s;
}

} // namespace fsim
