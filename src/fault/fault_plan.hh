/**
 * @file
 * Deterministic fault plans: time-scheduled fault events for a run.
 *
 * A FaultPlan is pure data — a list of fault windows plus a seed — with a
 * single-line text form so plans travel through bench flags
 * (`--faults=<plan>`), fuzz-scenario files and JSON reports unchanged:
 *
 *     kind@startSec-endSec[:param=value[,param=value...]] [; ...] [; seed=N]
 *
 * e.g. `loss_burst@0.05-0.08:rate=0.3;syn_flood@0.05-0.08:rate=200000`.
 *
 * Every fault decision downstream (wire loss/reorder/duplication fates,
 * flood SYN arrival ticks, backend outage membership) is a pure function
 * of the plan and packet content, never of wall-clock or RNG draws shared
 * with the workload, so armed plans keep same-seed runs bit-identical.
 */

#ifndef FSIM_FAULT_FAULT_PLAN_HH
#define FSIM_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fsim
{

/** What a FaultEvent does while its window is open. */
enum class FaultKind
{
    kLossBurst,     //!< wire: drop packets with probability `rate`
    kReorder,       //!< wire: delay packets extra jitter with prob `rate`
    kDuplicate,     //!< wire: deliver packets twice with prob `rate`
    kSynFlood,      //!< attacker: `rate` SYNs/sec, handshakes never finish
    kBackendSlow,   //!< backend `target`: service delay x `factor`
    kBackendDown,   //!< backend `target`: crashed (requests vanish)
    kAtrShrink,     //!< NIC: clamp the ATR flow table to `tableSize`
    /** Fleet kinds (consumed by src/fleet's orchestrator; a
     *  single-machine FaultInjector counts them as ignored). */
    kMachineCrash,    //!< server machine `target`: abrupt loss at start,
                      //!< restart at window end; `mode` picks RST vs
                      //!< blackhole behavior for packets to the corpse
    kRollingRestart,  //!< drain->stop->restart->readmit sweep over every
                      //!< server machine inside the window
    kLbCrash,         //!< balancer `target`: lost at start (peer adopts
                      //!< its VIP), back at window end
    kMachineDegrade,  //!< server machine `target` goes gray: CPU runs
                      //!< `factor`x slower, its NIC drops `rate` of
                      //!< egress and adds `jitter` usec of delay;
                      //!< `flap_ms` > 0 oscillates healthy<->degraded
                      //!< on that period instead of staying degraded
    kNetPartition,    //!< blackhole both directions between address
                      //!< groups `a` and `b` (clients|lbs|ms|lb<k>|m<s>)
                      //!< for the window; the link heals at window end
};

/** Text name of @p kind (the token the plan grammar uses). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault window. */
struct FaultEvent
{
    FaultKind kind = FaultKind::kLossBurst;
    double startSec = 0.0;          //!< window open (absolute sim time)
    double endSec = 0.0;            //!< window close (exclusive)
    /** Loss/reorder/duplicate probability, or syn_flood SYNs per second. */
    double rate = 0.0;
    /** backend_slow service-delay multiplier. */
    double factor = 4.0;
    /** Backend index for backend_* events (-1 = every backend). */
    int target = -1;
    /** Extra reorder delay bound, microseconds. */
    double jitterUsec = 200.0;
    /** atr_shrink table clamp, entries. */
    std::uint32_t tableSize = 64;
    /** machine_crash corpse behavior: answer with RSTs or drop silently. */
    enum class CrashMode { kRst, kBlackhole };
    CrashMode mode = CrashMode::kRst;
    /** rolling_restart per-machine drain deadline, milliseconds. */
    double drainMsec = 50.0;
    /** rolling_restart stop-to-restart downtime, milliseconds. */
    double downMsec = 5.0;
    /** machine_degrade flap period, milliseconds (0 = steady gray). A
     *  flapping machine alternates degraded/healthy half-periods,
     *  starting degraded at window open. */
    double flapMsec = 0.0;
    /** net_partition endpoint groups. Tokens: "clients" (the client
     *  edge), "lbs" (every balancer), "ms" (every server machine),
     *  "lb<k>" (balancer k), "m<s>" (server machine s). */
    std::string partA = "lb0";
    std::string partB = "ms";
};

/** A run's complete fault schedule. */
struct FaultPlan
{
    std::vector<FaultEvent> events;
    /** Folded into every content-hash fault decision. */
    std::uint64_t seed = 0xfa17;

    bool empty() const { return events.empty(); }
    bool has(FaultKind kind) const;
};

/**
 * Parse the single-line plan grammar above.
 *
 * @return false and fill @p err (listing the valid event kinds when the
 *         kind token is unknown) on malformed input. An empty/whitespace
 *         @p text parses to an empty plan.
 */
bool parseFaultPlan(const std::string &text, FaultPlan &out,
                    std::string &err);

/** Inverse of parseFaultPlan(); "" for an empty plan. */
std::string serializeFaultPlan(const FaultPlan &plan);

} // namespace fsim

#endif // FSIM_FAULT_FAULT_PLAN_HH
