#include "fleet/balancer.hh"

#include <algorithm>
#include <cmath>

#include "check/fingerprint.hh"
#include "sim/logging.hh"
#include "trace/fleet_trace.hh"
#include "trace/incident_log.hh"

namespace fsim
{

namespace
{

/** NAT ephemeral ports live above the well-known + probe ranges. */
constexpr std::uint32_t kNatBase = 2048;
constexpr std::uint32_t kNatSpan = 65536 - kNatBase;
/** Probe source ports: a dedicated low slice, never NAT-allocated. */
constexpr std::uint32_t kProbeBase = 100;
constexpr std::uint32_t kProbeSpan = 900;

} // anonymous namespace

const char *
L4Balancer::policyName(Policy p)
{
    return p == Policy::kConsistentHash ? "chash" : "rr";
}

const char *
L4Balancer::healthModeName(HealthMode m)
{
    return m == HealthMode::kBinary ? "binary" : "score";
}

bool
L4Balancer::policyFromName(const std::string &s, Policy &out)
{
    if (s == "chash") {
        out = Policy::kConsistentHash;
        return true;
    }
    if (s == "rr") {
        out = Policy::kRoundRobin;
        return true;
    }
    return false;
}

std::uint64_t
L4Balancer::mix64(std::uint64_t x)
{
    // splitmix64 finalizer: the ring/steering hash.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

L4Balancer::L4Balancer(EventQueue &eq, Wire &fabric, const Config &cfg)
    : eq_(eq), fabric_(fabric), cfg_(cfg),
      natOwner_(kNatBase + kNatSpan, 0)
{
    fsim_assert(cfg_.vip != 0 && cfg_.natIp != 0);
    fsim_assert(cfg_.vip != cfg_.natIp);
    // Config validation is user-facing (fsim_fatal, not panic): these
    // are the PR 8 calibration gotchas promoted to hard errors.
    if (cfg_.maxFlows == 0 || cfg_.maxFlows >= kNatSpan)
        fsim_fatal(
            "L4Balancer: maxFlows=%zu is outside [1, %u): every flow "
            "pins one NAT source port and only ports %u-65535 are "
            "NAT-allocatable. Size the table to at least "
            "offered_rate x client_give_up / balancers, capped at %u.",
            cfg_.maxFlows, kNatSpan, kNatBase, kNatSpan - 1);
    if (cfg_.probeInterval > 0 &&
        (cfg_.probeTimeout == 0 ||
         cfg_.probeTimeout >= cfg_.probeInterval))
        fsim_fatal(
            "L4Balancer: probeTimeout=%llu ticks must sit in "
            "(0, probeInterval=%llu): each probe must resolve before "
            "the next round is scheduled or health decisions lag a "
            "full round and saturated-but-alive targets flap. Raise "
            "probeInterval or lower probeTimeout (and leave probe "
            "grace for handshake replies queued behind softirq work).",
            static_cast<unsigned long long>(cfg_.probeTimeout),
            static_cast<unsigned long long>(cfg_.probeInterval));
    if (cfg_.healthMode == HealthMode::kScore &&
        cfg_.probeInterval == 0)
        fsim_fatal(
            "L4Balancer: healthMode=score requires probing "
            "(probeInterval > 0): the score is built from probe RTT "
            "evidence.");
    vips_.push_back(cfg_.vip);
}

void
L4Balancer::addTarget(const TargetSpec &spec)
{
    fsim_assert(!started_);
    fsim_assert(!spec.addrs.empty());
    Target t;
    t.spec = spec;
    targets_.push_back(std::move(t));
}

void
L4Balancer::attachHandlers()
{
    for (IpAddr vip : vips_)
        fabric_.attach(vip, [this](const Packet &pkt) { onVip(pkt); });
    fabric_.attach(cfg_.natIp,
                   [this](const Packet &pkt) { onNat(pkt); });
}

void
L4Balancer::rebuildRing()
{
    ring_.clear();
    if (cfg_.policy != Policy::kConsistentHash)
        return;
    for (int m = 0; m < static_cast<int>(targets_.size()); ++m) {
        for (int r = 0; r < cfg_.vnodes; ++r) {
            RingEntry e;
            e.hash = mix64(cfg_.seed ^
                           (static_cast<std::uint64_t>(m) * 0x9e3779b9ULL +
                            static_cast<std::uint64_t>(r) * 0x85ebca6bULL +
                            1));
            e.machine = m;
            ring_.push_back(e);
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const RingEntry &a, const RingEntry &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return a.machine < b.machine;
              });
}

void
L4Balancer::start()
{
    fsim_assert(!started_);
    fsim_assert(!targets_.empty());
    started_ = true;
    rebuildRing();
    if (cfg_.probeInterval > 0) {
        fsim_assert(cfg_.probeTimeout > 0 &&
                    cfg_.probeTimeout < cfg_.probeInterval);
        if (scoreMode())
            scorer_ = HealthScorer(cfg_.score,
                                   static_cast<int>(targets_.size()),
                                   cfg_.probeTimeout);
        eq_.scheduleIn(cfg_.probeInterval, [this] { probeRound(); });
    }
    if (cfg_.gcPeriod > 0 && cfg_.flowIdleTimeout > 0)
        eq_.scheduleIn(cfg_.gcPeriod, [this] { gcSweep(); });
}

void
L4Balancer::setDown(bool down)
{
    down_ = down;
}

void
L4Balancer::startDrain(int m)
{
    Target &t = targets_.at(m);
    if (t.state == TargetState::kDraining)
        return;
    t.state = TargetState::kDraining;
    ++drainsStarted_;
}

std::uint64_t
L4Balancer::activeFlows(int m) const
{
    return targets_.at(m).active;
}

std::uint64_t
L4Balancer::finishDrain(int m)
{
    Target &t = targets_.at(m);
    fsim_assert(t.state == TargetState::kDraining);
    const std::uint64_t remaining = t.active;
    if (remaining == 0)
        ++drainsCompleted_;
    undrainedFlows_ += remaining;
    // The caller stops the machine in the same event, so the brief
    // kHealthy state never steers a flow.
    t.state = TargetState::kHealthy;
    return remaining;
}

void
L4Balancer::noteStopped(int m)
{
    Target &t = targets_.at(m);
    t.adminDown = true;
    t.state = TargetState::kDown;
    t.consecOks = 0;
    t.consecFails = 0;
}

void
L4Balancer::noteRestarted(int m)
{
    Target &t = targets_.at(m);
    t.adminDown = false;
    // Stays kDown until riseThreshold probe successes readmit it.
    t.consecOks = 0;
    t.consecFails = 0;
}

bool
L4Balancer::healthy(int m) const
{
    return targets_.at(m).state == TargetState::kHealthy;
}

void
L4Balancer::adoptVip(IpAddr vip)
{
    for (IpAddr v : vips_)
        if (v == vip)
            return;
    vips_.push_back(vip);
    fabric_.attach(vip, [this](const Packet &pkt) { onVip(pkt); });
}

Port
L4Balancer::allocNatPort()
{
    for (std::uint32_t tries = 0; tries < kNatSpan; ++tries) {
        const std::uint32_t p = kNatBase + natCursor_;
        natCursor_ = (natCursor_ + 1) % kNatSpan;
        if (natOwner_[p] == 0)
            return static_cast<Port>(p);
    }
    return 0;
}

int
L4Balancer::pickMachine(std::uint64_t key)
{
    int healthyCount = 0;
    for (const Target &t : targets_)
        if (t.state == TargetState::kHealthy)
            ++healthyCount;
    if (healthyCount == 0)
        return -1;

    std::uint64_t cap = 0;
    if (cfg_.boundedLoadFactor > 0.0)
        cap = static_cast<std::uint64_t>(std::ceil(
            cfg_.boundedLoadFactor *
            static_cast<double>(flows_.size() + 1) / healthyCount));

    const int n = static_cast<int>(targets_.size());
    // Slow-start readmission: a freshly readmitted target accepts only
    // a deterministic hash-fraction of first-pass keys until its ramp
    // completes (the second pass ignores the ramp, so capacity is never
    // stranded). Keyed per (flow, target) so the accepted subset is
    // stable across rounds and both balancers agree.
    auto rampSkip = [this](std::uint64_t key, int m) {
        if (!scoreMode() || !started_)
            return false;
        const double share = scorer_.steerShare(m);
        if (share >= 1.0)
            return false;
        const std::uint64_t h = mix64(
            key ^ cfg_.seed ^
            (0x5a10c0deULL + static_cast<std::uint64_t>(m) *
                                 0x9e3779b97f4a7c15ULL));
        const double u = static_cast<double>(h >> 11) *
                         (1.0 / 9007199254740992.0);
        if (u < share)
            return false;
        ++rampSkips_;
        return true;
    };
    // First pass skips overfull and pressure-critical targets; with
    // factor >= 1 the cap exceeds the healthy average, so some healthy
    // target is always under it — but a pressure veto can exclude them
    // all, hence the second pass.
    for (int pass = 0; pass < 2; ++pass) {
        if (cfg_.policy == Policy::kConsistentHash) {
            const std::uint64_t h = mix64(key ^ cfg_.seed);
            auto it = std::lower_bound(
                ring_.begin(), ring_.end(), h,
                [](const RingEntry &e, std::uint64_t v) {
                    return e.hash < v;
                });
            const std::size_t startIdx =
                it == ring_.end() ? 0 : (it - ring_.begin());
            for (std::size_t i = 0; i < ring_.size(); ++i) {
                const int m =
                    ring_[(startIdx + i) % ring_.size()].machine;
                const Target &t = targets_[m];
                if (t.state != TargetState::kHealthy)
                    continue;
                if (pass == 0 && cap && t.active + 1 > cap) {
                    ++boundedLoadFallbacks_;
                    continue;
                }
                if (pass == 0 && pressureFn_ && pressureFn_(m) >= 2) {
                    ++pressureAvoids_;
                    continue;
                }
                if (pass == 0 && rampSkip(key, m))
                    continue;
                return m;
            }
        } else {
            for (int i = 0; i < n; ++i) {
                const int m = (rrCursor_ + i) % n;
                const Target &t = targets_[m];
                if (t.state != TargetState::kHealthy)
                    continue;
                if (pass == 0 && cap && t.active + 1 > cap) {
                    ++boundedLoadFallbacks_;
                    continue;
                }
                if (pass == 0 && pressureFn_ && pressureFn_(m) >= 2) {
                    ++pressureAvoids_;
                    continue;
                }
                if (pass == 0 && rampSkip(key, m))
                    continue;
                rrCursor_ = (m + 1) % n;
                return m;
            }
        }
    }
    return -1;
}

void
L4Balancer::sendRstToClient(const Packet &cause)
{
    Packet rst;
    rst.tuple = cause.tuple.reversed();
    rst.flags = kRst;
    rst.connId = cause.connId;
    fabric_.transmit(rst, eq_.now() + cfg_.forwardDelay);
}

void
L4Balancer::retire(std::uint64_t key)
{
    auto it = flows_.find(key);
    fsim_assert(it != flows_.end());
    Flow &f = it->second;
    fsim_assert(natOwner_[f.natPort] == key);
    natOwner_[f.natPort] = 0;
    fsim_assert(targets_[f.machine].active > 0);
    --targets_[f.machine].active;
    flows_.erase(it);
    ++flowsRetired_;
}

void
L4Balancer::forwardC2s(Flow &f, const Packet &pkt)
{
    Packet out = pkt;
    out.tuple.saddr = cfg_.natIp;
    out.tuple.sport = f.natPort;
    out.tuple.daddr = f.serverAddr;
    out.tuple.dport = f.machine >= 0
                          ? targets_[f.machine].spec.port
                          : Port{80};
    // Restamp from the flow entry: the trace context rides the NAT
    // state, not just the packet copy, so the rewrite can never drop it.
    out.traceId = f.traceId;
    fabric_.transmit(out, eq_.now() + cfg_.forwardDelay);
    ++forwardedC2s_;
    if (traceLog_)
        traceLog_->lbForward(f.traceId);
    if (scoreMode() && pkt.has(kSyn) && !pkt.has(kAck) && f.machine >= 0)
        scorer_.noteRequestSent(f.machine);
}

void
L4Balancer::forwardS2c(Flow &f, const Packet &pkt)
{
    Packet out = pkt;
    out.tuple.saddr = f.vip;
    out.tuple.sport = cfg_.vipPort;
    out.tuple.daddr = f.clientIp;
    out.tuple.dport = f.clientPort;
    out.traceId = f.traceId;
    fabric_.transmit(out, eq_.now() + cfg_.forwardDelay);
    ++forwardedS2c_;
    if (traceLog_)
        traceLog_->lbForward(f.traceId);
    if (scoreMode() && pkt.has(kSyn) && pkt.has(kAck) && f.machine >= 0)
        scorer_.noteRequestAcked(f.machine);
}

void
L4Balancer::onVip(const Packet &pkt)
{
    if (down_) {
        ++downDrops_;
        return;
    }
    const std::uint64_t key = flowKey(pkt.tuple.saddr, pkt.tuple.sport);
    auto it = flows_.find(key);

    if (it != flows_.end()) {
        Flow &f = it->second;
        const bool freshSyn = pkt.has(kSyn) && !pkt.has(kAck);
        if (freshSyn && (f.finC2s || f.finS2c)) {
            // The old flow finished (or half-finished) and the client
            // recycled the tuple: retire and fall through to create.
            ++tupleReuse_;
            retire(key);
            it = flows_.end();
        } else {
            if (freshSyn && pkt.traceId != 0 &&
                pkt.traceId != f.traceId) {
                // Tuple recycled while the old flow never observed its
                // teardown (FINs lost on the wire, or the client gave
                // up without one). The new connection legitimately
                // rides the existing NAT state, but the trace context
                // must follow the new request — adopting the SYN's id
                // keeps the forwardC2s restamp from branding every
                // downstream span with the dead predecessor's trace.
                ++tupleReuse_;
                f.traceId = pkt.traceId;
                if (traceLog_)
                    traceLog_->lbIngress(f.traceId, eq_.now(), lbId_,
                                         f.machine);
            }
            f.lastActivity = eq_.now();
            if (pkt.has(kFin))
                f.finC2s = true;
            const bool rst = pkt.has(kRst);
            forwardC2s(f, pkt);
            // Teardown completes with a pure ACK after both FINs (or
            // an RST any time): drop the flow once it's forwarded.
            const bool pureAck = pkt.flags == kAck && pkt.payload == 0;
            if (rst || (pureAck && f.finC2s && f.finS2c))
                retire(key);
            return;
        }
    }

    // No flow. Only a fresh SYN may create one.
    if (!(pkt.has(kSyn) && !pkt.has(kAck))) {
        if (!pkt.has(kRst)) {
            ++natRsts_;
            sendRstToClient(pkt);
        }
        return;
    }
    if (flows_.size() >= cfg_.maxFlows) {
        ++shedCapacity_;
        sendRstToClient(pkt);
        return;
    }
    const int m = pickMachine(key);
    if (m < 0) {
        ++shedNoBackend_;
        sendRstToClient(pkt);
        return;
    }
    const Port natPort = allocNatPort();
    if (natPort == 0) {
        ++shedCapacity_;
        sendRstToClient(pkt);
        return;
    }

    Flow f;
    f.clientIp = pkt.tuple.saddr;
    f.clientPort = pkt.tuple.sport;
    f.vip = pkt.tuple.daddr;
    f.machine = m;
    const std::vector<IpAddr> &addrs = targets_[m].spec.addrs;
    f.serverAddr = addrs[natPort % addrs.size()];
    f.natPort = natPort;
    f.lastActivity = eq_.now();
    f.traceId = pkt.traceId;
    natOwner_[natPort] = key;
    ++targets_[m].active;
    ++flowsCreated_;
    if (traceLog_)
        traceLog_->lbIngress(f.traceId, eq_.now(), lbId_, m);
    auto ins = flows_.emplace(key, f);
    if (flows_.size() > flowsActivePeak_)
        flowsActivePeak_ = flows_.size();
    forwardC2s(ins.first->second, pkt);
}

void
L4Balancer::onNat(const Packet &pkt)
{
    if (down_) {
        ++downDrops_;
        return;
    }
    const Port dport = pkt.tuple.dport;

    // Probe replies come back on the dedicated low-port slice.
    if (dport >= kProbeBase && dport < kProbeBase + kProbeSpan) {
        auto it = probes_.find(dport);
        if (it == probes_.end())
            return;     // late reply; the deadline already decided
        const int m = it->second.machine;
        const Tick rtt = eq_.now() - it->second.sent;
        probes_.erase(it);
        if (pkt.has(kSyn) && pkt.has(kAck))
            probeOk(m, rtt);
        else
            probeFail(m);
        return;
    }

    const std::uint64_t key = natOwner_[dport];
    if (key == 0)
        return;     // stale reply to a retired flow; drop silently
    auto it = flows_.find(key);
    fsim_assert(it != flows_.end());
    Flow &f = it->second;
    f.lastActivity = eq_.now();
    if (pkt.has(kFin))
        f.finS2c = true;
    const bool rst = pkt.has(kRst);
    forwardS2c(f, pkt);
    const bool pureAck = pkt.flags == kAck && pkt.payload == 0;
    if (rst || (pureAck && f.finC2s && f.finS2c))
        retire(key);
}

void
L4Balancer::probeRound()
{
    if (!down_) {
        // probeTimeout < probeInterval, so every probe of the previous
        // round has resolved by now: the evidence window is complete.
        if (scoreMode())
            scoreRound();
        for (int m = 0; m < static_cast<int>(targets_.size()); ++m)
            sendProbe(m);
    }
    eq_.scheduleIn(cfg_.probeInterval, [this] { probeRound(); });
}

void
L4Balancer::scoreRound()
{
    const int n = static_cast<int>(targets_.size());
    scorer_.setRoundTick(eq_.now());
    std::vector<bool> healthy(n, false), candidate(n, false);
    for (int m = 0; m < n; ++m) {
        const Target &t = targets_[m];
        healthy[m] = t.state == TargetState::kHealthy;
        candidate[m] = t.state == TargetState::kDown && !t.adminDown;
    }
    scorer_.evaluateRound(healthy, candidate, verdicts_);

    int downCount = 0;
    for (const Target &t : targets_)
        if (t.state != TargetState::kHealthy)
            ++downCount;

    for (int m = 0; m < n; ++m) {
        Target &t = targets_[m];
        const HealthScorer::Verdict &v = verdicts_[m];
        if (v.ejectable && t.state == TargetState::kHealthy) {
            // Cap: never let peer-relative ejection empty the fleet. A
            // correlated slowdown (which ejecting cannot fix) stops at
            // the fraction; the worst offenders went first because the
            // eviction order is target order and streaks mature first
            // on the machines that turned gray first.
            const double after =
                static_cast<double>(downCount + 1) /
                static_cast<double>(n);
            if (after > cfg_.score.maxEjectFraction) {
                ++ejectionsCapped_;
                continue;
            }
            t.state = TargetState::kDown;
            t.consecFails = 0;
            t.consecOks = 0;
            ++downCount;
            ++ejections_;
            ++scoreEjections_;
            scorer_.noteEjected(m);
            if (incidents_) {
                incidents_->noteDetect(m, scorer_.detectTick(m));
                incidents_->noteEject(m, eq_.now());
            }
        } else if (v.readmittable && t.state == TargetState::kDown &&
                   !t.adminDown) {
            t.state = TargetState::kHealthy;
            t.consecFails = 0;
            t.consecOks = 0;
            --downCount;
            ++readmissions_;
            scorer_.noteReadmitted(m);
            if (incidents_)
                incidents_->noteRecover(m, eq_.now());
        }
    }
}

void
L4Balancer::sendProbe(int m)
{
    const Port pp = static_cast<Port>(
        kProbeBase + (probeSeq_ % kProbeSpan));
    ++probeSeq_;
    if (probes_.count(pp))
        return;     // slice wrapped onto an unanswered probe; skip
    probes_[pp] = Probe{m, eq_.now()};
    ++probesSent_;

    const Target &t = targets_[m];
    Packet syn;
    syn.tuple.saddr = cfg_.natIp;
    syn.tuple.sport = pp;
    syn.tuple.daddr = t.spec.addrs[probeSeq_ % t.spec.addrs.size()];
    syn.tuple.dport = t.spec.port;
    syn.flags = kSyn;
    syn.prio = true;    // spared by the server's overload defenses
    fabric_.transmit(syn, eq_.now());

    eq_.scheduleIn(cfg_.probeTimeout, [this, pp] {
        auto it = probes_.find(pp);
        if (it == probes_.end())
            return;     // answered in time
        const int m = it->second.machine;
        probes_.erase(it);
        if (!down_)
            probeFail(m);
    });
}

void
L4Balancer::probeOk(int m, Tick rtt)
{
    if (scoreMode()) {
        // State flips happen in scoreRound(); here only evidence lands.
        scorer_.noteProbeRtt(m, rtt);
        return;
    }
    Target &t = targets_[m];
    t.consecFails = 0;
    if (t.state == TargetState::kDown && !t.adminDown) {
        if (++t.consecOks >= cfg_.riseThreshold) {
            t.state = TargetState::kHealthy;
            t.consecOks = 0;
            ++readmissions_;
            if (incidents_)
                incidents_->noteRecover(m, eq_.now());
        }
    } else {
        t.consecOks = 0;
    }
}

void
L4Balancer::probeFail(int m)
{
    ++probeFailures_;
    if (scoreMode()) {
        scorer_.noteProbeTimeout(m);
        return;
    }
    Target &t = targets_[m];
    t.consecOks = 0;
    if (t.state == TargetState::kHealthy) {
        if (t.consecFails == 0)
            t.failStreakStart = eq_.now();
        if (++t.consecFails >= cfg_.fallThreshold) {
            t.state = TargetState::kDown;
            t.consecFails = 0;
            ++ejections_;
            if (incidents_) {
                incidents_->noteDetect(m, t.failStreakStart);
                incidents_->noteEject(m, eq_.now());
            }
        }
    }
}

void
L4Balancer::gcSweep()
{
    // Collect-then-sort keeps retirement order independent of hash-map
    // iteration order (a libstdc++ upgrade must not move fingerprints).
    std::vector<std::uint64_t> stale;
    for (const auto &kv : flows_) {
        if (kv.second.lastActivity + cfg_.flowIdleTimeout <= eq_.now())
            stale.push_back(kv.first);
    }
    std::sort(stale.begin(), stale.end());
    for (std::uint64_t key : stale) {
        retire(key);
        ++idleRetired_;
    }
    eq_.scheduleIn(cfg_.gcPeriod, [this] { gcSweep(); });
}

std::uint64_t
L4Balancer::counterHash() const
{
    Fingerprint fp;
    fp.mix(flowsCreated_);
    fp.mix(flowsRetired_);
    fp.mix(flows_.size());
    fp.mix(flowsActivePeak_);
    fp.mix(shedNoBackend_);
    fp.mix(shedCapacity_);
    fp.mix(natRsts_);
    fp.mix(tupleReuse_);
    fp.mix(boundedLoadFallbacks_);
    fp.mix(pressureAvoids_);
    fp.mix(probesSent_);
    fp.mix(probeFailures_);
    fp.mix(ejections_);
    fp.mix(readmissions_);
    fp.mix(drainsStarted_);
    fp.mix(drainsCompleted_);
    fp.mix(undrainedFlows_);
    fp.mix(idleRetired_);
    fp.mix(forwardedC2s_);
    fp.mix(forwardedS2c_);
    fp.mix(downDrops_);
    fp.mix(scoreEjections_);
    fp.mix(rampSkips_);
    fp.mix(ejectionsCapped_);
    if (scoreMode() && started_)
        fp.mix(scorer_.stateHash());
    for (const Target &t : targets_) {
        fp.mix(static_cast<std::uint64_t>(t.state));
        fp.mix(t.active);
    }
    return fp.value();
}

} // namespace fsim
