/**
 * @file
 * L4 load balancer: full-NAT connection steering for the fleet tier.
 *
 * The balancer owns a VIP that clients connect to and a NAT source
 * address the server machines reply to. Every client flow is steered to
 * one server machine by consistent hashing over (clientIp, clientPort)
 * with a bounded-load fallback walk (skip targets whose active-flow
 * gauge exceeds factor x fleet average), or plain round-robin. Packets
 * are rewritten in both directions — full NAT, not DSR, because the
 * client matches responses by the exact tuple it connected on.
 *
 * Health is wire-level: periodic SYN probes (Packet::prio set, so the
 * server's overload defenses spare them) from dedicated low ports on
 * the NAT address. SYN-ACK within the timeout is a success; an RST or
 * silence is a failure. The probe handshake is abandoned silently — a
 * probe RST-ACK would wrongly *establish* the server's embryonic
 * socket (the kernel promotes SYN_RCVD on any ACK-bearing segment), so
 * fleet server kernels run with a short synRcvdJiffies reaper instead.
 *
 * Draining (rolling restarts) moves a target to kDraining: no new
 * flows land on it, existing flows keep flowing, and finishDrain()
 * reports how many were still active when the deadline expired.
 *
 * Determinism: steering is a pure function of flow key, ring seed and
 * gauge state; the idle-flow GC sorts keys before retiring; no RNG, no
 * wall clock. Same seed, same packet sequence, bit-identical counters.
 */

#ifndef FSIM_FLEET_BALANCER_HH
#define FSIM_FLEET_BALANCER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/health.hh"
#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace fsim
{

class FleetTraceLog;
class IncidentLog;

/** One L4 balancer instance (a fleet runs one or more, each with its
 *  own VIP; a survivor adopts a crashed peer's VIP). */
class L4Balancer
{
  public:
    enum class Policy
    {
        kConsistentHash,    //!< vnode ring + bounded-load fallback walk
        kRoundRobin,        //!< rotating cursor over healthy targets
    };

    /** Stable policy token ("chash" / "rr") for configs and JSON. */
    static const char *policyName(Policy p);
    static bool policyFromName(const std::string &s, Policy &out);

    /** How probe evidence becomes eject/readmit decisions. */
    enum class HealthMode
    {
        kBinary,    //!< consecutive silent probes eject (PR 8 behavior)
        kScore,     //!< EWMA RTT + success-ratio outlier scoring
    };

    static const char *healthModeName(HealthMode m);

    struct Config
    {
        IpAddr vip = 0;             //!< client-facing virtual IP
        Port vipPort = 80;
        IpAddr natIp = 0;           //!< source address servers reply to
        Policy policy = Policy::kConsistentHash;
        int vnodes = 64;            //!< ring entries per target
        /** Bounded-load cap factor (c in ceil(c * avg)); 0 disables the
         *  fallback walk. */
        double boundedLoadFactor = 2.0;
        std::size_t maxFlows = 1u << 15;    //!< flow-table capacity
        Tick probeInterval = 0;     //!< 0 = probing disabled
        Tick probeTimeout = 0;      //!< silence -> failure after this
        int fallThreshold = 2;      //!< consecutive failures to eject
        int riseThreshold = 1;      //!< consecutive successes to readmit
        /** kScore swaps the binary fall/rise machine for latency-aware
         *  outlier scoring (requires probing enabled). */
        HealthMode healthMode = HealthMode::kBinary;
        HealthScoreConfig score;    //!< kScore knobs
        Tick flowIdleTimeout = 0;   //!< 0 = idle GC disabled
        Tick gcPeriod = 0;
        Tick forwardDelay = 0;      //!< per-packet rewrite/forward cost
        std::uint64_t seed = 1;     //!< ring placement salt
    };

    /** A steerable server machine: its listen addresses and port. */
    struct TargetSpec
    {
        std::vector<IpAddr> addrs;
        Port port = 80;
    };

    enum class TargetState : std::uint8_t
    {
        kHealthy = 0,
        kDraining,      //!< existing flows only; no new steering
        kDown,          //!< ejected (probes) or stopped (admin)
    };

    L4Balancer(EventQueue &eq, Wire &fabric, const Config &cfg);

    /** Register a target. Call for every machine before start(). */
    void addTarget(const TargetSpec &spec);

    /** Attach VIP + NAT handlers to the fabric (idempotent re-attach:
     *  restores this balancer after a crash window by overwriting). */
    void attachHandlers();

    /** Build the ring and arm the probe and GC loops. */
    void start();

    /** Crash/restore this balancer. Down = drop everything unseen and
     *  send no probes; the testbed blackholes the VIP/NAT addresses at
     *  the fabric in the same step. */
    void setDown(bool down);
    bool down() const { return down_; }

    /** @name Draining and admin state (rolling restarts) */
    /** @{ */
    /** Stop steering new flows to target @p m. */
    void startDrain(int m);
    /** Flows still active on target @p m. */
    std::uint64_t activeFlows(int m) const;
    /**
     * Close the drain window for @p m: returns the number of flows
     * still active (the un-drained loss the restart gate charges), and
     * counts a completed drain when zero remain.
     */
    std::uint64_t finishDrain(int m);
    /** Target @p m stopped on purpose (no ejection counted). */
    void noteStopped(int m);
    /** Target @p m restarted; it stays kDown until probes readmit it. */
    void noteRestarted(int m);
    bool healthy(int m) const;
    /** @} */

    /** Serve a crashed peer's VIP from this balancer (failover). */
    void adoptVip(IpAddr vip);

    /**
     * Cross-tier pressure reuse: when set, targets whose pressure level
     * (0=nominal 1=elevated 2=critical) reports critical are skipped in
     * the first steering pass, like bounded-load overfull targets.
     */
    void setPressureProbe(std::function<int(int)> fn)
    {
        pressureFn_ = std::move(fn);
    }

    /** Stamp detect/eject/recover moments onto fleet incidents (the
     *  target index doubles as the fleet machine slot). */
    void setIncidentLog(IncidentLog *log) { incidents_ = log; }

    /** Attach the fleet trace collector: flow creation reports LB
     *  ingress (as balancer @p lb_id), every NAT rewrite counts a
     *  forward. Recording only — steering and forwarding behavior are
     *  identical with or without a log attached. */
    void setTraceLog(FleetTraceLog *log, int lb_id)
    {
        traceLog_ = log;
        lbId_ = lb_id;
    }

    /** The health scorer (valid after start() in kScore mode). */
    const HealthScorer &scorer() const { return scorer_; }

    /** @name Counters (all deterministic; folded into fingerprints) */
    /** @{ */
    std::uint64_t flowsCreated() const { return flowsCreated_; }
    std::uint64_t flowsRetired() const { return flowsRetired_; }
    std::uint64_t flowsActive() const { return flows_.size(); }
    std::uint64_t flowsActivePeak() const { return flowsActivePeak_; }
    /** SYNs RST-ed because no healthy target existed. */
    std::uint64_t shedNoBackend() const { return shedNoBackend_; }
    /** SYNs RST-ed because the flow/NAT table was full. */
    std::uint64_t shedCapacity() const { return shedCapacity_; }
    /** Non-SYN packets with no flow, answered with a RST. */
    std::uint64_t natRsts() const { return natRsts_; }
    /** SYNs that reused a finished flow's tuple (TIME_WAIT recycle). */
    std::uint64_t tupleReuse() const { return tupleReuse_; }
    std::uint64_t boundedLoadFallbacks() const
    {
        return boundedLoadFallbacks_;
    }
    /** First-pass skips because the target reported critical pressure. */
    std::uint64_t pressureAvoids() const { return pressureAvoids_; }
    std::uint64_t probesSent() const { return probesSent_; }
    std::uint64_t probeFailures() const { return probeFailures_; }
    std::uint64_t ejections() const { return ejections_; }
    std::uint64_t readmissions() const { return readmissions_; }
    /** Ejections decided by the score outlier machine (subset of
     *  ejections()). */
    std::uint64_t scoreEjections() const { return scoreEjections_; }
    /** First-pass steering skips while a readmitted target ramped. */
    std::uint64_t rampSkips() const { return rampSkips_; }
    /** Score-mode ejections vetoed by the eject-fraction cap. */
    std::uint64_t ejectionsCapped() const { return ejectionsCapped_; }
    std::uint64_t drainsStarted() const { return drainsStarted_; }
    std::uint64_t drainsCompleted() const { return drainsCompleted_; }
    std::uint64_t undrainedFlows() const { return undrainedFlows_; }
    std::uint64_t idleRetired() const { return idleRetired_; }
    std::uint64_t forwardedC2s() const { return forwardedC2s_; }
    std::uint64_t forwardedS2c() const { return forwardedS2c_; }
    /** Packets dropped because this balancer was down. */
    std::uint64_t downDrops() const { return downDrops_; }
    /** @} */

    int targetCount() const { return static_cast<int>(targets_.size()); }
    TargetState targetState(int m) const { return targets_[m].state; }

    /** Fold every counter into one word (for run fingerprints). */
    std::uint64_t counterHash() const;

  private:
    struct Target
    {
        TargetSpec spec;
        TargetState state = TargetState::kHealthy;
        bool adminDown = false;
        int consecFails = 0;
        int consecOks = 0;
        Tick failStreakStart = 0;   //!< first failure of the streak
        std::uint64_t active = 0;   //!< live flows steered here
    };

    struct Flow
    {
        IpAddr clientIp = 0;
        Port clientPort = 0;
        IpAddr vip = 0;             //!< VIP the client connected to
        int machine = -1;
        IpAddr serverAddr = 0;
        Port natPort = 0;
        Tick lastActivity = 0;
        bool finC2s = false;
        bool finS2c = false;
        /** Trace context captured from the flow-creating SYN and
         *  restamped onto every rewritten packet, so the context
         *  survives the full-NAT rewrite in both directions. */
        std::uint64_t traceId = 0;
    };

    struct RingEntry
    {
        std::uint64_t hash;
        int machine;
    };

    struct Probe
    {
        int machine = -1;
        Tick sent = 0;      //!< for RTT scoring
    };

    static std::uint64_t flowKey(IpAddr ip, Port port)
    {
        return (static_cast<std::uint64_t>(ip) << 16) | port;
    }
    static std::uint64_t mix64(std::uint64_t x);

    void onVip(const Packet &pkt);
    void onNat(const Packet &pkt);
    void forwardC2s(Flow &f, const Packet &pkt);
    void forwardS2c(Flow &f, const Packet &pkt);
    void sendRstToClient(const Packet &cause);
    void retire(std::uint64_t key);
    int pickMachine(std::uint64_t key);
    Port allocNatPort();
    void rebuildRing();
    void probeRound();
    void scoreRound();
    void sendProbe(int m);
    void probeOk(int m, Tick rtt);
    void probeFail(int m);
    void gcSweep();

    bool scoreMode() const
    {
        return cfg_.healthMode == HealthMode::kScore;
    }

    EventQueue &eq_;
    Wire &fabric_;
    Config cfg_;
    HealthScorer scorer_;
    std::vector<HealthScorer::Verdict> verdicts_;
    IncidentLog *incidents_ = nullptr;
    FleetTraceLog *traceLog_ = nullptr;
    int lbId_ = 0;
    std::vector<IpAddr> vips_;      //!< own VIP first, then adopted
    std::vector<Target> targets_;
    std::vector<RingEntry> ring_;
    std::unordered_map<std::uint64_t, Flow> flows_;
    /** NAT port -> owning flow key (0 = free). */
    std::vector<std::uint64_t> natOwner_;
    std::unordered_map<Port, Probe> probes_;
    std::function<int(int)> pressureFn_;
    bool down_ = false;
    bool started_ = false;
    std::uint32_t natCursor_ = 0;
    std::uint32_t rrCursor_ = 0;
    std::uint64_t probeSeq_ = 0;

    std::uint64_t flowsCreated_ = 0;
    std::uint64_t flowsRetired_ = 0;
    std::uint64_t flowsActivePeak_ = 0;
    std::uint64_t shedNoBackend_ = 0;
    std::uint64_t shedCapacity_ = 0;
    std::uint64_t natRsts_ = 0;
    std::uint64_t tupleReuse_ = 0;
    std::uint64_t boundedLoadFallbacks_ = 0;
    std::uint64_t pressureAvoids_ = 0;
    std::uint64_t probesSent_ = 0;
    std::uint64_t probeFailures_ = 0;
    std::uint64_t ejections_ = 0;
    std::uint64_t readmissions_ = 0;
    std::uint64_t scoreEjections_ = 0;
    std::uint64_t rampSkips_ = 0;
    std::uint64_t ejectionsCapped_ = 0;
    std::uint64_t drainsStarted_ = 0;
    std::uint64_t drainsCompleted_ = 0;
    std::uint64_t undrainedFlows_ = 0;
    std::uint64_t idleRetired_ = 0;
    std::uint64_t forwardedC2s_ = 0;
    std::uint64_t forwardedS2c_ = 0;
    std::uint64_t downDrops_ = 0;
};

} // namespace fsim

#endif // FSIM_FLEET_BALANCER_HH
