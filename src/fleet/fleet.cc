#include "fleet/fleet.hh"

#include <algorithm>
#include <cctype>
#include <string>

#include "check/fingerprint.hh"
#include "sim/logging.hh"

namespace fsim
{

namespace
{

std::map<std::string, LockClassStats>
lockDeltaSat(const std::map<std::string, LockClassStats> &before,
             const std::map<std::string, LockClassStats> &after)
{
    // Saturating per-class delta (a restarted machine's counters reset,
    // so the plain subtraction Testbed uses could wrap here).
    auto sat = [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a - b : 0;
    };
    std::map<std::string, LockClassStats> out;
    for (const auto &kv : after) {
        LockClassStats d = kv.second;
        auto it = before.find(kv.first);
        if (it != before.end()) {
            d.acquisitions = sat(d.acquisitions, it->second.acquisitions);
            d.contentions = sat(d.contentions, it->second.contentions);
            d.waitTicks = sat(d.waitTicks, it->second.waitTicks);
            d.holdTicks = sat(d.holdTicks, it->second.holdTicks);
        }
        out[kv.first] = d;
    }
    return out;
}

} // anonymous namespace

FleetTestbed::FleetTestbed(const FleetConfig &cfg)
    : cfg_(cfg)
{
    fsim_assert(cfg_.serverMachines >= 1 && cfg_.serverMachines <= 64);
    fsim_assert(cfg_.balancers >= 1 && cfg_.balancers <= 8);

    // Hardening shorthands fold exactly like Testbed's.
    if (cfg_.base.synCookies)
        cfg_.base.machine.kernel.synCookies = true;
    if (cfg_.base.synBacklog > 0)
        cfg_.base.machine.kernel.synBacklog = cfg_.base.synBacklog;
    // Balancer probes abandon their handshakes silently (a probe
    // RST-ACK would *establish* the embryonic socket), so fleet server
    // kernels always run the SYN_RCVD reaper.
    if (cfg_.base.machine.kernel.synRcvdJiffies == 0)
        cfg_.base.machine.kernel.synRcvdJiffies = 20;

    drainPoll_ = ticksFromMsec(cfg_.drainPollMsec);
    fsim_assert(drainPoll_ > 0);

    eq_ = std::make_unique<EventQueue>();
    fabric_ = std::make_unique<Wire>(*eq_, cfg_.base.wireDelay);
    if (cfg_.base.lossRate > 0.0)
        fabric_->setLossRate(cfg_.base.lossRate,
                             cfg_.base.machine.seed ^ 0x10ad);

    const int clientIps = cfg_.base.clientIps > 0 ? cfg_.base.clientIps
                                                  : 256;
    const IpAddr clientBase = HttpLoad::Config{}.clientBase;
    if (cfg_.useLinks) {
        Wire::LinkSpec front;
        front.aFirst = clientBase;
        front.aLast = clientBase + static_cast<IpAddr>(clientIps) - 1;
        front.bFirst = vipAddr(0);
        front.bLast = vipAddr(cfg_.balancers - 1);
        front.latency = ticksFromUsec(cfg_.frontLinkLatencyUsec);
        front.gbps = cfg_.frontLinkGbps;
        fabric_->addLink(front);
        for (int s = 0; s < cfg_.serverMachines; ++s) {
            Wire::LinkSpec rack;
            rack.aFirst = natAddr(0);
            rack.aLast = natAddr(cfg_.balancers - 1);
            rack.bFirst = machineBase(s);
            rack.bLast = machineBase(s) + 0xff;
            rack.latency = ticksFromUsec(cfg_.rackLinkLatencyUsec);
            rack.gbps = cfg_.rackLinkGbps;
            fabric_->addLink(rack);
        }
    }

    if (cfg_.base.app == AppKind::kHaproxy) {
        const IpAddr bfirst = 0x0a010001;   // 10.1.0.1 (shared tier)
        const IpAddr blast =
            bfirst + static_cast<IpAddr>(cfg_.base.backendCount - 1);
        backends_ = std::make_unique<BackendPool>(
            *eq_, *fabric_, bfirst, blast, cfg_.base.responseBytes,
            ticksFromUsec(100));
        backends_->setKeepAlive(cfg_.base.backendKeepAlive);
        for (IpAddr a = bfirst; a <= blast; ++a)
            backendAddrs_.push_back(a);
    }

    slots_.resize(cfg_.serverMachines);
    for (int s = 0; s < cfg_.serverMachines; ++s)
        buildGeneration(s);

    // Balancers share one ring seed so every balancer steers a given
    // flow to the same machine (the consistent-hash fleet property).
    for (int k = 0; k < cfg_.balancers; ++k) {
        L4Balancer::Config bc;
        bc.vip = vipAddr(k);
        bc.vipPort = 80;
        bc.natIp = natAddr(k);
        bc.policy = cfg_.policy;
        bc.vnodes = cfg_.vnodes;
        bc.boundedLoadFactor = cfg_.boundedLoadFactor;
        bc.maxFlows = cfg_.maxFlowsPerBalancer;
        bc.probeInterval = ticksFromMsec(cfg_.probeIntervalMsec);
        bc.probeTimeout = ticksFromMsec(cfg_.probeTimeoutMsec);
        bc.fallThreshold = cfg_.probeFallThreshold;
        bc.riseThreshold = cfg_.probeRiseThreshold;
        bc.healthMode = cfg_.healthMode;
        bc.score = cfg_.healthScore;
        bc.flowIdleTimeout = ticksFromMsec(cfg_.flowIdleTimeoutMsec);
        bc.gcPeriod = ticksFromMsec(cfg_.flowGcPeriodMsec);
        bc.forwardDelay = ticksFromUsec(cfg_.forwardDelayUsec);
        bc.seed = cfg_.base.machine.seed ^ 0xb417;
        auto b = std::make_unique<L4Balancer>(*eq_, *fabric_, bc);
        for (int s = 0; s < cfg_.serverMachines; ++s) {
            L4Balancer::TargetSpec ts;
            ts.addrs = slots_[s].gen.machine->addrs();
            ts.port = slots_[s].gen.machine->servicePort();
            b->addTarget(ts);
        }
        // Cross-tier overload reuse: steering consults each live
        // machine's kernel pressure signal.
        b->setPressureProbe([this](int m) {
            if (!slots_[m].up)
                return 0;
            return static_cast<int>(
                slots_[m].gen.machine->pressure().level());
        });
        b->setIncidentLog(&incidents_);
        b->setTraceLog(&traceLog_, k);
        b->attachHandlers();
        b->start();
        balancers_.push_back(std::move(b));
    }
    lbUp_.assign(cfg_.balancers, true);

    HttpLoad::Config lc;
    for (int k = 0; k < cfg_.balancers; ++k)
        lc.serverAddrs.push_back(vipAddr(k));
    lc.serverPort = 80;
    lc.concurrency = cfg_.base.concurrencyPerCore *
                     cfg_.base.machine.cores * cfg_.serverMachines;
    lc.requestBytes = cfg_.base.requestBytes;
    lc.requestsPerConn = cfg_.base.requestsPerConn;
    lc.timeout = cfg_.base.clientTimeout;
    lc.seed = cfg_.base.machine.seed ^ 0xabcdef;
    lc.maxConns = cfg_.base.maxConns;
    lc.rtoBase = cfg_.base.clientRtoBase;
    lc.rtoMax = cfg_.base.clientRtoMax;
    lc.maxRetx = cfg_.base.clientMaxRetx;
    lc.healthEvery = cfg_.base.clientHealthEvery;
    if (cfg_.base.machine.overload.healthRequestBytes > 0)
        lc.healthRequestBytes =
            cfg_.base.machine.overload.healthRequestBytes;
    lc.longLivedPermille = cfg_.base.longLivedPermille;
    lc.longLivedRequests = cfg_.base.longLivedRequests;
    lc.longLivedThink = cfg_.base.longLivedThink;
    lc.clientPortSpan = cfg_.base.clientPortSpan;
    lc.clientIps = clientIps;
    load_ = std::make_unique<HttpLoad>(*eq_, *fabric_, lc);
    load_->setTraceLog(&traceLog_);
    setupObservability();

    if (!cfg_.base.faults.empty()) {
        // Wire/backend/flood events arm normally (floods hit the VIPs;
        // fleet kinds are counted as ignored by the injector and
        // consumed below). atr_shrink binds to machine 0's boot NIC.
        faults_ = std::make_unique<FaultInjector>(
            *eq_, *fabric_, slots_[0].gen.machine->nic(),
            backends_.get(), cfg_.base.faults);
        std::vector<IpAddr> vips;
        for (int k = 0; k < cfg_.balancers; ++k)
            vips.push_back(vipAddr(k));
        faults_->arm(vips, 80);
        armFleetFaults();
    }

    if (cfg_.base.checkLevel != CheckLevel::kOff) {
        for (ServerSlot &sl : slots_) {
            registerStandardInvariants(checks_, *sl.gen.machine, *load_,
                                       *fabric_);
            if (sl.gen.admission)
                registerOverloadInvariants(checks_, *sl.gen.admission,
                                           *sl.gen.machine, *sl.gen.app);
        }
        for (std::size_t k = 0; k < balancers_.size(); ++k) {
            L4Balancer *b = balancers_[k].get();
            checks_.add("fleet-flow-conservation",
                        [b](Tick, std::string &why) {
                if (b->flowsCreated() ==
                    b->flowsRetired() + b->flowsActive())
                    return true;
                why = "created " + std::to_string(b->flowsCreated()) +
                      " != retired " + std::to_string(b->flowsRetired()) +
                      " + active " + std::to_string(b->flowsActive());
                return false;
            });
            checks_.add("fleet-target-accounting",
                        [b](Tick, std::string &why) {
                std::uint64_t sum = 0;
                for (int m = 0; m < b->targetCount(); ++m)
                    sum += b->activeFlows(m);
                if (sum == b->flowsActive())
                    return true;
                why = "per-target active " + std::to_string(sum) +
                      " != flow table " +
                      std::to_string(b->flowsActive());
                return false;
            });
            checks_.add("fleet-drain-accounting",
                        [b](Tick, std::string &why) {
                if (b->drainsStarted() >= b->drainsCompleted())
                    return true;
                why = "drains completed " +
                      std::to_string(b->drainsCompleted()) +
                      " exceed started " +
                      std::to_string(b->drainsStarted());
                return false;
            });
        }
    }

    markWindows();
}

FleetTestbed::~FleetTestbed() = default;

void
FleetTestbed::buildGeneration(int s)
{
    ServerSlot &sl = slots_[s];
    MachineConfig mc = cfg_.base.machine;
    mc.baseAddr = machineBase(s);
    mc.seed = cfg_.base.machine.seed ^
              (0x5107ULL + static_cast<std::uint64_t>(s) * 0x9e3779b9ULL) ^
              (static_cast<std::uint64_t>(sl.generation) * 0x85ebca6bULL);

    Generation g;
    g.port = std::make_unique<NetPort>(*fabric_);
    g.machine = std::make_unique<Machine>(*eq_, *g.port, mc);

    if (cfg_.base.app == AppKind::kHaproxy) {
        auto proxy = std::make_unique<Proxy>(*g.machine, backendAddrs_,
                                             cfg_.base.backendPort,
                                             cfg_.base.responseBytes);
        if (cfg_.base.backendTimeout > 0) {
            Proxy::Tuning pt;
            pt.backendTimeout = cfg_.base.backendTimeout;
            proxy->setTuning(pt);
        }
        g.app = std::move(proxy);
    } else {
        g.app = std::make_unique<WebServer>(
            *g.machine, cfg_.base.responseBytes,
            cfg_.base.requestsPerConn > 1 ||
                cfg_.base.longLivedPermille > 0);
    }
    g.app->setAcceptMutex(cfg_.base.acceptMutex);
    g.app->start();

    if (cfg_.base.machine.overload.enabled) {
        g.admission = std::make_unique<AdmissionController>(
            g.machine->config().overload, &g.machine->pressure(),
            g.machine->numCores());
        g.app->setAdmission(g.admission.get(),
                            &g.machine->config().overload);
    }

    if (cfg_.base.listenBacklog > 0) {
        for (const Socket *sock : g.machine->kernel().allSockets())
            if (sock->kind == SockKind::kListen)
                const_cast<Socket *>(sock)->backlog =
                    cfg_.base.listenBacklog;
    }

    sl.gen = std::move(g);
    // A gray fault is the slot's environment, not one generation's
    // state: a restart mid-degrade comes back just as sick.
    if (sl.degraded)
        applyDegrade(s);
    // Fresh generation, fresh window marks (all its counters are 0).
    sl.gen.machine->markWindow();
    sl.phaseMark = PhaseSnapshot{};
    sl.lockMark.clear();
    sl.ksMark = KernelStats{};
    sl.servedMark = 0;
    sl.accessesMark = 0;
    sl.missesMark = 0;
}

std::vector<std::pair<IpAddr, IpAddr>>
FleetTestbed::resolveGroup(const std::string &tok) const
{
    std::vector<std::pair<IpAddr, IpAddr>> out;
    if (tok == "clients") {
        const int clientIps = cfg_.base.clientIps > 0
                                  ? cfg_.base.clientIps
                                  : 256;
        const IpAddr base = HttpLoad::Config{}.clientBase;
        out.emplace_back(base,
                         base + static_cast<IpAddr>(clientIps) - 1);
    } else if (tok == "lbs") {
        out.emplace_back(vipAddr(0), vipAddr(cfg_.balancers - 1));
        out.emplace_back(natAddr(0), natAddr(cfg_.balancers - 1));
    } else if (tok == "ms") {
        // machineBase blocks are contiguous 0x100 strides.
        out.emplace_back(machineBase(0),
                         machineBase(cfg_.serverMachines - 1) + 0xff);
    } else if (tok.rfind("lb", 0) == 0 && tok.size() > 2) {
        const int k = std::stoi(tok.substr(2));
        if (k >= 0 && k < cfg_.balancers) {
            out.emplace_back(vipAddr(k), vipAddr(k));
            out.emplace_back(natAddr(k), natAddr(k));
        }
    } else if (tok.size() > 1 && tok[0] == 'm') {
        const int s = std::stoi(tok.substr(1));
        if (s >= 0 && s < cfg_.serverMachines)
            out.emplace_back(machineBase(s), machineBase(s) + 0xff);
    }
    if (out.empty())
        fsim_fatal("net_partition: group '%s' names nothing in a fleet "
                   "of %d machines / %d balancers",
                   tok.c_str(), cfg_.serverMachines, cfg_.balancers);
    return out;
}

void
FleetTestbed::armFleetFaults()
{
    for (const FaultEvent &e : cfg_.base.faults.events) {
        const Tick start = ticksFromSeconds(e.startSec);
        const Tick end = ticksFromSeconds(e.endSec);
        switch (e.kind) {
          case FaultKind::kMachineCrash: {
            fsim_assert(e.target >= 0 &&
                        e.target < cfg_.serverMachines);
            const int t = e.target;
            const FaultEvent::CrashMode mode = e.mode;
            const int id = incidents_.open(IncidentKind::kMachineCrash,
                                           t, start);
            eq_->schedule(start, [this, t, mode] {
                crashMachine(t, mode, /*admin=*/false);
            });
            eq_->schedule(end, [this, t, id] {
                restartMachine(t);
                incidents_.noteCleared(id, eq_->now());
            });
            break;
          }
          case FaultKind::kRollingRestart: {
            const Tick drain = ticksFromMsec(e.drainMsec);
            const Tick down = ticksFromMsec(e.downMsec);
            eq_->schedule(start, [this, drain, down] {
                beginRollingRestart(drain, down);
            });
            break;
          }
          case FaultKind::kLbCrash: {
            fsim_assert(e.target >= 0 && e.target < cfg_.balancers);
            const int t = e.target;
            // Balancer incidents never collide with machine-slot stamp
            // routing (targets_ indices are < 64).
            const int id = incidents_.open(IncidentKind::kLbCrash,
                                           1000 + t, start);
            eq_->schedule(start, [this, t] { crashBalancer(t); });
            eq_->schedule(end, [this, t, id] {
                restoreBalancer(t);
                incidents_.noteCleared(id, eq_->now());
            });
            break;
          }
          case FaultKind::kMachineDegrade: {
            fsim_assert(e.target >= 0 &&
                        e.target < cfg_.serverMachines);
            const int t = e.target;
            const std::uint32_t permille = static_cast<std::uint32_t>(
                e.factor * 1000.0 + 0.5);
            const double loss = e.rate;
            const Tick delay = ticksFromUsec(e.jitterUsec);
            const Tick half = e.flapMsec > 0
                                  ? ticksFromMsec(e.flapMsec) / 2
                                  : 0;
            const int id = incidents_.open(
                half > 0 ? IncidentKind::kMachineFlap
                         : IncidentKind::kMachineDegrade,
                t, start);
            if (half > 0) {
                // Pre-scheduled oscillation: degraded on even
                // half-periods, nominally healthy on odd ones.
                int phase = 0;
                for (Tick at = start; at < end; at += half, ++phase) {
                    const bool on = phase % 2 == 0;
                    eq_->schedule(at,
                                  [this, t, on, permille, loss, delay] {
                        ++flapTransitions_;
                        if (on)
                            degradeMachine(t, permille, loss, delay);
                        else
                            clearDegrade(t);
                    });
                }
            } else {
                eq_->schedule(start, [this, t, permille, loss, delay] {
                    degradeMachine(t, permille, loss, delay);
                });
            }
            eq_->schedule(end, [this, t, id] {
                clearDegrade(t);
                incidents_.noteCleared(id, eq_->now());
            });
            break;
          }
          case FaultKind::kNetPartition: {
            const auto as = resolveGroup(e.partA);
            const auto bs = resolveGroup(e.partB);
            for (const auto &ra : as) {
                for (const auto &rb : bs) {
                    Wire::PartitionSpec p;
                    p.aFirst = ra.first;
                    p.aLast = ra.second;
                    p.bFirst = rb.first;
                    p.bLast = rb.second;
                    p.start = start;
                    p.end = end;
                    fabric_->addPartition(p);
                    ++partitionsArmed_;
                }
            }
            // A single-machine side pins the incident to that slot so
            // eject/recover stamps land; group-to-group partitions stay
            // fleet-wide (-1).
            auto singleMachine = [this](const std::string &tok) {
                if (tok.size() < 2 || tok[0] != 'm' ||
                    !std::isdigit(static_cast<unsigned char>(tok[1])))
                    return -1;
                const int s = std::stoi(tok.substr(1));
                return s < cfg_.serverMachines ? s : -1;
            };
            int target = singleMachine(e.partA);
            if (target < 0)
                target = singleMachine(e.partB);
            const int id = incidents_.open(IncidentKind::kNetPartition,
                                           target, start);
            eq_->schedule(end, [this, id] {
                incidents_.noteCleared(id, eq_->now());
            });
            break;
          }
          default:
            break;    // armed on the FaultInjector
        }
    }
}

void
FleetTestbed::applyDegrade(int s)
{
    ServerSlot &sl = slots_.at(s);
    sl.gen.machine->cpu().setSlowdownPermille(
        sl.degraded ? sl.slowPermille : 1000);
    const std::uint64_t seed =
        cfg_.base.machine.seed ^
        (0xde64adeULL + static_cast<std::uint64_t>(s) * 0x9e3779b9ULL);
    sl.gen.port->setDegrade(sl.degraded ? sl.nicLoss : 0.0,
                            sl.degraded ? sl.nicDelay : 0, seed);
}

void
FleetTestbed::degradeMachine(int s, std::uint32_t permille,
                             double nicLoss, Tick nicDelay)
{
    ServerSlot &sl = slots_.at(s);
    sl.degraded = true;
    sl.slowPermille = permille < 1000 ? 1000 : permille;
    sl.nicLoss = nicLoss;
    sl.nicDelay = nicDelay;
    ++degradesApplied_;
    applyDegrade(s);
}

void
FleetTestbed::clearDegrade(int s)
{
    ServerSlot &sl = slots_.at(s);
    if (!sl.degraded)
        return;
    sl.degraded = false;
    applyDegrade(s);
}

void
FleetTestbed::crashMachine(int s, FaultEvent::CrashMode mode, bool admin)
{
    ServerSlot &sl = slots_.at(s);
    if (!sl.up)
        return;
    sl.up = false;
    if (!admin)
        ++crashes_;

    // TX side: the zombie kernel's future transmissions die at its port.
    sl.gen.port->setTxOpen(false);
    // The dying kernel's TCBs will never destruct, so their span
    // traces would stay live forever; finalize them abnormally now so
    // end-to-end trace stitching still sees the work they performed.
    sl.gen.machine->tracer().connSpans().closeAllLive(eq_->now());
    // RX side: the corpse either answers RSTs (power on, kernel gone)
    // or eats packets (cable pulled). Wire re-resolves handlers at
    // delivery, so even in-flight packets see the corpse.
    const bool blackhole = mode == FaultEvent::CrashMode::kBlackhole;
    for (IpAddr a : sl.gen.port->attachedAddrs()) {
        if (blackhole) {
            fabric_->attach(a, [this](const Packet &) {
                ++blackholed_;
            });
        } else {
            fabric_->attach(a, [this](const Packet &pkt) {
                if (pkt.has(kRst))
                    return;     // never RST a RST
                Packet rst;
                rst.tuple = pkt.tuple.reversed();
                rst.flags = kRst;
                rst.connId = pkt.connId;
                ++corpseRsts_;
                fabric_->transmit(rst, eq_->now());
            });
        }
    }

    if (admin) {
        // Planned stop: balancers know. (Abrupt crashes are discovered
        // through probe failures instead — that's the point.)
        for (auto &b : balancers_)
            b->noteStopped(s);
    }
}

void
FleetTestbed::restartMachine(int s)
{
    ServerSlot &sl = slots_.at(s);
    if (sl.up)
        return;

    // Bank the dying generation's window contribution, then retire it
    // as a zombie (run-total counters must stay reachable).
    const KernelStats &ks = sl.gen.machine->kernel().stats();
    carry_.served += sl.gen.app->served() - sl.servedMark;
    carry_.slowPath += ks.slowPathAccepts - sl.ksMark.slowPathAccepts;
    carry_.steered += ks.steeredPackets - sl.ksMark.steeredPackets;
    carry_.rx += ks.rxPackets - sl.ksMark.rxPackets;
    carry_.activeLocal += ks.activePktLocal - sl.ksMark.activePktLocal;
    carry_.activeTotal += ks.activePktTotal - sl.ksMark.activePktTotal;
    carry_.accesses +=
        sl.gen.machine->cache().totalAccesses() - sl.accessesMark;
    carry_.misses +=
        sl.gen.machine->cache().totalMisses() - sl.missesMark;
    retired_.push_back(std::move(sl.gen));

    ++sl.generation;
    buildGeneration(s);
    sl.up = true;
    ++restarts_;
    for (auto &b : balancers_)
        b->noteRestarted(s);

    if (cfg_.base.checkLevel != CheckLevel::kOff) {
        registerStandardInvariants(checks_, *sl.gen.machine, *load_,
                                   *fabric_);
        if (sl.gen.admission)
            registerOverloadInvariants(checks_, *sl.gen.admission,
                                       *sl.gen.machine, *sl.gen.app);
    }
}

std::uint64_t
FleetTestbed::totalActiveOn(int s) const
{
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < balancers_.size(); ++k)
        if (lbUp_[k])
            sum += balancers_[k]->activeFlows(s);
    return sum;
}

void
FleetTestbed::beginRollingRestart(Tick drainDeadline, Tick downtime)
{
    fsim_assert(drainDeadline > 0 && downtime > 0);
    if (rollingActive_)
        return;
    rollingActive_ = true;
    rollingIndex_ = 0;
    rollingDrain_ = drainDeadline;
    rollingDown_ = downtime;
    advanceRolling();
}

void
FleetTestbed::advanceRolling()
{
    // Skip slots that are already down (an independent crash window).
    while (rollingIndex_ < static_cast<int>(slots_.size()) &&
           !slots_[rollingIndex_].up)
        ++rollingIndex_;
    if (rollingIndex_ >= static_cast<int>(slots_.size())) {
        rollingActive_ = false;
        return;
    }
    const int s = rollingIndex_;
    for (std::size_t k = 0; k < balancers_.size(); ++k)
        if (lbUp_[k])
            balancers_[k]->startDrain(s);
    pollDrain(s, eq_->now() + rollingDrain_);
}

void
FleetTestbed::pollDrain(int s, Tick deadline)
{
    eq_->scheduleIn(drainPoll_, [this, s, deadline] {
        if (!slots_[s].up) {
            // Crashed out from under the drain; close the books and
            // move on (the crash window owns the restart).
            for (std::size_t k = 0; k < balancers_.size(); ++k)
                if (lbUp_[k])
                    balancers_[k]->finishDrain(s);
            ++rollingIndex_;
            advanceRolling();
            return;
        }
        if (totalActiveOn(s) > 0 && eq_->now() < deadline) {
            pollDrain(s, deadline);
            return;
        }
        for (std::size_t k = 0; k < balancers_.size(); ++k)
            if (lbUp_[k])
                balancers_[k]->finishDrain(s);
        crashMachine(s, FaultEvent::CrashMode::kRst, /*admin=*/true);
        eq_->scheduleIn(rollingDown_, [this, s] {
            restartMachine(s);
            pollReadmit(s);
        });
    });
}

void
FleetTestbed::pollReadmit(int s)
{
    eq_->scheduleIn(drainPoll_, [this, s] {
        bool ok = true;
        for (std::size_t k = 0; k < balancers_.size(); ++k)
            if (lbUp_[k])
                ok = ok && balancers_[k]->healthy(s);
        if (ok) {
            ++rollingIndex_;
            advanceRolling();
        } else {
            pollReadmit(s);
        }
    });
}

void
FleetTestbed::crashBalancer(int k)
{
    if (!lbUp_.at(k))
        return;
    lbUp_[k] = false;
    ++lbCrashes_;
    balancers_[k]->setDown(true);
    fabric_->attach(vipAddr(k),
                    [this](const Packet &) { ++blackholed_; });
    fabric_->attach(natAddr(k),
                    [this](const Packet &) { ++blackholed_; });
    // A surviving peer adopts the VIP after the detection lag.
    eq_->scheduleIn(ticksFromMsec(cfg_.takeoverDelayMsec), [this, k] {
        if (lbUp_[k])
            return;     // restored before the failover fired
        for (std::size_t kk = 0; kk < balancers_.size(); ++kk) {
            if (lbUp_[kk]) {
                balancers_[kk]->adoptVip(vipAddr(k));
                ++vipTakeovers_;
                return;
            }
        }
    });
}

void
FleetTestbed::restoreBalancer(int k)
{
    if (lbUp_.at(k))
        return;
    lbUp_[k] = true;
    balancers_[k]->setDown(false);
    // Re-attaching overwrites both the blackhole and any peer adoption.
    balancers_[k]->attachHandlers();
}

void
FleetTestbed::startLoad()
{
    if (loadStarted_)
        return;
    loadStarted_ = true;
    if (cfg_.openLoopRate > 0.0)
        load_->startOpenLoop(cfg_.openLoopRate);
    else
        load_->start();
}

void
FleetTestbed::runUntilChecked(Tick limit)
{
    if (cfg_.base.checkLevel != CheckLevel::kPeriodic) {
        eq_->runUntil(limit);
        return;
    }
    Tick step = ticksFromSeconds(cfg_.base.checkIntervalSec);
    if (step == 0)
        step = 1;
    while (eq_->now() < limit) {
        eq_->runUntil(std::min(limit, eq_->now() + step));
        checks_.runAll(eq_->now());
    }
}

void
FleetTestbed::markWindows()
{
    for (ServerSlot &sl : slots_) {
        Machine &m = *sl.gen.machine;
        m.markWindow();
        sl.phaseMark = m.tracer().phaseSnapshot();
        sl.lockMark = m.locks().snapshot();
        sl.ksMark = m.kernel().stats();
        sl.servedMark = sl.gen.app->served();
        sl.accessesMark = m.cache().totalAccesses();
        sl.missesMark = m.cache().totalMisses();
    }
    load_->markWindow();
    completedMark_ = load_->completed();
    failedMark_ = load_->failed();
    eventsRunMark_ = eq_->executed();
    eventsScheduledMark_ = eq_->scheduled();
    markTick_ = eq_->now();
    carry_ = WindowCarry{};

    // Re-seed the observability cursors so warmup traffic never leaks
    // into the first sampled window or the SLO burn state.
    obsCompletedPrev_ = load_->completed();
    obsFailedPrev_ = load_->failed();
    obsShedPrev_ = currentShedTotal();
    latCursor_ = load_->latencySamples().size();
    for (std::size_t s = 0; s < slots_.size(); ++s)
        obsServedPrev_[s] = slots_[s].gen.app->served();
}

std::uint64_t
FleetTestbed::currentShedTotal() const
{
    std::uint64_t shed = 0;
    for (const auto &b : balancers_)
        shed += b->shedNoBackend() + b->shedCapacity();
    forEachGeneration([&shed](const Generation &g) {
        if (g.admission)
            shed += g.admission->shed();
    });
    return shed;
}

void
FleetTestbed::setupObservability()
{
    // Recording infrastructure follows the span-trace master switch:
    // --notrace must leave both logs allocation-free.
    const bool rec = cfg_.base.machine.traceEnabled;
    traceLog_.setEnabled(rec);
    metrics_.setEnabled(rec);
    const int wins = std::max(1, cfg_.base.statWindows);
    metrics_.setSamplePeriod(
        ticksFromSeconds(cfg_.base.measureSec) / wins);

    for (int k = 0; k < cfg_.balancers; ++k)
        mid_.lbFlows.push_back(metrics_.addGauge(
            "lb" + std::to_string(k) + ".flows"));
    for (int s = 0; s < cfg_.serverMachines; ++s) {
        const std::string p = "m" + std::to_string(s);
        mid_.mCps.push_back(metrics_.addGauge(p + ".cps"));
        mid_.mEstablished.push_back(
            metrics_.addGauge(p + ".established"));
        mid_.mTimeWait.push_back(metrics_.addGauge(p + ".time_wait"));
        mid_.mPressure.push_back(metrics_.addGauge(p + ".pressure"));
    }
    mid_.completed = metrics_.addCounter("fleet.completed");
    mid_.failed = metrics_.addCounter("fleet.failed");
    mid_.shed = metrics_.addCounter("fleet.shed");
    mid_.upMachines = metrics_.addGauge("fleet.up_machines");
    mid_.healthyTargets = metrics_.addGauge("fleet.healthy_targets");
    mid_.successRatio = metrics_.addGauge("fleet.success_ratio");
    mid_.latency = metrics_.addHistogram("client.latency_ticks");
    mid_.fastBurn = metrics_.addGauge("slo.fast_burn");
    mid_.slowBurn = metrics_.addGauge("slo.slow_burn");
    obsServedPrev_.assign(static_cast<std::size_t>(cfg_.serverMachines),
                          0);

    // SLO tracking is config-gated, not trace-gated: it consumes only
    // aggregate load counters, so it stays live under --notrace.
    if (cfg_.sloEnabled) {
        slo_ = std::make_unique<SloTracker>(cfg_.slo);
        slo_->setIncidentLog(&incidents_);
    }
}

void
FleetTestbed::sampleObservability(Tick wstart, Tick wend)
{
    // Window deltas from cumulative client-side counters.
    const std::uint64_t completed = load_->completed();
    const std::uint64_t failed = load_->failed();
    const std::uint64_t dOk = completed - obsCompletedPrev_;
    const std::uint64_t dFail = failed - obsFailedPrev_;
    obsCompletedPrev_ = completed;
    obsFailedPrev_ = failed;

    // Latency samples appended since the previous sub-window feed both
    // the latency histogram and the latency-SLO miss count.
    const auto &lat = load_->latencySamples();
    std::uint64_t latMisses = 0;
    for (; latCursor_ < lat.size(); ++latCursor_) {
        metrics_.observe(mid_.latency, lat[latCursor_].second);
        if (cfg_.slo.latencyObjective > 0 &&
            lat[latCursor_].second > cfg_.slo.latencyObjective)
            ++latMisses;
    }

    // The SLO tracker runs even when the metrics registry is disabled
    // (--notrace): burn alerts are a control-plane product, not a
    // recording product.
    if (slo_)
        slo_->addWindow(wend, dOk, dFail, latMisses);

    metrics_.add(mid_.completed, dOk);
    metrics_.add(mid_.failed, dFail);
    const std::uint64_t shed = currentShedTotal();
    metrics_.add(mid_.shed, shed - obsShedPrev_);
    obsShedPrev_ = shed;

    for (std::size_t k = 0; k < balancers_.size(); ++k)
        metrics_.set(mid_.lbFlows[k],
                     static_cast<double>(balancers_[k]->flowsActive()));

    const double wsec = secondsFromTicks(wend - wstart);
    int up = 0;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        const ServerSlot &sl = slots_[s];
        if (sl.up)
            ++up;
        const KernelStack &k = sl.gen.machine->kernel();
        metrics_.set(mid_.mEstablished[s],
                     static_cast<double>(k.stats().establishedCurr));
        metrics_.set(mid_.mTimeWait[s],
                     static_cast<double>(k.timeWaitTable().size()));
        metrics_.set(mid_.mPressure[s],
                     static_cast<double>(static_cast<int>(
                         sl.gen.machine->pressure().level())));
        // A restart swaps in a fresh generation whose served() restarts
        // at zero; treat the post-restart count as the window's delta.
        const std::uint64_t served = sl.gen.app->served();
        const std::uint64_t d = served >= obsServedPrev_[s]
                                    ? served - obsServedPrev_[s]
                                    : served;
        obsServedPrev_[s] = served;
        metrics_.set(mid_.mCps[s],
                     wsec > 0.0 ? static_cast<double>(d) / wsec : 0.0);
    }
    metrics_.set(mid_.upMachines, static_cast<double>(up));

    int healthy = 0;
    if (!balancers_.empty()) {
        const L4Balancer &b0 = *balancers_.front();
        for (int m = 0; m < b0.targetCount(); ++m)
            if (b0.healthy(m))
                ++healthy;
    }
    metrics_.set(mid_.healthyTargets, static_cast<double>(healthy));
    const std::uint64_t tot = dOk + dFail;
    metrics_.set(mid_.successRatio,
                 tot > 0 ? static_cast<double>(dOk) /
                               static_cast<double>(tot)
                         : 1.0);
    if (slo_) {
        double fb = 0.0;
        double sb = 0.0;
        for (const SloObjective &o : slo_->objectives()) {
            fb = std::max(fb, o.fastBurn);
            sb = std::max(sb, o.slowBurn);
        }
        metrics_.set(mid_.fastBurn, fb);
        metrics_.set(mid_.slowBurn, sb);
    }
    metrics_.sample(wend);
}

template <typename Fn>
void
FleetTestbed::forEachGeneration(Fn fn) const
{
    for (const ServerSlot &sl : slots_)
        fn(sl.gen);
    for (const Generation &g : retired_)
        fn(g);
}

std::uint64_t
FleetTestbed::currentFingerprint() const
{
    Fingerprint fp;
    fp.mix(fabric_->seqHash());
    fp.mix(eq_->now());
    fp.mix(load_->started());
    fp.mix(load_->completed());
    fp.mix(load_->failed());
    fp.mix(load_->responses());
    fp.mix(load_->timeouts());
    fp.mix(load_->bytesReceived());
    fp.mix(load_->synRetransmits());
    fp.mix(load_->requestRetransmits());
    fp.mix(load_->retxGiveups());
    fp.mix(load_->healthStarted());
    fp.mix(load_->healthCompleted());
    fp.mix(load_->healthFailed());
    forEachGeneration([&fp](const Generation &g) {
        const KernelStats &ks = g.machine->kernel().stats();
        fp.mix(ks.rxPackets);
        fp.mix(ks.txPackets);
        fp.mix(ks.acceptedConns);
        fp.mix(ks.rstSent);
        fp.mix(ks.socketsCreated);
        fp.mix(ks.socketsDestroyed);
        fp.mix(ks.timeWaitEntered);
        fp.mix(ks.synRcvdReaped);
        fp.mix(ks.backlogDropped);
        fp.mix(ks.synGateDropped);
        fp.mix(g.machine->cpu().totalBusyTicks());
        fp.mix(g.machine->pressure().transitions());
        fp.mix(static_cast<std::uint64_t>(
            g.machine->pressure().level()));
        fp.mix(g.app->served());
        fp.mix(g.app->servedDegraded());
        fp.mix(g.app->shedConns());
        fp.mix(g.port->txSuppressed());
        fp.mix(g.port->degradeDropped());
        fp.mix(g.port->degradeDelayed());
        if (g.admission) {
            fp.mix(g.admission->offered());
            fp.mix(g.admission->admitted());
            fp.mix(g.admission->degraded());
            fp.mix(g.admission->shed());
            fp.mix(g.admission->released());
        }
    });
    for (const auto &b : balancers_)
        fp.mix(b->counterHash());
    fp.mix(crashes_);
    fp.mix(restarts_);
    fp.mix(lbCrashes_);
    fp.mix(vipTakeovers_);
    fp.mix(corpseRsts_);
    fp.mix(blackholed_);
    fp.mix(degradesApplied_);
    fp.mix(flapTransitions_);
    fp.mix(partitionsArmed_);
    fp.mix(fabric_->partitionDropped());
    fp.mix(incidents_.hash());
    return fp.value();
}

ExperimentResult
FleetTestbed::collect()
{
    if (cfg_.base.checkLevel != CheckLevel::kOff)
        checks_.runAll(eq_->now());

    ExperimentResult r;
    r.cps = load_->throughputSinceMark();
    r.rps = load_->requestThroughputSinceMark();

    const Tick span = eq_->now() - markTick_;
    r.windowSpan = span;
    r.simEventsRun = eq_->executed() - eventsRunMark_;
    r.simEventsScheduled = eq_->scheduled() - eventsScheduledMark_;
    r.simTicks = span;

    // Per-machine window deltas (live generations; generations lost
    // mid-window banked their deltas into carry_ at restart). Phases,
    // locks and utilization cover live generations only.
    std::uint64_t acc = carry_.accesses, mis = carry_.misses;
    std::uint64_t at = carry_.activeTotal, al = carry_.activeLocal;
    r.served = carry_.served;
    r.slowPathAccepts = carry_.slowPath;
    r.steeredPackets = carry_.steered;
    r.rxPackets = carry_.rx;
    PhaseSnapshot combined;
    std::map<std::string, LockClassStats> lockSum;
    int liveCores = 0;
    for (ServerSlot &sl : slots_) {
        Machine &m = *sl.gen.machine;
        const KernelStats &ks = m.kernel().stats();
        r.served += sl.gen.app->served() - sl.servedMark;
        r.slowPathAccepts += ks.slowPathAccepts -
                             sl.ksMark.slowPathAccepts;
        r.steeredPackets += ks.steeredPackets -
                            sl.ksMark.steeredPackets;
        r.rxPackets += ks.rxPackets - sl.ksMark.rxPackets;
        at += ks.activePktTotal - sl.ksMark.activePktTotal;
        al += ks.activePktLocal - sl.ksMark.activePktLocal;
        acc += m.cache().totalAccesses() - sl.accessesMark;
        mis += m.cache().totalMisses() - sl.missesMark;

        for (double u : m.utilizationSinceMark())
            r.coreUtil.push_back(u);
        liveCores += m.numCores();

        std::map<std::string, LockClassStats> ld =
            lockDeltaSat(sl.lockMark, m.locks().snapshot());
        for (const auto &kv : ld) {
            LockClassStats &dst = lockSum[kv.first];
            dst.acquisitions += kv.second.acquisitions;
            dst.contentions += kv.second.contentions;
            dst.waitTicks += kv.second.waitTicks;
            dst.holdTicks += kv.second.holdTicks;
        }

        PhaseSnapshot d = phaseDelta(sl.phaseMark,
                                     m.tracer().phaseSnapshot());
        for (const auto &row : d.perCore)
            combined.perCore.push_back(row);
        for (const auto &kv : d.folded)
            combined.folded[kv.first] += kv.second;
        combined.untracked += d.untracked;

        r.traceEventsRecorded += m.tracer().eventsRecorded();
        r.traceEventsOverwritten += m.tracer().eventsOverwritten();
        for (int c = 0; c < m.numCores(); ++c)
            r.traceOverwrittenPerCore.push_back(
                m.tracer().eventsOverwritten(c));
        if (!cfg_.base.machine.traceEnabled) {
            fsim_assert(m.tracer().connSpans().allocations() == 0 &&
                        "span tracing allocated with tracing disabled");
        }
    }
    r.locks = lockSum;
    r.l3MissRate = acc ? static_cast<double>(mis) /
                         static_cast<double>(acc)
                       : 0.0;
    r.localPktProportion = at ? static_cast<double>(al) /
                                static_cast<double>(at)
                              : 0.0;
    r.clientFailures = load_->failed() - failedMark_;

    const double totalCycles = static_cast<double>(span) * liveCores;
    if (totalCycles > 0) {
        for (const auto &kv : r.locks)
            r.lockCycleShare[kv.first] =
                static_cast<double>(kv.second.waitTicks) / totalCycles;
    }
    r.phaseCycles = combined;
    r.phases = phaseBreakdown(combined, span);
    r.foldedStacks = foldedStacks(combined);

    r.fingerprint = currentFingerprint();
    r.invariants = checks_.report();

    // Overload block: run totals summed over every machine generation
    // (each controller's arithmetic identities survive summation).
    OverloadResult &ov = r.overload;
    ov.enabled = cfg_.base.machine.overload.enabled;
    ov.spec = serializeOverloadSpec(cfg_.base.machine.overload);
    forEachGeneration([&ov](const Generation &g) {
        if (g.admission) {
            ov.offered += g.admission->offered();
            ov.admitted += g.admission->admitted();
            ov.degraded += g.admission->degraded();
            ov.shed += g.admission->shed();
            ov.shedDeadline += g.admission->shedDeadline();
            ov.shedWorkerCap += g.admission->shedWorkerCap();
            ov.shedPressure += g.admission->shedPressure();
            ov.released += g.admission->released();
            ov.inflight += g.admission->inflightTotal();
            ov.healthOffered += g.admission->healthOffered();
            ov.healthAdmitted += g.admission->healthAdmitted();
        }
        ov.servedDegraded += g.app->servedDegraded();
        const KernelStats &ks = g.machine->kernel().stats();
        ov.backlogDropped += ks.backlogDropped;
        ov.synGateDropped += ks.synGateDropped;
        const PressureState &pr = g.machine->pressure();
        ov.pressureTransitions += pr.transitions();
        ov.pressurePeak = std::max(ov.pressurePeak,
                                   static_cast<int>(pr.peakLevel()));
        ov.softirqDepthPeak = std::max<std::uint64_t>(
            ov.softirqDepthPeak, pr.softirqDepthPeak());
        ov.acceptDepthPeak = std::max<std::uint64_t>(
            ov.acceptDepthPeak, pr.acceptDepthPeak());
        for (int p = 0; p < g.machine->numCores(); ++p) {
            std::size_t rp =
                g.machine->kernel().process(p).epoll->readyPeak();
            ov.epollReadyPeak = std::max<std::uint64_t>(
                ov.epollReadyPeak, rp);
        }
    });
    for (const ServerSlot &sl : slots_) {
        if (sl.up)
            ov.pressureLevel = std::max(
                ov.pressureLevel,
                static_cast<int>(sl.gen.machine->pressure().level()));
    }
    ov.latencyP50 = load_->latencyPercentileSinceMark(0.50);
    ov.latencyP99 = load_->latencyPercentileSinceMark(0.99);
    ov.latencySamples = load_->latencySamplesSinceMark();
    ov.healthProbesStarted = load_->healthStarted();
    ov.healthProbesCompleted = load_->healthCompleted();
    ov.healthProbesFailed = load_->healthFailed();

    // Connection census: run totals over every generation.
    ConnResult &cn = r.conn;
    forEachGeneration([&cn](const Generation &g) {
        const KernelStack &k = g.machine->kernel();
        const KernelStats &ks = k.stats();
        const TcbArena &arena = k.tcbArena();
        cn.tcbLive += arena.live();
        cn.tcbLivePeak += arena.peakLive();
        cn.tcbCreated += arena.totalCreated();
        cn.slabBytes += arena.slabBytes();
        if (cn.bytesPerConn == 0)
            cn.bytesPerConn = arena.bytesPerConn();
        cn.establishedCurr += ks.establishedCurr;
        cn.establishedPeak += ks.establishedPeak;
        cn.timeWaitCurr += k.timeWaitTable().size();
        cn.timeWaitPeak += k.timeWaitTable().peakSize();
        cn.timeWaitEntered += ks.timeWaitEntered;
        cn.timeWaitReaped += ks.timeWaitReaped;
        cn.timeWaitRecycled += ks.timeWaitRecycled;
        cn.timeWaitReused += ks.timeWaitReused;
        cn.timeWaitSynDropped += ks.timeWaitSynDropped;
        cn.timeWaitAcks += ks.timeWaitAcks;
        cn.portAllocFailures += ks.portAllocFailures;
        cn.ehashLookups += k.ehashLookups();
        cn.ehashProbesWalked += k.ehashProbesWalked();
        cn.ehashLookupCycles += k.ehashLookupCycles();
        cn.ehashResizes += k.ehashResizes();
    });
    if (cn.ehashLookups > 0) {
        cn.avgProbeLen = static_cast<double>(cn.ehashProbesWalked) /
                         static_cast<double>(cn.ehashLookups);
        cn.cyclesPerLookup =
            static_cast<double>(cn.ehashLookupCycles) /
            static_cast<double>(cn.ehashLookups);
    }

    // Fleet block.
    FleetResult &fl = r.fleet;
    fl.enabled = true;
    fl.serverMachines = cfg_.serverMachines;
    fl.balancers = cfg_.balancers;
    fl.policy = L4Balancer::policyName(cfg_.policy);
    for (const auto &b : balancers_) {
        fl.flowsCreated += b->flowsCreated();
        fl.flowsRetired += b->flowsRetired();
        fl.flowsActive += b->flowsActive();
        fl.flowsActivePeak += b->flowsActivePeak();
        fl.tupleReuse += b->tupleReuse();
        fl.idleRetired += b->idleRetired();
        fl.forwardedC2s += b->forwardedC2s();
        fl.forwardedS2c += b->forwardedS2c();
        fl.shedNoBackend += b->shedNoBackend();
        fl.shedCapacity += b->shedCapacity();
        fl.natRsts += b->natRsts();
        fl.boundedLoadFallbacks += b->boundedLoadFallbacks();
        fl.pressureAvoids += b->pressureAvoids();
        fl.probesSent += b->probesSent();
        fl.probeFailures += b->probeFailures();
        fl.ejections += b->ejections();
        fl.readmissions += b->readmissions();
        fl.drainsStarted += b->drainsStarted();
        fl.drainsCompleted += b->drainsCompleted();
        fl.undrainedFlows += b->undrainedFlows();
        fl.scoreEjections += b->scoreEjections();
        fl.rampSkips += b->rampSkips();
        fl.ejectionsCapped += b->ejectionsCapped();
    }
    fl.healthMode = L4Balancer::healthModeName(cfg_.healthMode);
    fl.restarts = restarts_;
    fl.crashes = crashes_;
    fl.lbCrashes = lbCrashes_;
    fl.vipTakeovers = vipTakeovers_;
    forEachGeneration([&fl](const Generation &g) {
        fl.txSuppressed += g.port->txSuppressed();
        fl.degradeDropped += g.port->degradeDropped();
        fl.degradeDelayed += g.port->degradeDelayed();
    });
    fl.corpseRsts = corpseRsts_;
    fl.blackholed = blackholed_;
    fl.linkPackets = fabric_->linkPackets();
    fl.linkQueuedTicks = fabric_->linkQueuedTicks();
    fl.degradesApplied = degradesApplied_;
    fl.flapTransitions = flapTransitions_;
    fl.partitionsArmed = partitionsArmed_;
    fl.partitionDropped = fabric_->partitionDropped();
    fl.incidentsTotal = incidents_.count();
    double mttdSum = 0.0, mttrSum = 0.0;
    for (const Incident &inc : incidents_.incidents()) {
        if (inc.detected) {
            ++fl.incidentsDetected;
            mttdSum += secondsFromTicks(inc.detectAt - inc.injectAt) *
                       1000.0;
        }
        if (inc.recovered) {
            ++fl.incidentsRecovered;
            mttrSum += secondsFromTicks(inc.recoverAt - inc.injectAt) *
                       1000.0;
        }
    }
    fl.mttdMsMean = fl.incidentsDetected
                        ? mttdSum / static_cast<double>(
                                        fl.incidentsDetected)
                        : 0.0;
    fl.mttrMsMean = fl.incidentsRecovered
                        ? mttrSum / static_cast<double>(
                                        fl.incidentsRecovered)
                        : 0.0;
    const std::uint64_t winCompleted = load_->completed() -
                                       completedMark_;
    const std::uint64_t winFailed = r.clientFailures;
    fl.requestSuccessRatio =
        winCompleted + winFailed > 0
            ? static_cast<double>(winCompleted) /
                  static_cast<double>(winCompleted + winFailed)
            : 0.0;

    // Distributed-trace stitching: join every machine-side connection
    // span that carries a trace context onto its client/LB record.
    // Zombie generations contribute too — a span served by a machine
    // that later crashed still belongs to its end-to-end trace.
    // In-flight spans join too: a server stuck in FIN retransmission
    // after its NAT flow died (balancer failover mid-teardown) still
    // served its request; orderly-closed spans outrank these.
    forEachGeneration([this](const Generation &g) {
        const ConnSpanLog &sl = g.machine->tracer().connSpans();
        for (const ConnSpanTrace &tr : sl.completed())
            if (tr.traceId != 0)
                traceLog_.stitchMachineSpan(tr);
        for (const ConnSpanTrace *tr : sl.liveSnapshot())
            if (tr->traceId != 0)
                traceLog_.stitchMachineSpan(*tr);
    });
    fl.tracesStarted = traceLog_.clientStarts();
    fl.tracesCompleted = traceLog_.clientCompleted();
    fl.tracesStitched = traceLog_.machineSpansStitched();
    fl.traceOrphans = traceLog_.orphans();
    fl.traceDuplicates = traceLog_.duplicates();

    // Span/CPU reconciliation, fleet-wide: recorded exec-span cycles on
    // a core can never exceed what that core actually ran.
    forEachGeneration([&fl](const Generation &g) {
        Machine &m = *g.machine;
        for (int c = 0; c < m.numCores(); ++c)
            if (m.tracer().connSpans().execSelfTicks(c) >
                m.cpu().core(c).busyTicks())
                ++fl.spanReconcileViolations;
    });

    if (slo_) {
        fl.sloFastAlerts = slo_->fastAlerts();
        fl.sloSlowAlerts = slo_->slowAlerts();
        const Tick first = slo_->firstFastAlert();
        fl.sloFirstFastAlertMs =
            first > 0 ? secondsFromTicks(first) * 1000.0 : 0.0;
    }

    if (!cfg_.base.machine.traceEnabled) {
        fsim_assert(traceLog_.allocations() == 0 &&
                    "fleet tracing allocated with tracing disabled");
        fsim_assert(metrics_.allocations() == 0 &&
                    "metrics sampled with tracing disabled");
    }
    r.timeseries = metrics_.snapshot();
    r.fleetTrace = buildFleetTraceForensics(
        traceLog_, ticksFromUsec(cfg_.forwardDelayUsec));
    return r;
}

ExperimentResult
FleetTestbed::run()
{
    startLoad();
    runUntilChecked(eq_->now() + ticksFromSeconds(cfg_.base.warmupSec));
    markWindows();

    const int wins = std::max(1, cfg_.base.statWindows);
    const Tick begin = eq_->now();
    const Tick measure = ticksFromSeconds(cfg_.base.measureSec);
    std::vector<LockWindow> windows;
    std::uint64_t completedPrev = load_->completed();
    for (int w = 0; w < wins; ++w) {
        LockWindow lw;
        lw.start = eq_->now();
        runUntilChecked(begin + measure * (w + 1) / wins);
        lw.end = eq_->now();
        lw.completed = load_->completed() - completedPrev;
        const double wsec = secondsFromTicks(lw.end - lw.start);
        lw.goodput = wsec > 0.0
                         ? static_cast<double>(lw.completed) / wsec
                         : 0.0;
        // Lock/SYN sub-window deltas stay empty at fleet scope (a
        // restart resets one machine's share mid-window).
        sampleObservability(lw.start, lw.end);
        windows.push_back(std::move(lw));
        completedPrev = load_->completed();
    }

    ExperimentResult r = collect();
    r.lockWindows = std::move(windows);
    return r;
}

ExperimentResult
runFleetExperiment(const FleetConfig &cfg)
{
    FleetTestbed bed(cfg);
    return bed.run();
}

} // namespace fsim
