/**
 * @file
 * FleetTestbed: the N-machine generalization of harness/Testbed.
 *
 * Topology (one shared fabric Wire, per-link latency/bandwidth):
 *
 *     clients (HttpLoad) ── front link ── VIPs (L4Balancer x B)
 *                                           │ full NAT
 *                                rack links per server machine
 *                                           │
 *                    server machines x N (Machine + Proxy/WebServer,
 *                       each behind a TX-gated NetPort)
 *                                           │
 *                            shared BackendPool (haproxy mode)
 *
 * Every server machine is an independent Machine instance with its own
 * kernel, cores, admission controller and address block; the balancers
 * steer client flows across them. The fleet orchestrator consumes the
 * fleet-kind FaultEvents (machine_crash / rolling_restart / lb_crash)
 * from the plan and drives crash, drain->stop->restart->readmit and
 * VIP-failover sequences against the live topology; the remaining
 * wire/backend events are armed on a normal FaultInjector.
 *
 * Crash model: a machine's NetPort TX gate closes (zombie transmissions
 * die at the NIC edge) and its fabric addresses are re-attached to a
 * corpse handler — an RST responder (power stayed on, kernel gone) or a
 * blackhole (cable pulled). Restart builds a fresh Machine generation
 * whose constructor re-attaches the same addresses, overwriting the
 * corpse. Old generations are retained as zombies until teardown so
 * run-total counters stay monotonic.
 *
 * Determinism: same FleetConfig + seed => bit-identical fingerprint,
 * folded from the fabric delivery hash, every machine generation's
 * kernel counters, and every balancer's counter hash.
 */

#ifndef FSIM_FLEET_FLEET_HH
#define FSIM_FLEET_FLEET_HH

#include <memory>
#include <vector>

#include "fleet/balancer.hh"
#include "harness/experiment.hh"
#include "net/net_port.hh"
#include "overload/slo.hh"
#include "stats/metrics.hh"
#include "trace/fleet_trace.hh"
#include "trace/incident_log.hh"

namespace fsim
{

/** Fleet topology + policy knobs on top of a per-machine template. */
struct FleetConfig
{
    /** Per-machine template: app kind, machine/kernel config (seed,
     *  cores, overload...), windows, faults, client shape. Fleet-kind
     *  fault events are consumed by the orchestrator; the rest arm a
     *  normal FaultInjector against the fabric. */
    ExperimentConfig base;

    int serverMachines = 4;
    int balancers = 2;

    /** @name Steering */
    /** @{ */
    L4Balancer::Policy policy = L4Balancer::Policy::kConsistentHash;
    int vnodes = 64;
    double boundedLoadFactor = 2.0;     //!< 0 = plain consistent hash
    std::size_t maxFlowsPerBalancer = 1u << 15;
    double forwardDelayUsec = 2.0;      //!< balancer rewrite cost
    /** @} */

    /** @name Health probing (wire-level SYN probes) */
    /** @{ */
    double probeIntervalMsec = 2.0;
    double probeTimeoutMsec = 1.0;
    int probeFallThreshold = 2;
    int probeRiseThreshold = 1;
    /** kScore replaces the binary fall/rise machine with latency-aware
     *  outlier scoring (catches gray degradation binary probes miss). */
    L4Balancer::HealthMode healthMode = L4Balancer::HealthMode::kBinary;
    HealthScoreConfig healthScore;
    /** @} */

    /** @name Draining / failover */
    /** @{ */
    double drainPollMsec = 0.5;         //!< drain-progress poll period
    double takeoverDelayMsec = 5.0;     //!< VIP failover detection lag
    double flowIdleTimeoutMsec = 200.0;
    double flowGcPeriodMsec = 10.0;
    /** @} */

    /** @name Fabric links (useLinks=false -> flat wireDelay fabric) */
    /** @{ */
    bool useLinks = true;
    double frontLinkLatencyUsec = 100.0;    //!< clients <-> VIPs
    double frontLinkGbps = 40.0;
    double rackLinkLatencyUsec = 20.0;      //!< NAT <-> each machine
    double rackLinkGbps = 10.0;
    /** @} */

    /** >0: drive an open-loop Poisson arrival rate instead of the
     *  closed loop (the diurnal-curve benches reshape it over time via
     *  HttpLoad::setOpenLoopRate). */
    double openLoopRate = 0.0;

    /** @name SLO burn-rate tracking (independent of tracing: evaluates
     *  aggregate load counters, so it works under --notrace too) */
    /** @{ */
    bool sloEnabled = false;
    SloConfig slo;
    /** @} */
};

/** An N-machine, B-balancer simulated fleet with fault orchestration. */
class FleetTestbed
{
  public:
    explicit FleetTestbed(const FleetConfig &cfg);
    ~FleetTestbed();

    EventQueue &eventQueue() { return *eq_; }
    Wire &fabric() { return *fabric_; }
    HttpLoad &load() { return *load_; }
    L4Balancer &balancer(int k) { return *balancers_[k]; }
    int balancerCount() const { return static_cast<int>(
        balancers_.size()); }
    Machine &machine(int s) { return *slots_[s].gen.machine; }
    AppBase &app(int s) { return *slots_[s].gen.app; }
    bool machineUp(int s) const { return slots_[s].up; }
    int machineCount() const { return static_cast<int>(slots_.size()); }
    InvariantRegistry &checks() { return checks_; }

    /** @name Manual fault orchestration (benches/tests drive these;
     *  plan-scheduled fleet events call the same entry points) */
    /** @{ */
    /** Abrupt machine loss. @p admin suppresses the crash counter and
     *  tells balancers (a planned stop, not a discovered failure). */
    void crashMachine(int s, FaultEvent::CrashMode mode,
                      bool admin = false);
    /** Build the next Machine generation for a down slot. */
    void restartMachine(int s);
    /** Drain -> stop -> restart -> readmit, one machine at a time. */
    void beginRollingRestart(Tick drainDeadline, Tick downtime);
    bool rollingRestartActive() const { return rollingActive_; }
    void crashBalancer(int k);
    void restoreBalancer(int k);
    /** Gray degradation: CPU work stretched by @p permille/1000, NIC
     *  egress dropping @p nicLoss of packets and delaying the rest by
     *  @p nicDelay. Survives a restart of the slot (the fault is the
     *  machine's environment, not one generation's state). */
    void degradeMachine(int s, std::uint32_t permille, double nicLoss,
                        Tick nicDelay);
    void clearDegrade(int s);
    bool machineDegraded(int s) const { return slots_[s].degraded; }
    /** @} */

    /** Incident ledger (inject -> detect -> eject -> recover stamps;
     *  balancers write the detection-side stamps). */
    const IncidentLog &incidents() const { return incidents_; }

    /** End-to-end trace collector (client + balancer hops stream in
     *  live; machine spans are stitched at collect()). */
    const FleetTraceLog &traceLog() const { return traceLog_; }

    /** Fleet metrics registry (sampled once per stat sub-window). */
    const MetricsRegistry &metrics() const { return metrics_; }

    /** SLO burn tracker (null unless cfg.sloEnabled). */
    const SloTracker *slo() const { return slo_.get(); }

    /** Per stat sub-window: feed the SLO tracker and sample every
     *  registered metric. Recording only. run() calls it once per
     *  sub-window; external drivers (the scenario fuzzer) that bypass
     *  run() call it on their own cadence. */
    void sampleObservability(Tick wstart, Tick wend);

    /** Start client load (idempotent; run() calls it). */
    void startLoad();
    /** Reset all measurement marks to now. */
    void markWindows();
    /** Advance to @p limit, honoring cfg.base.checkLevel. */
    void runUntilChecked(Tick limit);
    /** Measure since the last markWindows(). */
    ExperimentResult collect();
    /** warmup -> mark -> measure -> collect (the bench entry point). */
    ExperimentResult run();

    std::uint64_t currentFingerprint() const;

    /** @name Orchestration counters */
    /** @{ */
    std::uint64_t crashes() const { return crashes_; }
    std::uint64_t restarts() const { return restarts_; }
    std::uint64_t lbCrashes() const { return lbCrashes_; }
    std::uint64_t vipTakeovers() const { return vipTakeovers_; }
    std::uint64_t degradesApplied() const { return degradesApplied_; }
    std::uint64_t flapTransitions() const { return flapTransitions_; }
    std::uint64_t partitionsArmed() const { return partitionsArmed_; }
    /** @} */

    /** @name Address plan (stable; tests depend on it) */
    /** @{ */
    static IpAddr machineBase(int s)
    {
        return 0x0a000001u + static_cast<IpAddr>(s) * 0x100u;
    }
    static IpAddr vipAddr(int k) { return 0x0aff0001u + k; }
    static IpAddr natAddr(int k) { return 0x0a800001u + k; }
    /** @} */

  private:
    /** One machine generation (kept as a zombie after crash). */
    struct Generation
    {
        std::unique_ptr<NetPort> port;
        std::unique_ptr<Machine> machine;
        std::unique_ptr<AppBase> app;
        std::unique_ptr<AdmissionController> admission;
    };

    struct ServerSlot
    {
        Generation gen;
        int generation = 0;     //!< 0 = original boot
        bool up = true;
        /** @name Active gray-degradation parameters (re-applied to a
         *  fresh generation if the slot restarts mid-fault) */
        /** @{ */
        bool degraded = false;
        std::uint32_t slowPermille = 1000;
        double nicLoss = 0.0;
        Tick nicDelay = 0;
        /** @} */
        /** @name Window marks for the slot's current generation */
        /** @{ */
        PhaseSnapshot phaseMark;
        std::map<std::string, LockClassStats> lockMark;
        KernelStats ksMark;
        std::uint64_t servedMark = 0;
        std::uint64_t accessesMark = 0;
        std::uint64_t missesMark = 0;
        /** @} */
    };

    /** Window deltas banked from generations retired mid-window. */
    struct WindowCarry
    {
        std::uint64_t served = 0;
        std::uint64_t slowPath = 0;
        std::uint64_t steered = 0;
        std::uint64_t rx = 0;
        std::uint64_t activeLocal = 0;
        std::uint64_t activeTotal = 0;
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
    };

    void buildGeneration(int s);
    void armFleetFaults();
    void applyDegrade(int s);
    void setupObservability();
    /** Run-total shed across balancers + every admission generation. */
    std::uint64_t currentShedTotal() const;
    /** Group token ("clients", "lbs", "ms", "lb<k>", "m<s>") to fabric
     *  address ranges (first, last). */
    std::vector<std::pair<IpAddr, IpAddr>>
    resolveGroup(const std::string &tok) const;
    void advanceRolling();
    void pollDrain(int s, Tick deadline);
    void pollReadmit(int s);
    std::uint64_t totalActiveOn(int s) const;
    template <typename Fn> void forEachGeneration(Fn fn) const;

    FleetConfig cfg_;
    std::unique_ptr<EventQueue> eq_;
    std::unique_ptr<Wire> fabric_;
    std::vector<ServerSlot> slots_;
    std::vector<Generation> retired_;
    std::vector<std::unique_ptr<L4Balancer>> balancers_;
    std::vector<bool> lbUp_;
    std::unique_ptr<BackendPool> backends_;
    std::vector<IpAddr> backendAddrs_;
    std::unique_ptr<HttpLoad> load_;
    std::unique_ptr<FaultInjector> faults_;
    InvariantRegistry checks_;
    bool loadStarted_ = false;

    Tick drainPoll_ = 0;
    bool rollingActive_ = false;
    int rollingIndex_ = 0;
    Tick rollingDrain_ = 0;
    Tick rollingDown_ = 0;

    std::uint64_t crashes_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t lbCrashes_ = 0;
    std::uint64_t vipTakeovers_ = 0;
    std::uint64_t corpseRsts_ = 0;
    std::uint64_t blackholed_ = 0;
    std::uint64_t degradesApplied_ = 0;
    std::uint64_t flapTransitions_ = 0;
    std::uint64_t partitionsArmed_ = 0;
    IncidentLog incidents_;
    FleetTraceLog traceLog_;
    MetricsRegistry metrics_;
    std::unique_ptr<SloTracker> slo_;

    /** @name Metric slots + sampling cursors */
    /** @{ */
    struct MetricIds
    {
        std::vector<MetricsRegistry::MetricId> lbFlows;
        std::vector<MetricsRegistry::MetricId> mCps;
        std::vector<MetricsRegistry::MetricId> mEstablished;
        std::vector<MetricsRegistry::MetricId> mTimeWait;
        std::vector<MetricsRegistry::MetricId> mPressure;
        MetricsRegistry::MetricId completed =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId failed =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId shed = MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId upMachines =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId healthyTargets =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId successRatio =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId latency =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId fastBurn =
            MetricsRegistry::kInvalidMetric;
        MetricsRegistry::MetricId slowBurn =
            MetricsRegistry::kInvalidMetric;
    };
    MetricIds mid_;
    std::size_t latCursor_ = 0;     //!< into load_->latencySamples()
    std::uint64_t obsCompletedPrev_ = 0;
    std::uint64_t obsFailedPrev_ = 0;
    std::uint64_t obsShedPrev_ = 0;
    std::vector<std::uint64_t> obsServedPrev_;
    /** @} */

    /** @name Fleet-level measurement marks */
    /** @{ */
    Tick markTick_ = 0;
    std::uint64_t completedMark_ = 0;
    std::uint64_t failedMark_ = 0;
    std::uint64_t eventsRunMark_ = 0;
    std::uint64_t eventsScheduledMark_ = 0;
    WindowCarry carry_;
    /** @} */
};

/** One-shot convenience mirroring runExperiment(). */
ExperimentResult runFleetExperiment(const FleetConfig &cfg);

} // namespace fsim

#endif // FSIM_FLEET_FLEET_HH
