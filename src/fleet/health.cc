#include "fleet/health.hh"

#include <algorithm>
#include <cmath>

#include "check/fingerprint.hh"
#include "sim/logging.hh"

namespace fsim
{

namespace
{

/** Lower median of a sorted vector (deterministic for even sizes). */
double
lowerMedian(std::vector<double> &v)
{
    fsim_assert(!v.empty());
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) / 2];
}

} // anonymous namespace

HealthScorer::HealthScorer(const HealthScoreConfig &cfg, int targets,
                           Tick probe_timeout)
    : cfg_(cfg), probeTimeout_(probe_timeout), targets_(targets)
{
    fsim_assert(targets > 0);
    fsim_assert(probe_timeout > 0);
    fsim_assert(cfg_.rttAlpha > 0.0 && cfg_.rttAlpha <= 1.0);
    fsim_assert(cfg_.successAlpha > 0.0 && cfg_.successAlpha <= 1.0);
    fsim_assert(cfg_.outlierRounds >= 1 && cfg_.clearRounds >= 1);
    fsim_assert(cfg_.clearFraction > 0.0 && cfg_.clearFraction <= 1.0);
    fsim_assert(cfg_.rampRounds >= 1);
}

void
HealthScorer::noteProbeRtt(int m, Tick rtt)
{
    TargetHealth &t = targets_.at(m);
    const double sample = static_cast<double>(rtt);
    t.rttEwma = t.hasRtt
                    ? (1.0 - cfg_.rttAlpha) * t.rttEwma +
                          cfg_.rttAlpha * sample
                    : sample;
    t.hasRtt = true;
    ++t.winProbeOk;
}

void
HealthScorer::noteProbeTimeout(int m)
{
    TargetHealth &t = targets_.at(m);
    const double sample = cfg_.timeoutPenalty *
                          static_cast<double>(probeTimeout_);
    t.rttEwma = t.hasRtt
                    ? (1.0 - cfg_.rttAlpha) * t.rttEwma +
                          cfg_.rttAlpha * sample
                    : sample;
    t.hasRtt = true;
    ++t.winProbeBad;
}

void
HealthScorer::noteRequestSent(int m)
{
    ++targets_.at(m).winDataSent;
}

void
HealthScorer::noteRequestAcked(int m)
{
    ++targets_.at(m).winDataAcked;
}

void
HealthScorer::foldWindow(TargetHealth &t)
{
    // Data handshake replies lag their SYNs across round boundaries (a
    // degraded NIC adds up to a full probe interval of delay), so this
    // round's acks answer for the PREVIOUS round's steered SYNs; naive
    // same-round accounting reads acked > sent right after an ejection
    // (in-flight replies, zero sends) and drives the EWMA above 1 —
    // i.e. a negative score that readmits a still-sick machine. Probe
    // handshakes resolve within their own round (the probe deadline is
    // shorter than the round) and count as same-round mini-requests.
    const double denom = static_cast<double>(
        t.prevDataSent + t.winProbeOk + t.winProbeBad);
    if (denom > 0.0) {
        const double num = std::min(
            denom,
            static_cast<double>(t.winDataAcked + t.winProbeOk));
        t.successEwma = (1.0 - cfg_.successAlpha) * t.successEwma +
                        cfg_.successAlpha * (num / denom);
    }
    t.score = (t.hasRtt ? t.rttEwma / static_cast<double>(probeTimeout_)
                        : 0.0) +
              2.0 * (1.0 - t.successEwma);
}

void
HealthScorer::evaluateRound(const std::vector<bool> &healthy,
                            const std::vector<bool> &candidate,
                            std::vector<Verdict> &out)
{
    const int n = targetCount();
    fsim_assert(static_cast<int>(healthy.size()) == n);
    fsim_assert(static_cast<int>(candidate.size()) == n);
    out.assign(n, Verdict{});

    for (TargetHealth &t : targets_)
        foldWindow(t);

    // Peer-relative band from the healthy population only: a target
    // already ejected must not drag the median toward its own misery.
    std::vector<double> peers;
    for (int m = 0; m < n; ++m)
        if (healthy[m])
            peers.push_back(targets_[m].score);
    double median = 0.0, mad = 0.0;
    if (!peers.empty()) {
        std::vector<double> sorted = peers;
        median = lowerMedian(sorted);
        std::vector<double> dev;
        dev.reserve(peers.size());
        for (double s : peers)
            dev.push_back(std::fabs(s - median));
        mad = lowerMedian(dev);
    }
    const double deviation = std::max(cfg_.madK * mad,
                                      cfg_.minDeviation);
    const double band = median + deviation;
    // Readmission band is tighter (Schmitt trigger): an ejected target
    // carries no data traffic, so its probe-only evidence reads better
    // than the loaded peers' — clearing at the ejection band would
    // flap a steadily gray machine in and out of the steering set.
    const double clearBand = median + cfg_.clearFraction * deviation;

    for (int m = 0; m < n; ++m) {
        TargetHealth &t = targets_[m];
        Verdict &v = out[m];
        if (healthy[m]) {
            if (t.rampRound < cfg_.rampRounds)
                ++t.rampRound;
            v.outlier = t.score > band;
            if (v.outlier) {
                if (t.outlierStreak == 0)
                    t.detectTick = roundTick_;
                ++t.outlierStreak;
            } else {
                t.outlierStreak = 0;
            }
            t.clearStreak = 0;
            v.ejectable = t.outlierStreak >= cfg_.outlierRounds;
        } else if (candidate[m]) {
            // Readmission: a round counts as clear when every probe of
            // the window came back AND the blended score sits inside
            // the healthy band (a gray machine answering probes slowly
            // keeps failing this).
            const bool responsive = t.winProbeOk > 0 &&
                                    t.winProbeBad == 0;
            const bool clear = responsive && t.score <= clearBand;
            t.clearStreak = clear ? t.clearStreak + 1 : 0;
            t.outlierStreak = 0;
            v.readmittable = t.clearStreak >= cfg_.clearRounds;
        } else {
            // Admin-down / draining: no verdicts, streaks idle.
            t.outlierStreak = 0;
            t.clearStreak = 0;
        }
        t.prevDataSent = t.winDataSent;
        t.winDataSent = 0;
        t.winDataAcked = 0;
        t.winProbeOk = 0;
        t.winProbeBad = 0;
    }
}

void
HealthScorer::noteReadmitted(int m)
{
    TargetHealth &t = targets_.at(m);
    t.rampRound = 0;
    t.clearStreak = 0;
    t.outlierStreak = 0;
}

void
HealthScorer::noteEjected(int m)
{
    TargetHealth &t = targets_.at(m);
    t.clearStreak = 0;
    t.outlierStreak = 0;
}

double
HealthScorer::steerShare(int m) const
{
    const TargetHealth &t = targets_.at(m);
    if (t.rampRound >= cfg_.rampRounds)
        return 1.0;
    return static_cast<double>(t.rampRound + 1) /
           static_cast<double>(cfg_.rampRounds);
}

std::uint64_t
HealthScorer::stateHash() const
{
    Fingerprint fp;
    for (const TargetHealth &t : targets_) {
        fp.mix(t.rttEwma);
        fp.mix(t.successEwma);
        fp.mix(t.score);
        fp.mix(static_cast<std::uint64_t>(t.outlierStreak));
        fp.mix(static_cast<std::uint64_t>(t.clearStreak));
        fp.mix(static_cast<std::uint64_t>(
            std::min(t.rampRound, cfg_.rampRounds)));
    }
    return fp.value();
}

} // namespace fsim
