/**
 * @file
 * Latency-aware health scoring for the balancer tier.
 *
 * The binary probe state machine (consecutive silent probes => eject)
 * only sees total failure. A gray machine — slow CPU, lossy NIC,
 * flapping — keeps answering probes inside the timeout while its tail
 * latency destroys the short-lived-connection workload. The scorer
 * replaces the threshold with peer-relative statistics:
 *
 *   score(m) = rttEwma(m) / probeTimeout + 2 * (1 - successEwma(m))
 *
 * where rttEwma blends answered-probe RTTs (an unanswered probe counts
 * as a timeoutPenalty * probeTimeout sample) and successEwma blends
 * each round's request success ratio: this round's data SYN-ACKs
 * against the previous round's steered SYNs (replies lag their SYNs
 * across round boundaries), plus the probe handshakes themselves, so
 * a drained target still produces evidence. A target is an *outlier*
 * when its score exceeds the
 * healthy-peer lower median by more than max(madK * MAD, minDeviation)
 * — peer-relative, so no absolute latency threshold needs tuning and a
 * fleet-wide slowdown (which ejecting cannot fix) ejects nobody.
 *
 * Decisions are hysteresis-guarded streaks: outlierRounds consecutive
 * outlier rounds to report ejectable, clearRounds consecutive
 * responsive + in-band rounds to report readmittable (against a
 * clearFraction-tightened band, so eject/readmit form a Schmitt
 * trigger instead of oscillating on a steady gray fault), and a fresh
 * readmission re-enters through a slow-start ramp (steerShare grows
 * linearly over rampRounds) so a still-sick machine receives a trickle,
 * not a thundering herd. The balancer owns the actual state flips (and
 * the eject-fraction cap); the scorer is pure bookkeeping over probe
 * and forwarding evidence, which keeps it unit-testable.
 *
 * Everything is deterministic: EWMA updates happen in event order,
 * round evaluation in target order, no RNG anywhere.
 */

#ifndef FSIM_FLEET_HEALTH_HH
#define FSIM_FLEET_HEALTH_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

/** Scoring + hysteresis knobs (defaults tuned for the chaos bench). */
struct HealthScoreConfig
{
    double rttAlpha = 0.3;          //!< EWMA weight of a new RTT sample
    double successAlpha = 0.3;      //!< EWMA weight of a round's ratio
    /** Unanswered probe counts as this many probeTimeouts of RTT. */
    double timeoutPenalty = 2.0;
    double madK = 4.0;              //!< outlier threshold multiplier
    /** Absolute deviation floor added under k*MAD: when the healthy
     *  peers agree tightly, MAD approaches 0 and any noise would eject
     *  someone. (In probeTimeout-normalized score units.) */
    double minDeviation = 0.35;
    int outlierRounds = 3;          //!< consecutive rounds to eject
    int clearRounds = 4;            //!< consecutive rounds to readmit
    /** Readmission band as a fraction of the ejection band's deviation
     *  (Schmitt-trigger hysteresis). An ejected target stops carrying
     *  data traffic, so its probe-only evidence looks cleaner than the
     *  loaded peers' — readmitting at the same band it was ejected at
     *  makes a steadily gray machine oscillate eject/readmit forever.
     *  Clearing must beat the stricter band. */
    double clearFraction = 0.5;
    /** Never score-eject past this fraction of the target set: a
     *  partition that grays out half the fleet must not empty it. */
    double maxEjectFraction = 0.5;
    int rampRounds = 8;             //!< slow-start rounds to full share
};

/** Per-target evidence accumulator + round evaluator. */
class HealthScorer
{
  public:
    HealthScorer() = default;
    HealthScorer(const HealthScoreConfig &cfg, int targets,
                 Tick probe_timeout);

    /** @name Evidence (called as probes/forwards resolve) */
    /** @{ */
    void noteProbeRtt(int m, Tick rtt);     //!< answered probe
    void noteProbeTimeout(int m);           //!< silent (or RST) probe
    void noteRequestSent(int m);            //!< data SYN steered to m
    void noteRequestAcked(int m);           //!< data SYN-ACK back from m
    /** @} */

    /** One target's round classification. */
    struct Verdict
    {
        bool outlier = false;       //!< healthy target out of band
        bool ejectable = false;     //!< outlier streak hit the threshold
        bool readmittable = false;  //!< down target's clear streak hit
    };

    /**
     * Close the evidence window and classify every target.
     *
     * @param healthy    targets currently in the steering set (the
     *                   peer population the median/MAD come from).
     * @param candidate  down targets eligible for readmission (not
     *                   admin-stopped).
     * @param out        resized and filled, one Verdict per target.
     */
    void evaluateRound(const std::vector<bool> &healthy,
                       const std::vector<bool> &candidate,
                       std::vector<Verdict> &out);

    /** The balancer readmitted @p m: restart its slow-start ramp. */
    void noteReadmitted(int m);

    /** The balancer ejected @p m (score or binary path): reset streaks
     *  so a later readmission starts clean. */
    void noteEjected(int m);

    /** Steering share in [0,1]; < 1 while the readmission ramp runs. */
    double steerShare(int m) const;

    /** Current (last-evaluated) score; timeouts-normalized units. */
    double score(int m) const { return targets_.at(m).score; }
    int outlierStreak(int m) const { return targets_.at(m).outlierStreak; }
    int clearStreak(int m) const { return targets_.at(m).clearStreak; }
    /** Tick of the first outlier round of the current streak (valid
     *  while outlierStreak > 0; detection timestamp for incidents). */
    Tick detectTick(int m) const { return targets_.at(m).detectTick; }
    void setRoundTick(Tick t) { roundTick_ = t; }

    int targetCount() const { return static_cast<int>(targets_.size()); }

    /** Fold scorer state into a run fingerprint. */
    std::uint64_t stateHash() const;

  private:
    struct TargetHealth
    {
        double rttEwma = 0.0;       //!< ticks
        bool hasRtt = false;
        double successEwma = 1.0;
        /** @name Request window: acks lag their SYNs across round
         *  boundaries, so a round's acks answer for the previous
         *  round's sends (see foldWindow). */
        /** @{ */
        std::uint64_t winDataSent = 0;
        std::uint64_t winDataAcked = 0;
        std::uint64_t prevDataSent = 0;
        /** @} */
        double score = 0.0;
        int outlierStreak = 0;
        int clearStreak = 0;
        Tick detectTick = 0;
        /** Rounds since readmission; >= rampRounds = full share. */
        int rampRound = 1 << 20;
        /** Probe evidence seen this round (for readmission candidacy). */
        int winProbeOk = 0;
        int winProbeBad = 0;
    };

    void foldWindow(TargetHealth &t);

    HealthScoreConfig cfg_;
    Tick probeTimeout_ = 1;
    Tick roundTick_ = 0;
    std::vector<TargetHealth> targets_;
};

} // namespace fsim

#endif // FSIM_FLEET_HEALTH_HH
