#include "harness/bench_json.hh"

#include <cstdio>
#include <utility>

#include "trace/json_writer.hh"

namespace fsim
{

namespace
{

void
writeLockClass(JsonWriter &w, const LockClassStats &s)
{
    w.beginObject();
    w.key("acquisitions").value(s.acquisitions);
    w.key("contentions").value(s.contentions);
    w.key("wait_ticks").value(s.waitTicks);
    w.key("hold_ticks").value(s.holdTicks);
    w.key("max_wait_ticks").value(static_cast<std::uint64_t>(
        s.maxWaitTicks));
    w.endObject();
}

} // namespace

const char *
kernelFlavorName(KernelFlavor f)
{
    switch (f) {
      case KernelFlavor::kBase2632:
        return "base-2.6.32";
      case KernelFlavor::kLinux313:
        return "linux-3.13";
      case KernelFlavor::kFastsocket:
        return "fastsocket";
    }
    return "unknown";
}

BenchJsonReport::BenchJsonReport(std::string bench_name)
    : name_(std::move(bench_name))
{
}

void
BenchJsonReport::addRow(const std::string &label,
                        const ExperimentConfig &cfg,
                        const ExperimentResult &r)
{
    rows_.push_back(Row{label, cfg, r});
}

const std::string &
BenchJsonReport::rowLabel(std::size_t i) const
{
    return rows_.at(i).label;
}

std::uint64_t
BenchJsonReport::rowFingerprint(std::size_t i) const
{
    return rows_.at(i).res.fingerprint;
}

const InvariantReport &
BenchJsonReport::rowInvariants(std::size_t i) const
{
    return rows_.at(i).res.invariants;
}

const ExperimentConfig &
BenchJsonReport::rowConfig(std::size_t i) const
{
    return rows_.at(i).cfg;
}

const ExperimentResult &
BenchJsonReport::rowResult(std::size_t i) const
{
    return rows_.at(i).res;
}

std::string
BenchJsonReport::str() const
{
    JsonWriter w;
    w.beginObject();
    w.key("schema_version").value(kSchemaVersion);
    w.key("bench").value(name_);
    w.key("rows").beginArray();

    for (const Row &row : rows_) {
        const ExperimentConfig &cfg = row.cfg;
        const ExperimentResult &r = row.res;

        w.beginObject();
        w.key("label").value(row.label);

        w.key("config").beginObject();
        w.key("app").value(cfg.app == AppKind::kHaproxy ? "haproxy"
                                                        : "nginx");
        w.key("cores").value(cfg.machine.cores);
        w.key("flavor").value(kernelFlavorName(cfg.machine.kernel.flavor));
        w.key("fast_vfs").value(cfg.machine.kernel.fastVfs);
        w.key("local_listen").value(cfg.machine.kernel.localListen);
        w.key("rfd").value(cfg.machine.kernel.rfd);
        w.key("local_established")
            .value(cfg.machine.kernel.localEstablished);
        w.key("concurrency_per_core").value(cfg.concurrencyPerCore);
        w.key("measure_sec").value(cfg.measureSec);
        w.key("trace_enabled").value(cfg.machine.traceEnabled);
        w.endObject();

        w.key("metrics").beginObject();
        w.key("cps").value(r.cps);
        w.key("rps").value(r.rps);
        w.key("l3_miss_rate").value(r.l3MissRate);
        w.key("local_pkt_proportion").value(r.localPktProportion);
        w.key("served").value(r.served);
        w.key("client_failures").value(r.clientFailures);
        w.key("slow_path_accepts").value(r.slowPathAccepts);
        w.key("steered_packets").value(r.steeredPackets);
        w.key("rx_packets").value(r.rxPackets);
        w.key("avg_util").value(r.avgUtil());
        w.key("max_util").value(r.maxUtil());
        w.key("core_util").beginArray();
        for (double u : r.coreUtil)
            w.value(u);
        w.endArray();
        w.endObject();

        w.key("phases").beginObject();
        w.key("names").beginArray();
        for (int p = 0; p < kNumPhases; ++p)
            w.value(phaseName(static_cast<Phase>(p)));
        w.endArray();
        w.key("per_core").beginArray();
        for (const auto &core : r.phases.fractions) {
            w.beginArray();
            for (double f : core)
                w.value(f);
            w.endArray();
        }
        w.endArray();
        w.key("machine").beginObject();
        for (int p = 0; p < kNumPhases; ++p) {
            auto ph = static_cast<Phase>(p);
            w.key(phaseName(ph)).value(r.phases.total(ph));
        }
        w.endObject();
        w.endObject();

        w.key("folded_stacks").beginArray();
        for (const auto &fs : r.foldedStacks) {
            w.beginObject();
            w.key("stack").value(fs.first);
            w.key("cycles").value(fs.second);
            w.endObject();
        }
        w.endArray();

        w.key("locks").beginObject();
        for (const auto &kv : r.locks) {
            w.key(kv.first);
            writeLockClass(w, kv.second);
        }
        w.endObject();

        w.key("lock_cycle_share").beginObject();
        for (const auto &kv : r.lockCycleShare)
            w.key(kv.first).value(kv.second);
        w.endObject();

        w.key("faults").beginObject();
        w.key("plan").value(serializeFaultPlan(cfg.faults));
        w.key("armed").value(!cfg.faults.empty());
        w.key("syn_cookies").value(cfg.synCookies ||
                                   cfg.machine.kernel.synCookies);
        w.endObject();

        const OverloadResult &ov = r.overload;
        w.key("overload").beginObject();
        w.key("enabled").value(ov.enabled);
        w.key("spec").value(ov.spec);
        w.key("offered").value(ov.offered);
        w.key("admitted").value(ov.admitted);
        w.key("degraded").value(ov.degraded);
        w.key("shed").value(ov.shed);
        w.key("shed_deadline").value(ov.shedDeadline);
        w.key("shed_worker_cap").value(ov.shedWorkerCap);
        w.key("shed_pressure").value(ov.shedPressure);
        w.key("released").value(ov.released);
        w.key("inflight").value(ov.inflight);
        w.key("health_offered").value(ov.healthOffered);
        w.key("health_admitted").value(ov.healthAdmitted);
        w.key("served_degraded").value(ov.servedDegraded);
        w.key("backlog_dropped").value(ov.backlogDropped);
        w.key("syn_gate_dropped").value(ov.synGateDropped);
        w.key("pressure_transitions").value(ov.pressureTransitions);
        w.key("pressure_level").value(ov.pressureLevel);
        w.key("pressure_peak").value(ov.pressurePeak);
        w.key("softirq_depth_peak").value(ov.softirqDepthPeak);
        w.key("accept_depth_peak").value(ov.acceptDepthPeak);
        w.key("epoll_ready_peak").value(ov.epollReadyPeak);
        w.key("latency_p50_ticks").value(static_cast<std::uint64_t>(
            ov.latencyP50));
        w.key("latency_p99_ticks").value(static_cast<std::uint64_t>(
            ov.latencyP99));
        w.key("latency_samples").value(ov.latencySamples);
        w.key("health_probes_started").value(ov.healthProbesStarted);
        w.key("health_probes_completed").value(ov.healthProbesCompleted);
        w.key("health_probes_failed").value(ov.healthProbesFailed);
        w.endObject();

        const ConnResult &cn = r.conn;
        w.key("conn").beginObject();
        w.key("tcb_live").value(cn.tcbLive);
        w.key("tcb_live_peak").value(cn.tcbLivePeak);
        w.key("tcb_created").value(cn.tcbCreated);
        w.key("slab_bytes").value(cn.slabBytes);
        w.key("bytes_per_conn").value(cn.bytesPerConn);
        w.key("established_curr").value(cn.establishedCurr);
        w.key("established_peak").value(cn.establishedPeak);
        w.key("time_wait_curr").value(cn.timeWaitCurr);
        w.key("time_wait_peak").value(cn.timeWaitPeak);
        w.key("time_wait_entered").value(cn.timeWaitEntered);
        w.key("time_wait_reaped").value(cn.timeWaitReaped);
        w.key("time_wait_recycled").value(cn.timeWaitRecycled);
        w.key("time_wait_reused").value(cn.timeWaitReused);
        w.key("time_wait_syn_dropped").value(cn.timeWaitSynDropped);
        w.key("time_wait_acks").value(cn.timeWaitAcks);
        w.key("port_alloc_failures").value(cn.portAllocFailures);
        w.key("ehash_lookups").value(cn.ehashLookups);
        w.key("ehash_probes_walked").value(cn.ehashProbesWalked);
        w.key("ehash_lookup_cycles").value(cn.ehashLookupCycles);
        w.key("ehash_resizes").value(cn.ehashResizes);
        w.key("avg_probe_len").value(cn.avgProbeLen);
        w.key("cycles_per_lookup").value(cn.cyclesPerLookup);
        w.key("ramp").beginArray();
        for (const ConnRampPoint &rp : cn.ramp) {
            w.beginObject();
            w.key("live").value(rp.live);
            w.key("bytes_per_conn").value(rp.bytesPerConn);
            w.key("cycles_per_lookup").value(rp.cyclesPerLookup);
            w.key("avg_probe_len").value(rp.avgProbeLen);
            w.endObject();
        }
        w.endArray();
        w.endObject();

        // v7: DES-core throughput. The deterministic fields are always
        // present; wall-clock numbers only when a wall-aware bench
        // stamped them (same-seed exports must stay byte-identical).
        w.key("sim_core").beginObject();
        w.key("events_run").value(r.simEventsRun);
        w.key("events_scheduled").value(r.simEventsScheduled);
        w.key("sim_ticks").value(static_cast<std::uint64_t>(r.simTicks));
        if (r.simWallSeconds > 0.0) {
            const double sim_sec =
                secondsFromTicks(r.simTicks);
            w.key("wall_seconds").value(r.simWallSeconds);
            w.key("events_per_sec")
                .value(static_cast<double>(r.simEventsRun) /
                       r.simWallSeconds);
            if (sim_sec > 0.0)
                w.key("wall_per_sim_sec")
                    .value(r.simWallSeconds / sim_sec);
        }
        w.endObject();

        // v8: fleet tier. Always present; enabled=false (all counters
        // zero) on single-machine rows so diff tooling sees the block
        // vanish/appear explicitly rather than silently.
        const FleetResult &fl = r.fleet;
        w.key("fleet").beginObject();
        w.key("enabled").value(fl.enabled);
        w.key("server_machines").value(
            static_cast<std::uint64_t>(fl.serverMachines));
        w.key("balancers").value(
            static_cast<std::uint64_t>(fl.balancers));
        w.key("policy").value(fl.policy);
        w.key("flows_created").value(fl.flowsCreated);
        w.key("flows_retired").value(fl.flowsRetired);
        w.key("flows_active").value(fl.flowsActive);
        w.key("flows_active_peak").value(fl.flowsActivePeak);
        w.key("tuple_reuse").value(fl.tupleReuse);
        w.key("idle_retired").value(fl.idleRetired);
        w.key("forwarded_c2s").value(fl.forwardedC2s);
        w.key("forwarded_s2c").value(fl.forwardedS2c);
        w.key("shed_no_backend").value(fl.shedNoBackend);
        w.key("shed_capacity").value(fl.shedCapacity);
        w.key("nat_rsts").value(fl.natRsts);
        w.key("bounded_load_fallbacks").value(fl.boundedLoadFallbacks);
        w.key("pressure_avoids").value(fl.pressureAvoids);
        w.key("probes_sent").value(fl.probesSent);
        w.key("probe_failures").value(fl.probeFailures);
        w.key("ejections").value(fl.ejections);
        w.key("readmissions").value(fl.readmissions);
        w.key("drains_started").value(fl.drainsStarted);
        w.key("drains_completed").value(fl.drainsCompleted);
        w.key("undrained_flows").value(fl.undrainedFlows);
        w.key("restarts").value(fl.restarts);
        w.key("crashes").value(fl.crashes);
        w.key("lb_crashes").value(fl.lbCrashes);
        w.key("vip_takeovers").value(fl.vipTakeovers);
        w.key("tx_suppressed").value(fl.txSuppressed);
        w.key("corpse_rsts").value(fl.corpseRsts);
        w.key("blackholed").value(fl.blackholed);
        w.key("link_packets").value(fl.linkPackets);
        w.key("link_queued_ticks").value(fl.linkQueuedTicks);
        w.key("request_success_ratio").value(fl.requestSuccessRatio);
        // v9: gray-failure detection and incident MTTR summary.
        w.key("health_mode").value(fl.healthMode);
        w.key("score_ejections").value(fl.scoreEjections);
        w.key("ramp_skips").value(fl.rampSkips);
        w.key("ejections_capped").value(fl.ejectionsCapped);
        w.key("degrades_applied").value(fl.degradesApplied);
        w.key("flap_transitions").value(fl.flapTransitions);
        w.key("partitions_armed").value(fl.partitionsArmed);
        w.key("degrade_dropped").value(fl.degradeDropped);
        w.key("degrade_delayed").value(fl.degradeDelayed);
        w.key("partition_dropped").value(fl.partitionDropped);
        w.key("incidents_total").value(fl.incidentsTotal);
        w.key("incidents_detected").value(fl.incidentsDetected);
        w.key("incidents_recovered").value(fl.incidentsRecovered);
        w.key("mttd_ms_mean").value(fl.mttdMsMean);
        w.key("mttr_ms_mean").value(fl.mttrMsMean);
        // v10: distributed-trace stitching gates + SLO burn alerts.
        w.key("traces_started").value(fl.tracesStarted);
        w.key("traces_completed").value(fl.tracesCompleted);
        w.key("traces_stitched").value(fl.tracesStitched);
        w.key("trace_orphans").value(fl.traceOrphans);
        w.key("trace_duplicates").value(fl.traceDuplicates);
        w.key("span_reconcile_violations").value(
            fl.spanReconcileViolations);
        w.key("slo_fast_alerts").value(fl.sloFastAlerts);
        w.key("slo_slow_alerts").value(fl.sloSlowAlerts);
        w.key("slo_first_fast_alert_ms").value(fl.sloFirstFastAlertMs);
        w.endObject();

        // v10: sampled metrics time series (one point per stat
        // sub-window; empty series list when sampling never ran).
        const MetricsSnapshot &ts = r.timeseries;
        w.key("timeseries").beginObject();
        w.key("enabled").value(ts.enabled);
        w.key("sample_period").value(
            static_cast<std::uint64_t>(ts.samplePeriod));
        w.key("series").beginArray();
        for (const MetricSeries &s : ts.series) {
            w.beginObject();
            w.key("name").value(s.name);
            w.key("kind").value(metricKindName(s.kind));
            w.key("points").beginArray();
            for (const auto &pt : s.points) {
                w.beginArray();
                w.value(static_cast<std::uint64_t>(pt.first));
                w.value(pt.second);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();

        // v10: end-to-end critical-path forensics over stitched fleet
        // traces.
        const FleetTraceForensics &ft = r.fleetTrace;
        w.key("fleet_trace").beginObject();
        w.key("enabled").value(ft.enabled);
        w.key("traces_completed").value(ft.tracesCompleted);
        w.key("orphans").value(ft.orphans);
        w.key("duplicates").value(ft.duplicates);
        w.key("stitched").value(ft.stitched);
        w.key("e2e_p50").value(static_cast<std::uint64_t>(ft.e2eP50));
        w.key("e2e_p99").value(static_cast<std::uint64_t>(ft.e2eP99));
        w.key("e2e_p999").value(static_cast<std::uint64_t>(ft.e2eP999));
        w.key("dominant_p50").value(ft.dominantP50);
        w.key("dominant_p99").value(ft.dominantP99);
        w.key("dominant_p999").value(ft.dominantP999);
        w.key("hops").beginArray();
        for (const FleetHopStat &h : ft.hops) {
            w.beginObject();
            w.key("hop").value(h.hop);
            w.key("p50").value(static_cast<std::uint64_t>(h.p50));
            w.key("p99").value(static_cast<std::uint64_t>(h.p99));
            w.key("p999").value(static_cast<std::uint64_t>(h.p999));
            w.key("max").value(static_cast<std::uint64_t>(h.max));
            w.key("share").value(h.share);
            w.endObject();
        }
        w.endArray();
        w.endObject();

        w.key("lock_windows").beginArray();
        for (const LockWindow &lw : r.lockWindows) {
            w.beginObject();
            w.key("start").value(static_cast<std::uint64_t>(lw.start));
            w.key("end").value(static_cast<std::uint64_t>(lw.end));
            w.key("completed").value(lw.completed);
            w.key("goodput").value(lw.goodput);
            w.key("syn_retransmits").value(lw.synRetransmits);
            w.key("syn_cookies_sent").value(lw.synCookiesSent);
            w.key("syn_cookies_validated").value(lw.synCookiesValidated);
            w.key("accept_queue_rsts").value(lw.acceptQueueRsts);
            w.key("locks").beginObject();
            for (const auto &kv : lw.locks) {
                w.key(kv.first);
                writeLockClass(w, kv.second);
            }
            w.endObject();
            w.endObject();
        }
        w.endArray();

        w.key("queue_timelines").beginObject();
        for (const auto &kv : r.queueTimelines) {
            w.key(kv.first).beginArray();
            for (const QueueSample &s : kv.second) {
                w.beginArray();
                w.value(static_cast<std::uint64_t>(s.tick));
                w.value(static_cast<std::uint64_t>(s.depth));
                w.endArray();
            }
            w.endArray();
        }
        w.endObject();

        const SpanForensics &sf = r.spanForensics;
        w.key("latency_stages").beginObject();
        w.key("enabled").value(sf.enabled);
        w.key("completed").value(sf.completed);
        w.key("live").value(sf.live);
        w.key("shed").value(sf.shed);
        w.key("spans_recorded").value(sf.spansRecorded);
        w.key("spans_dropped").value(sf.spansDropped);
        w.key("traces_dropped").value(sf.tracesDropped);
        w.key("dominant_tail_stage").value(sf.dominantTailStage);
        w.key("stages").beginArray();
        for (const StagePercentiles &sp : sf.stages) {
            w.beginObject();
            w.key("stage").value(connStageName(sp.stage));
            w.key("count").value(sp.count);
            w.key("p50").value(static_cast<std::uint64_t>(sp.p50));
            w.key("p90").value(static_cast<std::uint64_t>(sp.p90));
            w.key("p99").value(static_cast<std::uint64_t>(sp.p99));
            w.key("p999").value(static_cast<std::uint64_t>(sp.p999));
            w.key("max").value(static_cast<std::uint64_t>(sp.max));
            w.key("total_ticks").value(sp.totalTicks);
            w.endObject();
        }
        w.endArray();
        w.key("exemplars").beginArray();
        for (const ExemplarBreakdown &ex : sf.exemplars) {
            w.beginObject();
            w.key("percentile").value(ex.percentile);
            w.key("conn_id").value(ex.connId);
            w.key("latency").value(static_cast<std::uint64_t>(
                ex.latency));
            w.key("unattributed").value(static_cast<std::uint64_t>(
                ex.unattributed));
            w.key("stages").beginObject();
            for (int s = 0; s < kNumConnStages; ++s) {
                if (ex.stageTicks[static_cast<std::size_t>(s)] == 0 &&
                    ex.stageCounts[static_cast<std::size_t>(s)] == 0)
                    continue;
                w.key(connStageName(static_cast<ConnStage>(s)))
                    .value(static_cast<std::uint64_t>(
                        ex.stageTicks[static_cast<std::size_t>(s)]));
            }
            w.endObject();
            w.key("cores").beginArray();
            for (int c : ex.cores)
                w.value(c);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();

        w.key("trace").beginObject();
        w.key("window_span").value(static_cast<std::uint64_t>(
            r.windowSpan));
        w.key("events_recorded").value(r.traceEventsRecorded);
        w.key("events_overwritten").value(r.traceEventsOverwritten);
        w.key("overwritten_per_core").beginArray();
        for (std::uint64_t n : r.traceOverwrittenPerCore)
            w.value(n);
        w.endArray();
        w.key("untracked_cycles").value(r.phaseCycles.untracked);
        w.endObject();

        char fphex[24];
        std::snprintf(fphex, sizeof(fphex), "0x%016llx",
                      static_cast<unsigned long long>(r.fingerprint));
        w.key("fingerprint").value(fphex);

        w.key("invariants").beginObject();
        w.key("checks_run").value(r.invariants.checksRun);
        w.key("violations").value(r.invariants.violationCount);
        w.key("failed").beginArray();
        for (const InvariantViolation &v : r.invariants.violations)
            w.value(v.name);
        w.endArray();
        w.endObject();

        w.endObject();
    }

    w.endArray();
    w.endObject();
    return w.str();
}

bool
BenchJsonReport::writeFile(const std::string &path) const
{
    std::string doc = str();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = n == doc.size() && std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
}

} // namespace fsim
