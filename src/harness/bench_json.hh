/**
 * @file
 * Versioned JSON export of bench results.
 *
 * Every bench binary accumulates one BenchJsonReport row per experiment
 * it runs and, when invoked with --json=<path>, writes the whole report
 * to disk. The schema is versioned so downstream tooling (plot scripts,
 * the CI validator) can reject documents it does not understand.
 */

#ifndef FSIM_HARNESS_BENCH_JSON_HH
#define FSIM_HARNESS_BENCH_JSON_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace fsim
{

/** Accumulates experiment rows and renders the versioned document. */
class BenchJsonReport
{
  public:
    /** Bump when the document layout changes incompatibly.
     *  v2: per-row "fingerprint" (hex string) and "invariants" object.
     *  v3: per-row "faults" block (armed fault plan) and per-window
     *  "completed"/"goodput" + SYN-counter deltas in "lock_windows".
     *  v4: per-row "overload" block (admission counters, pressure
     *  signals, latency percentiles).
     *  v5: per-row "latency_stages" block (span-forensics stage
     *  percentiles + tail exemplars) and "overwritten_per_core" in the
     *  "trace" block.
     *  v6: per-row "conn" block (TCB arena bytes-per-connection,
     *  TIME_WAIT lifecycle counters, port-allocation failures, ehash
     *  lookup cost, optional connection-ramp checkpoints).
     *  v7: per-row "sim_core" block (DES-core throughput: events run /
     *  scheduled and window ticks always; wall_seconds, events_per_sec
     *  and wall_per_sim_sec only on rows stamped by a wall-clock-aware
     *  bench, so same-seed exports stay byte-identical elsewhere).
     *  v8: per-row "fleet" block (N-machine topology: balancer flow
     *  table, steering/shed counters, health probing, drain/restart
     *  orchestration, fabric-edge accounting, request success ratio;
     *  enabled=false with zero counters on single-machine rows).
     *  v9: gray-failure fields in "fleet" (health_mode, score-based
     *  ejection/ramp counters, degrade/flap/partition accounting, and
     *  the incident ledger summary: counts + mean time-to-detect and
     *  time-to-recover in milliseconds).
     *  v10: distributed-tracing gates in "fleet" (traces_* stitching
     *  counters, span_reconcile_violations, slo_* burn-alert fields),
     *  per-row "timeseries" block (sampled metric series: name, kind,
     *  [tick, value] points) and "fleet_trace" block (end-to-end hop
     *  decomposition percentiles + dominant critical-path hops). */
    static constexpr int kSchemaVersion = 10;

    explicit BenchJsonReport(std::string bench_name);

    const std::string &benchName() const { return name_; }

    /** Record one experiment under display label @p label. */
    void addRow(const std::string &label, const ExperimentConfig &cfg,
                const ExperimentResult &r);

    std::size_t rowCount() const { return rows_.size(); }

    /** @name Per-row access (the --fingerprint bench flag) */
    /** @{ */
    const std::string &rowLabel(std::size_t i) const;
    std::uint64_t rowFingerprint(std::size_t i) const;
    const InvariantReport &rowInvariants(std::size_t i) const;
    /** Full row access (forensics rendering + Perfetto export). */
    const ExperimentConfig &rowConfig(std::size_t i) const;
    const ExperimentResult &rowResult(std::size_t i) const;
    /** @} */

    /** Render the full JSON document. */
    std::string str() const;

    /** Render and write to @p path. @return false on I/O error. */
    bool writeFile(const std::string &path) const;

  private:
    struct Row
    {
        std::string label;
        ExperimentConfig cfg;
        ExperimentResult res;
    };

    std::string name_;
    std::vector<Row> rows_;
};

/** Stable flavor name ("base-2.6.32", "linux-3.13", "fastsocket"). */
const char *kernelFlavorName(KernelFlavor f);

} // namespace fsim

#endif // FSIM_HARNESS_BENCH_JSON_HH
