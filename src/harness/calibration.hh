/**
 * @file
 * Calibration notes and presets for the cycle-cost model.
 *
 * The single calibrated anchor of the whole simulator is short-lived
 * single-core throughput: with the defaults in cpu/cycle_costs.hh a
 * 1-core nginx run lands at ~26-30 K connections/s at 2.5 GHz, matching
 * the paper's ~23.7 K (475 K / 20.0x) on a 2.7 GHz Xeon E5-2697v2.
 *
 * Everything else must EMERGE. The load-bearing constants and what they
 * control:
 *
 *  - dcacheLockHold / inodeLockHold / lockHandoffStorm: where the base
 *    2.6.32 curve saturates and how hard it collapses past one NUMA
 *    socket (Figure 4(a)'s peak-then-drop).
 *  - numaRemotePenalty / numaNodeSize: the knee at 12 cores (the
 *    testbed is 2 x 12-core sockets).
 *  - cacheMissPenalty / tcbLines / schedWakeRemote: the per-connection
 *    price of running SoftIRQ and syscalls on different cores — the
 *    Figure 5 throughput/L3 gaps and the 3.13-vs-Fastsocket spread.
 *  - listenLookupPerEntry (+ per-clone remote line reads in
 *    KernelStack::lookupListener): the SO_REUSEPORT O(n) walk
 *    (section 2.1's 0.26% -> 24.2% measurement).
 *  - backgroundMissRate / cyclesPerLocalAccess: anchor the *absolute*
 *    L3 miss rate in Figure 5(a)'s 5-13% band without affecting any
 *    relative result.
 *  - portBindHold: the stock kernel's ephemeral-port serialization that
 *    flattens the baseline HAProxy curve (Figure 4(b)).
 *
 * Re-calibration procedure (if you change protocol costs):
 *   1. run `examples/quickstart 1` and scale appServiceWeb until the
 *      single-core number is back near ~25-30 K cps;
 *   2. run `bench_fig4a_nginx --quick` and check the base curve still
 *      peaks between 12 and 16 cores;
 *   3. run `bench_fig5_locality --quick` and check the L3 column stays
 *      in the 5-13% band;
 *   4. run the test suite — the scaling/locality property tests encode
 *      the shape expectations and will catch regressions.
 */

#ifndef FSIM_HARNESS_CALIBRATION_HH
#define FSIM_HARNESS_CALIBRATION_HH

#include "cpu/cycle_costs.hh"

namespace fsim
{

/** The default, paper-shape-calibrated cost table. */
inline CycleCosts
calibratedCosts()
{
    return CycleCosts{};
}

/**
 * A cost table for a hypothetical single-socket (UMA) machine: same
 * per-operation costs, no cross-socket penalty. Useful for ablating how
 * much of the baseline collapse is NUMA (answer: the post-12-core bend).
 */
inline CycleCosts
umaCosts()
{
    CycleCosts c;
    c.numaNodeSize = 0;
    c.numaRemotePenalty = c.cacheMissPenalty;
    return c;
}

} // namespace fsim

#endif // FSIM_HARNESS_CALIBRATION_HH
