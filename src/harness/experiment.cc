#include "harness/experiment.hh"

#include <algorithm>
#include <cstdio>

#include "check/fingerprint.hh"
#include "sim/logging.hh"

namespace fsim
{

double
ExperimentResult::maxUtil() const
{
    double m = 0.0;
    for (double u : coreUtil)
        m = std::max(m, u);
    return m;
}

double
ExperimentResult::minUtil() const
{
    if (coreUtil.empty())
        return 0.0;
    double m = coreUtil.front();
    for (double u : coreUtil)
        m = std::min(m, u);
    return m;
}

double
ExperimentResult::avgUtil() const
{
    if (coreUtil.empty())
        return 0.0;
    double s = 0.0;
    for (double u : coreUtil)
        s += u;
    return s / static_cast<double>(coreUtil.size());
}

std::map<std::string, LockClassStats>
lockDelta(const std::map<std::string, LockClassStats> &before,
          const std::map<std::string, LockClassStats> &after)
{
    std::map<std::string, LockClassStats> out;
    for (const auto &kv : after) {
        LockClassStats d = kv.second;
        auto it = before.find(kv.first);
        if (it != before.end()) {
            d.acquisitions -= it->second.acquisitions;
            d.contentions -= it->second.contentions;
            d.waitTicks -= it->second.waitTicks;
            d.holdTicks -= it->second.holdTicks;
        }
        out[kv.first] = d;
    }
    return out;
}

Testbed::Testbed(const ExperimentConfig &cfg)
    : cfg_(cfg)
{
    // Hardening shorthands fold into the kernel config before the
    // machine exists; defaults leave it untouched.
    if (cfg_.synCookies)
        cfg_.machine.kernel.synCookies = true;
    if (cfg_.synBacklog > 0)
        cfg_.machine.kernel.synBacklog = cfg_.synBacklog;

    eq_ = std::make_unique<EventQueue>();
    wire_ = std::make_unique<Wire>(*eq_, cfg_.wireDelay);
    if (cfg_.lossRate > 0.0)
        wire_->setLossRate(cfg_.lossRate, cfg_.machine.seed ^ 0x10ad);
    machine_ = std::make_unique<Machine>(*eq_, *wire_, cfg_.machine);

    if (cfg_.app == AppKind::kHaproxy) {
        IpAddr bfirst = 0x0a010001;   // 10.1.0.1
        IpAddr blast = bfirst + static_cast<IpAddr>(cfg_.backendCount - 1);
        backends_ = std::make_unique<BackendPool>(
            *eq_, *wire_, bfirst, blast, cfg_.responseBytes,
            ticksFromUsec(100));
        backends_->setKeepAlive(cfg_.backendKeepAlive);
        std::vector<IpAddr> baddrs;
        for (IpAddr a = bfirst; a <= blast; ++a)
            baddrs.push_back(a);
        auto proxy = std::make_unique<Proxy>(*machine_, baddrs,
                                             cfg_.backendPort,
                                             cfg_.responseBytes);
        if (cfg_.backendTimeout > 0) {
            Proxy::Tuning pt;
            pt.backendTimeout = cfg_.backendTimeout;
            proxy->setTuning(pt);
        }
        app_ = std::move(proxy);
    } else {
        app_ = std::make_unique<WebServer>(*machine_, cfg_.responseBytes,
                                           cfg_.requestsPerConn > 1 ||
                                               cfg_.longLivedPermille > 0);
    }
    app_->setAcceptMutex(cfg_.acceptMutex);
    app_->start();

    if (cfg_.machine.overload.enabled) {
        // The controller reads the machine-owned PressureState; the app
        // consults it once per accepted connection.
        admission_ = std::make_unique<AdmissionController>(
            machine_->config().overload, &machine_->pressure(),
            machine_->numCores());
        app_->setAdmission(admission_.get(),
                           &machine_->config().overload);
    }

    HttpLoad::Config lc;
    lc.serverAddrs = machine_->addrs();
    lc.serverPort = machine_->servicePort();
    lc.concurrency = cfg_.concurrencyPerCore * machine_->numCores();
    lc.requestBytes = cfg_.requestBytes;
    lc.requestsPerConn = cfg_.requestsPerConn;
    lc.timeout = cfg_.clientTimeout;
    lc.seed = cfg_.machine.seed ^ 0xabcdef;
    lc.maxConns = cfg_.maxConns;
    lc.rtoBase = cfg_.clientRtoBase;
    lc.rtoMax = cfg_.clientRtoMax;
    lc.maxRetx = cfg_.clientMaxRetx;
    lc.healthEvery = cfg_.clientHealthEvery;
    if (cfg_.machine.overload.healthRequestBytes > 0)
        lc.healthRequestBytes = cfg_.machine.overload.healthRequestBytes;
    lc.longLivedPermille = cfg_.longLivedPermille;
    lc.longLivedRequests = cfg_.longLivedRequests;
    lc.longLivedThink = cfg_.longLivedThink;
    lc.clientPortSpan = cfg_.clientPortSpan;
    if (cfg_.clientIps > 0)
        lc.clientIps = cfg_.clientIps;
    load_ = std::make_unique<HttpLoad>(*eq_, *wire_, lc);

    if (!cfg_.faults.empty()) {
        faults_ = std::make_unique<FaultInjector>(*eq_, *wire_,
                                                  machine_->nic(),
                                                  backends_.get(),
                                                  cfg_.faults);
        faults_->arm(machine_->addrs(), machine_->servicePort());
    }

    if (cfg_.listenBacklog > 0) {
        for (const Socket *s : machine_->kernel().allSockets())
            if (s->kind == SockKind::kListen)
                const_cast<Socket *>(s)->backlog = cfg_.listenBacklog;
    }

    if (cfg_.checkLevel != CheckLevel::kOff) {
        registerStandardInvariants(checks_, *machine_, *load_, *wire_);
        if (admission_)
            registerOverloadInvariants(checks_, *admission_, *machine_,
                                       *app_);
    }
}

Testbed::~Testbed() = default;

void
Testbed::runUntilChecked(Tick limit)
{
    if (cfg_.checkLevel != CheckLevel::kPeriodic) {
        eq_->runUntil(limit);
        return;
    }
    Tick step = ticksFromSeconds(cfg_.checkIntervalSec);
    if (step == 0)
        step = 1;
    while (eq_->now() < limit) {
        eq_->runUntil(std::min(limit, eq_->now() + step));
        checks_.runAll(eq_->now());
    }
}

std::uint64_t
Testbed::currentFingerprint() const
{
    // The wire's delivery-sequence hash already pins the entire network
    // behavior of the run; fold the simulator's independent counters on
    // top so a bookkeeping divergence (client, kernel, clock) changes
    // the fingerprint even if it never reached the wire. Everything
    // folded here is simulated state — trace configuration must not
    // move any of it.
    Fingerprint fp;
    fp.mix(wire_->seqHash());
    fp.mix(eq_->now());
    fp.mix(load_->started());
    fp.mix(load_->completed());
    fp.mix(load_->failed());
    fp.mix(load_->responses());
    fp.mix(load_->timeouts());
    fp.mix(load_->bytesReceived());
    fp.mix(app_->served());
    const KernelStats &ks = machine_->kernel().stats();
    fp.mix(ks.rxPackets);
    fp.mix(ks.txPackets);
    fp.mix(ks.steeredPackets);
    fp.mix(ks.rstSent);
    fp.mix(ks.acceptedConns);
    fp.mix(ks.activeConns);
    fp.mix(ks.slowPathAccepts);
    fp.mix(ks.socketsCreated);
    fp.mix(ks.socketsDestroyed);
    fp.mix(ks.acceptOverflows);
    fp.mix(ks.timeWaitReaped);
    fp.mix(ks.synRetransmits);
    fp.mix(ks.synDropped);
    fp.mix(ks.synCookiesSent);
    fp.mix(ks.synCookiesValidated);
    fp.mix(ks.synRcvdReaped);
    fp.mix(ks.acceptQueueRsts);
    // Connection-lifetime subsystem counters: TW lifecycle decisions,
    // port exhaustion, ehash probing work, and the arena census are all
    // deterministic simulated behavior.
    fp.mix(ks.establishedPeak);
    fp.mix(ks.timeWaitEntered);
    fp.mix(ks.timeWaitRecycled);
    fp.mix(ks.timeWaitReused);
    fp.mix(ks.timeWaitSynDropped);
    fp.mix(ks.timeWaitAcks);
    fp.mix(ks.portAllocFailures);
    fp.mix(machine_->kernel().tcbArena().totalCreated());
    fp.mix(machine_->kernel().tcbArena().peakLive());
    fp.mix(machine_->kernel().timeWaitTable().peakSize());
    fp.mix(machine_->kernel().ehashLookups());
    fp.mix(machine_->kernel().ehashProbesWalked());
    fp.mix(machine_->kernel().ehashLookupCycles());
    fp.mix(machine_->kernel().ehashResizes());
    fp.mix(wire_->duplicated());
    fp.mix(load_->synRetransmits());
    fp.mix(load_->requestRetransmits());
    fp.mix(load_->retxGiveups());
    fp.mix(machine_->cpu().totalBusyTicks());
    fp.mix(machine_->cache().totalAccesses());
    fp.mix(machine_->cache().totalMisses());
    // Overload-control state is simulated behavior too: a divergence in
    // pressure transitions or admission decisions must flip the
    // fingerprint even when the goodput happens to match.
    fp.mix(ks.backlogDropped);
    fp.mix(ks.synGateDropped);
    fp.mix(machine_->pressure().transitions());
    fp.mix(static_cast<std::uint64_t>(machine_->pressure().level()));
    fp.mix(app_->servedDegraded());
    fp.mix(app_->shedConns());
    fp.mix(load_->healthStarted());
    fp.mix(load_->healthCompleted());
    fp.mix(load_->healthFailed());
    if (admission_) {
        fp.mix(admission_->offered());
        fp.mix(admission_->admitted());
        fp.mix(admission_->degraded());
        fp.mix(admission_->shedDeadline());
        fp.mix(admission_->shedWorkerCap());
        fp.mix(admission_->shedPressure());
        fp.mix(admission_->released());
        fp.mix(admission_->healthOffered());
        fp.mix(admission_->healthAdmitted());
        fp.mix(admission_->releaseUnderflows());
    }
    return fp.value();
}

void
Testbed::startLoad()
{
    if (loadStarted_)
        return;
    loadStarted_ = true;
    load_->start();
}

void
Testbed::markWindows()
{
    machine_->markWindow();
    load_->markWindow();
    lockMark_ = machine_->locks().snapshot();
    phaseMark_ = machine_->tracer().phaseSnapshot();
    accessesMark_ = machine_->cache().totalAccesses();
    missesMark_ = machine_->cache().totalMisses();
    servedMark_ = app_->served();
    const KernelStats &ks = machine_->kernel().stats();
    slowMark_ = ks.slowPathAccepts;
    steerMark_ = ks.steeredPackets;
    rxMark_ = ks.rxPackets;
    activeLocalMark_ = ks.activePktLocal;
    activeTotalMark_ = ks.activePktTotal;
    failedMark_ = load_->failed();
    spanCompletedMark_ = machine_->tracer().connSpans().completedCount();
    eventsRunMark_ = eq_->executed();
    eventsScheduledMark_ = eq_->scheduled();
    markTick_ = eq_->now();
}

ExperimentResult
Testbed::collect()
{
    // Every collection point doubles as an invariant pass (the kFinal
    // default): manual drivers get checked exactly where they measure.
    if (cfg_.checkLevel != CheckLevel::kOff)
        checks_.runAll(eq_->now());

    ExperimentResult r;
    r.cps = load_->throughputSinceMark();
    r.rps = load_->requestThroughputSinceMark();
    r.coreUtil = machine_->utilizationSinceMark();
    r.locks = lockDelta(lockMark_, machine_->locks().snapshot());

    std::uint64_t acc = machine_->cache().totalAccesses() - accessesMark_;
    std::uint64_t mis = machine_->cache().totalMisses() - missesMark_;
    r.l3MissRate = acc ? static_cast<double>(mis) /
                         static_cast<double>(acc)
                       : 0.0;

    const KernelStats &ks = machine_->kernel().stats();
    std::uint64_t at = ks.activePktTotal - activeTotalMark_;
    std::uint64_t al = ks.activePktLocal - activeLocalMark_;
    r.localPktProportion = at ? static_cast<double>(al) /
                                static_cast<double>(at)
                              : 0.0;

    r.simEventsRun = eq_->executed() - eventsRunMark_;
    r.simEventsScheduled = eq_->scheduled() - eventsScheduledMark_;
    r.simTicks = eq_->now() - markTick_;

    r.served = app_->served() - servedMark_;
    r.clientFailures = load_->failed() - failedMark_;
    r.slowPathAccepts = ks.slowPathAccepts - slowMark_;
    r.steeredPackets = ks.steeredPackets - steerMark_;
    r.rxPackets = ks.rxPackets - rxMark_;

    // Lock cycle shares: spin-wait cycles per class over the window's
    // total core-cycles (the "spin lock consumes 9%/11% of CPU cycles"
    // framing of section 1).
    Tick span = eq_->now() - markTick_;
    double total_cycles = static_cast<double>(span) *
                          machine_->numCores();
    if (total_cycles > 0) {
        for (const auto &kv : r.locks) {
            r.lockCycleShare[kv.first] =
                static_cast<double>(kv.second.waitTicks) / total_cycles;
        }
    }

    // Trace-derived breakdowns: where did every window cycle go?
    const Tracer &tr = machine_->tracer();
    r.windowSpan = span;
    r.phaseCycles = phaseDelta(phaseMark_, tr.phaseSnapshot());
    r.phases = phaseBreakdown(r.phaseCycles, span);
    r.foldedStacks = foldedStacks(r.phaseCycles);
    for (int q = 0; q <= static_cast<int>(TraceQueueId::kProcessBacklog);
         ++q) {
        auto qid = static_cast<TraceQueueId>(q);
        std::vector<QueueSample> tl = queueTimeline(tr, qid,
                                                    /*max_samples=*/512);
        if (!tl.empty())
            r.queueTimelines[traceQueueName(qid)] = std::move(tl);
    }
    r.traceEventsRecorded = tr.eventsRecorded();
    r.traceEventsOverwritten = tr.eventsOverwritten();
    for (int c = 0; c < machine_->numCores(); ++c)
        r.traceOverwrittenPerCore.push_back(tr.eventsOverwritten(c));
    if (r.traceEventsOverwritten > 0) {
        std::fprintf(stderr,
                     "warning: trace ring overflow: %llu events "
                     "overwritten (oldest window events lost; raise "
                     "machine.traceRingCapacity)\n",
                     static_cast<unsigned long long>(
                         r.traceEventsOverwritten));
    }

    // Per-connection span forensics over the window, plus the raw
    // traces when the caller wants to export them (Perfetto).
    const ConnSpanLog &sl = tr.connSpans();
    r.spanForensics = buildSpanForensics(sl, spanCompletedMark_);
    if (cfg_.keepSpanTraces && sl.enabled()) {
        const auto &all = sl.completed();
        std::size_t from = std::min(spanCompletedMark_, all.size());
        r.spanTraces =
            std::make_shared<const std::vector<ConnSpanTrace>>(
                all.begin() + static_cast<std::ptrdiff_t>(from),
                all.end());
    }
    if (!cfg_.machine.traceEnabled) {
        // --notrace contract: a disabled span log must never have
        // touched the allocator (the hooks are all gated on enabled()).
        fsim_assert(sl.allocations() == 0 &&
                    "span tracing allocated with tracing disabled");
    }

    r.fingerprint = currentFingerprint();
    r.invariants = checks_.report();

    // Overload-control block: admission run totals, pressure peaks, and
    // the window's client-observed latency tail.
    OverloadResult &ov = r.overload;
    ov.enabled = cfg_.machine.overload.enabled;
    ov.spec = serializeOverloadSpec(cfg_.machine.overload);
    if (admission_) {
        ov.offered = admission_->offered();
        ov.admitted = admission_->admitted();
        ov.degraded = admission_->degraded();
        ov.shed = admission_->shed();
        ov.shedDeadline = admission_->shedDeadline();
        ov.shedWorkerCap = admission_->shedWorkerCap();
        ov.shedPressure = admission_->shedPressure();
        ov.released = admission_->released();
        ov.inflight = admission_->inflightTotal();
        ov.healthOffered = admission_->healthOffered();
        ov.healthAdmitted = admission_->healthAdmitted();
    }
    ov.servedDegraded = app_->servedDegraded();
    const PressureState &pr = machine_->pressure();
    ov.backlogDropped = ks.backlogDropped;
    ov.synGateDropped = ks.synGateDropped;
    ov.pressureTransitions = pr.transitions();
    ov.pressureLevel = static_cast<int>(pr.level());
    ov.pressurePeak = static_cast<int>(pr.peakLevel());
    ov.softirqDepthPeak = pr.softirqDepthPeak();
    ov.acceptDepthPeak = pr.acceptDepthPeak();
    for (int p = 0; p < machine_->numCores(); ++p) {
        std::size_t rp = machine_->kernel().process(p).epoll->readyPeak();
        ov.epollReadyPeak = std::max<std::uint64_t>(ov.epollReadyPeak, rp);
    }
    ov.latencyP50 = load_->latencyPercentileSinceMark(0.50);
    ov.latencyP99 = load_->latencyPercentileSinceMark(0.99);
    ov.latencySamples = load_->latencySamplesSinceMark();
    ov.healthProbesStarted = load_->healthStarted();
    ov.healthProbesCompleted = load_->healthCompleted();
    ov.healthProbesFailed = load_->healthFailed();

    // Connection-lifetime census: arena footprint, TIME_WAIT lifecycle,
    // port pressure, and established-hash lookup cost (run totals).
    ConnResult &cn = r.conn;
    const KernelStack &k = machine_->kernel();
    const TcbArena &arena = k.tcbArena();
    cn.tcbLive = arena.live();
    cn.tcbLivePeak = arena.peakLive();
    cn.tcbCreated = arena.totalCreated();
    cn.slabBytes = arena.slabBytes();
    cn.bytesPerConn = arena.bytesPerConn();
    cn.establishedCurr = ks.establishedCurr;
    cn.establishedPeak = ks.establishedPeak;
    cn.timeWaitCurr = k.timeWaitTable().size();
    cn.timeWaitPeak = k.timeWaitTable().peakSize();
    cn.timeWaitEntered = ks.timeWaitEntered;
    cn.timeWaitReaped = ks.timeWaitReaped;
    cn.timeWaitRecycled = ks.timeWaitRecycled;
    cn.timeWaitReused = ks.timeWaitReused;
    cn.timeWaitSynDropped = ks.timeWaitSynDropped;
    cn.timeWaitAcks = ks.timeWaitAcks;
    cn.portAllocFailures = ks.portAllocFailures;
    cn.ehashLookups = k.ehashLookups();
    cn.ehashProbesWalked = k.ehashProbesWalked();
    cn.ehashLookupCycles = k.ehashLookupCycles();
    cn.ehashResizes = k.ehashResizes();
    if (cn.ehashLookups > 0) {
        cn.avgProbeLen = static_cast<double>(cn.ehashProbesWalked) /
                         static_cast<double>(cn.ehashLookups);
        cn.cyclesPerLookup = static_cast<double>(cn.ehashLookupCycles) /
                             static_cast<double>(cn.ehashLookups);
    }
    return r;
}

ExperimentResult
Testbed::run()
{
    startLoad();
    runUntilChecked(eq_->now() + ticksFromSeconds(cfg_.warmupSec));
    markWindows();

    // Split the measurement into statWindows sub-windows, snapshotting
    // lockstat at each boundary so contention evolution is visible.
    int wins = std::max(1, cfg_.statWindows);
    Tick begin = eq_->now();
    Tick measure = ticksFromSeconds(cfg_.measureSec);
    std::vector<LockWindow> lock_windows;
    std::map<std::string, LockClassStats> prev =
        machine_->locks().snapshot();
    std::uint64_t completed_prev = load_->completed();
    KernelStats ks_prev = machine_->kernel().stats();
    for (int w = 0; w < wins; ++w) {
        Tick wstart = eq_->now();
        runUntilChecked(begin + measure * (w + 1) / wins);
        std::map<std::string, LockClassStats> cur =
            machine_->locks().snapshot();
        LockWindow lw;
        lw.start = wstart;
        lw.end = eq_->now();
        lw.locks = lockDelta(prev, cur);
        lw.completed = load_->completed() - completed_prev;
        double wsec = secondsFromTicks(lw.end - lw.start);
        lw.goodput = wsec > 0.0 ? static_cast<double>(lw.completed) / wsec
                                : 0.0;
        const KernelStats &ksc = machine_->kernel().stats();
        lw.synRetransmits = ksc.synRetransmits - ks_prev.synRetransmits;
        lw.synCookiesSent = ksc.synCookiesSent - ks_prev.synCookiesSent;
        lw.synCookiesValidated =
            ksc.synCookiesValidated - ks_prev.synCookiesValidated;
        lw.acceptQueueRsts = ksc.acceptQueueRsts - ks_prev.acceptQueueRsts;
        lock_windows.push_back(std::move(lw));
        prev = std::move(cur);
        completed_prev = load_->completed();
        ks_prev = ksc;
    }

    ExperimentResult r = collect();
    r.lockWindows = std::move(lock_windows);
    return r;
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    Testbed bed(cfg);
    return bed.run();
}

} // namespace fsim
