/**
 * @file
 * Experiment harness: builds a machine + application + client fleet,
 * runs warmup and measurement windows, and collects the metrics every
 * figure/table of the paper is expressed in (connections/s, per-core
 * utilization, L3 miss rate, local-packet proportion, lockstat deltas).
 */

#ifndef FSIM_HARNESS_EXPERIMENT_HH
#define FSIM_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/backend.hh"
#include "app/http_load.hh"
#include "app/machine.hh"
#include "app/proxy.hh"
#include "app/web_server.hh"
#include "check/invariants.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "kernel/kernel_config.hh"
#include "overload/admission.hh"
#include "stats/metrics.hh"
#include "sync/lock_registry.hh"
#include "trace/conn_span.hh"
#include "trace/fleet_trace.hh"
#include "trace/span_forensics.hh"
#include "trace/trace_report.hh"

namespace fsim
{

/** Which server application runs on the machine under test. */
enum class AppKind
{
    kNginx,     //!< WebServer (passive connections only)
    kHaproxy,   //!< Proxy (passive + active connections)
};

/** One experiment's setup. */
struct ExperimentConfig
{
    AppKind app = AppKind::kNginx;
    MachineConfig machine;
    /** http_load concurrency multiplier (paper: 500 x cores). */
    int concurrencyPerCore = 500;
    double warmupSec = 0.03;
    double measureSec = 0.12;
    /** Number of ideal backend servers (HAProxy experiments). */
    int backendCount = 16;
    /** One-way wire latency. */
    Tick wireDelay = ticksFromUsec(50);
    /** Backend service port (a non-well-known port exercises RFD rule
     *  3, the precise listener probe). */
    Port backendPort = 80;
    /** Keep-alive backends: responses carry no FIN, so the proxy
     *  actively closes every backend connection and its ephemeral
     *  ports linger in TIME_WAIT (tcp_tw_reuse pressure). */
    bool backendKeepAlive = false;
    /** nginx accept mutex (paper 4.2.2 disables it under Fastsocket). */
    bool acceptMutex = false;
    std::uint32_t responseBytes = 64;
    std::uint32_t requestBytes = 600;
    /** Requests per connection (1 = short-lived; >1 enables HTTP
     *  keep-alive on the web server and long-lived client behavior). */
    int requestsPerConn = 1;
    /** @name Mixed connection lifetimes (0 = uniform workload) */
    /** @{ */
    /** Long-lived client connections per 1000 launches (keep-alive,
     *  longLivedRequests requests with think time); the rest stay
     *  short-lived "Connection: close" exchanges. Forces keep-alive on
     *  the web server. See HttpLoad::Config. */
    int longLivedPermille = 0;
    int longLivedRequests = 8;
    Tick longLivedThink = 0;
    /** Client ephemeral ports per IP (0 = full range): narrows the
     *  client tuple space for TIME_WAIT tuple-reuse pressure. */
    int clientPortSpan = 0;
    /** Client IP count (0 = HttpLoad default of 256). */
    int clientIps = 0;
    /** @} */
    /** Wire packet-loss probability (failure injection; 0 = off). */
    double lossRate = 0.0;
    /** Client give-up timeout (0 = none; required if lossRate > 0). */
    Tick clientTimeout = 0;
    /** Sub-windows the measurement window is split into for per-window
     *  lockstat deltas (1 = a single whole-window delta). */
    int statWindows = 1;
    /** Invariant checking intensity (src/check). The final-pass default
     *  is cheap enough to stay on everywhere; the fuzzer runs
     *  kPeriodic. */
    CheckLevel checkLevel = CheckLevel::kFinal;
    /** Sim-time between periodic invariant passes (kPeriodic only). */
    double checkIntervalSec = 0.005;
    /** Override the accept-queue backlog (somaxconn) of every listen
     *  socket (0 = keep the Socket default). */
    std::size_t listenBacklog = 0;
    /** Bounded workload: total connections the client fleet may start
     *  (0 = unlimited closed loop). See HttpLoad::Config::maxConns. */
    std::uint64_t maxConns = 0;

    /** @name Fault injection + hardening (src/fault) */
    /** @{ */
    /** Scheduled fault plan; empty = no injection. */
    FaultPlan faults;
    /** Enable SYN cookies on the server kernel (shorthand for
     *  machine.kernel.synCookies). */
    bool synCookies = false;
    /** Override the kernel's SYN-queue capacity (0 = kernel default). */
    std::size_t synBacklog = 0;
    /** Client SYN/request retransmission base RTO (0 = off). */
    Tick clientRtoBase = 0;
    /** Backoff cap (0 = 8 x clientRtoBase). */
    Tick clientRtoMax = 0;
    /** Client retransmissions before giving up. */
    int clientMaxRetx = 6;
    /** Proxy per-attempt backend timeout (0 = off); enables retry with
     *  backend health ejection (haproxy app only). */
    Tick backendTimeout = 0;
    /** @} */

    /** @name Overload control (src/overload) */
    /** @{ */
    /** Every Nth client connection is a tiny health probe (0 = none);
     *  pair with machine.overload.healthRequestBytes so the server's
     *  admission gate classifies them. */
    int clientHealthEvery = 0;
    /** @} */

    /** @name Span tracing (src/trace conn spans) */
    /** @{ */
    /** Copy the window's completed per-connection span traces into the
     *  result (needed by the Perfetto exporter; forensics alone do
     *  not). Meaningless when machine.traceEnabled is off. */
    bool keepSpanTraces = false;
    /** @} */
};

/** Lock-stat deltas of one measurement sub-window. */
struct LockWindow
{
    Tick start = 0;
    Tick end = 0;
    std::map<std::string, LockClassStats> locks;
    /** Client connections completed in this sub-window. */
    std::uint64_t completed = 0;
    /** completed / sub-window seconds: the goodput-over-time curve the
     *  resilience benchmark plots. */
    double goodput = 0.0;
    /** @name Kernel counter deltas (fault visibility) */
    /** @{ */
    std::uint64_t synRetransmits = 0;
    std::uint64_t synCookiesSent = 0;
    std::uint64_t synCookiesValidated = 0;
    std::uint64_t acceptQueueRsts = 0;
    /** @} */
};

/** Overload-control counters of one run (run totals, not deltas, except
 *  the latency percentiles which cover the measurement window). */
struct OverloadResult
{
    bool enabled = false;
    /** Serialized OverloadConfig knobs ("" when disabled). */
    std::string spec;

    /** @name Admission (run totals) */
    /** @{ */
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t degraded = 0;
    std::uint64_t shed = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t shedWorkerCap = 0;
    std::uint64_t shedPressure = 0;
    std::uint64_t released = 0;
    std::uint64_t inflight = 0;
    std::uint64_t healthOffered = 0;
    std::uint64_t healthAdmitted = 0;
    std::uint64_t servedDegraded = 0;
    /** @} */

    /** @name Kernel + process pressure signals */
    /** @{ */
    std::uint64_t backlogDropped = 0;
    std::uint64_t synGateDropped = 0;
    std::uint64_t pressureTransitions = 0;
    int pressureLevel = 0;       //!< final PressureLevel
    int pressurePeak = 0;        //!< highest PressureLevel seen
    std::uint64_t softirqDepthPeak = 0;
    std::uint64_t acceptDepthPeak = 0;
    std::uint64_t epollReadyPeak = 0;
    /** @} */

    /** @name Client-observed outcome (window-scoped latency) */
    /** @{ */
    Tick latencyP50 = 0;
    Tick latencyP99 = 0;
    std::uint64_t latencySamples = 0;
    std::uint64_t healthProbesStarted = 0;
    std::uint64_t healthProbesCompleted = 0;
    std::uint64_t healthProbesFailed = 0;
    /** @} */
};

/** One checkpoint of a connection-count ramp (bench_million_conn):
 *  per-connection memory and lookup cost at a given live population. */
struct ConnRampPoint
{
    std::uint64_t live = 0;          //!< live TCBs at the checkpoint
    double bytesPerConn = 0.0;       //!< arena bytes / live peak so far
    double cyclesPerLookup = 0.0;    //!< ehash lookup cycles (delta avg)
    double avgProbeLen = 0.0;        //!< chain entries walked per lookup
};

/** Connection-lifetime census of one run (run totals and peaks, not
 *  window deltas): TCB memory footprint, TIME_WAIT lifecycle counters,
 *  ephemeral-port pressure, and established-hash lookup cost. */
struct ConnResult
{
    /** @name TCB arena (memory footprint) */
    /** @{ */
    std::uint64_t tcbLive = 0;        //!< live sockets at collection
    std::uint64_t tcbLivePeak = 0;    //!< arena high-water mark
    std::uint64_t tcbCreated = 0;     //!< total sockets ever created
    std::uint64_t slabBytes = 0;      //!< arena capacity bytes
    double bytesPerConn = 0.0;        //!< slabBytes / tcbLivePeak
    /** @} */

    /** @name Established gauge + TIME_WAIT lifecycle */
    /** @{ */
    std::uint64_t establishedCurr = 0;
    std::uint64_t establishedPeak = 0;
    std::uint64_t timeWaitCurr = 0;
    std::uint64_t timeWaitPeak = 0;
    std::uint64_t timeWaitEntered = 0;
    std::uint64_t timeWaitReaped = 0;
    std::uint64_t timeWaitRecycled = 0;
    std::uint64_t timeWaitReused = 0;
    std::uint64_t timeWaitSynDropped = 0;
    std::uint64_t timeWaitAcks = 0;
    /** @} */

    /** @name Ephemeral-port pressure */
    /** @{ */
    std::uint64_t portAllocFailures = 0;   //!< connect() EADDRNOTAVAIL
    /** @} */

    /** @name Established-hash lookup cost (global + per-core tables) */
    /** @{ */
    std::uint64_t ehashLookups = 0;
    std::uint64_t ehashProbesWalked = 0;
    std::uint64_t ehashLookupCycles = 0;
    std::uint64_t ehashResizes = 0;
    double avgProbeLen = 0.0;         //!< probesWalked / lookups
    double cyclesPerLookup = 0.0;     //!< lookupCycles / lookups
    /** @} */

    /** Ramp checkpoints (filled by bench_million_conn; empty
     *  elsewhere). */
    std::vector<ConnRampPoint> ramp;
};

/** Fleet-tier outcome (schema v8 "fleet" block; enabled=false and all
 *  zero for single-machine runs). Counters are sums over every balancer
 *  and, where machine-scoped, over every server machine generation. */
struct FleetResult
{
    bool enabled = false;
    int serverMachines = 0;
    int balancers = 0;
    std::string policy;                 //!< "chash" | "rr"

    /** @name Balancer flow table */
    /** @{ */
    std::uint64_t flowsCreated = 0;
    std::uint64_t flowsRetired = 0;
    std::uint64_t flowsActive = 0;      //!< still open at collect()
    std::uint64_t flowsActivePeak = 0;
    std::uint64_t tupleReuse = 0;
    std::uint64_t idleRetired = 0;
    std::uint64_t forwardedC2s = 0;
    std::uint64_t forwardedS2c = 0;
    /** @} */

    /** @name Steering and shedding */
    /** @{ */
    std::uint64_t shedNoBackend = 0;    //!< SYN RSTs: no healthy target
    std::uint64_t shedCapacity = 0;     //!< SYN RSTs: flow table full
    std::uint64_t natRsts = 0;          //!< non-SYN with no flow
    std::uint64_t boundedLoadFallbacks = 0;
    std::uint64_t pressureAvoids = 0;   //!< cross-tier pressure skips
    /** @} */

    /** @name Health, draining, orchestration */
    /** @{ */
    std::uint64_t probesSent = 0;
    std::uint64_t probeFailures = 0;
    std::uint64_t ejections = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t drainsStarted = 0;
    std::uint64_t drainsCompleted = 0;
    std::uint64_t undrainedFlows = 0;   //!< active past drain deadline
    std::uint64_t restarts = 0;         //!< machine generations started
    std::uint64_t crashes = 0;          //!< abrupt (non-admin) losses
    std::uint64_t lbCrashes = 0;
    std::uint64_t vipTakeovers = 0;
    /** @} */

    /** @name Fabric-edge accounting */
    /** @{ */
    std::uint64_t txSuppressed = 0;     //!< zombie packets gated at ports
    std::uint64_t corpseRsts = 0;       //!< RSTs answered for dead boxes
    std::uint64_t blackholed = 0;       //!< packets eaten by dead boxes
    std::uint64_t linkPackets = 0;
    std::uint64_t linkQueuedTicks = 0;
    /** @} */

    /** completed / (completed + failed) over the measurement window. */
    double requestSuccessRatio = 0.0;

    /** @name Gray-failure detection (schema v9) */
    /** @{ */
    std::string healthMode;             //!< "binary" | "score"
    std::uint64_t scoreEjections = 0;   //!< outlier-score ejections
    std::uint64_t rampSkips = 0;        //!< slow-start steering skips
    std::uint64_t ejectionsCapped = 0;  //!< vetoed by eject-fraction cap
    std::uint64_t degradesApplied = 0;  //!< gray-degrade applications
    std::uint64_t flapTransitions = 0;  //!< flap mode toggles fired
    std::uint64_t partitionsArmed = 0;  //!< partition range pairs armed
    std::uint64_t degradeDropped = 0;   //!< NIC-degrade egress losses
    std::uint64_t degradeDelayed = 0;   //!< NIC-degrade delayed packets
    std::uint64_t partitionDropped = 0; //!< blackholed by partitions
    std::uint64_t incidentsTotal = 0;
    std::uint64_t incidentsDetected = 0;
    std::uint64_t incidentsRecovered = 0;
    /** Mean inject->detect over detected incidents, ms (0 if none). */
    double mttdMsMean = 0.0;
    /** Mean inject->recover over recovered incidents, ms (0 if none). */
    double mttrMsMean = 0.0;
    /** @} */

    /** @name End-to-end tracing + SLO (schema v10) */
    /** @{ */
    std::uint64_t tracesStarted = 0;    //!< client hops recorded
    std::uint64_t tracesCompleted = 0;  //!< client finishes (ok + fail)
    std::uint64_t tracesStitched = 0;   //!< with a machine span joined
    /** Completed-ok traces with no balancer record (gate: must be 0). */
    std::uint64_t traceOrphans = 0;
    /** Trace-id collisions between attempts (gate: must be 0). */
    std::uint64_t traceDuplicates = 0;
    /** (generation, core) pairs whose recorded exec-span ticks exceed
     *  the core's busy ticks (gate: must be 0). */
    std::uint64_t spanReconcileViolations = 0;
    std::uint64_t sloFastAlerts = 0;    //!< fast-burn arm firings
    std::uint64_t sloSlowAlerts = 0;    //!< slow-burn arm firings
    /** Earliest fast-burn alert, ms from run start (0 = never). */
    double sloFirstFastAlertMs = 0.0;
    /** @} */
};

/** Measured outcome of one experiment. */
struct ExperimentResult
{
    double cps = 0.0;                   //!< connections per second
    double rps = 0.0;                   //!< responses (requests) per sec
    double l3MissRate = 0.0;            //!< window L3 miss rate
    double localPktProportion = 0.0;    //!< Figure 5(b) metric
    std::vector<double> coreUtil;       //!< per-core utilization
    /** Window deltas of every lock class (acquisitions/contentions...). */
    std::map<std::string, LockClassStats> locks;
    std::uint64_t served = 0;           //!< app-level responses in window
    std::uint64_t clientFailures = 0;
    std::uint64_t slowPathAccepts = 0;
    std::uint64_t steeredPackets = 0;
    std::uint64_t rxPackets = 0;
    /** Fraction of measured cycles spent spinning on each lock class. */
    std::map<std::string, double> lockCycleShare;

    /** @name Trace-derived observability (window-scoped) */
    /** @{ */
    /** Measurement window length in ticks. */
    Tick windowSpan = 0;
    /** Raw per-core phase-cycle deltas over the window. */
    PhaseSnapshot phaseCycles;
    /** Normalized per-core phase fractions (each row sums to 1). */
    PhaseBreakdown phases;
    /** Folded stacks ("softirq;lock-spin cycles"), heaviest first. */
    std::vector<std::pair<std::string, std::uint64_t>> foldedStacks;
    /** Per-window lockstat deltas (cfg.statWindows sub-windows). */
    std::vector<LockWindow> lockWindows;
    /** Accept/backlog queue-depth timelines, keyed by queue name. */
    std::map<std::string, std::vector<QueueSample>> queueTimelines;
    std::uint64_t traceEventsRecorded = 0;
    std::uint64_t traceEventsOverwritten = 0;
    /** Ring-overflow attribution: events overwritten, per core. */
    std::vector<std::uint64_t> traceOverwrittenPerCore;
    /** Per-connection span forensics over the measurement window
     *  (stage latency percentiles + tail exemplars; enabled=false when
     *  tracing is off). */
    SpanForensics spanForensics;
    /** The window's completed span traces, kept only when
     *  cfg.keepSpanTraces (shared: results are copied by value). */
    std::shared_ptr<const std::vector<ConnSpanTrace>> spanTraces;
    /** @} */

    /** @name Correctness (src/check) */
    /** @{ */
    /** Determinism fingerprint: wire delivery-sequence hash folded with
     *  the run's final simulated counters. Same seed + config => same
     *  fingerprint, with or without tracing. */
    std::uint64_t fingerprint = 0;
    /** Invariant evaluations of this run (empty when checkLevel=kOff). */
    InvariantReport invariants;
    /** @} */

    /** Overload-control signals (enabled=false when the run had none). */
    OverloadResult overload;

    /** Connection-lifetime census (arena, TIME_WAIT, ports, ehash). */
    ConnResult conn;

    /** Fleet tier (enabled=false for single-machine runs). */
    FleetResult fleet;

    /** Sampled metrics time series (schema v10 "timeseries" block;
     *  enabled=false and empty when the run had no registry). */
    MetricsSnapshot timeseries;

    /** Fleet-wide end-to-end critical-path forensics (enabled=false
     *  outside traced fleet runs). */
    FleetTraceForensics fleetTrace;

    /** @name DES-core throughput (schema v7 "sim_core" block) */
    /** @{ */
    /** Events executed / scheduled over the window (deterministic:
     *  part of the same-seed contract like every counter above). */
    std::uint64_t simEventsRun = 0;
    std::uint64_t simEventsScheduled = 0;
    /** Window span in ticks (same value as windowSpan for run(), but
     *  filled even when tracing is off). */
    Tick simTicks = 0;
    /** Wall-clock seconds the window took. Stamped only by wall-aware
     *  benches (bench_sim_core); 0 everywhere else so same-seed JSON
     *  exports stay byte-identical across machines and runs. */
    double simWallSeconds = 0.0;
    /** @} */

    double maxUtil() const;
    double avgUtil() const;
    double minUtil() const;
};

/**
 * A fully wired simulated testbed. Exposed (rather than hidden inside a
 * run() function) so examples can drive it interactively.
 */
class Testbed
{
  public:
    explicit Testbed(const ExperimentConfig &cfg);
    ~Testbed();

    EventQueue &eventQueue() { return *eq_; }
    Wire &wire() { return *wire_; }
    Machine &machine() { return *machine_; }
    AppBase &app() { return *app_; }
    HttpLoad &load() { return *load_; }
    BackendPool *backends() { return backends_.get(); }
    FaultInjector *faults() { return faults_.get(); }
    InvariantRegistry &checks() { return checks_; }
    /** Null unless cfg.machine.overload.enabled. */
    AdmissionController *admission() { return admission_.get(); }

    /** Run warmup + measurement, return the measured window. */
    ExperimentResult run();

    /** Start the client fleet (done by run(); for manual driving). */
    void startLoad();

    /** Snapshot-and-measure helper for manual driving. */
    void markWindows();
    ExperimentResult collect();

    /**
     * Advance simulated time to @p limit, interleaving periodic
     * invariant passes when cfg.checkLevel == kPeriodic. Slicing is
     * behavior-neutral: events execute at identical ticks either way.
     */
    void runUntilChecked(Tick limit);

    /** Current determinism fingerprint (wire sequence + live counters). */
    std::uint64_t currentFingerprint() const;

  private:
    ExperimentConfig cfg_;
    std::unique_ptr<EventQueue> eq_;
    std::unique_ptr<Wire> wire_;
    std::unique_ptr<Machine> machine_;
    std::unique_ptr<BackendPool> backends_;
    std::unique_ptr<AppBase> app_;
    std::unique_ptr<HttpLoad> load_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<AdmissionController> admission_;
    InvariantRegistry checks_;

    bool loadStarted_ = false;
    std::map<std::string, LockClassStats> lockMark_;
    PhaseSnapshot phaseMark_;
    std::uint64_t accessesMark_ = 0;
    std::uint64_t missesMark_ = 0;
    std::uint64_t servedMark_ = 0;
    std::uint64_t failedMark_ = 0;
    std::uint64_t slowMark_ = 0;
    std::uint64_t steerMark_ = 0;
    std::uint64_t rxMark_ = 0;
    std::uint64_t activeLocalMark_ = 0;
    std::uint64_t activeTotalMark_ = 0;
    std::size_t spanCompletedMark_ = 0;
    std::uint64_t eventsRunMark_ = 0;
    std::uint64_t eventsScheduledMark_ = 0;
    Tick markTick_ = 0;
};

/** Convenience: build a testbed, run it, return the result. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/** Subtract two lock-stat snapshots (per class). */
std::map<std::string, LockClassStats> lockDelta(
    const std::map<std::string, LockClassStats> &before,
    const std::map<std::string, LockClassStats> &after);

} // namespace fsim

#endif // FSIM_HARNESS_EXPERIMENT_HH
