/**
 * @file
 * Kernel flavor and feature configuration.
 *
 * Three presets correspond to the paper's evaluation subjects:
 *
 *  - base2632():  the baseline Linux 2.6.32 stack (global listen table,
 *    single shared listen socket per (addr, port), global established
 *    table, global VFS locks, no steering beyond RSS).
 *  - linux313():  Linux 3.13 with SO_REUSEPORT (per-process listen clones
 *    chained in the global table — O(n) lookup — plus finer-grained VFS
 *    locks), still no connection locality.
 *  - fastsocket(): all four Fastsocket components (V, L, R, E).
 *
 * The four feature bits can also be toggled individually on top of the
 * baseline, which is how the Table 1 ablation (+V, +L, +R, +E) is run.
 */

#ifndef FSIM_KERNEL_KERNEL_CONFIG_HH
#define FSIM_KERNEL_KERNEL_CONFIG_HH

#include <cstdint>

#include "net/packet.hh"
#include "vfs/vfs.hh"

namespace fsim
{

/** Which kernel the simulated machine boots. */
enum class KernelFlavor
{
    kBase2632,      //!< stock CentOS-6-era 2.6.32
    kLinux313,      //!< 3.13 with SO_REUSEPORT
    kFastsocket,    //!< 2.6.32 + Fastsocket module
};

/** Full kernel configuration. */
struct KernelConfig
{
    KernelFlavor flavor = KernelFlavor::kBase2632;

    /** @name Fastsocket feature bits (paper Table 1 columns) */
    /** @{ */
    bool fastVfs = false;           //!< V: Fastsocket-aware VFS
    bool localListen = false;       //!< L: Local Listen Table
    bool rfd = false;               //!< R: Receive Flow Deliver
    bool localEstablished = false;  //!< E: Local Established Table
    /** @} */

    /** Use RFD rule 3 (listener probe) for ambiguous packets. */
    bool rfdPrecise = true;
    /** Randomize the RFD hash bits (security hardening extension). */
    bool rfdRandomBits = false;

    /** Buckets of the global established table (power of two). */
    int ehashBuckets = 16384;
    /** Buckets of each per-core local established table. */
    int localEhashBuckets = 2048;
    /** Fine-grained VFS bucket count (3.13 flavor). */
    int vfsFineBuckets = 64;

    /** @name SYN-flood hardening */
    /** @{ */
    /**
     * Answer SYNs statelessly with SYN cookies once a listener's SYN
     * queue is full (Linux tcp_syncookies). Off by default: the stock
     * baseline drops SYNs when the queue fills, which is exactly the
     * collapse mode the resilience benchmark demonstrates.
     */
    bool synCookies = false;
    /** Per-listener SYN (request-sock) queue capacity. The default is
     *  high enough that legitimate closed-loop load never trips it;
     *  flood scenarios lower it (tcp_max_syn_backlog). */
    std::size_t synBacklog = 65536;
    /** SYN_RECV sockets are reaped after this many jiffies without the
     *  final ACK (collapsed stand-in for SYN-ACK retries + timeout).
     *  0 = never reap (stock model behavior); flood scenarios enable it
     *  so the SYN queue drains once the attack stops. */
    std::uint64_t synRcvdJiffies = 0;
    /** @} */

    /** Jiffy length in milliseconds (HZ=1000). */
    double jiffyMsec = 1.0;
    /** Shortened 2*MSL for TIME_WAIT reaping, in jiffies. */
    std::uint64_t timeWaitJiffies = 20;
    /** @name TIME_WAIT pressure relief (tcp_tw_reuse / tcp_tw_recycle) */
    /** @{ */
    /** Release the ephemeral source port of an actively-closed
     *  connection as soon as it enters TIME_WAIT instead of holding it
     *  for the full linger (tcp_tw_reuse; safe here because the
     *  simulated network never reorders across connections). */
    bool twReuse = false;
    /** Allow a new SYN that matches a lingering TIME_WAIT tuple to
     *  recycle the entry immediately (tcp_tw_recycle). Off by default:
     *  the SYN is dropped and the client retries after the linger, the
     *  stock conservative behavior. */
    bool twRecycle = false;
    /** @} */
    /** @name Ephemeral port range (ip_local_port_range) */
    /** @{ */
    /** Inclusive range active connect() draws source ports from.
     *  Shrinking it is how tests reproduce an active-connect proxy
     *  running the machine out of ports against one backend. */
    Port ephemeralPortLo = 32768;
    Port ephemeralPortHi = 61000;
    /** @} */

    /** Idle/keepalive timer horizon armed per data segment, jiffies. */
    std::uint64_t keepaliveJiffies = 3000;

    /** Derived VFS mode. */
    VfsMode
    vfsMode() const
    {
        if (fastVfs)
            return VfsMode::kFastsocket;
        if (flavor == KernelFlavor::kLinux313)
            return VfsMode::kFineGrained;
        return VfsMode::kGlobalLocks;
    }

    /** SO_REUSEPORT-style listen clones? (3.13 flavor only) */
    bool reuseport() const { return flavor == KernelFlavor::kLinux313; }

    static KernelConfig
    base2632()
    {
        return KernelConfig{};
    }

    static KernelConfig
    linux313()
    {
        KernelConfig c;
        c.flavor = KernelFlavor::kLinux313;
        return c;
    }

    static KernelConfig
    fastsocket()
    {
        KernelConfig c;
        c.flavor = KernelFlavor::kFastsocket;
        c.fastVfs = true;
        c.localListen = true;
        c.rfd = true;
        c.localEstablished = true;
        return c;
    }
};

} // namespace fsim

#endif // FSIM_KERNEL_KERNEL_CONFIG_HH
