#include "kernel/kernel_stack.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

namespace
{

/**
 * Brackets one syscall: enter/exit trace events plus a kSyscall phase
 * frame so the syscall's cycles (minus nested lock-spin/cache-stall
 * charges) show up as "sys" in the phase breakdown. done() must be
 * called with the syscall's completion tick; if a path forgets, the
 * destructor closes the frame with zero self time rather than
 * corrupting the phase stack.
 */
struct SyscallScope
{
    SyscallScope(Tracer *tr, CoreId core, SyscallId id, Tick begin)
        : tr_(tr), core_(core), id_(id), begin_(begin)
    {
        if (tr_) {
            tr_->emit(core_, TraceEventType::kSyscallEnter, begin_, 0,
                      static_cast<std::uint16_t>(id_));
            tr_->pushPhase(core_, Phase::kSyscall, begin_);
        }
    }

    Tick
    done(Tick end)
    {
        if (tr_) {
            tr_->popPhase(core_, end);
            tr_->emit(core_, TraceEventType::kSyscallExit, end, 0,
                      static_cast<std::uint16_t>(id_));
            tr_ = nullptr;
        }
        return end;
    }

    ~SyscallScope()
    {
        if (tr_)
            done(begin_);
    }

    SyscallScope(const SyscallScope &) = delete;
    SyscallScope &operator=(const SyscallScope &) = delete;

  private:
    Tracer *tr_;
    CoreId core_;
    SyscallId id_;
    Tick begin_;
};

/** Which accept queue a listener represents, for queue-depth traces. */
TraceQueueId
acceptQueueIdOf(const Socket *listener)
{
    if (listener->isLocalListen)
        return TraceQueueId::kAcceptLocal;
    if (listener->reuseportOwner >= 0)
        return TraceQueueId::kAcceptReuseport;
    return TraceQueueId::kAcceptShared;
}

} // namespace

KernelStack::KernelStack(const Deps &deps, const KernelConfig &cfg)
    : d_(deps), cfg_(cfg),
      ports_(cfg.ephemeralPortLo, cfg.ephemeralPortHi)
{
    fsim_assert(d_.eq && d_.cpu && d_.cache && d_.locks && d_.costs &&
                d_.nic && d_.wire && d_.rng);

    if (cfg_.localEstablished && !cfg_.rfd)
        fsim_fatal("Local Established Table requires Receive Flow Deliver: "
                   "without steering, active-connection packets can land on "
                   "a core whose local table lacks the socket (paper 2.1)");
    if (cfg_.localEstablished && !cfg_.localListen)
        fsim_fatal("Local Established Table requires the Local Listen Table "
                   "for complete connection locality (paper 3.3)");

    int ncores = d_.cpu->numCores();

    vfs_ = std::make_unique<VfsLayer>(cfg_.vfsMode(), *d_.locks, *d_.cache,
                                      *d_.costs, cfg_.vfsFineBuckets);
    globalEhash_ = std::make_unique<EstablishedTable>(
        cfg_.ehashBuckets, *d_.locks, *d_.cache, *d_.costs, "ehash.lock");

    if (cfg_.localListen)
        localListen_ = std::make_unique<LocalListenTable>(ncores, *d_.cache);
    if (cfg_.localEstablished)
        localEhash_ = std::make_unique<LocalEstablishedTable>(
            ncores, cfg_.localEhashBuckets, *d_.locks, *d_.cache, *d_.costs);
    if (cfg_.rfd) {
        rfd_ = std::make_unique<ReceiveFlowDeliver>(ncores,
                                                    cfg_.rfdPrecise);
        if (cfg_.rfdRandomBits)
            rfd_->randomizeBits(*d_.rng);
    }

    portBindLock_.init(d_.locks->getClass("portbind.lock"), d_.cache,
                       d_.costs->lockAcquireBase,
                       d_.costs->lockHandoffStorm);

    Tick jiffy_ticks = ticksFromMsec(cfg_.jiffyMsec);
    timerBases_.reserve(ncores);
    for (int c = 0; c < ncores; ++c) {
        timerBases_.push_back(std::make_unique<TimerBase>());
        timerBases_.back()->init(c, *d_.locks, *d_.cache, *d_.costs,
                                 *d_.cpu, jiffy_ticks);
    }

    // TIME_WAIT entries are bucketed by closing core when the
    // established tables are partitioned (each core reaps its own), else
    // a single machine-wide bucket like the stock tw_death_row.
    int tw_buckets = cfg_.localEstablished ? ncores : 1;
    timeWait_ = std::make_unique<TimeWaitTable>(tw_buckets);
    twReaperTimers_.assign(tw_buckets, TimerWheel::kInvalidTimer);
}

KernelStack::~KernelStack() = default;

ConnSpanLog *
KernelStack::spans() const
{
    return d_.tracer && d_.tracer->enabled() ? &d_.tracer->connSpans()
                                             : nullptr;
}

// ---------------------------------------------------------------------
// Setup-phase API
// ---------------------------------------------------------------------

int
KernelStack::addProcess(CoreId core)
{
    fsim_assert(core >= 0 && core < d_.cpu->numCores());
    auto p = std::make_unique<KProcess>();
    p->id = static_cast<int>(procs_.size());
    p->core = core;
    p->epoll = std::make_unique<EventPoll>(*d_.locks, *d_.cache, *d_.costs);
    procs_.push_back(std::move(p));
    return procs_.back()->id;
}

void
KernelStack::killProcess(int proc)
{
    KProcess &p = *procs_.at(proc);
    if (!p.alive)
        return;
    p.alive = false;

    // Embryonic (SYN_RECV) children still point at the dying clones as
    // their parent listener; reap them first so no TCB is left with a
    // dangling parent pointer.
    {
        auto dying = [&p](const Socket *parent) {
            for (const Socket *c : p.localListens)
                if (c == parent)
                    return true;
            for (const Socket *c : p.reuseClones)
                if (c == parent)
                    return true;
            return false;
        };
        std::vector<Socket *> embryos;
        arena_.forEach([&](Socket *s) {
            if (s->kind == SockKind::kConnection && s->passive &&
                s->state == TcpState::kSynRcvd && s->parentListen &&
                dying(s->parentListen))
                embryos.push_back(s);
        });
        for (Socket *s : embryos) {
            if (s->parentListen->synQueueLen > 0)
                --s->parentListen->synQueueLen;
            destroySocket(p.core, 0, s);
        }
    }

    // The kernel destroys listen sockets owned by the dying process: its
    // reuseport clones and its local listen clones. This is exactly the
    // fault the Local Listen Table slow path exists for (section 3.2.1).
    for (Socket *clone : p.localListens) {
        fsim_assert(localListen_);
        localListen_->table(clone->homeCore).remove(clone);
        for (Socket *queued : clone->acceptQueue)
            destroySocket(clone->homeCore, 0, queued);
        clone->acceptQueue.clear();
        ++stats_.socketsDestroyed;
        arena_.destroy(clone);
    }
    p.localListens.clear();

    for (Socket *clone : p.reuseClones) {
        globalListen_.remove(clone);
        for (Socket *queued : clone->acceptQueue)
            destroySocket(p.core, 0, queued);
        clone->acceptQueue.clear();
        ++stats_.socketsDestroyed;
        arena_.destroy(clone);
    }
    p.reuseClones.clear();

    // Drop the process from shared listen-socket wait queues.
    for (Socket *ls : globalListen_.all()) {
        auto &w = ls->watchers;
        w.erase(std::remove_if(w.begin(), w.end(),
                               [proc](const std::pair<int, int> &e) {
                                   return e.first == proc;
                               }),
                w.end());
    }
}

int
KernelStack::listen(int proc, IpAddr addr, Port port)
{
    KProcess &p = *procs_.at(proc);

    Socket *lsock = nullptr;
    if (cfg_.reuseport()) {
        // SO_REUSEPORT: every process inserts its own clone; NET_RX picks
        // one clone at random per SYN.
        lsock = newSocket();
        lsock->kind = SockKind::kListen;
        lsock->state = TcpState::kListen;
        lsock->bindAddr = addr;
        lsock->bindPort = port;
        lsock->reuseportOwner = proc;
        globalListen_.insert(lsock);
        p.reuseClones.push_back(lsock);
    } else {
        lsock = globalListen_.findExact(addr, port);
        if (!lsock) {
            lsock = newSocket();
            lsock->kind = SockKind::kListen;
            lsock->state = TcpState::kListen;
            lsock->bindAddr = addr;
            lsock->bindPort = port;
            globalListen_.insert(lsock);
        }
    }

    SocketFile *file = nullptr;
    vfs_->allocSocketFile(p.core, 0, lsock, &file);
    int fd = p.fds.alloc();
    file->fd = fd;
    file->owner = proc;
    p.setFile(fd, file);
    lsock->watchers.emplace_back(proc, fd);
    p.epoll->ctlAdd(p.core, 0, fd);

    if (std::find(localAddrs_.begin(), localAddrs_.end(), addr) ==
        localAddrs_.end())
        localAddrs_.push_back(addr);
    return fd;
}

void
KernelStack::localListen(int proc, IpAddr addr, Port port)
{
    if (!cfg_.localListen)
        fsim_fatal("local_listen() without CONFIG local listen table");
    KProcess &p = *procs_.at(proc);

    Socket *global = globalListen_.findExact(addr, port);
    if (!global)
        fsim_fatal("local_listen() before listen() on %u:%u", addr, port);

    Socket *clone = newSocket();
    clone->kind = SockKind::kListen;
    clone->state = TcpState::kListen;
    clone->bindAddr = addr;
    clone->bindPort = port;
    clone->isLocalListen = true;
    clone->homeCore = p.core;
    clone->globalParent = global;
    localListen_->table(p.core).insert(clone);
    p.localListens.push_back(clone);

    // Re-point the process's listen fd at the clone: accept() checks the
    // global parent's queue first anyway (the starvation-avoidance order
    // of section 3.2.1).
    for (int lfd = 0; lfd < static_cast<int>(p.files.size()); ++lfd) {
        SocketFile *f = p.files[lfd];
        if (f != nullptr && f->priv == global) {
            f->priv = clone;
            clone->watchers.emplace_back(proc, lfd);
            auto &w = global->watchers;
            w.erase(std::remove(w.begin(), w.end(),
                                std::make_pair(proc, lfd)),
                    w.end());
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Socket lifecycle helpers
// ---------------------------------------------------------------------

Socket *
KernelStack::newSocket()
{
    Socket *s = arena_.create();
    ++stats_.socketsCreated;
    s->id = nextSockId_++;
    s->cacheObj = d_.cache->newObject();
    s->slock.init(d_.locks->getClass("slock"), d_.cache,
                  d_.costs->lockAcquireBase, d_.costs->lockHandoffStorm);
    return s;
}

Tick
KernelStack::destroySocket(CoreId core, Tick t, Socket *sock,
                           bool release_port)
{
    if (sock->timer != TimerWheel::kInvalidTimer) {
        t = cancelConnTimer(core, t, sock);
    }
    if (sock->ehashHome) {
        t = sock->ehashHome->remove(core, t, sock);
        sock->ehashHome = nullptr;
    }
    if (sock->state == TcpState::kEstablished &&
        stats_.establishedCurr > 0)
        --stats_.establishedCurr;
    if (release_port && sock->kind == SockKind::kConnection &&
        !sock->passive && sock->rxTuple.dport != 0) {
        // Active connection: give the ephemeral source port back (under
        // the global bind lock on the legacy kernels). When the socket
        // enters TIME_WAIT, the lingering entry inherits the port
        // instead (release_port = false) and the reaper returns it.
        if (cfg_.flavor == KernelFlavor::kBase2632 && !cfg_.fastVfs &&
            !cfg_.localListen && !cfg_.rfd)
            t = portBindLock_.runLocked(core, t,
                                        d_.costs->portBindHold / 2);
        ports_.release(sock->rxTuple.saddr, sock->rxTuple.sport,
                       sock->rxTuple.dport);
    }
    d_.cache->freeObject(sock->cacheObj);
    ++stats_.socketsDestroyed;
    if (d_.tracer && sock->kind == SockKind::kConnection) {
        d_.tracer->emit(core, TraceEventType::kConnClosed, t,
                        static_cast<std::uint32_t>(sock->id));
        if (ConnSpanLog *sl = spans())
            sl->close(sock->id, t);
    }
    arena_.destroy(sock);
    return t;
}

// ---------------------------------------------------------------------
// TIME_WAIT lifecycle
// ---------------------------------------------------------------------

int
KernelStack::twBucketFor(CoreId core) const
{
    return timeWait_->bucketCount() == 1 ? 0 : static_cast<int>(core);
}

void
KernelStack::releaseTwPort(const TimeWaitTable::Entry &entry)
{
    // rx orientation: saddr/sport are the peer, dport the local
    // ephemeral port the connect() path allocated.
    ports_.release(entry.tuple.saddr, entry.tuple.sport,
                   entry.tuple.dport);
}

Tick
KernelStack::enterTimeWait(CoreId core, Tick t, Socket *sock)
{
    ++stats_.timeWaitEntered;
    bool active = sock->kind == SockKind::kConnection && !sock->passive &&
                  sock->rxTuple.dport != 0;
    // tcp_tw_reuse gives the ephemeral port back immediately; otherwise
    // the lingering entry owns it until the reaper runs, which is the
    // port-exhaustion pressure an active-connect proxy feels.
    bool holds_port = active && !cfg_.twReuse;
    int bucket = twBucketFor(core);
    std::uint64_t now = timerBases_.at(core)->jiffies();
    timeWait_->add(bucket, sock->rxTuple, now + cfg_.timeWaitJiffies,
                   holds_port);
    // Swap the full TCB for the compact entry, like the kernel trading
    // a tcp_sock for an inet_timewait_sock: the Socket dies now and the
    // entry inherits the port when it holds one.
    t = destroySocket(core, t, sock, /*release_port=*/!holds_port);
    return armTwReaper(bucket, core, t);
}

Tick
KernelStack::armTwReaper(int bucket, CoreId core, Tick t)
{
    if (twReaperTimers_.at(bucket) != TimerWheel::kInvalidTimer)
        return t;   // armed for the current head or earlier (FIFO expiry)
    std::uint64_t head = timeWait_->headExpiry(bucket);
    if (head == 0)
        return t;
    CoreId base_core = timeWait_->bucketCount() == 1
                           ? 0
                           : static_cast<CoreId>(bucket);
    TimerBase &base = *timerBases_.at(base_core);
    std::uint64_t now = base.jiffies();
    std::uint64_t delay = head > now ? head - now : 1;
    return base.arm(core, t, delay,
                    [this, bucket](CoreId c, Tick fire_t) {
                        twReaperTimers_.at(bucket) =
                            TimerWheel::kInvalidTimer;
                        return reapTimeWait(bucket, c, fire_t);
                    },
                    &twReaperTimers_.at(bucket));
}

Tick
KernelStack::reapTimeWait(int bucket, CoreId core, Tick t)
{
    CoreId base_core = timeWait_->bucketCount() == 1
                           ? 0
                           : static_cast<CoreId>(bucket);
    std::uint64_t now = timerBases_.at(base_core)->jiffies();
    // Sticky scratch: reapers run constantly under connection churn and
    // must not re-grow a fresh vector on every firing.
    std::vector<TimeWaitTable::Entry> &reaped = twReapScratch_;
    reaped.clear();
    timeWait_->reapExpired(bucket, now, reaped);
    for (const TimeWaitTable::Entry &e : reaped) {
        if (e.holdsPort)
            releaseTwPort(e);
        ++stats_.timeWaitReaped;
    }
    t += static_cast<Tick>(reaped.size()) * d_.costs->timerOpHold;
    return armTwReaper(bucket, core, t);
}

Tick
KernelStack::armConnTimer(CoreId c, Tick t, Socket *sock,
                          std::uint64_t delay_jiffies)
{
    TimerBase &base = *timerBases_.at(sock->timerCore);
    if (sock->timer != TimerWheel::kInvalidTimer)
        return base.mod(c, t, sock->timer, delay_jiffies);
    return base.arm(c, t, delay_jiffies,
                    [this, sock](CoreId cb_core, Tick fire_t) {
                        sock->timer = TimerWheel::kInvalidTimer;
                        if (sock->passive &&
                            sock->state == TcpState::kSynRcvd) {
                            // Embryonic timeout: the final ACK never came
                            // (lost, or a flood SYN with no client behind
                            // it). Reap the half-open TCB so a SYN flood
                            // cannot pin memory forever.
                            if (sock->parentListen &&
                                sock->parentListen->synQueueLen > 0)
                                --sock->parentListen->synQueueLen;
                            ++stats_.synRcvdReaped;
                            return destroySocket(cb_core, fire_t, sock);
                        }
                        // Keepalive horizon reached: nothing to do for
                        // short-lived connections, just drop the handle.
                        return fire_t;
                    },
                    &sock->timer);
}

Tick
KernelStack::cancelConnTimer(CoreId c, Tick t, Socket *sock)
{
    if (sock->timer == TimerWheel::kInvalidTimer)
        return t;
    TimerBase &base = *timerBases_.at(sock->timerCore);
    t = base.cancel(c, t, sock->timer);
    sock->timer = TimerWheel::kInvalidTimer;
    return t;
}

Tick
KernelStack::sendPacket(CoreId core, Tick t, Socket *sock,
                        std::uint8_t flags, std::uint32_t payload)
{
    Packet pkt;
    pkt.tuple = sock->rxTuple.reversed();
    pkt.flags = flags;
    pkt.payload = payload;
    pkt.connId = sock->id;
    pkt.traceId = sock->traceId;
    pkt.txSeq = sock->txSeqCounter++;
    t += d_.costs->txPacket;
    d_.nic->noteTx(pkt, core);   // XPS: transmit on the local queue
    d_.wire->transmit(pkt, t);
    ++stats_.txPackets;
    return t;
}

// ---------------------------------------------------------------------
// Wakeups
// ---------------------------------------------------------------------

void
KernelStack::notifyReady(int proc, bool remote)
{
    if (onProcessReady && procs_.at(proc)->alive)
        onProcessReady(proc, remote);
}

Tick
KernelStack::wakeSocket(CoreId core, Tick t, Socket *sock, int fd_hint)
{
    int proc = sock->ownerProcess;
    if (proc < 0 || !sock->file)
        return t;   // not yet attached to a process; data waits in the TCB
    KProcess &p = *procs_.at(proc);
    int fd = fd_hint >= 0 ? fd_hint : sock->file->fd;
    t = p.epoll->wake(core, t, fd);
    if (p.epoll->hasReady())
        notifyReady(proc, core != p.core);
    return t;
}

Tick
KernelStack::wakeListen(CoreId core, Tick t, Socket *listener)
{
    const std::pair<int, int> *target = nullptr;

    if (!listener->watchers.empty()) {
        if (listener->watchers.size() == 1) {
            target = &listener->watchers.front();
        } else {
            // Shared (baseline) listen socket: the kernel's exclusive wake
            // hands the event to an effectively arbitrary waiter.
            std::size_t pick = d_.rng->range(listener->watchers.size());
            target = &listener->watchers[pick];
        }
    } else if (localListen_) {
        // Slow path: a connection landed on the *global* listen socket
        // (its local clone was missing). Nobody waits on the global socket
        // in Fastsocket mode; nudge a random live process serving this
        // port so its next accept() drains the global queue first.
        std::size_t n = procs_.size();
        std::size_t start = d_.rng->range(n);
        for (std::size_t i = 0; i < n; ++i) {
            KProcess &p = *procs_[(start + i) % n];
            if (!p.alive)
                continue;
            for (Socket *clone : p.localListens) {
                if (clone->bindPort == listener->bindPort &&
                    !clone->watchers.empty()) {
                    target = &clone->watchers.front();
                    break;
                }
            }
            if (target)
                break;
        }
    }

    if (!target)
        return t;

    KProcess &p = *procs_.at(target->first);
    t = p.epoll->wake(core, t, target->second);
    if (p.epoll->hasReady())
        notifyReady(target->first, core != p.core);
    return t;
}

// ---------------------------------------------------------------------
// RX path
// ---------------------------------------------------------------------

void
KernelStack::packetArrived(const Packet &pkt)
{
    int queue = d_.nic->classifyRx(pkt);
    CoreId core = queue;   // 1:1 IRQ affinity
    // The budget refuses *new* work only: a dropped SYN costs the
    // client one connection attempt, while a dropped request/ACK/FIN
    // wedges a connection the kernel has already invested in (the
    // client does not retransmit under give-up) — blind drops turn
    // admitted work into waste precisely when cycles are scarcest.
    if (pkt.has(kSyn) && !pkt.has(kAck) && !pkt.prio &&
        softirqBudgetDrop(core))
        return;
    Packet copy = pkt;
    d_.cpu->post(core, TaskPrio::kSoftIrq, [this, core, copy](Tick start) {
        Tick t = start + d_.costs->irqPerPacket;
        return netRx(core, copy, t, /*steered=*/false);
    });
}

bool
KernelStack::softirqBudgetDrop(CoreId core)
{
    if (!d_.overload || !d_.overload->enabled ||
        d_.overload->softirqBudget == 0)
        return false;
    std::size_t depth = d_.cpu->core(core).softirqBacklog();
    if (d_.pressure)
        d_.pressure->noteSoftirqDepth(depth);
    if (depth < d_.overload->softirqBudget)
        return false;
    // netdev_max_backlog overflow: the packet dies at the NIC ring
    // before any core cycle is charged. Bounding the SoftIRQ queue is
    // what keeps packet processing from starving process context under
    // sustained overload (receive livelock).
    ++stats_.backlogDropped;
    if (d_.pressure)
        d_.pressure->noteBacklogDrop();
    if (d_.tracer)
        d_.tracer->emit(core, TraceEventType::kBacklogDrop,
                        d_.eq->now(),
                        static_cast<std::uint32_t>(depth));
    return true;
}

bool
KernelStack::synGateDrop(CoreId core, const Socket *listener)
{
    if (!d_.overload || !d_.overload->enabled ||
        d_.overload->synGate == 0)
        return false;
    if (listener->acceptQueue.size() < d_.overload->synGate)
        return false;
    // The accept queue this SYN would eventually land on is already at
    // the gate: refuse the connection *now*, before the handshake mints
    // a TCB, a SYN queue slot, a SYN-ACK, and accept-path work. This is
    // the receive-livelock defense — past saturation, the handshake
    // cost of doomed connections is what starves the process context,
    // and no app-level shed can recover cycles the kernel has already
    // spent. The client sees silence, exactly like a listen-overflow
    // drop.
    ++stats_.synGateDropped;
    if (d_.tracer)
        d_.tracer->emit(core, TraceEventType::kSynGateDrop, d_.eq->now(),
                        static_cast<std::uint32_t>(
                            listener->acceptQueue.size()));
    return true;
}

void
KernelStack::noteAcceptOccupancy(const Socket *listener)
{
    if (d_.pressure)
        d_.pressure->noteAcceptQueue(listener->acceptQueue.size(),
                                     listener->backlog);
}

KernelStack::ListenLookup
KernelStack::lookupListener(CoreId core, IpAddr addr, Port port, Tick t)
{
    ListenLookup out;
    ++stats_.listenLookups;

    if (cfg_.localListen) {
        t += d_.costs->listenLookupBase;
        t += d_.cache->access(core, localListen_->cacheObj(core),
                              /*write=*/false);
        ListenTable::Lookup l =
            localListen_->table(core).lookup(addr, port, *d_.rng);
        ++stats_.listenChainWalked;
        if (l.sock) {
            out.sock = l.sock;
            out.viaLocalTable = true;
            out.t = t;
            return out;
        }
        // Fall through to the global table (robustness slow path).
    }

    ListenTable::Lookup l = globalListen_.lookup(addr, port, *d_.rng);
    t += d_.costs->listenLookupBase;
    if (l.walked > 1 && l.chain) {
        // O(n) reuseport chain walk (inet_lookup_listener, section 2.1):
        // every clone in the bucket is scored, and each clone's TCB line
        // lives in its owner's cache, so the walk is a string of remote
        // misses — this is why the paper measures 24.2% of per-core
        // cycles here at 24 cores.
        t += d_.costs->listenLookupPerEntry *
             static_cast<Tick>(l.walked - 1);
        for (Socket *clone : *l.chain)
            t += d_.cache->access(core, clone->cacheObj, /*write=*/false);
    }
    stats_.listenChainWalked += static_cast<std::uint64_t>(
        l.walked > 0 ? l.walked : 1);
    out.sock = l.sock;
    out.t = t;
    return out;
}

EstablishedTable &
KernelStack::ehashFor(CoreId core)
{
    if (cfg_.localEstablished)
        return localEhash_->table(core);
    return *globalEhash_;
}

Tick
KernelStack::netRx(CoreId core, const Packet &pkt, Tick t, bool steered)
{
    if (!steered) {
        ++stats_.rxPackets;
        t += d_.costs->netRxBase;
    }

    // Receive Flow Deliver: classify, then steer active incoming packets
    // to the core their destination port encodes (section 3.3).
    if (cfg_.rfd && !steered) {
        PacketClass cls = rfd_->classify(
            pkt, [this](IpAddr a, Port p) {
                if (globalListen_.chainLength(a, p) > 0 ||
                    globalListen_.chainLength(0, p) > 0)
                    return true;
                if (localListen_) {
                    for (int c = 0; c < localListen_->numCores(); ++c)
                        if (localListen_->table(c).chainLength(a, p) > 0)
                            return true;
                }
                return false;
            });
        CoreId target = rfd_->steerTarget(pkt, cls);
        if (target != kInvalidCore && target != core) {
            // Hand the packet to the right core's SoftIRQ backlog.
            t += d_.costs->steerCost;
            ++stats_.steeredPackets;
            if (d_.tracer)
                d_.tracer->emit(core, TraceEventType::kPacketSteered, t,
                                static_cast<std::uint32_t>(target));
            if (pkt.has(kSyn) && !pkt.has(kAck) && !pkt.prio &&
                softirqBudgetDrop(target))
                return t;
            Packet copy = pkt;
            const Tick steer_t = t;
            const CoreId steer_from = core;
            d_.cpu->post(target, TaskPrio::kSoftIrq,
                         [this, target, copy, steer_t,
                          steer_from](Tick start) {
                             // Trace-only handoff context: lets the
                             // packet handlers record the cross-core
                             // transfer wait against the connection.
                             steerTick_ = steer_t;
                             steerFrom_ = steer_from;
                             Tick end = netRx(target, copy, start,
                                              /*steered=*/true);
                             steerTick_ = 0;
                             steerFrom_ = kInvalidCore;
                             return end;
                         });
            return t;
        }
    }

    if (pkt.has(kSyn) && !pkt.has(kAck))
        return handleSyn(core, pkt, t);

    // Established (or handshaking) connection traffic.
    EstablishedTable::Lookup l = ehashFor(core).lookup(core, t, pkt.tuple);
    t = l.t;
    if (!l.sock && cfg_.localEstablished && globalEhash_->size() > 0) {
        EstablishedTable::Lookup g = globalEhash_->lookup(core, t,
                                                          pkt.tuple);
        t = g.t;
        l.sock = g.sock;
    }

    if (!l.sock) {
        // A lingering TIME_WAIT tuple absorbs stray segments for the
        // 2*MSL window: a retransmitted FIN (our last ACK was lost) is
        // re-ACKed from the compact entry, everything else is dropped
        // silently — never RST, the whole point of the linger.
        if (timeWait_->find(pkt.tuple) != nullptr) {
            if (pkt.has(kFin)) {
                ++stats_.timeWaitAcks;
                t += d_.costs->txPacket;
                Packet ack;
                ack.tuple = pkt.tuple.reversed();
                ack.flags = kAck;
                d_.nic->noteTx(ack, core);
                d_.wire->transmit(ack, t);
                ++stats_.txPackets;
            }
            return t;
        }
        // SYN-cookie ACK: no TCB exists (the SYN was answered
        // statelessly), but a pure ACK whose echoed cookie matches the
        // flow mints the established socket right here — the stateless
        // half of Linux's tcp_v4_syncookie path.
        if (cfg_.synCookies && pkt.cookie != 0 && pkt.has(kAck) &&
            !pkt.has(kSyn) && !pkt.has(kRst) && !pkt.has(kFin) &&
            pkt.cookie == cookieFor(pkt.tuple)) {
            ListenLookup ll = lookupListener(core, pkt.tuple.daddr,
                                             pkt.tuple.dport, t);
            t = ll.t;
            if (ll.sock)
                return establishFromCookie(core, ll.sock, pkt, t);
        }
        if (!pkt.has(kRst)) {
            t += d_.costs->rstCost;
            ++stats_.rstSent;
            Packet rst;
            rst.tuple = pkt.tuple.reversed();
            rst.flags = kRst;
            d_.wire->transmit(rst, t);
        }
        return t;
    }

    // Figure 5(b) accounting: for active connections, a packet is "local"
    // iff the NIC already delivered it to the owning core.
    if (!l.sock->passive && l.sock->kind == SockKind::kConnection) {
        ++stats_.activePktTotal;
        CoreId arrived = steered ? kInvalidCore : core;
        if (arrived == l.sock->ownerCore)
            ++stats_.activePktLocal;
    }

    return handleEstablishedPacket(core, l.sock, pkt, t);
}

Tick
KernelStack::handleSyn(CoreId core, const Packet &pkt, Tick t)
{
    const Tick rx_begin = t;
    // Duplicate SYN (client retransmission): the connection may already
    // be in the handshake; just re-answer instead of minting a second
    // TCB for the same tuple.
    EstablishedTable::Lookup dup = ehashFor(core).lookup(core, t,
                                                         pkt.tuple);
    t = dup.t;
    if (dup.sock) {
        if (dup.sock->state == TcpState::kSynRcvd) {
            ++stats_.synRetransmits;
            return sendPacket(core, t, dup.sock, kSyn | kAck, 0);
        }
        return t;   // stale SYN into a live connection: drop
    }

    // A SYN reusing a tuple still lingering in TIME_WAIT: conservative
    // stacks drop it (the client backs off and retries past the linger);
    // tcp_tw_recycle lets the fresh handshake reclaim the entry at once.
    if (timeWait_->find(pkt.tuple)) {
        if (!cfg_.twRecycle) {
            ++stats_.timeWaitSynDropped;
            return t;
        }
        TimeWaitTable::Entry old;
        timeWait_->remove(pkt.tuple, &old);
        if (old.holdsPort)
            releaseTwPort(old);
        ++stats_.timeWaitRecycled;
    }

    ListenLookup l = lookupListener(core, pkt.tuple.daddr,
                                    pkt.tuple.dport, t);
    t = l.t;
    if (!l.sock) {
        // No listener: reject with RST.
        t += d_.costs->rstCost;
        ++stats_.rstSent;
        Packet rst;
        rst.tuple = pkt.tuple.reversed();
        rst.flags = kRst;
        d_.wire->transmit(rst, t);
        return t;
    }

    Socket *listener = l.sock;
    listener->touch(core);

    if (!pkt.prio && synGateDrop(core, listener))
        return t;

    if (listener->synQueueLen >= cfg_.synBacklog) {
        if (!cfg_.synCookies) {
            // SYN queue full and no cookies: the kernel silently drops
            // the SYN (tcp_v4_conn_request with the request queue full).
            // Under a flood this is where legitimate clients starve.
            ++stats_.synDropped;
            return t;
        }
        // SYN cookies: answer statelessly. The SYN-ACK carries a value
        // derived purely from the flow tuple; no TCB or queue entry is
        // created until an ACK echoes the cookie back.
        t += d_.costs->synCookieCost;
        ++stats_.synCookiesSent;
        Packet synack;
        synack.tuple = pkt.tuple.reversed();
        synack.flags = kSyn | kAck;
        synack.cookie = cookieFor(pkt.tuple);
        // Inherit the SYN's transmit ordinal so a retried SYN draws an
        // independent wire-fault fate for its reply too.
        synack.txSeq = pkt.txSeq;
        t += d_.costs->txPacket;
        d_.nic->noteTx(synack, core);
        d_.wire->transmit(synack, t);
        ++stats_.txPackets;
        return t;
    }

    // Create the connection TCB and queue it on the listener's SYN queue
    // (under the listener's slock, the baseline's hot lock).
    Socket *conn = newSocket();
    conn->kind = SockKind::kConnection;
    conn->state = TcpState::kSynRcvd;
    conn->rxTuple = pkt.tuple;
    conn->passive = true;
    conn->parentListen = listener;
    conn->timerCore = core;
    conn->prio = pkt.prio;
    conn->traceId = pkt.traceId;
    conn->touch(core);
    t += d_.costs->synProcess;
    const Tick lk_begin = t;
    t = listener->slock.runLocked(core, t, d_.costs->synQueueHold);
    const Tick lk_wait = listener->slock.lastWait();
    ++listener->synQueueLen;

    t = ehashFor(core).insert(core, t, conn);
    conn->ehashHome = &ehashFor(core);

    // Collapsed SYN-ACK-retries + timeout: if the final ACK never shows
    // up, the embryonic TCB is reaped (see armConnTimer's callback).
    if (cfg_.synRcvdJiffies > 0)
        t = armConnTimer(core, t, conn, cfg_.synRcvdJiffies);

    t = sendPacket(core, t, conn, kSyn | kAck, 0);
    if (ConnSpanLog *sl = spans()) {
        sl->open(conn->id, steerTick_ ? steerTick_ : rx_begin,
                 /*passive=*/true);
        sl->setTraceId(conn->id, conn->traceId);
        if (steerTick_)
            sl->add(conn->id, ConnStage::kCoreTransfer, core, steerTick_,
                    rx_begin, static_cast<std::uint32_t>(steerFrom_));
        sl->add(conn->id, ConnStage::kSynRx, core, rx_begin, t);
        if (lk_wait)
            sl->add(conn->id, ConnStage::kLockWait, core, lk_begin,
                    lk_begin + lk_wait, listener->slock.classTraceId());
    }
    return t;
}

std::uint32_t
KernelStack::cookieFor(const FiveTuple &flow)
{
    std::uint32_t h = flowHash(flow) * 0x9e3779b9u;
    h ^= h >> 16;
    return h | 1u;   // nonzero by construction: 0 means "no cookie"
}

Tick
KernelStack::establishFromCookie(CoreId core, Socket *listener,
                                 const Packet &pkt, Tick t)
{
    const Tick rx_begin = t;
    listener->touch(core);
    t += d_.costs->synCookieCost + d_.costs->establish;
    ++stats_.synCookiesValidated;

    Socket *conn = newSocket();
    conn->kind = SockKind::kConnection;
    conn->state = TcpState::kEstablished;
    if (++stats_.establishedCurr > stats_.establishedPeak)
        stats_.establishedPeak = stats_.establishedCurr;
    conn->rxTuple = pkt.tuple;
    conn->passive = true;
    conn->parentListen = listener;
    conn->timerCore = core;
    conn->prio = pkt.prio;
    conn->traceId = pkt.traceId;
    conn->touch(core);
    if (pkt.payload) {
        conn->rxPending += pkt.payload;
        if (pkt.has(kConnClose))
            conn->peerConnClose = true;
        t += d_.costs->dataSegment;
    }

    t = ehashFor(core).insert(core, t, conn);
    conn->ehashHome = &ehashFor(core);

    if (d_.tracer)
        d_.tracer->emit(core, TraceEventType::kConnEstablished, t,
                        static_cast<std::uint32_t>(conn->id));

    const Tick lk_begin = t;
    t = listener->slock.runLocked(core, t, d_.costs->acceptQueuePushHold);
    const Tick lk_wait = listener->slock.lastWait();
    const auto record_handshake = [&](Tick end) {
        ConnSpanLog *sl = spans();
        if (!sl)
            return;
        sl->open(conn->id, steerTick_ ? steerTick_ : rx_begin,
                 /*passive=*/true);
        sl->setTraceId(conn->id, conn->traceId);
        if (steerTick_)
            sl->add(conn->id, ConnStage::kCoreTransfer, core, steerTick_,
                    rx_begin, static_cast<std::uint32_t>(steerFrom_));
        sl->add(conn->id, ConnStage::kHandshake, core, rx_begin, end);
        if (lk_wait)
            sl->add(conn->id, ConnStage::kLockWait, core, lk_begin,
                    lk_begin + lk_wait, listener->slock.classTraceId());
    };
    if (listener->acceptQueue.size() >= listener->backlog) {
        ++stats_.acceptOverflows;
        ++stats_.acceptQueueRsts;
        ++stats_.rstSent;
        noteAcceptOccupancy(listener);
        t += d_.costs->rstCost;
        Packet rst;
        rst.tuple = pkt.tuple.reversed();
        rst.flags = kRst;
        d_.wire->transmit(rst, t);
        record_handshake(t);
        return destroySocket(core, t, conn);
    }
    conn->acceptEnqueueTick = t;
    conn->acceptEnqueueCore = core;
    listener->acceptQueue.push_back(conn);
    noteAcceptOccupancy(listener);
    if (d_.tracer)
        d_.tracer->emit(
            core, TraceEventType::kQueueEnqueue, t,
            static_cast<std::uint32_t>(listener->acceptQueue.size()),
            static_cast<std::uint16_t>(acceptQueueIdOf(listener)));
    t = wakeListen(core, t, listener);
    record_handshake(t);
    return t;
}

Tick
KernelStack::handleEstablishedPacket(CoreId core, Socket *sock,
                                     const Packet &pkt, Tick t)
{
    const Tick rx_begin = t;
    const std::uint64_t span_id = sock->id;
    sock->touch(core);
    t += d_.cache->access(core, sock->cacheObj, /*write=*/true,
                          d_.costs->tcbLines);

    TcpState prev_state = sock->state;
    bool wake_owner = false;
    bool wake_listener = false;
    bool destroy = false;
    Tick hold = d_.costs->slockHoldRx;

    switch (sock->state) {
      case TcpState::kSynRcvd:
        if (pkt.has(kAck)) {
            sock->state = TcpState::kEstablished;
            if (++stats_.establishedCurr > stats_.establishedPeak)
                stats_.establishedPeak = stats_.establishedCurr;
            if (sock->parentListen && sock->parentListen->synQueueLen > 0)
                --sock->parentListen->synQueueLen;
            if (pkt.payload) {
                sock->rxPending += pkt.payload;
                if (pkt.has(kConnClose))
                    sock->peerConnClose = true;
                hold += d_.costs->dataSegment;
            }
            wake_listener = true;
        }
        break;

      case TcpState::kSynSent:
        if (pkt.has(kSyn) && pkt.has(kAck)) {
            sock->state = TcpState::kEstablished;
            if (++stats_.establishedCurr > stats_.establishedPeak)
                stats_.establishedPeak = stats_.establishedCurr;
            wake_owner = true;
        } else if (pkt.has(kRst)) {
            destroy = true;
        }
        break;

      case TcpState::kEstablished:
        if (pkt.payload) {
            sock->rxPending += pkt.payload;
            if (pkt.has(kConnClose))
                sock->peerConnClose = true;
            hold += d_.costs->dataSegment;
            wake_owner = true;
        }
        if (pkt.has(kFin)) {
            sock->state = TcpState::kCloseWait;
            if (stats_.establishedCurr > 0)
                --stats_.establishedCurr;
            sock->peerFin = true;
            wake_owner = true;
        }
        break;

      case TcpState::kFinWait1:
        if (pkt.payload) {
            sock->rxPending += pkt.payload;
            hold += d_.costs->dataSegment;
        }
        if (pkt.has(kFin)) {
            sock->state = TcpState::kTimeWait;
        } else if (pkt.has(kAck)) {
            sock->state = TcpState::kFinWait2;
        }
        break;

      case TcpState::kFinWait2:
        if (pkt.has(kFin))
            sock->state = TcpState::kTimeWait;
        break;

      case TcpState::kLastAck:
        if (pkt.has(kAck))
            destroy = true;
        break;

      case TcpState::kCloseWait:
      case TcpState::kTimeWait:
      case TcpState::kClosed:
      case TcpState::kListen:
        break;
    }

    bool entered_time_wait = sock->state == TcpState::kTimeWait &&
                             prev_state != TcpState::kTimeWait;
    bool send_ack = pkt.has(kFin) && !destroy;

    if (d_.tracer && sock->state == TcpState::kEstablished &&
        prev_state != TcpState::kEstablished)
        d_.tracer->emit(core, TraceEventType::kConnEstablished, t,
                        static_cast<std::uint32_t>(sock->id));

    const Tick lk_begin = t;
    t = sock->slock.runLocked(core, t, hold);
    const Tick lk_wait = sock->slock.lastWait();
    // Record this SoftIRQ's work on the connection once, at whichever
    // exit path runs — before any destroySocket finalizes the trace.
    bool rx_recorded = false;
    const auto record_rx = [&](Tick end) {
        ConnSpanLog *sl = spans();
        if (!sl || rx_recorded)
            return;
        rx_recorded = true;
        if (steerTick_)
            sl->add(span_id, ConnStage::kCoreTransfer, core, steerTick_,
                    rx_begin, static_cast<std::uint32_t>(steerFrom_));
        const ConnStage stage =
            sock->state == TcpState::kEstablished &&
                    prev_state == TcpState::kSynRcvd
                ? ConnStage::kHandshake
                : ConnStage::kSoftirqRx;
        sl->add(span_id, stage, core, rx_begin, end);
        if (lk_wait)
            sl->add(span_id, ConnStage::kLockWait, core, lk_begin,
                    lk_begin + lk_wait, sock->slock.classTraceId());
    };

    if (pkt.payload && sock->state == TcpState::kEstablished) {
        // Refresh the connection's idle timer on every data segment; in
        // the stock kernel this hits the creating core's timer base from
        // whatever core runs NET_RX — base.lock cross-core traffic.
        t = armConnTimer(core, t, sock, cfg_.keepaliveJiffies);
    }

    if (wake_listener && sock->parentListen) {
        Socket *listener = sock->parentListen;
        const Tick llk_begin = t;
        t = listener->slock.runLocked(core, t,
                                      d_.costs->acceptQueuePushHold);
        const Tick llk_wait = listener->slock.lastWait();
        if (llk_wait) {
            if (ConnSpanLog *sl = spans())
                sl->add(span_id, ConnStage::kLockWait, core, llk_begin,
                        llk_begin + llk_wait,
                        listener->slock.classTraceId());
        }
        if (listener->acceptQueue.size() >= listener->backlog) {
            // Accept-queue overflow (somaxconn): reject the connection.
            ++stats_.acceptOverflows;
            ++stats_.acceptQueueRsts;
            ++stats_.rstSent;
            noteAcceptOccupancy(listener);
            t += d_.costs->rstCost;
            Packet rst;
            rst.tuple = sock->rxTuple.reversed();
            rst.flags = kRst;
            d_.wire->transmit(rst, t);
            record_rx(t);
            return destroySocket(core, t, sock);
        }
        sock->acceptEnqueueTick = t;
        sock->acceptEnqueueCore = core;
        listener->acceptQueue.push_back(sock);
        noteAcceptOccupancy(listener);
        if (d_.tracer)
            d_.tracer->emit(
                core, TraceEventType::kQueueEnqueue, t,
                static_cast<std::uint32_t>(listener->acceptQueue.size()),
                static_cast<std::uint16_t>(acceptQueueIdOf(listener)));
        t = wakeListen(core, t, listener);
    }

    if (wake_owner)
        t = wakeSocket(core, t, sock, -1);

    if (send_ack)
        t = sendPacket(core, t, sock, kAck, 0);

    if (entered_time_wait) {
        // Cancel the idle timer, then swap the TCB for a compact
        // lingering entry on this core's TIME_WAIT bucket (the bucket's
        // shared reaper replaces a per-socket 2*MSL timer).
        t = cancelConnTimer(core, t, sock);
        record_rx(t);
        return enterTimeWait(core, t, sock);
    }

    record_rx(t);
    if (destroy)
        t = destroySocket(core, t, sock);

    return t;
}

// ---------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------

Socket *
KernelStack::sockFromFd(int proc, int fd)
{
    KProcess &p = *procs_.at(proc);
    SocketFile *file = p.fileAt(fd);
    if (file == nullptr)
        return nullptr;
    return static_cast<Socket *>(file->priv);
}

KernelStack::AcceptResult
KernelStack::accept(int proc, Tick t, int listen_fd)
{
    AcceptResult out;
    KProcess &p = *procs_.at(proc);
    CoreId core = p.core;
    Socket *lsock = sockFromFd(proc, listen_fd);
    fsim_assert(lsock && lsock->kind == SockKind::kListen);

    SyscallScope sc(d_.tracer, core, SyscallId::kAccept, t);
    const Tick sys_begin = t;
    Tick lk_begin = 0;
    Tick lk_wait = 0;
    std::uint16_t lk_cls = 0;
    t += d_.costs->syscallOverhead + d_.costs->acceptCost;
    // accept() writes the listener TCB (queue heads, counters), keeping
    // its cache line homed on the accepting core.
    t += d_.cache->access(core, lsock->cacheObj, /*write=*/true);

    Socket *conn = nullptr;
    Socket *global = lsock->isLocalListen ? lsock->globalParent : lsock;

    // Section 3.2.1: the *global* accept queue is checked first (a single
    // lock-free read when empty) so slow-path connections cannot starve
    // behind the always-busy local queue.
    if (lsock->isLocalListen && !global->acceptQueue.empty()) {
        lk_begin = t;
        t = global->slock.runLocked(core, t,
                                    d_.costs->acceptQueuePushHold);
        lk_wait = global->slock.lastWait();
        lk_cls = global->slock.classTraceId();
        if (!global->acceptQueue.empty()) {
            conn = global->acceptQueue.front();
            global->acceptQueue.pop_front();
            noteAcceptOccupancy(global);
            ++stats_.slowPathAccepts;
            if (d_.tracer)
                d_.tracer->emit(
                    core, TraceEventType::kQueueDequeue, t,
                    static_cast<std::uint32_t>(global->acceptQueue.size()),
                    static_cast<std::uint16_t>(acceptQueueIdOf(global)));
        }
    }

    if (!conn) {
        lk_begin = t;
        t = lsock->slock.runLocked(core, t,
                                   d_.costs->acceptQueuePushHold);
        lk_wait = lsock->slock.lastWait();
        lk_cls = lsock->slock.classTraceId();
        if (!lsock->acceptQueue.empty()) {
            conn = lsock->acceptQueue.front();
            lsock->acceptQueue.pop_front();
            noteAcceptOccupancy(lsock);
            if (d_.tracer)
                d_.tracer->emit(
                    core, TraceEventType::kQueueDequeue, t,
                    static_cast<std::uint32_t>(lsock->acceptQueue.size()),
                    static_cast<std::uint16_t>(acceptQueueIdOf(lsock)));
        }
    }

    if (!conn) {
        out.t = sc.done(t);
        return out;   // EAGAIN
    }

    conn->touch(core);
    out.sojourn = t > conn->acceptEnqueueTick
                      ? t - conn->acceptEnqueueTick
                      : 0;
    t += d_.cache->access(core, conn->cacheObj, /*write=*/true,
                          d_.costs->tcbLines);

    SocketFile *file = nullptr;
    t = vfs_->allocSocketFile(core, t, conn, &file, conn->id);
    int fd = p.fds.alloc();
    t += d_.costs->fdBitmapCost;
    file->fd = fd;
    file->owner = proc;
    p.setFile(fd, file);
    conn->file = file;
    conn->ownerProcess = proc;
    conn->ownerCore = core;
    ++stats_.acceptedConns;

    out.sock = conn;
    out.fd = fd;
    out.t = sc.done(t);
    if (ConnSpanLog *sl = spans()) {
        const CoreId qcore = conn->acceptEnqueueCore != kInvalidCore
                                 ? conn->acceptEnqueueCore
                                 : core;
        sl->add(conn->id, ConnStage::kAcceptQueue, qcore,
                conn->acceptEnqueueTick,
                conn->acceptEnqueueTick + out.sojourn);
        sl->add(conn->id, ConnStage::kAccept, core, sys_begin, out.t);
        if (lk_wait)
            sl->add(conn->id, ConnStage::kLockWait, core, lk_begin,
                    lk_begin + lk_wait, lk_cls);
    }
    return out;
}

KernelStack::ConnectResult
KernelStack::connect(int proc, Tick t, IpAddr dst, Port dport)
{
    ConnectResult out;
    KProcess &p = *procs_.at(proc);
    CoreId core = p.core;

    if (localAddrs_.empty())
        fsim_fatal("connect() with no local address configured");
    IpAddr src = localAddrs_.front();

    SyscallScope sc(d_.tracer, core, SyscallId::kConnect, t);
    const Tick sys_begin = t;
    Tick pb_begin = 0;
    Tick pb_wait = 0;
    t += d_.costs->syscallOverhead + d_.costs->connectCost +
         d_.costs->portAllocCost;

    Port psrc = 0;
    if (cfg_.rfd) {
        // RFD source-port selection: hash(psrc) must equal this core.
        std::uint32_t count = rfd_->candidateCount();
        std::uint64_t ck = (static_cast<std::uint64_t>(dst) << 20) ^
                           (static_cast<std::uint64_t>(dport) << 6) ^
                           static_cast<std::uint64_t>(core);
        std::uint32_t &cursor = rfdPortCursor_[ck];
        for (std::uint32_t i = 0; i < count; ++i) {
            Port cand = rfd_->portCandidate(core,
                                            (cursor + i) % count);
            if (cand <= kWellKnownPortMax)
                continue;
            if (!ports_.inUse(dst, dport, cand) &&
                ports_.claim(dst, dport, cand)) {
                psrc = cand;
                cursor = (cursor + i + 1) % count;
                break;
            }
        }
    } else {
        // The stock 2.6.32 path serializes the ephemeral port search on
        // the bind-hash lock — a hot spot for proxies opening active
        // connections from every core. 3.13 made it fine-grained, and
        // the Fastsocket build (any feature bit) patches it per-core.
        bool stock = cfg_.flavor == KernelFlavor::kBase2632 &&
                     !cfg_.fastVfs && !cfg_.localListen;
        if (stock) {
            pb_begin = t;
            t = portBindLock_.runLocked(core, t, d_.costs->portBindHold);
            pb_wait = portBindLock_.lastWait();
        } else
            t += d_.costs->portBindHold / 4;
        psrc = ports_.alloc(dst, dport);
    }
    if (psrc == 0) {
        ++stats_.portAllocFailures;
        out.t = sc.done(t);
        return out;   // EADDRNOTAVAIL
    }

    // tcp_twsk_unique: with tcp_tw_reuse the port came back at close
    // time, so this connect may pick a four-tuple whose old incarnation
    // still lingers in TIME_WAIT. Kill the lingering entry and take
    // over the tuple (safe here: the simulated peer is past 2*MSL
    // concerns, and Linux permits it given timestamps).
    if (cfg_.twReuse) {
        TimeWaitTable::Entry old;
        if (timeWait_->remove(FiveTuple{dst, src, dport, psrc}, &old)) {
            // The entry cannot hold the port: a held port would never
            // have been handed out by the allocator above.
            fsim_assert(!old.holdsPort);
            ++stats_.timeWaitReused;
        }
    }

    Socket *sock = newSocket();
    sock->kind = SockKind::kConnection;
    sock->state = TcpState::kSynSent;
    sock->passive = false;
    sock->rxTuple = FiveTuple{dst, src, dport, psrc};
    sock->ownerProcess = proc;
    sock->ownerCore = core;
    sock->timerCore = core;
    sock->touch(core);

    if (ConnSpanLog *sl = spans())
        sl->open(sock->id, sys_begin, /*passive=*/false);

    SocketFile *file = nullptr;
    t = vfs_->allocSocketFile(core, t, sock, &file, sock->id);
    int fd = p.fds.alloc();
    t += d_.costs->fdBitmapCost;
    file->fd = fd;
    file->owner = proc;
    p.setFile(fd, file);
    sock->file = file;

    t = ehashFor(core).insert(core, t, sock);
    sock->ehashHome = &ehashFor(core);

    t = sendPacket(core, t, sock, kSyn, 0);
    ++stats_.activeConns;

    out.sock = sock;
    out.fd = fd;
    out.t = sc.done(t);
    if (ConnSpanLog *sl = spans()) {
        sl->add(sock->id, ConnStage::kConnect, core, sys_begin, out.t);
        if (pb_wait)
            sl->add(sock->id, ConnStage::kLockWait, core, pb_begin,
                    pb_begin + pb_wait, portBindLock_.classTraceId());
    }
    return out;
}

Tick
KernelStack::epollWait(int proc, Tick t, std::vector<int> &fds)
{
    KProcess &p = *procs_.at(proc);
    SyscallScope sc(d_.tracer, p.core, SyscallId::kEpollWait, t);
    return sc.done(p.epoll->wait(p.core, t, fds));
}

Tick
KernelStack::epollAdd(int proc, Tick t, int fd)
{
    KProcess &p = *procs_.at(proc);
    SyscallScope sc(d_.tracer, p.core, SyscallId::kEpollCtl, t);
    return sc.done(p.epoll->ctlAdd(p.core, t, fd));
}

KernelStack::ReadResult
KernelStack::read(int proc, Tick t, int fd)
{
    ReadResult out;
    KProcess &p = *procs_.at(proc);
    CoreId core = p.core;
    Socket *sock = sockFromFd(proc, fd);
    fsim_assert(sock != nullptr);

    SyscallScope sc(d_.tracer, core, SyscallId::kRead, t);
    const Tick sys_begin = t;
    t += d_.costs->syscallOverhead + d_.costs->readCost;
    t += d_.cache->access(core, sock->cacheObj, /*write=*/true,
                          d_.costs->tcbLines);
    sock->touch(core);

    const Tick lk_begin = t;
    t = sock->slock.runLocked(core, t, d_.costs->slockHoldApp);
    out.bytes = sock->rxPending;
    sock->rxPending = 0;
    out.finSeen = sock->peerFin;
    out.connClose = sock->peerConnClose;
    out.t = sc.done(t);
    if (ConnSpanLog *sl = spans()) {
        const Tick wake_at = p.epoll->consumeWakeTick(fd);
        if (wake_at > 0 && wake_at < sys_begin)
            sl->add(sock->id, ConnStage::kDispatch, core, wake_at,
                    sys_begin);
        sl->add(sock->id, ConnStage::kAppRead, core, sys_begin, out.t);
        if (sock->slock.lastWait())
            sl->add(sock->id, ConnStage::kLockWait, core, lk_begin,
                    lk_begin + sock->slock.lastWait(),
                    sock->slock.classTraceId());
    }
    return out;
}

Tick
KernelStack::write(int proc, Tick t, int fd, std::uint32_t bytes)
{
    KProcess &p = *procs_.at(proc);
    CoreId core = p.core;
    Socket *sock = sockFromFd(proc, fd);
    fsim_assert(sock != nullptr);

    SyscallScope sc(d_.tracer, core, SyscallId::kWrite, t);
    const Tick sys_begin = t;
    t += d_.costs->syscallOverhead + d_.costs->writeCost;
    t += d_.cache->access(core, sock->cacheObj, /*write=*/true,
                          d_.costs->tcbLines);
    sock->touch(core);

    const Tick lk_begin = t;
    t = sock->slock.runLocked(core, t, d_.costs->slockHoldApp);

    // Arm/refresh the retransmission timer from process context; without
    // locality this crosses cores into the SoftIRQ core's base.
    t = armConnTimer(core, t, sock, cfg_.keepaliveJiffies);

    const Tick end = sc.done(sendPacket(core, t, sock, kAck | kPsh,
                                        bytes));
    if (ConnSpanLog *sl = spans()) {
        sl->add(sock->id, ConnStage::kAppWrite, core, sys_begin, end);
        if (sock->slock.lastWait())
            sl->add(sock->id, ConnStage::kLockWait, core, lk_begin,
                    lk_begin + sock->slock.lastWait(),
                    sock->slock.classTraceId());
    }
    return end;
}

Tick
KernelStack::close(int proc, Tick t, int fd)
{
    KProcess &p = *procs_.at(proc);
    CoreId core = p.core;
    SocketFile *file = p.fileAt(fd);
    fsim_assert(file != nullptr);
    Socket *sock = static_cast<Socket *>(file->priv);

    SyscallScope sc(d_.tracer, core, SyscallId::kClose, t);
    const Tick sys_begin = t;
    t += d_.costs->syscallOverhead + d_.costs->closeCost;
    sock->touch(core);

    // fd release + epoll interest teardown (ep.lock) + VFS teardown.
    t = p.epoll->ctlDel(core, t, fd);
    p.fds.free(fd);
    t += d_.costs->fdBitmapCost;
    p.clearFile(fd);
    t = vfs_->freeSocketFile(core, t, file,
                             sock->kind == SockKind::kConnection
                                 ? sock->id : 0);
    sock->file = nullptr;

    if (sock->kind == SockKind::kListen) {
        // Closing a listener: detach this process; destroy when unused.
        auto &w = sock->watchers;
        w.erase(std::remove_if(w.begin(), w.end(),
                               [proc](const std::pair<int, int> &e) {
                                   return e.first == proc;
                               }),
                w.end());
        return sc.done(t);
    }

    const Tick lk_begin = t;
    t = sock->slock.runLocked(core, t, d_.costs->slockHoldApp);
    TcpState st = sock->state;

    // The teardown span must land before destroySocket() retires the
    // trace, so it is recorded per-branch rather than after the switch.
    const std::uint64_t span_id = sock->id;
    auto record_teardown = [&](Tick end) {
        if (ConnSpanLog *sl = spans()) {
            sl->add(span_id, ConnStage::kTeardown, core, sys_begin, end);
            if (sock->slock.lastWait())
                sl->add(span_id, ConnStage::kLockWait, core, lk_begin,
                        lk_begin + sock->slock.lastWait(),
                        sock->slock.classTraceId());
        }
    };

    switch (st) {
      case TcpState::kEstablished:
        // Active close: FIN, wait for the peer's ACK/FIN.
        sock->state = TcpState::kFinWait1;
        --stats_.establishedCurr;
        t = sendPacket(core, t, sock, kFin | kAck, 0);
        break;
      case TcpState::kCloseWait:
        // Passive close: our FIN answers the peer's.
        sock->state = TcpState::kLastAck;
        t = sendPacket(core, t, sock, kFin | kAck, 0);
        break;
      case TcpState::kSynSent:
      case TcpState::kSynRcvd:
        record_teardown(t);
        t = destroySocket(core, t, sock);
        return sc.done(t);
      default:
        break;
    }
    const Tick end = sc.done(t);
    record_teardown(end);
    return end;
}

std::vector<const Socket *>
KernelStack::allSockets() const
{
    std::vector<const Socket *> out;
    out.reserve(arena_.live());
    arena_.forEach([&out](Socket *s) { out.push_back(s); });
    return out;
}

std::uint64_t
KernelStack::ehashLookups() const
{
    std::uint64_t n = globalEhash_->lookups();
    if (localEhash_)
        for (int c = 0; c < localEhash_->numCores(); ++c)
            n += localEhash_->table(c).lookups();
    return n;
}

std::uint64_t
KernelStack::ehashProbesWalked() const
{
    std::uint64_t n = globalEhash_->probesWalked();
    if (localEhash_)
        for (int c = 0; c < localEhash_->numCores(); ++c)
            n += localEhash_->table(c).probesWalked();
    return n;
}

std::uint64_t
KernelStack::ehashLookupCycles() const
{
    std::uint64_t n = globalEhash_->lookupCycles();
    if (localEhash_)
        for (int c = 0; c < localEhash_->numCores(); ++c)
            n += localEhash_->table(c).lookupCycles();
    return n;
}

std::uint64_t
KernelStack::ehashResizes() const
{
    std::uint64_t n = globalEhash_->resizes();
    if (localEhash_)
        for (int c = 0; c < localEhash_->numCores(); ++c)
            n += localEhash_->table(c).resizes();
    return n;
}

std::vector<std::string>
KernelStack::netstat() const
{
    std::vector<std::string> rows;
    auto emit = [&rows](const Socket *s) {
        char buf[128];
        if (s->kind == SockKind::kListen) {
            std::snprintf(buf, sizeof(buf), "tcp  %-12s %u:%u",
                          tcpStateName(s->state),
                          s->bindAddr, s->bindPort);
        } else {
            std::snprintf(buf, sizeof(buf), "tcp  %-12s %s",
                          tcpStateName(s->state), s->rxTuple.str().c_str());
        }
        rows.push_back(buf);
    };
    arena_.forEach([&emit](Socket *s) { emit(s); });
    return rows;
}

} // namespace fsim
