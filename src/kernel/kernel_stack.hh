/**
 * @file
 * The simulated kernel TCP/IP stack: NIC interrupt entry, NET_RX SoftIRQ
 * packet processing, TCB management (global or Fastsocket-partitioned),
 * VFS socket files, epoll, timers, and the BSD-socket-style syscall
 * surface the application models program against.
 *
 * One KernelStack instance is the kernel of one simulated Machine. All
 * syscall-like methods take the calling core and the current tick and
 * return the tick at which the call completes, charging cycle costs,
 * simulated locks and cache traffic along the way.
 */

#ifndef FSIM_KERNEL_KERNEL_STACK_HH
#define FSIM_KERNEL_KERNEL_STACK_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "conn/tcb_arena.hh"
#include "conn/time_wait.hh"
#include "cpu/core.hh"
#include "epollsim/epoll.hh"
#include "fastsocket/local_tables.hh"
#include "fastsocket/rfd.hh"
#include "kernel/kernel_config.hh"
#include "kernel/timer_base.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "overload/overload_config.hh"
#include "overload/pressure.hh"
#include "sim/rng.hh"
#include "tcp/established_table.hh"
#include "tcp/listen_table.hh"
#include "tcp/port_alloc.hh"
#include "tcp/socket.hh"
#include "vfs/fd_table.hh"
#include "vfs/vfs.hh"

namespace fsim
{

class ConnSpanLog;

/** Kernel-side state of one simulated process. */
struct KProcess
{
    int id = -1;
    CoreId core = kInvalidCore;
    bool alive = true;
    FdTable fds;
    std::unique_ptr<EventPoll> epoll;
    /** fd -> file. Dense fd-indexed with sticky capacity (nullptr =
     *  closed slot): fds are small recycled integers, and per-connection
     *  hash-map node churn is what the allocation audit forbids. */
    std::vector<SocketFile *> files;
    std::size_t filesLive = 0;   //!< non-null entries in files

    SocketFile *
    fileAt(int fd) const
    {
        return (fd >= 0 && static_cast<std::size_t>(fd) < files.size())
                   ? files[fd]
                   : nullptr;
    }

    void
    setFile(int fd, SocketFile *file)
    {
        if (static_cast<std::size_t>(fd) >= files.size())
            files.resize(std::max<std::size_t>(fd + 1, files.size() * 2),
                         nullptr);
        files[fd] = file;
        ++filesLive;
    }

    void
    clearFile(int fd)
    {
        files[fd] = nullptr;
        --filesLive;
    }
    /** Local listen clones created by this process (for crash cleanup). */
    std::vector<Socket *> localListens;
    /** Reuseport clones created by this process. */
    std::vector<Socket *> reuseClones;
};

/** Aggregated kernel statistics. */
struct KernelStats
{
    std::uint64_t rxPackets = 0;
    std::uint64_t txPackets = 0;
    std::uint64_t steeredPackets = 0;       //!< RFD software-steered
    std::uint64_t rstSent = 0;
    std::uint64_t acceptedConns = 0;
    std::uint64_t activeConns = 0;          //!< connect() calls
    std::uint64_t slowPathAccepts = 0;      //!< via global listen socket
    std::uint64_t listenChainWalked = 0;    //!< reuseport O(n) entries
    std::uint64_t listenLookups = 0;
    /** Active-connection packets that arrived from the NIC on the core
     *  that owns the connection (Figure 5(b) numerator/denominator). */
    std::uint64_t activePktLocal = 0;
    std::uint64_t activePktTotal = 0;
    std::uint64_t timeWaitReaped = 0;
    std::uint64_t socketsCreated = 0;   //!< every newSocket() call
    std::uint64_t socketsDestroyed = 0;
    std::uint64_t acceptOverflows = 0;  //!< somaxconn rejections

    /** @name Connection-lifetime census (million-connection forensics) */
    /** @{ */
    std::uint64_t establishedCurr = 0;  //!< live ESTABLISHED gauge
    std::uint64_t establishedPeak = 0;  //!< high-water mark of the gauge
    std::uint64_t timeWaitEntered = 0;  //!< active closes that lingered
    std::uint64_t timeWaitRecycled = 0; //!< entries recycled by a SYN
    std::uint64_t timeWaitReused = 0;   //!< tuples reclaimed by connect()
    std::uint64_t timeWaitSynDropped = 0; //!< SYNs refused by a linger
    std::uint64_t timeWaitAcks = 0;     //!< FIN retransmits re-ACKed
    std::uint64_t portAllocFailures = 0; //!< connect() EADDRNOTAVAIL
    /** @} */

    /** @name SYN-flood / fault-injection visibility */
    /** @{ */
    std::uint64_t synRetransmits = 0;     //!< duplicate SYN re-answered
    std::uint64_t synDropped = 0;         //!< SYN-queue full, no cookies
    std::uint64_t synCookiesSent = 0;     //!< stateless SYN-ACKs
    std::uint64_t synCookiesValidated = 0; //!< TCBs minted from cookies
    std::uint64_t synRcvdReaped = 0;      //!< embryonic timeouts
    std::uint64_t acceptQueueRsts = 0;    //!< RSTs from accept overflow
    /** @} */

    /** @name Overload pressure signals */
    /** @{ */
    /** Packets dropped by the per-core SoftIRQ backlog budget. */
    std::uint64_t backlogDropped = 0;
    /** Non-priority SYNs refused by the pressure-gated SYN ingress
     *  (accept queue at OverloadConfig::synGate). */
    std::uint64_t synGateDropped = 0;
    /** @} */
};

/** The simulated kernel. */
class KernelStack
{
  public:
    /** External components the kernel is wired to. */
    struct Deps
    {
        EventQueue *eq;
        CpuModel *cpu;
        CacheModel *cache;
        LockRegistry *locks;
        const CycleCosts *costs;
        Nic *nic;
        Wire *wire;
        Rng *rng;
        /** Optional observability hook; null disables kernel tracing. */
        Tracer *tracer = nullptr;
        /** Optional overload knobs; null = stock behavior. */
        const OverloadConfig *overload = nullptr;
        /** Pressure sink the kernel feeds its overload signals into
         *  (accept occupancy, budget drops); may be null. */
        PressureState *pressure = nullptr;
    };

    KernelStack(const Deps &deps, const KernelConfig &cfg);
    ~KernelStack();

    KernelStack(const KernelStack &) = delete;
    KernelStack &operator=(const KernelStack &) = delete;

    /** @name Setup-phase API (not cycle-accounted) */
    /** @{ */

    /** Create a process pinned to @p core. @return process id. */
    int addProcess(CoreId core);

    /**
     * Simulate a process crash: its local listen clones and reuseport
     * clones are destroyed by the kernel, like exit() would (the paper's
     * robustness scenario, section 3.2.1).
     */
    void killProcess(int proc);

    /**
     * listen() on (addr, port) by @p proc.
     *
     * Baseline: the first caller creates the global listen socket, later
     * callers share it. Linux 3.13: every caller inserts a reuseport
     * clone. Returns the fd registered in the caller's epoll interest.
     */
    int listen(int proc, IpAddr addr, Port port);

    /**
     * Fastsocket local_listen(): clone the global listener for (addr,
     * port) into the calling process's core-local listen table.
     * Requires cfg.localListen.
     */
    void localListen(int proc, IpAddr addr, Port port);

    /** Callback fired when a process's epoll becomes ready. The flag
     *  says whether the wakeup came from another core (IPI + resched
     *  cost is then paid by the woken side). */
    std::function<void(int proc, bool remote)> onProcessReady;

    /** @} */

    /** @name Packet entry */
    /** @{ */

    /** Deliver a packet from the wire: NIC classify + SoftIRQ dispatch. */
    void packetArrived(const Packet &pkt);

    /** @} */

    /** @name Syscall surface (cycle-accounted) */
    /** @{ */

    struct AcceptResult
    {
        Socket *sock = nullptr;
        int fd = -1;
        Tick t = 0;
        /** Ticks the connection waited in the accept queue (admission
         *  deadline-shed signal; 0 when no socket was returned). */
        Tick sojourn = 0;
    };

    /** Non-blocking accept() on listen fd @p listen_fd. */
    AcceptResult accept(int proc, Tick t, int listen_fd);

    struct ConnectResult
    {
        Socket *sock = nullptr;
        int fd = -1;
        Tick t = 0;
    };

    /** Non-blocking connect() to @p dst : @p dport. */
    ConnectResult connect(int proc, Tick t, IpAddr dst, Port dport);

    /** epoll_wait(): drain ready fds. */
    Tick epollWait(int proc, Tick t, std::vector<int> &fds);

    /** EPOLL_CTL_ADD @p fd to the process's epoll. */
    Tick epollAdd(int proc, Tick t, int fd);

    struct ReadResult
    {
        std::uint32_t bytes = 0;
        bool finSeen = false;    //!< read() would return 0 (EOF)
        bool connClose = false;  //!< request carried "Connection: close"
        Tick t = 0;
    };

    /** read(): drain the socket receive queue. */
    ReadResult read(int proc, Tick t, int fd);

    /** write(): transmit @p bytes as one data segment. */
    Tick write(int proc, Tick t, int fd, std::uint32_t bytes);

    /** close(): release fd/file, send FIN if needed. */
    Tick close(int proc, Tick t, int fd);

    /** @} */

    /** @name Introspection */
    /** @{ */
    Socket *sockFromFd(int proc, int fd);
    KProcess &process(int proc) { return *procs_.at(proc); }
    int numProcesses() const { return static_cast<int>(procs_.size()); }

    const KernelStats &stats() const { return stats_; }
    VfsLayer &vfs() { return *vfs_; }
    const KernelConfig &config() const { return cfg_; }
    ReceiveFlowDeliver *rfd() { return rfd_.get(); }

    /** Live sockets (leak checks / netstat example). */
    std::size_t liveSockets() const { return arena_.live(); }

    /** TCB slab arena (bytes-per-connection accounting). */
    const TcbArena &tcbArena() const { return arena_; }

    /** Lingering TIME_WAIT tuples (compact entries, not Sockets). */
    const TimeWaitTable &timeWaitTable() const { return *timeWait_; }

    /** @name Established-table cost counters, summed over all tables */
    /** @{ */
    std::uint64_t ehashLookups() const;
    std::uint64_t ehashProbesWalked() const;
    std::uint64_t ehashLookupCycles() const;
    std::uint64_t ehashResizes() const;
    /** @} */

    /** netstat-style dump rows: "proto state tuple". */
    std::vector<std::string> netstat() const;

    /** All live sockets (tests and tooling examples). */
    std::vector<const Socket *> allSockets() const;
    /** @} */

  private:
    /** SoftIRQ-context packet processing on @p core. */
    Tick netRx(CoreId core, const Packet &pkt, Tick t, bool steered);

    /** True if the SoftIRQ backlog budget says to drop a packet bound
     *  for @p core (accounts the drop and feeds the pressure state). */
    bool softirqBudgetDrop(CoreId core);
    bool synGateDrop(CoreId core, const Socket *listener);

    /** Feed @p listener's accept-queue occupancy to the pressure sink. */
    void noteAcceptOccupancy(const Socket *listener);

    Tick handleSyn(CoreId core, const Packet &pkt, Tick t);
    Tick handleEstablishedPacket(CoreId core, Socket *sock,
                                 const Packet &pkt, Tick t);
    /** Mint an established TCB from a validated SYN-cookie ACK. */
    Tick establishFromCookie(CoreId core, Socket *listener,
                             const Packet &pkt, Tick t);

    /** Pick the listener for an incoming SYN; charges lookup costs. */
    struct ListenLookup
    {
        Socket *sock = nullptr;
        bool viaLocalTable = false;
        Tick t = 0;
    };
    ListenLookup lookupListener(CoreId core, IpAddr addr, Port port,
                                Tick t);

    /** Insert/lookup/remove in the right established table. */
    EstablishedTable &ehashFor(CoreId core);

    Socket *newSocket();
    Tick destroySocket(CoreId core, Tick t, Socket *sock,
                       bool release_port = true);

    /** @name TIME_WAIT lifecycle */
    /** @{ */
    /** TIME_WAIT bucket of connections owned by @p core. */
    int twBucketFor(CoreId core) const;
    /** Swap @p sock for a compact lingering entry; destroys the TCB. */
    Tick enterTimeWait(CoreId core, Tick t, Socket *sock);
    /** (Re-)arm @p bucket's reaper timer for its head expiry. */
    Tick armTwReaper(int bucket, CoreId core, Tick t);
    /** Reaper-timer body: release expired tuples (and held ports). */
    Tick reapTimeWait(int bucket, CoreId core, Tick t);
    /** Release the local ephemeral port a TIME_WAIT entry held. */
    void releaseTwPort(const TimeWaitTable::Entry &entry);
    /** @} */

    Tick sendPacket(CoreId core, Tick t, Socket *sock, std::uint8_t flags,
                    std::uint32_t payload);

    /** Wake the epoll watcher(s) of @p sock; returns completion tick. */
    Tick wakeSocket(CoreId core, Tick t, Socket *sock, int fd_hint);

    /** Wake policy for listen sockets (new connection ready). */
    Tick wakeListen(CoreId core, Tick t, Socket *listener);

    void notifyReady(int proc, bool remote);

    Tick armConnTimer(CoreId c, Tick t, Socket *sock,
                      std::uint64_t delay_jiffies);
    Tick cancelConnTimer(CoreId c, Tick t, Socket *sock);

    /** Stateless SYN-cookie value for a flow (nonzero by construction). */
    static std::uint32_t cookieFor(const FiveTuple &flow);

    /** Span log when tracing is on, else null (hooks cost nothing). */
    ConnSpanLog *spans() const;

    Deps d_;
    KernelConfig cfg_;
    KernelStats stats_;

    std::unique_ptr<VfsLayer> vfs_;
    ListenTable globalListen_;
    std::unique_ptr<EstablishedTable> globalEhash_;
    std::unique_ptr<LocalListenTable> localListen_;
    std::unique_ptr<LocalEstablishedTable> localEhash_;
    std::unique_ptr<ReceiveFlowDeliver> rfd_;
    PortAllocator ports_;
    /** Global bind-hash lock serializing ephemeral port allocation in
     *  the legacy kernels; RFD's per-core port stripes bypass it. */
    SimSpinLock portBindLock_;
    std::vector<std::unique_ptr<TimerBase>> timerBases_;

    std::vector<std::unique_ptr<KProcess>> procs_;
    /** Every live Socket lives in the slab arena (no side index: the
     *  kernel always erases with the pointer in hand). */
    TcbArena arena_;
    std::unique_ptr<TimeWaitTable> timeWait_;
    /** Scratch for reapTimeWait (capacity reused across firings). */
    std::vector<TimeWaitTable::Entry> twReapScratch_;
    /** Per-bucket reaper timer on the bucket core's base (kInvalidTimer
     *  while the bucket is empty). */
    std::vector<TimerWheel::TimerId> twReaperTimers_;
    std::uint64_t nextSockId_ = 1;

    /** Local IPs this kernel serves (set by listen()). */
    std::vector<IpAddr> localAddrs_;
    /** Per (dst, dport, core) rotation cursor for RFD port candidates. */
    std::unordered_map<std::uint64_t, std::uint32_t> rfdPortCursor_;
    /** Round-robin cursor for baseline listen-socket wakeups. */
    std::size_t wakeCursor_ = 0;

    /** @name Span-trace context for RFD software steers
     * Set around the synchronous SoftIRQ hop so the packet handlers can
     * record the cross-core transfer wait; trace-only state. */
    /** @{ */
    Tick steerTick_ = 0;
    CoreId steerFrom_ = kInvalidCore;
    /** @} */
};

} // namespace fsim

#endif // FSIM_KERNEL_KERNEL_STACK_HH
