#include "kernel/timer_base.hh"

#include <utility>

#include "sim/logging.hh"

namespace fsim
{

void
TimerBase::init(CoreId core, LockRegistry &locks, CacheModel &cache,
                const CycleCosts &costs, CpuModel &cpu, Tick jiffy_ticks)
{
    core_ = core;
    cpu_ = &cpu;
    cache_ = &cache;
    costs_ = &costs;
    jiffyTicks_ = jiffy_ticks;
    lock_.init(locks.getClass("base.lock"), &cache, costs.lockAcquireBase,
               costs.lockHandoffStorm);
}

Tick
TimerBase::arm(CoreId c, Tick t, std::uint64_t delay_jiffies, Callback cb,
               TimerWheel::TimerId *id)
{
    fsim_assert(cpu_ != nullptr);
    Tick end = lock_.runLocked(c, t, costs_->timerOpHold);
    // Wrap the contextful callback into the wheel's void() form; the
    // fire cursor carries the timeline through consecutive expirations
    // within one timer SoftIRQ.
    *id = wheel_.add(jiffies_ + delay_jiffies,
                     [this, fn = std::move(cb)] {
                         if (collectMode_)
                             fired_.push_back(fn);
                         else
                             fireCursor_ = fn(core_, fireCursor_);
                     });
    ensureTicking();
    return end;
}

Tick
TimerBase::mod(CoreId c, Tick t, TimerWheel::TimerId id,
               std::uint64_t delay_jiffies)
{
    Tick end = lock_.runLocked(c, t, costs_->timerOpHold);
    wheel_.modify(id, jiffies_ + delay_jiffies);
    ensureTicking();
    return end;
}

Tick
TimerBase::cancel(CoreId c, Tick t, TimerWheel::TimerId id)
{
    Tick end = lock_.runLocked(c, t, costs_->timerOpHold);
    wheel_.cancel(id);
    return end;
}

void
TimerBase::ensureTicking()
{
    if (ticking_ || wheel_.pending() == 0)
        return;
    ticking_ = true;
    EventQueue &eq = cpu_->eventQueue();
    eq.schedule(eq.now() + jiffyTicks_, [this] {
        cpu_->post(core_, TaskPrio::kSoftIrq,
                   [this](Tick start) { return runTick(start); });
    });
}

Tick
TimerBase::runTick(Tick start)
{
    // Catch up to the wall-clock jiffy: under SoftIRQ backlog a tick may
    // run late, and like __run_timers() it then processes every elapsed
    // jiffy at once instead of sliding the whole time base.
    std::uint64_t target = start / jiffyTicks_;
    jiffies_ = target > jiffies_ ? target : jiffies_ + 1;
    // Like __run_timers(): the base lock is held only while detaching
    // expired timers from the wheel; callbacks run with the lock dropped,
    // so a large TIME_WAIT reaping batch cannot convoy other cores.
    collectMode_ = true;
    fired_.clear();
    wheel_.advance(jiffies_);
    collectMode_ = false;
    Tick locked_end = lock_.runLocked(
        core_, start,
        costs_->timerTickCost + costs_->timerOpHold * fired_.size());

    Tick end = locked_end;
    for (const Callback &fn : fired_)
        end = fn(core_, end);
    fired_.clear();

    if (wheel_.pending() > 0) {
        EventQueue &eq = cpu_->eventQueue();
        eq.schedule(eq.now() + jiffyTicks_, [this] {
            cpu_->post(core_, TaskPrio::kSoftIrq,
                       [this](Tick s) { return runTick(s); });
        });
    } else {
        ticking_ = false;
    }
    return end;
}

} // namespace fsim
