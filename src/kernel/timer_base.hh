/**
 * @file
 * Per-core timer base: a cascading timer wheel plus the base.lock that
 * serializes arm/modify/cancel against the per-jiffy timer SoftIRQ.
 *
 * In the stock kernel a connection's timers live on the core that created
 * the socket (SoftIRQ core), while the application modifies them from its
 * own core — the cross-core traffic behind the base.lock row of Table 1.
 * With complete connection locality both contexts are the same core and
 * the lock never contends.
 */

#ifndef FSIM_KERNEL_TIMER_BASE_HH
#define FSIM_KERNEL_TIMER_BASE_HH

#include <cstdint>
#include <vector>

#include "cpu/core.hh"
#include "sim/event_fn.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "sync/spinlock.hh"
#include "timerwheel/timer_wheel.hh"

namespace fsim
{

/** One core's timer base. */
class TimerBase
{
  public:
    /** Inline capture budget for timer callbacks: the kernel's arm
     *  sites capture [this, socket-or-bucket] (16 bytes); the headroom
     *  is bounded by TimerWheel::kWheelCaptureMax, which must fit
     *  [TimerBase* + one Callback]. */
    static constexpr std::size_t kTimerCaptureMax = 32;
    /** Timer callback: runs in timer-SoftIRQ context on the base's core;
     *  receives (core, tick) and returns the tick after its work. */
    using Callback = InlineFn<Tick(CoreId, Tick), kTimerCaptureMax>;

    TimerBase() = default;

    void init(CoreId core, LockRegistry &locks, CacheModel &cache,
              const CycleCosts &costs, CpuModel &cpu, Tick jiffy_ticks);

    /**
     * Arm a timer @p delay_jiffies from now, from core @p c at tick @p t.
     *
     * @param[out] id Handle for mod()/cancel().
     * @return completion tick.
     */
    Tick arm(CoreId c, Tick t, std::uint64_t delay_jiffies, Callback cb,
             TimerWheel::TimerId *id);

    /** Re-arm an existing timer (mod_timer()). */
    Tick mod(CoreId c, Tick t, TimerWheel::TimerId id,
             std::uint64_t delay_jiffies);

    /** Cancel a timer. */
    Tick cancel(CoreId c, Tick t, TimerWheel::TimerId id);

    std::size_t pending() const { return wheel_.pending(); }
    std::uint64_t jiffies() const { return jiffies_; }
    CoreId core() const { return core_; }

  private:
    void ensureTicking();
    Tick runTick(Tick start);

    CoreId core_ = kInvalidCore;
    CpuModel *cpu_ = nullptr;
    CacheModel *cache_ = nullptr;
    const CycleCosts *costs_ = nullptr;
    Tick jiffyTicks_ = 0;

    SimSpinLock lock_;
    TimerWheel wheel_;
    std::uint64_t jiffies_ = 0;
    bool ticking_ = false;

    /** Timeline cursor while firing callbacks inside a tick. */
    Tick fireCursor_ = 0;
    /** True while the tick detaches expired timers under the lock. */
    bool collectMode_ = false;
    /** Callbacks detached by the current tick, run after unlock. */
    std::vector<Callback> fired_;
};

} // namespace fsim

#endif // FSIM_KERNEL_TIMER_BASE_HH
