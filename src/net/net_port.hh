/**
 * @file
 * Per-machine gateway onto a shared fleet fabric.
 *
 * A NetPort is-a Wire, so a Machine (and the KernelStack behind it) can
 * be built against it unchanged, but every attach/transmit forwards to
 * the real fabric. Its one extra power is TX gating: a crashed machine's
 * port is closed, so packets its zombie kernel keeps emitting (timer
 * retransmissions, delayed ACKs) silently die at the NIC edge instead of
 * reaching the fleet — exactly the observable behavior of a powered-off
 * box. RX-side death is modeled at the fabric by re-attaching the
 * machine's addresses to a blackhole or RST-responder handler; Wire
 * re-resolves handlers at delivery time, so in-flight packets follow.
 */

#ifndef FSIM_NET_NET_PORT_HH
#define FSIM_NET_NET_PORT_HH

#include <vector>

#include "net/wire.hh"

namespace fsim
{

/** Forwarding wire facade with a TX gate (machine power switch). */
class NetPort : public Wire
{
  public:
    explicit NetPort(Wire &fabric)
        : Wire(fabric.eventQueue(), fabric.delay()), fabric_(fabric)
    {
    }

    void
    attach(IpAddr addr, Endpoint handler) override
    {
        addrs_.push_back(addr);
        fabric_.attach(addr, std::move(handler));
    }

    void
    attachRange(IpAddr first, IpAddr last, Endpoint handler) override
    {
        fabric_.attachRange(first, last, std::move(handler));
    }

    void
    transmit(const Packet &pkt, Tick when) override
    {
        if (!txOpen_) {
            ++txSuppressed_;
            return;
        }
        fabric_.transmit(pkt, when);
    }

    /** Open/close the TX gate (crash = close; restart gets a new port). */
    void setTxOpen(bool open) { txOpen_ = open; }
    bool txOpen() const { return txOpen_; }

    /** Packets a dead machine tried to emit. */
    std::uint64_t txSuppressed() const { return txSuppressed_; }

    /** Addresses attached through this port, in attach order. */
    const std::vector<IpAddr> &attachedAddrs() const { return addrs_; }

    Wire &fabric() { return fabric_; }

  private:
    Wire &fabric_;
    bool txOpen_ = true;
    std::uint64_t txSuppressed_ = 0;
    std::vector<IpAddr> addrs_;
};

} // namespace fsim

#endif // FSIM_NET_NET_PORT_HH
