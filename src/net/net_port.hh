/**
 * @file
 * Per-machine gateway onto a shared fleet fabric.
 *
 * A NetPort is-a Wire, so a Machine (and the KernelStack behind it) can
 * be built against it unchanged, but every attach/transmit forwards to
 * the real fabric. Its one extra power is TX gating: a crashed machine's
 * port is closed, so packets its zombie kernel keeps emitting (timer
 * retransmissions, delayed ACKs) silently die at the NIC edge instead of
 * reaching the fleet — exactly the observable behavior of a powered-off
 * box. RX-side death is modeled at the fabric by re-attaching the
 * machine's addresses to a blackhole or RST-responder handler; Wire
 * re-resolves handlers at delivery time, so in-flight packets follow.
 */

#ifndef FSIM_NET_NET_PORT_HH
#define FSIM_NET_NET_PORT_HH

#include <vector>

#include "net/wire.hh"

namespace fsim
{

/** Forwarding wire facade with a TX gate (machine power switch). */
class NetPort : public Wire
{
  public:
    explicit NetPort(Wire &fabric)
        : Wire(fabric.eventQueue(), fabric.delay()), fabric_(fabric)
    {
    }

    void
    attach(IpAddr addr, Endpoint handler) override
    {
        addrs_.push_back(addr);
        fabric_.attach(addr, std::move(handler));
    }

    void
    attachRange(IpAddr first, IpAddr last, Endpoint handler) override
    {
        fabric_.attachRange(first, last, std::move(handler));
    }

    void
    transmit(const Packet &pkt, Tick when) override
    {
        if (!txOpen_) {
            ++txSuppressed_;
            return;
        }
        if (degradeLossRate_ > 0.0 && degradeChance(pkt)) {
            ++degradeDropped_;
            return;
        }
        if (degradeDelay_ > 0) {
            ++degradeDelayed_;
            fabric_.transmit(pkt, when + degradeDelay_);
            return;
        }
        fabric_.transmit(pkt, when);
    }

    /** Open/close the TX gate (crash = close; restart gets a new port). */
    void setTxOpen(bool open) { txOpen_ = open; }
    bool txOpen() const { return txOpen_; }

    /**
     * Degrade (or restore, with 0/0) this machine's NIC: drop
     * @p loss_rate of egress by packet-content hash and delay the rest
     * by @p extra_delay ticks. This is the gray half of
     * machine_degrade — data replies AND probe SYN-ACKs get slow/lossy
     * together, which is what a latency-aware health detector sees and
     * a binary liveness probe does not (the probe still answers).
     */
    void
    setDegrade(double loss_rate, Tick extra_delay, std::uint64_t seed)
    {
        degradeLossRate_ = loss_rate;
        degradeDelay_ = extra_delay;
        degradeSeed_ = seed;
    }

    /** Packets a dead machine tried to emit. */
    std::uint64_t txSuppressed() const { return txSuppressed_; }

    /** Egress eaten by the degraded NIC (content-hash fates). */
    std::uint64_t degradeDropped() const { return degradeDropped_; }

    /** Egress delayed by the degraded NIC. */
    std::uint64_t degradeDelayed() const { return degradeDelayed_; }

    /** Addresses attached through this port, in attach order. */
    const std::vector<IpAddr> &attachedAddrs() const { return addrs_; }

    Wire &fabric() { return fabric_; }

  private:
    /** Content-hash loss fate (splitmix64 over packet identity, time
     *  excluded), mirroring Wire::faultChance so same-seed runs agree
     *  regardless of transmit interleaving. */
    bool
    degradeChance(const Packet &pkt) const
    {
        std::uint64_t x = degradeSeed_ ^ 0x9e3779b97f4a7c15ULL;
        x ^= (static_cast<std::uint64_t>(pkt.tuple.saddr) << 32) |
             pkt.tuple.daddr;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= (static_cast<std::uint64_t>(pkt.tuple.sport) << 48) |
             (static_cast<std::uint64_t>(pkt.tuple.dport) << 32) |
             (static_cast<std::uint64_t>(pkt.flags) << 24) | pkt.txSeq;
        x *= 0x94d049bb133111ebULL;
        x ^= static_cast<std::uint64_t>(pkt.payload);
        x ^= x >> 31;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        double u = static_cast<double>(x >> 11) *
                   (1.0 / 9007199254740992.0);
        return u < degradeLossRate_;
    }

    Wire &fabric_;
    bool txOpen_ = true;
    double degradeLossRate_ = 0.0;
    Tick degradeDelay_ = 0;
    std::uint64_t degradeSeed_ = 0xde64ade;
    std::uint64_t txSuppressed_ = 0;
    std::uint64_t degradeDropped_ = 0;
    std::uint64_t degradeDelayed_ = 0;
    std::vector<IpAddr> addrs_;
};

} // namespace fsim

#endif // FSIM_NET_NET_PORT_HH
