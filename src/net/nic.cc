#include "net/nic.hh"

#include "sim/logging.hh"

namespace fsim
{

namespace
{

constexpr std::uint32_t kIndirectionSize = 128;

bool
isPow2(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // anonymous namespace

Nic::Nic(const NicConfig &cfg)
    : cfg_(cfg),
      indirection_(kIndirectionSize),
      rxCount_(cfg.numQueues, 0)
{
    if (cfg_.numQueues <= 0 || cfg_.numQueues > 255)
        fsim_fatal("NIC queue count %d out of range", cfg_.numQueues);
    if (cfg_.fdirAtr && !isPow2(cfg_.atrTableSize))
        fsim_fatal("ATR table size must be a power of two");
    if (cfg_.fdirAtr && cfg_.atrSampleRate <= 0)
        fsim_fatal("ATR sample rate must be positive");

    for (std::uint32_t i = 0; i < kIndirectionSize; ++i)
        indirection_[i] = static_cast<std::uint8_t>(i % cfg_.numQueues);

    if (cfg_.fdirAtr)
        atrTable_.resize(cfg_.atrTableSize);
}

std::uint32_t
Nic::atrCapacity() const
{
    if (atrClamp_ != 0 && atrClamp_ < cfg_.atrTableSize)
        return atrClamp_;
    return cfg_.atrTableSize;
}

void
Nic::atrRebuild(std::uint32_t new_slots)
{
    std::vector<AtrEntry> old = std::move(atrTable_);
    atrTable_.assign(cfg_.atrTableSize, AtrEntry{});
    for (const AtrEntry &e : old) {
        if (!e.valid)
            continue;
        AtrEntry &slot = atrTable_[e.signature & (new_slots - 1)];
        if (slot.valid)
            ++atrEvictions_;   // collision in the shrunken index space
        slot = e;
    }
}

void
Nic::setAtrCapacityClamp(std::uint32_t entries)
{
    if (!cfg_.fdirAtr)
        return;
    if (entries != 0 && !isPow2(entries))
        fsim_fatal("ATR capacity clamp must be a power of two");
    if (entries == atrClamp_)
        return;
    atrClamp_ = entries;
    atrRebuild(atrCapacity());
}

int
Nic::rssQueue(const FiveTuple &t) const
{
    return indirection_[flowHash(t) % kIndirectionSize];
}

int
Nic::classifyRx(const Packet &pkt)
{
    int queue = -1;

    // Perfect filters have the highest match priority. The programmed rule
    // is RFD's: active incoming packets (source port in the well-known
    // range, i.e. replies from origin servers) are steered by the port
    // hash encoded in the destination port.
    if (cfg_.fdirPerfect && pkt.tuple.sport <= kWellKnownPortMax) {
        int q = pkt.tuple.dport & cfg_.perfectPortMask;
        if (q < cfg_.numQueues) {
            queue = q;
            ++perfectHits_;
        }
    }

    if (queue < 0 && cfg_.fdirAtr) {
        std::uint32_t h = flowHash(pkt.tuple);
        const AtrEntry &e = atrTable_[h & (atrCapacity() - 1)];
        if (e.valid && e.signature == h) {
            queue = e.queue;
            ++atrHits_;
        } else {
            ++rssFallbacks_;
        }
    }

    if (queue < 0)
        queue = rssQueue(pkt.tuple);

    ++rxCount_[queue];
    return queue;
}

void
Nic::noteTx(const Packet &pkt, int tx_queue)
{
    if (!cfg_.fdirAtr)
        return;
    // Like ixgbe's ATR: outgoing SYNs (connection setup) always try to
    // install a filter; other packets are sampled 1-in-atrSampleRate.
    ++txSampleCounter_;
    if (!pkt.has(kSyn) && txSampleCounter_ % cfg_.atrSampleRate != 0)
        return;

    // Key the entry on the tuple the *reply* will carry.
    std::uint32_t h = flowHash(pkt.tuple.reversed());
    AtrEntry &e = atrTable_[h & (atrCapacity() - 1)];
    if (e.valid && e.signature != h)
        ++atrEvictions_;
    e.valid = true;
    e.signature = h;
    e.queue = tx_queue;
    ++atrInstalls_;
}

} // namespace fsim
