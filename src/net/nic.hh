/**
 * @file
 * Model of a multi-queue NIC in the style of the Intel 82599.
 *
 * Implements the three RX steering mechanisms the paper evaluates:
 *
 *  - RSS: flow hash through a 128-entry indirection table.
 *  - FDir ATR (Application Target Routing): the NIC samples outgoing
 *    packets (one in every sampleRate) and installs flow->tx-queue entries
 *    in a finite signature table; matching RX packets bypass RSS. Because
 *    the table is sampled and finite, steering is best-effort (paper 2.2).
 *  - FDir Perfect-Filtering: a programmable rule; Fastsocket programs the
 *    RFD port-mask hash so active incoming packets land exactly on the core
 *    that owns the connection (paper 3.3).
 *
 * Queue q raises its interrupt on core q (1:1 affinity, as configured in
 * the paper's testbed, 4.1).
 */

#ifndef FSIM_NET_NIC_HH
#define FSIM_NET_NIC_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace fsim
{

/** RX steering configuration for a Nic. */
struct NicConfig
{
    int numQueues = 1;
    /** Enable FDir ATR sampling of TX packets. */
    bool fdirAtr = false;
    /** One in this many non-SYN TX packets installs an ATR flow entry
     *  (outgoing SYNs always install, like ixgbe's setup-triggered ATR). */
    int atrSampleRate = 20;
    /** ATR signature-table size (entries); power of two. Finite like the
     *  82599's flow director table, so concurrent flows evict each
     *  other — ATR stays best-effort (paper 2.2). */
    std::uint32_t atrTableSize = 8192;
    /** Enable the programmed Perfect-Filtering rule. */
    bool fdirPerfect = false;
    /** Port mask programmed by RFD: queue = dport & perfectPortMask. */
    Port perfectPortMask = 0;
};

/** Multi-queue NIC with RSS and FDir. */
class Nic
{
  public:
    explicit Nic(const NicConfig &cfg);

    /**
     * Classify an incoming packet to an RX queue.
     *
     * Order of precedence mirrors the 82599: Perfect filters, then the ATR
     * signature table, then RSS.
     */
    int classifyRx(const Packet &pkt);

    /**
     * Observe a transmitted packet leaving through @p tx_queue.
     *
     * In ATR mode this samples the flow and may install a signature entry
     * keyed on the *reverse* tuple, so replies come back to the sender's
     * queue.
     */
    void noteTx(const Packet &pkt, int tx_queue);

    /** RSS fallback classification (also used directly by tests). */
    int rssQueue(const FiveTuple &t) const;

    /**
     * Fault injection: clamp the effective ATR slot count to
     * min(atrTableSize, @p entries); 0 removes the clamp. @p entries must
     * be a power of two (or 0). Live entries are re-indexed into the
     * smaller table; the ones that collide are evicted on the spot, so a
     * churning flow set genuinely falls back to RSS (table exhaustion).
     */
    void setAtrCapacityClamp(std::uint32_t entries);

    /** Current effective ATR capacity (after any clamp). */
    std::uint32_t atrCapacity() const;

    int numQueues() const { return cfg_.numQueues; }
    const NicConfig &config() const { return cfg_; }

    /** @name Statistics */
    /** @{ */
    std::uint64_t rxCount(int queue) const { return rxCount_.at(queue); }
    std::uint64_t atrHits() const { return atrHits_; }
    std::uint64_t atrInstalls() const { return atrInstalls_; }
    std::uint64_t atrEvictions() const { return atrEvictions_; }
    /** RX packets that missed the ATR table and took the RSS path
     *  while ATR steering was enabled. */
    std::uint64_t rssFallbacks() const { return rssFallbacks_; }
    std::uint64_t perfectHits() const { return perfectHits_; }
    /** @} */

  private:
    struct AtrEntry
    {
        bool valid = false;
        std::uint32_t signature = 0;
        int queue = -1;
    };

    /** Re-home live entries after a capacity change (collisions evict). */
    void atrRebuild(std::uint32_t new_slots);

    NicConfig cfg_;
    std::vector<std::uint8_t> indirection_;   //!< RSS indirection table
    /** Direct-mapped ATR signature table, indexed h & (capacity-1). A
     *  colliding install replaces the slot's occupant — the least
     *  recently installed entry for that signature set. */
    std::vector<AtrEntry> atrTable_;
    std::uint32_t atrClamp_ = 0;              //!< 0 = no clamp
    std::uint64_t txSampleCounter_ = 0;
    std::vector<std::uint64_t> rxCount_;
    std::uint64_t atrHits_ = 0;
    std::uint64_t atrInstalls_ = 0;
    std::uint64_t atrEvictions_ = 0;
    std::uint64_t rssFallbacks_ = 0;
    std::uint64_t perfectHits_ = 0;
};

} // namespace fsim

#endif // FSIM_NET_NIC_HH
