#include "net/packet.hh"

#include <cstdio>

namespace fsim
{

std::uint32_t
flowHash(const FiveTuple &t)
{
    // A mixed 64-bit key run through a finalizer; stands in for the NIC's
    // Toeplitz hash. Must be deterministic and well distributed.
    std::uint64_t key =
        (static_cast<std::uint64_t>(t.saddr) << 32) ^ t.daddr;
    key ^= (static_cast<std::uint64_t>(t.sport) << 48) ^
           (static_cast<std::uint64_t>(t.dport) << 16);
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return static_cast<std::uint32_t>(key);
}

std::string
FiveTuple::str() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%u.%u:%u -> %u.%u:%u",
                  saddr >> 16, saddr & 0xffff, sport,
                  daddr >> 16, daddr & 0xffff, dport);
    return buf;
}

std::string
Packet::str() const
{
    std::string s = tuple.str();
    if (has(kSyn))
        s += " SYN";
    if (has(kAck))
        s += " ACK";
    if (has(kFin))
        s += " FIN";
    if (has(kRst))
        s += " RST";
    if (payload) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), " len=%u", payload);
        s += buf;
    }
    return s;
}

} // namespace fsim
