/**
 * @file
 * Packet and flow-identity types.
 *
 * Only the header fields that steering and TCP state transitions depend on
 * are modeled; payload is a byte count. The protocol is always TCP.
 */

#ifndef FSIM_NET_PACKET_HH
#define FSIM_NET_PACKET_HH

#include <cstdint>
#include <string>

namespace fsim
{

/** IPv4 address in host order. */
using IpAddr = std::uint32_t;
/** TCP port. */
using Port = std::uint16_t;

/** Last port of the well-known range (paper's RFD rule 1/2 boundary). */
constexpr Port kWellKnownPortMax = 1023;

/** TCP header flags. */
enum TcpFlag : std::uint8_t
{
    kSyn = 1 << 0,
    kAck = 1 << 1,
    kFin = 1 << 2,
    kRst = 1 << 3,
    kPsh = 1 << 4,
    /** "Connection: close" request-header analog carried on a data
     *  segment: the client tells a keep-alive server this is the flow's
     *  last request, so the server takes the active-close (TIME_WAIT)
     *  path after responding. Lets one server serve a mix of short- and
     *  long-lived connections. */
    kConnClose = 1 << 5,
};

/** Connection 4-tuple (TCP implied) as seen in a packet header. */
struct FiveTuple
{
    IpAddr saddr = 0;
    IpAddr daddr = 0;
    Port sport = 0;
    Port dport = 0;

    bool
    operator==(const FiveTuple &o) const
    {
        return saddr == o.saddr && daddr == o.daddr &&
               sport == o.sport && dport == o.dport;
    }

    /** The same flow seen from the other endpoint. */
    FiveTuple
    reversed() const
    {
        return FiveTuple{daddr, saddr, dport, sport};
    }

    std::string str() const;
};

/** Stateless 32-bit flow hash (Toeplitz stand-in) used by RSS and tables. */
std::uint32_t flowHash(const FiveTuple &t);

/** One TCP/IP packet on the simulated network. */
struct Packet
{
    FiveTuple tuple;
    std::uint8_t flags = 0;
    std::uint32_t payload = 0;   //!< TCP payload bytes
    std::uint64_t connId = 0;    //!< debugging / endpoint matching aid
    std::uint32_t cookie = 0;    //!< SYN-cookie echo (0 = none)
    std::uint32_t txSeq = 0;     //!< per-connection transmit ordinal
    /** Priority mark (the DSCP/SO_PRIORITY analog): health/control
     *  flows set it on every packet so overload defenses that drop at
     *  ingress — before any per-connection state exists — can still
     *  spare them. Not part of the payload; wire-fault content hashes
     *  ignore it. */
    bool prio = false;
    /** Distributed trace context (0 = none): stamped by the client on
     *  every packet of a request, carried across the balancer's NAT
     *  rewrite and inherited by server TCBs, so LB-side and
     *  machine-side spans stitch into one end-to-end trace. Like prio
     *  and connId, it is metadata: wire-fault content hashes and the
     *  delivery-sequence fingerprint both ignore it, so tracing can
     *  never change a packet's fate. */
    std::uint64_t traceId = 0;

    bool has(TcpFlag f) const { return flags & f; }
    std::string str() const;
};

} // namespace fsim

#endif // FSIM_NET_PACKET_HH
