#include "net/wire.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fsim
{

Wire::Wire(EventQueue &eq, Tick one_way_delay)
    : eq_(eq), delay_(one_way_delay)
{
}

void
Wire::attach(IpAddr addr, Endpoint handler)
{
    endpoints_[addr] = std::move(handler);
}

void
Wire::attachRange(IpAddr first, IpAddr last, Endpoint handler)
{
    fsim_assert(first <= last);
    ranges_.push_back(Range{first, last, std::move(handler)});
}

const Wire::Endpoint *
Wire::lookup(IpAddr addr) const
{
    auto it = endpoints_.find(addr);
    if (it != endpoints_.end())
        return &it->second;
    for (const Range &r : ranges_) {
        if (addr >= r.first && addr <= r.last)
            return &r.handler;
    }
    return nullptr;
}

void
Wire::addLink(const LinkSpec &spec)
{
    fsim_assert(spec.aFirst <= spec.aLast);
    fsim_assert(spec.bFirst <= spec.bLast);
    fsim_assert(spec.gbps > 0.0);
    Link l;
    l.spec = spec;
    // Integer serialization cost so same-seed runs are bit-identical:
    // ticks to put 1024 wire bytes on a gbps-rate line.
    l.ticksPer1024B = static_cast<Tick>(std::llround(
        static_cast<double>(ticksFromSeconds(1.0)) * 1024.0 * 8.0 /
        (spec.gbps * 1e9)));
    if (l.ticksPer1024B < 1)
        l.ticksPer1024B = 1;
    links_.push_back(l);
}

namespace
{

bool
inRange(IpAddr a, IpAddr first, IpAddr last)
{
    return a >= first && a <= last;
}

} // anonymous namespace

Tick
Wire::linkDelay(const Packet &pkt, Tick when)
{
    for (Link &l : links_) {
        int dir;
        if (inRange(pkt.tuple.saddr, l.spec.aFirst, l.spec.aLast) &&
            inRange(pkt.tuple.daddr, l.spec.bFirst, l.spec.bLast)) {
            dir = 0;
        } else if (inRange(pkt.tuple.saddr, l.spec.bFirst, l.spec.bLast) &&
                   inRange(pkt.tuple.daddr, l.spec.aFirst, l.spec.aLast)) {
            dir = 1;
        } else {
            continue;
        }
        // Payload plus Ethernet/IP/TCP framing; ceil over 1 KiB quanta.
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(pkt.payload) + 64;
        const Tick ser = static_cast<Tick>(
            (bytes * static_cast<std::uint64_t>(l.ticksPer1024B) + 1023) /
            1024);
        const Tick depart = std::max(when, l.busyUntil[dir]);
        linkQueuedTicks_ += depart - when;
        l.busyUntil[dir] = depart + ser;
        ++linkPackets_;
        return (depart - when) + ser + l.spec.latency;
    }
    return delay_;
}

void
Wire::setLossRate(double rate, std::uint64_t seed)
{
    fsim_assert(rate >= 0.0 && rate < 1.0);
    lossRate_ = rate;
    lossRng_ = Rng(seed);
}

void
Wire::addFaultWindow(const FaultWindow &w)
{
    fsim_assert(w.start < w.end);
    fsim_assert(w.lossRate >= 0.0 && w.lossRate < 1.0);
    fsim_assert(w.reorderRate >= 0.0 && w.reorderRate < 1.0);
    fsim_assert(w.dupRate >= 0.0 && w.dupRate < 1.0);
    faultWindows_.push_back(w);
}

void
Wire::addPartition(const PartitionSpec &p)
{
    fsim_assert(p.aFirst <= p.aLast);
    fsim_assert(p.bFirst <= p.bLast);
    fsim_assert(p.start < p.end);
    partitions_.push_back(p);
}

std::uint64_t
Wire::faultHash(const Packet &pkt, std::uint64_t salt) const
{
    // splitmix64 over packet identity. Deliberately excludes time so the
    // fate of a packet is invariant to when the sending kernel got around
    // to transmitting it.
    std::uint64_t x = faultSeed_ ^ (salt * 0x9e3779b97f4a7c15ULL);
    x ^= (static_cast<std::uint64_t>(pkt.tuple.saddr) << 32) |
         pkt.tuple.daddr;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= (static_cast<std::uint64_t>(pkt.tuple.sport) << 48) |
         (static_cast<std::uint64_t>(pkt.tuple.dport) << 32) |
         (static_cast<std::uint64_t>(pkt.flags) << 24) | pkt.txSeq;
    x *= 0x94d049bb133111ebULL;
    x ^= static_cast<std::uint64_t>(pkt.payload);
    x ^= x >> 31;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

bool
Wire::faultChance(const Packet &pkt, std::uint64_t salt, double rate) const
{
    if (rate <= 0.0)
        return false;
    // Top 53 bits -> uniform double in [0, 1).
    double u = static_cast<double>(faultHash(pkt, salt) >> 11) *
               (1.0 / 9007199254740992.0);
    return u < rate;
}

void
Wire::deliverAt(const Packet &pkt, Tick when)
{
    ++inFlight_;
    // Copying the handler pointer is unsafe if maps rehash; copy the
    // target address and re-resolve at delivery time instead.
    eq_.schedule(when, [this, pkt] {
        --inFlight_;
        const Endpoint *handler = lookup(pkt.tuple.daddr);
        if (!handler) {
            ++dropped_;
            return;
        }
        ++delivered_;
        seqHash_.mix(eq_.now());
        seqHash_.mix((static_cast<std::uint64_t>(pkt.tuple.saddr) << 32) |
                     pkt.tuple.daddr);
        seqHash_.mix((static_cast<std::uint64_t>(pkt.tuple.sport) << 48) |
                     (static_cast<std::uint64_t>(pkt.tuple.dport) << 32) |
                     (static_cast<std::uint64_t>(pkt.flags) << 24));
        seqHash_.mix(static_cast<std::uint64_t>(pkt.payload));
        (*handler)(pkt);
    });
}

void
Wire::transmit(const Packet &pkt, Tick when)
{
    ++transmitted_;
    const Endpoint *ep = lookup(pkt.tuple.daddr);
    if (!ep) {
        ++dropped_;
        return;
    }
    if (lossRate_ > 0.0 && lossRng_.chance(lossRate_)) {
        ++lost_;
        return;
    }
    for (const PartitionSpec &p : partitions_) {
        if (when < p.start || when >= p.end)
            continue;
        const bool ab = inRange(pkt.tuple.saddr, p.aFirst, p.aLast) &&
                        inRange(pkt.tuple.daddr, p.bFirst, p.bLast);
        const bool ba = inRange(pkt.tuple.saddr, p.bFirst, p.bLast) &&
                        inRange(pkt.tuple.daddr, p.aFirst, p.aLast);
        if (ab || ba) {
            ++lost_;
            ++partitionDropped_;
            return;
        }
    }
    // Combine all fault windows covering the transmit tick. Rates combine
    // via max so overlapping windows stay within [0, 1).
    double loss = 0.0, reorder = 0.0, dup = 0.0;
    Tick jitter = 0;
    for (const FaultWindow &w : faultWindows_) {
        if (when < w.start || when >= w.end)
            continue;
        if (w.lossRate > loss)
            loss = w.lossRate;
        if (w.reorderRate > reorder) {
            reorder = w.reorderRate;
            jitter = w.reorderJitter;
        }
        if (w.dupRate > dup)
            dup = w.dupRate;
    }
    if (faultChance(pkt, 0x1055, loss)) {
        ++lost_;
        return;
    }
    Tick extra = 0;
    if (faultChance(pkt, 0x4e04de4, reorder) && jitter > 0)
        extra = 1 + static_cast<Tick>(faultHash(pkt, 0x1177e4) %
                                      static_cast<std::uint64_t>(jitter));
    // One link-horizon charge per packet even when duplicated: the dup
    // is a fault artifact, not a second serialization.
    const Tick path = links_.empty() ? delay_ : linkDelay(pkt, when);
    deliverAt(pkt, when + path + extra);
    if (faultChance(pkt, 0xd0bbe1, dup)) {
        ++duplicated_;
        deliverAt(pkt, when + path + extra + 1);
    }
}

} // namespace fsim
