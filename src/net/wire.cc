#include "net/wire.hh"

#include "sim/logging.hh"

namespace fsim
{

Wire::Wire(EventQueue &eq, Tick one_way_delay)
    : eq_(eq), delay_(one_way_delay)
{
}

void
Wire::attach(IpAddr addr, Endpoint handler)
{
    endpoints_[addr] = std::move(handler);
}

void
Wire::attachRange(IpAddr first, IpAddr last, Endpoint handler)
{
    fsim_assert(first <= last);
    ranges_.push_back(Range{first, last, std::move(handler)});
}

const Wire::Endpoint *
Wire::lookup(IpAddr addr) const
{
    auto it = endpoints_.find(addr);
    if (it != endpoints_.end())
        return &it->second;
    for (const Range &r : ranges_) {
        if (addr >= r.first && addr <= r.last)
            return &r.handler;
    }
    return nullptr;
}

void
Wire::setLossRate(double rate, std::uint64_t seed)
{
    fsim_assert(rate >= 0.0 && rate < 1.0);
    lossRate_ = rate;
    lossRng_ = Rng(seed);
}

void
Wire::transmit(const Packet &pkt, Tick when)
{
    ++transmitted_;
    const Endpoint *ep = lookup(pkt.tuple.daddr);
    if (!ep) {
        ++dropped_;
        return;
    }
    if (lossRate_ > 0.0 && lossRng_.chance(lossRate_)) {
        ++lost_;
        return;
    }
    // Copy the handler pointer is unsafe if maps rehash; copy the target
    // address and re-resolve at delivery time instead.
    Packet copy = pkt;
    ++inFlight_;
    eq_.schedule(when + delay_, [this, copy] {
        --inFlight_;
        const Endpoint *handler = lookup(copy.tuple.daddr);
        if (!handler) {
            ++dropped_;
            return;
        }
        ++delivered_;
        seqHash_.mix(eq_.now());
        seqHash_.mix((static_cast<std::uint64_t>(copy.tuple.saddr) << 32) |
                     copy.tuple.daddr);
        seqHash_.mix((static_cast<std::uint64_t>(copy.tuple.sport) << 48) |
                     (static_cast<std::uint64_t>(copy.tuple.dport) << 32) |
                     (static_cast<std::uint64_t>(copy.flags) << 24));
        seqHash_.mix(static_cast<std::uint64_t>(copy.payload));
        (*handler)(copy);
    });
}

} // namespace fsim
