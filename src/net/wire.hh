/**
 * @file
 * The simulated network fabric between machines/endpoints.
 *
 * The wire delivers packets to the endpoint registered for the destination
 * IP after a fixed one-way delay. Bandwidth is not a bottleneck in the
 * paper's short-lived-connection experiments (64 B pages on 10GbE), so the
 * default wire models latency only.
 *
 * For fleet topologies (src/fleet) the same fabric generalizes two ways:
 *  - addLink() declares a directed pair of address ranges with their own
 *    propagation latency and line rate; packets crossing a link pay
 *    store-and-forward serialization against a per-direction busy horizon
 *    instead of the flat delay. With no links configured behavior is
 *    bit-identical to the historical latency-only wire.
 *  - attach/attachRange/transmit are virtual so a per-machine NetPort can
 *    interpose (TX gating for crashed machines) while the kernel keeps
 *    talking to a plain Wire*.
 */

#ifndef FSIM_NET_WIRE_HH
#define FSIM_NET_WIRE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "check/fingerprint.hh"
#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fsim
{

/** Latency-only packet fabric. */
class Wire
{
  public:
    using Endpoint = std::function<void(const Packet &)>;

    /**
     * @param eq Driving event queue.
     * @param one_way_delay Propagation delay per direction, in ticks.
     */
    Wire(EventQueue &eq, Tick one_way_delay);
    virtual ~Wire() = default;

    /** Attach the receive handler for a destination IP. Re-attaching an
     *  address overwrites the previous handler (machine restart relies
     *  on this). */
    virtual void attach(IpAddr addr, Endpoint handler);

    /** Attach one handler for a contiguous range [first, last]. */
    virtual void attachRange(IpAddr first, IpAddr last, Endpoint handler);

    /** Driving event queue (NetPort forwards onto its fabric's queue). */
    EventQueue &eventQueue() { return eq_; }

    /**
     * A directed link between two address sets: packets with
     * saddr in [aFirst, aLast] and daddr in [bFirst, bLast] (or the
     * reverse) traverse it, paying @p latency plus serialization at
     * @p gbps against a per-direction busy horizon (store-and-forward;
     * back-to-back packets queue behind each other). First matching
     * link wins. Packets matching no link use the flat default delay.
     */
    struct LinkSpec
    {
        IpAddr aFirst = 0;
        IpAddr aLast = 0;
        IpAddr bFirst = 0;
        IpAddr bLast = 0;
        Tick latency = 0;
        double gbps = 10.0;
    };

    void addLink(const LinkSpec &spec);

    /**
     * Drop each packet independently with probability @p rate (failure
     * injection; 0 disables). Deterministic given the seed.
     */
    void setLossRate(double rate, std::uint64_t seed = 99);

    /**
     * A scheduled wire-fault window [start, end): packets transmitted
     * inside it are subject to loss / reordering / duplication.
     *
     * Unlike setLossRate()'s sequential RNG draw, window fates are pure
     * content hashes of the packet (tuple, flags, payload, txSeq) and the
     * fault seed. The fate of a given packet therefore does not depend on
     * how many other packets preceded it, which keeps fates identical
     * across kernels that interleave transmissions differently — the
     * property the differential oracle relies on.
     */
    struct FaultWindow
    {
        Tick start = 0;
        Tick end = 0;
        double lossRate = 0.0;    //!< drop probability
        double reorderRate = 0.0; //!< extra-delay probability
        double dupRate = 0.0;     //!< duplicate-delivery probability
        Tick reorderJitter = 0;   //!< max extra delay for reordered packets
    };

    void addFaultWindow(const FaultWindow &w);

    /**
     * A scheduled network partition: while [start, end) is open, every
     * packet between address set A and address set B (either direction)
     * vanishes on the wire. Unlike a fault window's probabilistic loss
     * this is total — the severed-link / misprogrammed-ACL failure mode
     * — and it heals by itself when the window closes. In-flight
     * packets that departed before the cut still arrive (the partition
     * is evaluated at transmit time, like the fault windows).
     */
    struct PartitionSpec
    {
        IpAddr aFirst = 0;
        IpAddr aLast = 0;
        IpAddr bFirst = 0;
        IpAddr bLast = 0;
        Tick start = 0;
        Tick end = 0;
    };

    void addPartition(const PartitionSpec &p);

    /** Packets blackholed by an open partition window (also counted
     *  in lost() so packet conservation holds unchanged). */
    std::uint64_t partitionDropped() const { return partitionDropped_; }

    /** Seed folded into every content-hash fault decision. */
    void setFaultSeed(std::uint64_t seed) { faultSeed_ = seed; }

    /**
     * Transmit @p pkt at tick @p when (>= now).
     *
     * Delivery happens at @p when + delay. Packets to unknown addresses
     * are dropped and counted.
     */
    virtual void transmit(const Packet &pkt, Tick when);

    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t lost() const { return lost_; }
    /** Extra copies created by duplicate-fault windows. */
    std::uint64_t duplicated() const { return duplicated_; }
    Tick delay() const { return delay_; }

    /** @name Conservation + determinism instrumentation (src/check) */
    /** @{ */
    /** Packets handed to transmit(), before any drop/loss decision. */
    std::uint64_t transmitted() const { return transmitted_; }
    /** Packets scheduled on the wire but not yet delivered/dropped. */
    std::uint64_t inFlight() const { return inFlight_; }
    /**
     * Rolling hash over the delivery sequence: every delivered packet's
     * (tick, tuple, flags, payload) in delivery order. Two same-seed
     * runs must agree on this value bit-for-bit; tracing must never
     * perturb it.
     */
    std::uint64_t seqHash() const { return seqHash_.value(); }
    /** Packets that crossed a configured link. */
    std::uint64_t linkPackets() const { return linkPackets_; }
    /** Total ticks packets waited behind a busy link direction. */
    std::uint64_t linkQueuedTicks() const { return linkQueuedTicks_; }
    /** @} */

  private:
    const Endpoint *lookup(IpAddr addr) const;
    Tick linkDelay(const Packet &pkt, Tick when);
    void deliverAt(const Packet &pkt, Tick when);
    std::uint64_t faultHash(const Packet &pkt, std::uint64_t salt) const;
    bool faultChance(const Packet &pkt, std::uint64_t salt,
                     double rate) const;

    struct Range
    {
        IpAddr first;
        IpAddr last;
        Endpoint handler;
    };

    struct Link
    {
        LinkSpec spec;
        Tick ticksPer1024B = 0;  //!< serialization cost, integer math
        Tick busyUntil[2] = {0, 0};   //!< per-direction line horizon
    };

    EventQueue &eq_;
    Tick delay_;
    double lossRate_ = 0.0;
    Rng lossRng_{99};
    std::vector<FaultWindow> faultWindows_;
    std::vector<PartitionSpec> partitions_;
    std::uint64_t partitionDropped_ = 0;
    std::uint64_t faultSeed_ = 0;
    std::unordered_map<IpAddr, Endpoint> endpoints_;
    std::vector<Range> ranges_;
    std::vector<Link> links_;
    std::uint64_t linkPackets_ = 0;
    std::uint64_t linkQueuedTicks_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t transmitted_ = 0;
    std::uint64_t inFlight_ = 0;
    Fingerprint seqHash_;
};

} // namespace fsim

#endif // FSIM_NET_WIRE_HH
