/**
 * @file
 * The simulated network fabric between machines/endpoints.
 *
 * The wire delivers packets to the endpoint registered for the destination
 * IP after a fixed one-way delay. Bandwidth is not a bottleneck in the
 * paper's short-lived-connection experiments (64 B pages on 10GbE), so the
 * wire models latency only.
 */

#ifndef FSIM_NET_WIRE_HH
#define FSIM_NET_WIRE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "check/fingerprint.hh"
#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fsim
{

/** Latency-only packet fabric. */
class Wire
{
  public:
    using Endpoint = std::function<void(const Packet &)>;

    /**
     * @param eq Driving event queue.
     * @param one_way_delay Propagation delay per direction, in ticks.
     */
    Wire(EventQueue &eq, Tick one_way_delay);

    /** Attach the receive handler for a destination IP. */
    void attach(IpAddr addr, Endpoint handler);

    /** Attach one handler for a contiguous range [first, last]. */
    void attachRange(IpAddr first, IpAddr last, Endpoint handler);

    /**
     * Drop each packet independently with probability @p rate (failure
     * injection; 0 disables). Deterministic given the seed.
     */
    void setLossRate(double rate, std::uint64_t seed = 99);

    /**
     * A scheduled wire-fault window [start, end): packets transmitted
     * inside it are subject to loss / reordering / duplication.
     *
     * Unlike setLossRate()'s sequential RNG draw, window fates are pure
     * content hashes of the packet (tuple, flags, payload, txSeq) and the
     * fault seed. The fate of a given packet therefore does not depend on
     * how many other packets preceded it, which keeps fates identical
     * across kernels that interleave transmissions differently — the
     * property the differential oracle relies on.
     */
    struct FaultWindow
    {
        Tick start = 0;
        Tick end = 0;
        double lossRate = 0.0;    //!< drop probability
        double reorderRate = 0.0; //!< extra-delay probability
        double dupRate = 0.0;     //!< duplicate-delivery probability
        Tick reorderJitter = 0;   //!< max extra delay for reordered packets
    };

    void addFaultWindow(const FaultWindow &w);

    /** Seed folded into every content-hash fault decision. */
    void setFaultSeed(std::uint64_t seed) { faultSeed_ = seed; }

    /**
     * Transmit @p pkt at tick @p when (>= now).
     *
     * Delivery happens at @p when + delay. Packets to unknown addresses
     * are dropped and counted.
     */
    void transmit(const Packet &pkt, Tick when);

    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t lost() const { return lost_; }
    /** Extra copies created by duplicate-fault windows. */
    std::uint64_t duplicated() const { return duplicated_; }
    Tick delay() const { return delay_; }

    /** @name Conservation + determinism instrumentation (src/check) */
    /** @{ */
    /** Packets handed to transmit(), before any drop/loss decision. */
    std::uint64_t transmitted() const { return transmitted_; }
    /** Packets scheduled on the wire but not yet delivered/dropped. */
    std::uint64_t inFlight() const { return inFlight_; }
    /**
     * Rolling hash over the delivery sequence: every delivered packet's
     * (tick, tuple, flags, payload) in delivery order. Two same-seed
     * runs must agree on this value bit-for-bit; tracing must never
     * perturb it.
     */
    std::uint64_t seqHash() const { return seqHash_.value(); }
    /** @} */

  private:
    const Endpoint *lookup(IpAddr addr) const;
    void deliverAt(const Packet &pkt, Tick when);
    std::uint64_t faultHash(const Packet &pkt, std::uint64_t salt) const;
    bool faultChance(const Packet &pkt, std::uint64_t salt,
                     double rate) const;

    struct Range
    {
        IpAddr first;
        IpAddr last;
        Endpoint handler;
    };

    EventQueue &eq_;
    Tick delay_;
    double lossRate_ = 0.0;
    Rng lossRng_{99};
    std::vector<FaultWindow> faultWindows_;
    std::uint64_t faultSeed_ = 0;
    std::unordered_map<IpAddr, Endpoint> endpoints_;
    std::vector<Range> ranges_;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t transmitted_ = 0;
    std::uint64_t inFlight_ = 0;
    Fingerprint seqHash_;
};

} // namespace fsim

#endif // FSIM_NET_WIRE_HH
