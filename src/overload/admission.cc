#include "overload/admission.hh"

#include "sim/logging.hh"

namespace fsim
{

AdmissionController::AdmissionController(const OverloadConfig &cfg,
                                         const PressureState *pressure,
                                         int workers)
    : cfg_(cfg), pressure_(pressure),
      inflight_(static_cast<std::size_t>(workers > 0 ? workers : 1), 0)
{
}

AdmitDecision
AdmissionController::decide(int worker, AdmitClass cls, Tick sojourn)
{
    fsim_assert(worker >= 0 &&
                static_cast<std::size_t>(worker) < inflight_.size());
    ++offered_;
    if (cls == AdmitClass::kHealth)
        ++healthOffered_;

    // Health/control traffic is exempt from every admission policy: a
    // load balancer that cannot reach its health endpoint under load
    // will eject the very server that is still doing useful work.
    if (cls != AdmitClass::kHealth) {
        if (cfg_.queueDeadline > 0 && sojourn > cfg_.queueDeadline) {
            // The client already waited longer than the deadline in the
            // accept queue; odds are it gave up (or will before the
            // response lands). Serving it is wasted work — shed.
            ++shedDeadline_;
            lastShedReason_ = ShedReason::kDeadline;
            return AdmitDecision::kShed;
        }
        if (cfg_.workerCap > 0 &&
            inflight_[static_cast<std::size_t>(worker)] >=
                static_cast<std::uint64_t>(cfg_.workerCap)) {
            ++shedWorkerCap_;
            lastShedReason_ = ShedReason::kWorkerCap;
            return AdmitDecision::kShed;
        }
        PressureLevel lvl = pressure_ ? pressure_->level()
                                      : PressureLevel::kNominal;
        if (lvl == PressureLevel::kCritical) {
            ++shedPressure_;
            lastShedReason_ = ShedReason::kPressure;
            return AdmitDecision::kShed;
        }
        if (lvl == PressureLevel::kElevated && cfg_.brownout) {
            ++degraded_;
            ++inflight_[static_cast<std::size_t>(worker)];
            return AdmitDecision::kDegrade;
        }
    }

    ++admitted_;
    if (cls == AdmitClass::kHealth)
        ++healthAdmitted_;
    ++inflight_[static_cast<std::size_t>(worker)];
    return AdmitDecision::kAdmit;
}

void
AdmissionController::release(int worker)
{
    fsim_assert(worker >= 0 &&
                static_cast<std::size_t>(worker) < inflight_.size());
    std::uint64_t &n = inflight_[static_cast<std::size_t>(worker)];
    if (n == 0) {
        ++releaseUnderflows_;
        return;
    }
    --n;
    ++released_;
}

std::uint64_t
AdmissionController::inflight(int worker) const
{
    return inflight_.at(static_cast<std::size_t>(worker));
}

std::uint64_t
AdmissionController::inflightTotal() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : inflight_)
        total += n;
    return total;
}

} // namespace fsim
