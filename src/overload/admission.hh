/**
 * @file
 * Application-level admission controller.
 *
 * Consulted once per accepted connection, the controller decides between
 * full service, degraded (brownout) service, and an immediate shed. A
 * shed closes the connection without a response — the client observes a
 * fast failure (the 503-equivalent), which is what keeps the offered
 * load from wedging behind queues that would time every request out.
 *
 * The controller is also the bookkeeping anchor of the overload
 * conservation invariant: every offered connection is admitted, degraded
 * or shed, and every (admitted + degraded) connection is eventually
 * released exactly once — none lost, none double-counted.
 */

#ifndef FSIM_OVERLOAD_ADMISSION_HH
#define FSIM_OVERLOAD_ADMISSION_HH

#include <cstdint>
#include <vector>

#include "overload/overload_config.hh"
#include "overload/pressure.hh"
#include "sim/types.hh"

namespace fsim
{

/** Priority class of an arriving connection. */
enum class AdmitClass : std::uint8_t
{
    kNormal = 0,
    kHealth,    //!< health/control traffic; survives sheds
};

/** What to do with an accepted connection. */
enum class AdmitDecision : std::uint8_t
{
    kAdmit = 0,     //!< full service
    kDegrade,       //!< serve the cheap brownout response
    kShed,          //!< close immediately, no response
};

/** Why a connection was shed (for counters/trace). */
enum class ShedReason : std::uint8_t
{
    kDeadline = 0,  //!< accept-queue sojourn exceeded the deadline
    kWorkerCap,     //!< per-worker concurrency cap reached
    kPressure,      //!< machine pressure critical
};

/** Per-machine admission controller (all workers share the counters). */
class AdmissionController
{
  public:
    AdmissionController(const OverloadConfig &cfg,
                        const PressureState *pressure, int workers);

    bool enabled() const { return cfg_.enabled; }

    /**
     * Decide the fate of a connection accepted by @p worker whose
     * accept-queue sojourn was @p sojourn ticks. Increments offered and
     * the decision counter; the caller must follow through (serve,
     * serve degraded, or close) and call release() when an admitted or
     * degraded connection leaves service.
     */
    AdmitDecision decide(int worker, AdmitClass cls, Tick sojourn);

    /** An admitted/degraded connection finished (served, failed, or
     *  closed by the peer). */
    void release(int worker);

    /** @name Counters */
    /** @{ */
    std::uint64_t offered() const { return offered_; }
    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t degraded() const { return degraded_; }
    std::uint64_t shed() const
    {
        return shedDeadline_ + shedWorkerCap_ + shedPressure_;
    }
    std::uint64_t shedDeadline() const { return shedDeadline_; }
    std::uint64_t shedWorkerCap() const { return shedWorkerCap_; }
    std::uint64_t shedPressure() const { return shedPressure_; }
    std::uint64_t released() const { return released_; }
    std::uint64_t healthOffered() const { return healthOffered_; }
    std::uint64_t healthAdmitted() const { return healthAdmitted_; }
    /** release() calls with no in-flight connection (always a bug). */
    std::uint64_t releaseUnderflows() const { return releaseUnderflows_; }
    /** Reason behind the most recent kShed decision (for span trace
     *  attribution; meaningful only right after decide() returned
     *  kShed). */
    ShedReason lastShedReason() const { return lastShedReason_; }
    /** Currently admitted-but-unreleased connections of @p worker. */
    std::uint64_t inflight(int worker) const;
    std::uint64_t inflightTotal() const;
    /** @} */

  private:
    OverloadConfig cfg_;
    const PressureState *pressure_;
    std::vector<std::uint64_t> inflight_;

    std::uint64_t offered_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t degraded_ = 0;
    std::uint64_t shedDeadline_ = 0;
    std::uint64_t shedWorkerCap_ = 0;
    std::uint64_t shedPressure_ = 0;
    std::uint64_t released_ = 0;
    std::uint64_t healthOffered_ = 0;
    std::uint64_t healthAdmitted_ = 0;
    std::uint64_t releaseUnderflows_ = 0;
    ShedReason lastShedReason_ = ShedReason::kDeadline;
};

} // namespace fsim

#endif // FSIM_OVERLOAD_ADMISSION_HH
