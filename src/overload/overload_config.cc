#include "overload/overload_config.hh"

#include <cstdio>
#include <cstdlib>

namespace fsim
{

namespace
{

bool
splitKv(const std::string &tok, std::string &key, std::string &val)
{
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
        return false;
    key = tok.substr(0, eq);
    val = tok.substr(eq + 1);
    return true;
}

bool
parseNum(const std::string &val, double &out)
{
    char *end = nullptr;
    out = std::strtod(val.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

bool
parseOverloadSpec(const std::string &text, OverloadConfig &cfg,
                  std::string &err)
{
    if (text.empty()) {
        err = "empty overload spec";
        return false;
    }
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t comma = text.find(',', pos);
        std::string tok = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? text.size() : comma + 1;
        if (tok.empty())
            continue;

        std::string key, val;
        double num = 0.0;
        if (!splitKv(tok, key, val) || !parseNum(val, num)) {
            err = "malformed token '" + tok + "' (want key=number)";
            return false;
        }
        if (num < 0.0) {
            err = "negative value in '" + tok + "'";
            return false;
        }

        if (key == "budget")
            cfg.softirqBudget = static_cast<std::size_t>(num);
        else if (key == "gate")
            cfg.synGate = static_cast<std::size_t>(num);
        else if (key == "deadline_ms")
            cfg.queueDeadline = ticksFromMsec(num);
        else if (key == "deadline_us")
            cfg.queueDeadline = ticksFromUsec(num);
        else if (key == "cap")
            cfg.workerCap = static_cast<int>(num);
        else if (key == "brownout")
            cfg.brownout = num != 0.0;
        else if (key == "brownout_bytes")
            cfg.brownoutBytes = static_cast<std::uint32_t>(num);
        else if (key == "brownout_divisor")
            cfg.brownoutCostDivisor = static_cast<std::uint32_t>(num);
        else if (key == "health_bytes")
            cfg.healthRequestBytes = static_cast<std::uint32_t>(num);
        else if (key == "high")
            cfg.acceptHighWatermark = num;
        else if (key == "critical")
            cfg.acceptCriticalWatermark = num;
        else if (key == "low")
            cfg.acceptLowWatermark = num;
        else {
            err = "unknown overload key '" + key + "'";
            return false;
        }
        cfg.enabled = true;
    }
    if (cfg.acceptLowWatermark >= cfg.acceptHighWatermark ||
        cfg.acceptHighWatermark > cfg.acceptCriticalWatermark) {
        err = "watermarks must satisfy low < high <= critical";
        return false;
    }
    if (cfg.brownoutCostDivisor == 0) {
        err = "brownout_divisor must be >= 1";
        return false;
    }
    return true;
}

std::string
serializeOverloadSpec(const OverloadConfig &cfg)
{
    if (!cfg.enabled)
        return "";
    // Every knob, round-trippable: parse(serialize(cfg)) == cfg, so a
    // printed reproducer command rebuilds the exact configuration.
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "budget=%zu,gate=%zu,deadline_us=%.0f,cap=%d,"
                  "brownout=%d,brownout_bytes=%u,brownout_divisor=%u,"
                  "health_bytes=%u,high=%g,critical=%g,low=%g",
                  cfg.softirqBudget, cfg.synGate,
                  static_cast<double>(cfg.queueDeadline) /
                      (kCoreHz / 1e6),
                  cfg.workerCap, cfg.brownout ? 1 : 0, cfg.brownoutBytes,
                  cfg.brownoutCostDivisor, cfg.healthRequestBytes,
                  cfg.acceptHighWatermark, cfg.acceptCriticalWatermark,
                  cfg.acceptLowWatermark);
    return buf;
}

} // namespace fsim
