/**
 * @file
 * Overload-control configuration: the knobs of the graceful-degradation
 * subsystem (kernel pressure signals + app-level admission control).
 *
 * Everything defaults to *off* so legacy experiments are bit-identical;
 * `enabled` is the master switch the harness copies into the machine
 * config and the kernel/app layers consult.
 *
 * The design follows the classic shed-don't-collapse playbook:
 *
 *  - a netdev_max_backlog-style per-core SoftIRQ budget bounds how much
 *    packet work can queue ahead of the application (drops are nearly
 *    free; unbounded queues are not),
 *  - accept-queue occupancy watermarks raise a machine-wide pressure
 *    level with hysteresis,
 *  - an admission controller sheds (or serves degraded "brownout"
 *    responses for) accepted connections whose queueing delay already
 *    exceeded a deadline or that arrive while a worker is saturated,
 *    sparing a configurable health/control priority class.
 */

#ifndef FSIM_OVERLOAD_OVERLOAD_CONFIG_HH
#define FSIM_OVERLOAD_OVERLOAD_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace fsim
{

/** All overload-control knobs of one machine + application. */
struct OverloadConfig
{
    /** Master switch; false keeps every legacy code path untouched. */
    bool enabled = false;

    /** @name Kernel pressure signals */
    /** @{ */
    /**
     * Per-core SoftIRQ backlog budget (netdev_max_backlog with a
     * SYN-first discard policy). When a *new-connection* SYN arrives
     * for a core whose SoftIRQ task queue is already this deep, the
     * SYN is dropped at "NIC ring" level — before any cycle is charged
     * — and accounted in KernelStats::backlogDropped. Only new work is
     * refused: dropping a request/ACK/FIN would wedge a connection the
     * kernel has already invested in (give-up clients do not
     * retransmit), turning admitted work into waste exactly when
     * cycles are scarcest. Priority-marked packets (Packet::prio) are
     * exempt, like DSCP-aware ingress queueing: failing a health probe
     * under load gets the server ejected while it is still doing
     * useful work. 0 = unbounded (stock behavior).
     */
    std::size_t softirqBudget = 0;
    /**
     * SYN ingress gate (the receive-livelock defense): a non-priority
     * SYN that finds its listener's accept queue already this deep is
     * dropped right after the listener lookup — before any TCB, SYN
     * queue entry, SYN-ACK, or accept-path work. Bounding the queue at
     * the ingress is what keeps the *handshake* work of doomed
     * connections from eating the CPU that should serve admitted ones;
     * app-level shedding alone cannot win that fight, because by the
     * time accept() returns the kernel has already paid for the
     * connection. Per accept queue (a per-core listener in Fastsocket
     * mode gates on its own queue). Priority-marked flows (health
     * probes) always pass. 0 = off.
     */
    std::size_t synGate = 0;
    /** Accept-queue occupancy (fraction of backlog) that raises the
     *  pressure level to elevated. */
    double acceptHighWatermark = 0.5;
    /** Occupancy that raises the level to critical. */
    double acceptCriticalWatermark = 0.9;
    /** Occupancy below which pressure returns to nominal (hysteresis:
     *  must be below acceptHighWatermark). */
    double acceptLowWatermark = 0.25;
    /** @} */

    /** @name Admission control (applications) */
    /** @{ */
    /**
     * Queue-deadline shed (CoDel-flavored): a connection whose sojourn
     * in the accept queue already exceeds this deadline is closed
     * immediately after accept() — its client has been waiting so long
     * that serving it would likely be wasted work. 0 = off.
     */
    Tick queueDeadline = 0;
    /**
     * Per-worker cap on concurrently admitted sessions (proxy: in-flight
     * backend legs). Arrivals beyond the cap are shed early — the fast
     * 503-equivalent — instead of queueing behind a saturated backend.
     * 0 = off.
     */
    int workerCap = 0;
    /** Serve degraded responses (below) while pressure is elevated
     *  instead of shedding; shedding still applies at critical. */
    bool brownout = false;
    /** Degraded response size (brownout mode). */
    std::uint32_t brownoutBytes = 16;
    /** Service cost divisor of a degraded response (cheap static page
     *  instead of full request handling). */
    std::uint32_t brownoutCostDivisor = 4;
    /**
     * Request size (bytes) the load generator uses for health-probe
     * connections. Classification itself rides on the packet priority
     * mark (Packet::prio, the DSCP/SO_PRIORITY analog) that probes set
     * on their whole flow: the SYN gate, the admission controller, and
     * the brownout path all spare marked traffic.
     */
    std::uint32_t healthRequestBytes = 0;
    /** @} */
};

/**
 * Parse a textual overload spec (`--overload=` flag), e.g.
 *
 *   "budget=256,gate=96,deadline_ms=5,cap=64,brownout=1,health_bytes=32"
 *
 * Keys: budget, gate, deadline_ms, deadline_us, cap, brownout,
 * brownout_bytes, brownout_divisor, health_bytes, high, critical, low.
 * Any key present sets enabled=true. Returns false and fills @p err on a
 * malformed spec.
 */
bool parseOverloadSpec(const std::string &text, OverloadConfig &cfg,
                       std::string &err);

/** Render @p cfg back into the spec grammar ("" when disabled). */
std::string serializeOverloadSpec(const OverloadConfig &cfg);

} // namespace fsim

#endif // FSIM_OVERLOAD_OVERLOAD_CONFIG_HH
