#include "overload/pressure.hh"

namespace fsim
{

const char *
pressureLevelName(PressureLevel l)
{
    switch (l) {
      case PressureLevel::kNominal:  return "nominal";
      case PressureLevel::kElevated: return "elevated";
      case PressureLevel::kCritical: return "critical";
    }
    return "?";
}

PressureState::PressureState(const OverloadConfig &cfg)
    : cfg_(cfg)
{
}

void
PressureState::setLevel(PressureLevel l)
{
    if (l == level_)
        return;
    level_ = l;
    ++transitions_;
    if (static_cast<int>(l) > static_cast<int>(peak_))
        peak_ = l;
}

void
PressureState::noteAcceptQueue(std::size_t depth, std::size_t backlog)
{
    if (!cfg_.enabled || backlog == 0)
        return;
    if (depth > acceptPeak_)
        acceptPeak_ = depth;
    double occ = static_cast<double>(depth) /
                 static_cast<double>(backlog);
    // Hysteresis: escalation is immediate, release only once the queue
    // drains below the low watermark — a queue oscillating around the
    // high watermark must not flap the admission policy per packet.
    if (occ >= cfg_.acceptCriticalWatermark) {
        setLevel(PressureLevel::kCritical);
    } else if (occ >= cfg_.acceptHighWatermark) {
        if (level_ != PressureLevel::kCritical)
            setLevel(PressureLevel::kElevated);
    } else if (occ <= cfg_.acceptLowWatermark) {
        setLevel(PressureLevel::kNominal);
    } else if (level_ == PressureLevel::kCritical) {
        // Between low and high: critical de-escalates to elevated.
        setLevel(PressureLevel::kElevated);
    }
}

void
PressureState::noteBacklogDrop()
{
    ++backlogDrops_;
}

void
PressureState::noteSoftirqDepth(std::size_t depth)
{
    if (depth > softirqPeak_)
        softirqPeak_ = depth;
}

} // namespace fsim
