/**
 * @file
 * Machine-wide pressure state fed by the kernel's overload signals.
 *
 * The kernel reports accept-queue occupancy at every push/pop and every
 * SoftIRQ-budget drop; PressureState condenses those raw signals into a
 * three-level pressure reading with hysteresis that the admission
 * controller consults on each accepted connection. Everything here is
 * simulated state (it feeds admission decisions, which change behavior),
 * so updates must be deterministic and independent of tracing.
 */

#ifndef FSIM_OVERLOAD_PRESSURE_HH
#define FSIM_OVERLOAD_PRESSURE_HH

#include <cstdint>

#include "overload/overload_config.hh"
#include "sim/types.hh"

namespace fsim
{

/** Discrete machine pressure level, highest signal wins. */
enum class PressureLevel : std::uint8_t
{
    kNominal = 0,   //!< queues shallow; admit everything
    kElevated,      //!< watermark crossed; brownout candidates degrade
    kCritical,      //!< near overflow; shed non-priority admissions
};

/** Stable lowercase level name ("nominal", "elevated", "critical"). */
const char *pressureLevelName(PressureLevel l);

/** Condensed pressure signals of one machine. */
class PressureState
{
  public:
    explicit PressureState(const OverloadConfig &cfg);

    /** @name Kernel-side signal feeds */
    /** @{ */
    /** Accept-queue occupancy changed: @p depth entries of @p backlog. */
    void noteAcceptQueue(std::size_t depth, std::size_t backlog);
    /** A packet was dropped by the per-core SoftIRQ budget. */
    void noteBacklogDrop();
    /** SoftIRQ queue depth observed at enqueue time (for the peak). */
    void noteSoftirqDepth(std::size_t depth);
    /** @} */

    PressureLevel level() const { return level_; }

    /** @name Counters (flow into the bench JSON overload block) */
    /** @{ */
    std::uint64_t backlogDrops() const { return backlogDrops_; }
    /** Level changes (any direction); determinism-fingerprinted. */
    std::uint64_t transitions() const { return transitions_; }
    /** Highest level ever reached. */
    PressureLevel peakLevel() const { return peak_; }
    std::size_t softirqDepthPeak() const { return softirqPeak_; }
    std::size_t acceptDepthPeak() const { return acceptPeak_; }
    /** @} */

  private:
    void setLevel(PressureLevel l);

    OverloadConfig cfg_;
    PressureLevel level_ = PressureLevel::kNominal;
    PressureLevel peak_ = PressureLevel::kNominal;
    std::uint64_t backlogDrops_ = 0;
    std::uint64_t transitions_ = 0;
    std::size_t softirqPeak_ = 0;
    std::size_t acceptPeak_ = 0;
};

} // namespace fsim

#endif // FSIM_OVERLOAD_PRESSURE_HH
