#include "overload/slo.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/incident_log.hh"

namespace fsim
{

SloTracker::SloTracker(const SloConfig &cfg) : cfg_(cfg)
{
    fsim_assert(cfg_.successObjective > 0.0 &&
                cfg_.successObjective < 1.0);
    fsim_assert(cfg_.fastWindows > 0 && cfg_.slowWindows > 0);
    SloObjective avail;
    avail.name = "availability";
    avail.errorBudget = 1.0 - cfg_.successObjective;
    objectives_.push_back(avail);
    if (cfg_.latencyObjective > 0) {
        fsim_assert(cfg_.latencyQuantile > 0.0 &&
                    cfg_.latencyQuantile < 1.0);
        SloObjective lat;
        lat.name = "latency";
        lat.errorBudget = 1.0 - cfg_.latencyQuantile;
        objectives_.push_back(lat);
    }
}

double
SloTracker::burnOver(const SloObjective &obj, int nwin)
{
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
    const int have = static_cast<int>(obj.windows.size());
    for (int i = std::max(0, have - nwin); i < have; ++i) {
        good += obj.windows[static_cast<std::size_t>(i)].first;
        bad += obj.windows[static_cast<std::size_t>(i)].second;
    }
    const std::uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    const double ratio =
        static_cast<double>(bad) / static_cast<double>(total);
    return ratio / obj.errorBudget;
}

void
SloTracker::evalArm(SloObjective &obj, Tick now, bool fast)
{
    const double burn = fast ? obj.fastBurn : obj.slowBurn;
    const double thresh =
        fast ? cfg_.fastBurnThreshold : cfg_.slowBurnThreshold;
    bool &active = fast ? obj.fastActive : obj.slowActive;
    int &incident = fast ? obj.fastIncident : obj.slowIncident;

    if (burn >= thresh && !active) {
        active = true;
        if (fast) {
            ++obj.fastAlerts;
            if (obj.firstFastAlert == 0)
                obj.firstFastAlert = now;
        } else {
            ++obj.slowAlerts;
            if (obj.firstSlowAlert == 0)
                obj.firstSlowAlert = now;
        }
        if (incidents_) {
            // One incident per firing: opened and detect-stamped at
            // the alert tick; target encodes objective + arm so no
            // machine/balancer stamp routing can touch it.
            const int idx = static_cast<int>(&obj - objectives_.data());
            const int target =
                kIncidentTargetBase + idx * 2 + (fast ? 0 : 1);
            incident = incidents_->open(IncidentKind::kSloBurn, target,
                                        now);
            incidents_->noteDetectById(incident, now);
        }
    } else if (burn < thresh && active) {
        active = false;
        if (incidents_ && incident >= 0) {
            incidents_->noteCleared(incident, now);
            incident = -1;
        }
    }
}

void
SloTracker::addWindow(Tick now, std::uint64_t ok, std::uint64_t failed,
                      std::uint64_t lat_misses)
{
    const int keep = std::max(cfg_.fastWindows, cfg_.slowWindows);
    for (SloObjective &obj : objectives_) {
        std::uint64_t bad;
        std::uint64_t good;
        if (obj.name == "availability") {
            bad = failed;
            good = ok;
        } else {
            bad = std::min(lat_misses, ok);
            good = ok - bad;
        }
        obj.windows.emplace_back(good, bad);
        if (static_cast<int>(obj.windows.size()) > keep)
            obj.windows.erase(obj.windows.begin());
        obj.fastBurn = burnOver(obj, cfg_.fastWindows);
        obj.slowBurn = burnOver(obj, cfg_.slowWindows);
        evalArm(obj, now, true);
        evalArm(obj, now, false);
    }
}

std::uint64_t
SloTracker::fastAlerts() const
{
    std::uint64_t n = 0;
    for (const SloObjective &o : objectives_)
        n += o.fastAlerts;
    return n;
}

std::uint64_t
SloTracker::slowAlerts() const
{
    std::uint64_t n = 0;
    for (const SloObjective &o : objectives_)
        n += o.slowAlerts;
    return n;
}

Tick
SloTracker::firstFastAlert() const
{
    Tick first = 0;
    for (const SloObjective &o : objectives_)
        if (o.firstFastAlert != 0 &&
            (first == 0 || o.firstFastAlert < first))
            first = o.firstFastAlert;
    return first;
}

} // namespace fsim
