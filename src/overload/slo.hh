/**
 * @file
 * SLO burn-rate tracking: windowed success-ratio and latency
 * objectives with fast/slow multi-window burn alerts, SRE-workbook
 * style.
 *
 * The harness feeds one sample per stat window (requests finished,
 * failures, latency-objective misses). For each objective the tracker
 * keeps trailing windows and computes the burn rate — the observed
 * bad-event ratio divided by the objective's error budget, so burn 1.0
 * exactly exhausts the budget at the period horizon. Two alert arms
 * fire per objective:
 *
 *  - fast: trailing `fastWindows`, threshold `fastBurnThreshold` —
 *    pages on sudden cliffs (a gray-degraded machine) well before
 *    wire-level health probes accumulate eject evidence;
 *  - slow: trailing `slowWindows`, threshold `slowBurnThreshold` —
 *    catches slow leaks the fast arm averages away.
 *
 * First firing per arm opens a kSloBurn incident in the IncidentLog
 * (detect stamped at the firing tick, by id — never routed through a
 * machine target); the incident clears when the arm drops back under
 * threshold. The tracker reads only aggregate simulation state and
 * never perturbs simulated behavior; its burn incidents do land in the
 * IncidentLog (and hence the fingerprint), deterministically for a
 * given config + seed — gating on cfg.sloEnabled keeps existing
 * configurations bit-identical.
 */

#ifndef FSIM_OVERLOAD_SLO_HH
#define FSIM_OVERLOAD_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

class IncidentLog;

struct SloConfig
{
    /** Success-ratio objective (error budget = 1 - this). */
    double successObjective = 0.999;
    /** Latency objective in ticks (0 = latency SLO disabled): a
     *  completed request slower than this is a latency-SLO miss. */
    Tick latencyObjective = 0;
    /** Fraction of requests that must meet latencyObjective. */
    double latencyQuantile = 0.99;
    double fastBurnThreshold = 14.0;
    double slowBurnThreshold = 2.0;
    int fastWindows = 2;
    int slowWindows = 12;
};

/** One objective's live state. */
struct SloObjective
{
    std::string name;           //!< "availability" / "latency"
    double errorBudget = 0.001;
    /** Trailing (good, bad) per window, newest last. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
    double fastBurn = 0.0;
    double slowBurn = 0.0;
    bool fastActive = false;
    bool slowActive = false;
    std::uint64_t fastAlerts = 0;
    std::uint64_t slowAlerts = 0;
    Tick firstFastAlert = 0;
    Tick firstSlowAlert = 0;
    int fastIncident = -1;      //!< open kSloBurn incident id (-1 none)
    int slowIncident = -1;
};

class SloTracker
{
  public:
    /** IncidentLog targets for SLO incidents start here: far above
     *  machine slots (0..63) and balancer targets (1000+k), so
     *  target-routed stamps from the health layer can never land on an
     *  SLO incident. */
    static constexpr int kIncidentTargetBase = 2000;

    explicit SloTracker(const SloConfig &cfg);

    void setIncidentLog(IncidentLog *log) { incidents_ = log; }

    /**
     * Feed one stat window ending at @p now: @p ok requests finished in
     * budget, @p failed requests errored, @p lat_misses of the ok ones
     * exceeded the latency objective.
     */
    void addWindow(Tick now, std::uint64_t ok, std::uint64_t failed,
                   std::uint64_t lat_misses);

    const std::vector<SloObjective> &objectives() const
    {
        return objectives_;
    }

    /** @name Roll-ups across objectives */
    /** @{ */
    std::uint64_t fastAlerts() const;
    std::uint64_t slowAlerts() const;
    /** Earliest fast-burn firing tick (0 = never fired). */
    Tick firstFastAlert() const;
    /** @} */

  private:
    void evalArm(SloObjective &obj, Tick now, bool fast);
    static double burnOver(const SloObjective &obj, int nwin);

    SloConfig cfg_;
    IncidentLog *incidents_ = nullptr;
    std::vector<SloObjective> objectives_;
};

} // namespace fsim

#endif // FSIM_OVERLOAD_SLO_HH
