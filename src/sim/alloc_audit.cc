#include "sim/alloc_audit.hh"

namespace fsim
{

namespace
{

// Plain globals: the simulator is single-threaded by design, and the
// noteAlloc path must stay trivial — it runs inside operator new.
bool g_armed = false;
bool g_hooked = false;
std::uint64_t g_allocs = 0;
std::uint64_t g_frees = 0;
std::uint64_t g_allocBytes = 0;

} // namespace

void
AllocAudit::arm()
{
    g_armed = true;
    g_allocs = 0;
    g_frees = 0;
    g_allocBytes = 0;
}

std::uint64_t
AllocAudit::disarm()
{
    g_armed = false;
    return g_allocs;
}

bool
AllocAudit::armed()
{
    return g_armed;
}

std::uint64_t
AllocAudit::allocs()
{
    return g_allocs;
}

std::uint64_t
AllocAudit::frees()
{
    return g_frees;
}

std::uint64_t
AllocAudit::allocBytes()
{
    return g_allocBytes;
}

bool
AllocAudit::hooked()
{
    return g_hooked;
}

void
AllocAudit::noteHooked()
{
    g_hooked = true;
}

void
AllocAudit::noteAlloc(std::size_t bytes)
{
    if (g_armed) {
        ++g_allocs;
        g_allocBytes += bytes;
    }
}

void
AllocAudit::noteFree()
{
    if (g_armed)
        ++g_frees;
}

} // namespace fsim
