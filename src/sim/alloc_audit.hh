/**
 * @file
 * Heap-allocation audit hooks for zero-allocation hot-path contracts.
 *
 * The simulator's performance story depends on the event/packet/timer
 * path staying off the allocator in steady state: EventFn capture is
 * inline (event_fn.hh), event nodes and timer-wheel nodes are
 * slab-recycled, and the per-core task queues are sticky ring buffers.
 * This header is how tests *prove* that: a binary that wants auditing
 * defines global operator new/delete overrides that forward every
 * allocation to noteAlloc()/noteFree() (see tests/test_alloc_audit.cc),
 * and test code brackets a steady-state window with an AllocAuditScope
 * and asserts the counters stayed flat.
 *
 * The counters live here (in fsim_sim) rather than in the test so that
 * bench_sim_core can report them too when built with the hook. Binaries
 * without the override simply never bump the counters; armed() stays
 * usable either way.
 */

#ifndef FSIM_SIM_ALLOC_AUDIT_HH
#define FSIM_SIM_ALLOC_AUDIT_HH

#include <cstddef>
#include <cstdint>

namespace fsim
{

/** Global allocation-counting state; single-threaded like the sim. */
class AllocAudit
{
  public:
    /** Start attributing allocations to the audited window. */
    static void arm();
    /** Stop counting. @return allocations observed while armed. */
    static std::uint64_t disarm();

    static bool armed();
    /** Allocations observed while armed (running value). */
    static std::uint64_t allocs();
    /** Frees observed while armed. */
    static std::uint64_t frees();
    /** Bytes requested by allocations observed while armed. */
    static std::uint64_t allocBytes();

    /** True when this binary's operator new forwards here. */
    static bool hooked();

    /** @name Called from the operator new/delete overrides. */
    /** @{ */
    static void noteHooked();
    static void noteAlloc(std::size_t bytes);
    static void noteFree();
    /** @} */
};

/** RAII window: arms on construction, disarms on destruction. */
class AllocAuditScope
{
  public:
    AllocAuditScope() { AllocAudit::arm(); }
    ~AllocAuditScope() { AllocAudit::disarm(); }
    AllocAuditScope(const AllocAuditScope &) = delete;
    AllocAuditScope &operator=(const AllocAuditScope &) = delete;
};

} // namespace fsim

#endif // FSIM_SIM_ALLOC_AUDIT_HH
