/**
 * @file
 * Allocation-free callable storage for simulator hot paths.
 *
 * std::function is the wrong vehicle for a discrete-event simulator's
 * inner loop: libstdc++ gives it 16 bytes of inline storage, so nearly
 * every packet/timer closure (this + a 48-byte Packet, this + a timer
 * callback) lands on the heap — one malloc/free round trip per simulated
 * event. InlineFn is a fixed-capacity alternative: the capture lives
 * inside the object, full stop. A callable that does not fit is a
 * compile error (static_assert), never a silent heap fallback, which is
 * what lets the allocation-audit test pin the whole event/packet/timer
 * path to zero heap traffic.
 *
 * Capacity budgets are chosen per use (see the aliases at the bottom)
 * and documented where they bind:
 *   - EventFn (event queue): 56 bytes — sized by the wire's delivery
 *     closure [this, Packet] = 8 + 48.
 *   - Task (per-core CPU queues): 88 bytes — sized by the RFD steering
 *     closure [this, target, Packet, steer_t, steer_from].
 *   - Timer callbacks: see timer_wheel.hh / timer_base.hh.
 */

#ifndef FSIM_SIM_EVENT_FN_HH
#define FSIM_SIM_EVENT_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/types.hh"

namespace fsim
{

/** Fixed-capacity move/copy-able callable; capture stored inline. */
template <typename Sig, std::size_t Cap>
class InlineFn;

template <typename R, typename... Args, std::size_t Cap>
class InlineFn<R(Args...), Cap>
{
  public:
    static constexpr std::size_t kCapture = Cap;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&f)   // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(f));
    }

    /**
     * Construct a callable in place (dropping any stored one first).
     * The schedule fast path uses this to build the closure directly
     * inside a recycled event node instead of copying it through a
     * temporary.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Cap,
                      "closure capture exceeds the inline budget of this "
                      "hot path; shrink the capture (capture indices, not "
                      "objects) or raise the documented capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned capture");
        static_assert(std::is_copy_constructible_v<Fn>,
                      "captures must be copyable (std::function parity)");
        reset();
        ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
        ops_ = &opsFor<Fn>;
    }

    InlineFn(InlineFn &&o) noexcept { stealFrom(o); }

    InlineFn(const InlineFn &o)
    {
        if (o.ops_)
            o.ops_->copy(o.buf_, buf_);
        ops_ = o.ops_;
    }

    InlineFn &
    operator=(InlineFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            stealFrom(o);
        }
        return *this;
    }

    InlineFn &
    operator=(const InlineFn &o)
    {
        if (this != &o) {
            reset();
            if (o.ops_)
                o.ops_->copy(o.buf_, buf_);
            ops_ = o.ops_;
        }
        return *this;
    }

    ~InlineFn() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

    /**
     * Invoke the stored callable. Const like std::function::operator():
     * the target may still mutate its own captures.
     */
    R
    operator()(Args... args) const
    {
        return ops_->invoke(const_cast<unsigned char *>(buf_),
                            std::forward<Args>(args)...);
    }

    /** Drop the stored callable (becomes empty). */
    void
    reset()
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    /** Per-type operation table: one static instance per stored type.
     *  move/destroy are null for trivially relocatable/destructible
     *  captures (nearly every simulator closure: pointers, indices,
     *  Packets by value) — the dispatch loop then moves with a fixed
     *  memcpy and skips the destroy call instead of paying an indirect
     *  call per event for a no-op. */
    struct Ops
    {
        R (*invoke)(unsigned char *, Args...);
        void (*move)(unsigned char *, unsigned char *);
        void (*copy)(const unsigned char *, unsigned char *);
        void (*destroy)(unsigned char *);
    };

    template <typename Fn>
    static R
    invokeImpl(unsigned char *buf, Args... args)
    {
        return (*std::launder(reinterpret_cast<Fn *>(buf)))(
            std::forward<Args>(args)...);
    }

    template <typename Fn>
    static void
    moveImpl(unsigned char *from, unsigned char *to)
    {
        Fn *src = std::launder(reinterpret_cast<Fn *>(from));
        ::new (static_cast<void *>(to)) Fn(std::move(*src));
        src->~Fn();
    }

    template <typename Fn>
    static void
    copyImpl(const unsigned char *from, unsigned char *to)
    {
        const Fn *src = std::launder(reinterpret_cast<const Fn *>(from));
        ::new (static_cast<void *>(to)) Fn(*src);
    }

    template <typename Fn>
    static void
    destroyImpl(unsigned char *buf)
    {
        std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
    }

    /** memcpy relocation is only valid when both the move and the
     *  abandoned source's destructor are trivial. */
    template <typename Fn>
    static constexpr bool kTrivialReloc =
        std::is_trivially_copyable_v<Fn> &&
        std::is_trivially_destructible_v<Fn>;

    template <typename Fn>
    static constexpr Ops opsFor = {
        /*invoke=*/&invokeImpl<Fn>,
        /*move=*/kTrivialReloc<Fn> ? nullptr : &moveImpl<Fn>,
        /*copy=*/&copyImpl<Fn>,
        /*destroy=*/std::is_trivially_destructible_v<Fn>
            ? nullptr
            : &destroyImpl<Fn>,
    };

    void
    stealFrom(InlineFn &o) noexcept
    {
        if (o.ops_) {
            if (o.ops_->move)
                o.ops_->move(o.buf_, buf_);
            else
                std::memcpy(buf_, o.buf_, Cap);
            ops_ = o.ops_;
            o.ops_ = nullptr;
        } else {
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Cap];
    const Ops *ops_ = nullptr;
};

/**
 * Event-queue handler: the capture budget covers every schedule() site
 * in the tree; the binding site is the wire's delivery closure
 * [this, Packet] (8 + 56 bytes — the Packet carries the 8-byte
 * distributed trace context). Raising this inflates every pending
 * event node, so prefer shrinking captures first.
 */
constexpr std::size_t kEventCaptureMax = 64;
using EventFn = InlineFn<void(), kEventCaptureMax>;

} // namespace fsim

#endif // FSIM_SIM_EVENT_FN_HH
