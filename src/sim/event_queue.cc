#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fsim
{

namespace
{

/** Total order on events: earlier tick first, FIFO (seq) within a tick. */
inline bool
earlier(const Tick wa, const std::uint64_t sa,
        const Tick wb, const std::uint64_t sb)
{
    if (wa != wb)
        return wa < wb;
    return sa < sb;
}

/**
 * Set rung geometry to cover @p span ticks with roughly @p target
 * buckets: width is the smallest power of two >= span/target + 1 so
 * the schedule path buckets with a shift. @p end saturates at
 * kTickMax rather than wrapping for spans near the tick ceiling.
 */
inline void
setRungGeometry(Tick start, Tick span, std::size_t target,
                Tick *endOut, std::uint32_t *shiftOut,
                std::size_t *nbucketsOut)
{
    const Tick minWidth = span / target + 1;
    std::uint32_t shift = 0;
    while ((Tick{1} << shift) < minWidth)
        ++shift;
    const std::size_t nbuckets =
        static_cast<std::size_t>(span >> shift) + 1;
    const Tick covered = static_cast<Tick>(nbuckets) << shift;
    *endOut = (start + covered < start) ? kTickMax : start + covered;
    *shiftOut = shift;
    *nbucketsOut = nbuckets;
}

} // namespace

EventQueue::EventQueue() = default;

EventQueue::~EventQueue() = default;

EventQueue::Node *
EventQueue::allocRaw()
{
    Node *n = freeList_;
    if (n) {
        freeList_ = n->next;
    } else {
        // One chunk serves kChunkNodes events; in steady state the free
        // list recycles and this path never runs.
        chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
        Node *chunk = chunks_.back().get();
        for (std::size_t i = 1; i + 1 < kChunkNodes; ++i)
            chunk[i].next = &chunk[i + 1];
        chunk[kChunkNodes - 1].next = nullptr;
        freeList_ = &chunk[1];
        n = &chunk[0];
    }
    return n;
}

EventQueue::Node *
EventQueue::beginSchedule(Tick *when)
{
    if (*when < now_) {
        // A past tick is a scheduling bug somewhere above us: fatal in
        // debug builds so tests flush it out; clamped (and counted) in
        // release so a long bench run degrades to FIFO-at-now instead
        // of dying.
#ifndef NDEBUG
        fsim_panic("scheduling into the past (%llu < %llu)",
                   (unsigned long long)*when, (unsigned long long)now_);
#else
        *when = now_;
        ++clampedPast_;
#endif
    }
    ++scheduled_;
    if (opTrace_) {
        opTrace_->push_back(SchedOp{*when - now_, traceRuns_});
        traceRuns_ = 0;
    }
    Node *n = allocRaw();
    n->when = *when;
    n->seq = nextSeq_++;
    n->next = nullptr;
    return n;
}

void
EventQueue::finishSchedule(Node *n)
{
    insertNode(n);
    ++size_;
    if (size_ > peakPending_)
        peakPending_ = size_;
}

void
EventQueue::schedule(Tick when, EventFn fn)
{
    Node *n = beginSchedule(&when);
    n->fn = std::move(fn);
    finishSchedule(n);
}

void
EventQueue::insertNode(Node *n)
{
    const Tick when = n->when;

    // 1. Near future: at or before the last event already staged for
    //    dispatch. Sorted insert keeps the bottom dispatch-ready.
    if (!bottom_.empty() && when <= bottomMaxWhen()) {
        insertBottom(n);
        return;
    }

    // 2. Far future: at or past the current epoch boundary.
    if (when >= topStart_) {
        pushTop(n);
        return;
    }

    // 3. Ladder rungs, innermost (narrowest) first: rung spans are
    //    disjoint (an inner rung subdivides a bucket the outer rung
    //    already drained past), so exactly one rung can accept the
    //    event and near-future events — the common case — resolve on
    //    the first probe. Bucketing is a shift: widths are powers of
    //    two.
    for (std::size_t r = activeRungs_; r-- > 0;) {
        Rung &rung = rungs_[r];
        if (when < rung.start || when >= rung.end)
            continue;
        const std::size_t idx =
            static_cast<std::size_t>((when - rung.start) >> rung.shift);
        if (idx < rung.cur)
            continue;   // bucket already drained; belongs further in
        Bucket &b = rung.buckets[idx];
        if (b.tail)
            b.tail->next = n;
        else
            b.head = n;
        b.tail = n;
        ++b.count;
        return;
    }

    // 4. Fallback: earlier than all remaining rung content (e.g. an
    //    event scheduled at now() while the bottom is empty), or the
    //    pure-bottom regime before any epoch opened.
    insertBottom(n);

    // Bulk pre-loading (many schedules before the first dispatch)
    // would otherwise keep paying O(n) sorted inserts; once the bottom
    // balloons with no ladder behind it, hand everything to the top
    // and let the next dispatch spill it into rungs.
    if (activeRungs_ == 0 && bottom_.size() >= kBottomMigrate)
        migrateBottomToTop();
}

void
EventQueue::insertBottom(Node *n)
{
    // Descending (when, seq): back of the vector is the next event
    // out. The common case is an append at the back (the new event is
    // the earliest staged), so probe that before binary-searching.
    if (bottom_.empty() ||
        earlier(n->when, n->seq, bottom_.back()->when,
                bottom_.back()->seq)) {
        bottom_.push_back(n);
        return;
    }
    auto it = std::upper_bound(
        bottom_.begin(), bottom_.end(), n,
        [](const Node *a, const Node *b) {
            return earlier(b->when, b->seq, a->when, a->seq);
        });
    bottom_.insert(it, n);
}

void
EventQueue::migrateBottomToTop()
{
    for (Node *n : bottom_)
        pushTop(n);
    bottom_.clear();
    // Everything pending now lives in the top; open the epoch at 0 so
    // every future schedule lands there too until the next dispatch
    // spills it into rungs.
    topStart_ = 0;
}

void
EventQueue::pushTop(Node *n)
{
    n->next = nullptr;
    if (topTail_)
        topTail_->next = n;
    else
        topHead_ = n;
    topTail_ = n;
    ++topCount_;
    if (n->when < topMin_)
        topMin_ = n->when;
    if (n->when > topMax_)
        topMax_ = n->when;
}

void
EventQueue::spillTop()
{
    ++topSpills_;
    Node *head = topHead_;
    const std::size_t count = topCount_;
    const Tick min = topMin_;
    const Tick max = topMax_;

    // The next epoch starts past everything we are about to ladder.
    // Events later scheduled at exactly max carry higher seqs, so
    // parking them in the (later-dispatched) fresh top preserves FIFO.
    topHead_ = topTail_ = nullptr;
    topCount_ = 0;
    topMin_ = kTickMax;
    topMax_ = 0;
    topStart_ = max;

    if (count <= kSortThreshold) {
        // Not worth a rung: append the batch raw; the caller
        // (prepareBottom) sorts the staged batch once.
        for (Node *n = head; n;) {
            Node *next = n->next;
            n->next = nullptr;
            bottom_.push_back(n);
            n = next;
        }
        return;
    }

    // Open a fresh outermost rung covering [min, max]. All bucket math
    // is of the form (when - start) >> shift with when <= max, so
    // nothing here can overflow even with ticks near kTickMax.
    fsim_assert(activeRungs_ == 0);
    if (rungs_.empty())
        rungs_.emplace_back();
    Rung &r = rungs_[0];
    activeRungs_ = 1;
    const Tick span = max - min;
    // Aim for about kSortThreshold/2 events per bucket, not one: a
    // drained bucket then yields a full dispatch batch instead of a
    // dribble, so the refill path runs once per ~32 events rather
    // than once or twice per event.
    const std::size_t target =
        std::min(count / (kSortThreshold / 2) + 1, kMaxBucketsPerRung);
    r.start = min;
    setRungGeometry(min, span, target, &r.end, &r.shift, &r.nbuckets);
    r.cur = 0;
    if (r.buckets.size() < r.nbuckets)
        r.buckets.resize(r.nbuckets);
    for (Node *n = head; n;) {
        Node *next = n->next;
        n->next = nullptr;
        const std::size_t idx =
            static_cast<std::size_t>((n->when - r.start) >> r.shift);
        Bucket &b = r.buckets[idx];
        if (b.tail)
            b.tail->next = n;
        else
            b.head = n;
        b.tail = n;
        ++b.count;
        n = next;
    }
}

void
EventQueue::drainBucket(Rung &r, std::size_t idx)
{
    Bucket &b = r.buckets[idx];
    Node *head = b.head;
    const std::size_t count = b.count;
    b.head = b.tail = nullptr;
    b.count = 0;

    // A wide, overfull bucket recurses into a narrower rung; a
    // same-tick or small bucket goes straight to the bottom (seqs
    // are unique and the sort key is (when, seq), so list arrival
    // order never matters for the final order).
    if (r.shift > 0 && count > kSortThreshold &&
        activeRungs_ < kMaxRungs) {
        ++rungsSpawned_;
        // Copy the parent's geometry first: growing rungs_ below may
        // reallocate and dangle the caller's reference.
        const Tick parentStart = r.start;
        const std::uint32_t parentShift = r.shift;
        if (rungs_.size() < activeRungs_ + 1)
            rungs_.emplace_back();
        Rung &sub = rungs_[activeRungs_];
        ++activeRungs_;
        // Parent bucket covers 2^parentShift ticks. Same per-bucket
        // occupancy target as spillTop: batch-sized buckets.
        const Tick span = (Tick{1} << parentShift) - 1;
        const std::size_t target = std::min(
            count / (kSortThreshold / 2) + 1, kMaxBucketsPerRung);
        sub.start =
            parentStart + (static_cast<Tick>(idx) << parentShift);
        setRungGeometry(sub.start, span, target, &sub.end, &sub.shift,
                        &sub.nbuckets);
        sub.cur = 0;
        if (sub.buckets.size() < sub.nbuckets)
            sub.buckets.resize(sub.nbuckets);
        for (Node *n = head; n;) {
            Node *next = n->next;
            n->next = nullptr;
            const std::size_t i = static_cast<std::size_t>(
                (n->when - sub.start) >> sub.shift);
            Bucket &sb = sub.buckets[i];
            if (sb.tail)
                sb.tail->next = n;
            else
                sb.head = n;
            sb.tail = n;
            ++sb.count;
            n = next;
        }
        return;
    }

    for (Node *n = head; n;) {
        Node *next = n->next;
        n->next = nullptr;
        bottom_.push_back(n);
        n = next;
    }
}

void
EventQueue::sortBottomSuffix(std::size_t from)
{
    ++bucketSorts_;
    std::sort(bottom_.begin() + static_cast<std::ptrdiff_t>(from),
              bottom_.end(),
              [](const Node *a, const Node *b) {
                  return earlier(b->when, b->seq, a->when, a->seq);
              });
    // Ladder ordering guarantees the refilled suffix is entirely at or
    // after whatever was already staged, so no merge is needed; assert
    // the invariant instead of paying for one.
    fsim_assert(from == 0 || bottom_.size() == from ||
                !earlier(bottom_.back()->when, bottom_.back()->seq,
                         bottom_[from - 1]->when, bottom_[from - 1]->seq));
}

bool
EventQueue::prepareBottom()
{
    if (!bottom_.empty())
        return true;

    // Refill in a batch: keep draining buckets (recursing into or
    // retiring rungs, spilling the top once the ladder runs dry) until
    // kRefillBatch events are staged, then sort once. Buckets hold the
    // earliest remaining events by construction, so a multi-bucket
    // batch is exactly the next kRefillBatch-or-more events.
    while (bottom_.size() < kRefillBatch) {
        if (activeRungs_ > 0) {
            Rung &r = rungs_[activeRungs_ - 1];
            while (r.cur < r.nbuckets && r.buckets[r.cur].count == 0)
                ++r.cur;
            if (r.cur >= r.nbuckets) {
                --activeRungs_;   // exhausted; resume the outer rung
                continue;
            }
            const std::size_t idx = r.cur;
            ++r.cur;   // mark drained before distributing
            drainBucket(r, idx);
            continue;
        }
        if (topCount_ > 0) {
            spillTop();
            continue;
        }
        break;   // ladder fully dry; whatever is staged is everything
    }
    if (bottom_.empty()) {
        // Fully drained: close the epoch so fresh schedules restart in
        // the cheap pure-bottom regime.
        topStart_ = kTickMax;
        return false;
    }
    sortBottomSuffix(0);
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (prepareBottom() && bottom_.back()->when <= limit)
        runOne();
    if (now_ < limit)
        now_ = limit;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

} // namespace fsim
