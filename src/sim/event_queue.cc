#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace fsim
{

void
EventQueue::schedule(Tick when, Handler fn)
{
    if (when < now_)
        fsim_panic("scheduling into the past (%llu < %llu)",
                   (unsigned long long)when, (unsigned long long)now_);
    heap_.push(Item{when, nextSeq_++, std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move the handler out via const_cast,
    // which is safe because we pop immediately and never touch the key.
    Item &top = const_cast<Item &>(heap_.top());
    Tick when = top.when;
    Handler fn = std::move(top.fn);
    heap_.pop();
    now_ = when;
    ++executed_;
    fn();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runOne();
    if (now_ < limit)
        now_ = limit;
}

std::uint64_t
EventQueue::runAll()
{
    std::uint64_t n = 0;
    while (runOne())
        ++n;
    return n;
}

} // namespace fsim
