/**
 * @file
 * The discrete-event simulation core.
 *
 * A single EventQueue drives one experiment. Events are closures scheduled
 * at absolute ticks; ties are broken in FIFO scheduling order so runs are
 * fully deterministic.
 */

#ifndef FSIM_SIM_EVENT_QUEUE_HH
#define FSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

/** Minimum-time-first discrete event queue. */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a handler at an absolute time.
     *
     * @param when Absolute tick; must not be in the past.
     */
    void schedule(Tick when, Handler fn);

    /** Schedule a handler @p delta ticks from now. */
    void scheduleIn(Tick delta, Handler fn) { schedule(now_ + delta, fn); }

    /**
     * Run the earliest pending event.
     *
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until simulated time would exceed @p limit.
     *
     * Events scheduled exactly at @p limit still run; afterwards now() is
     * advanced to @p limit even if the queue drained earlier.
     */
    void runUntil(Tick limit);

    /** Run until the queue drains. @return number of events executed. */
    std::uint64_t runAll();

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        Handler fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace fsim

#endif // FSIM_SIM_EVENT_QUEUE_HH
