/**
 * @file
 * The discrete-event simulation core.
 *
 * A single EventQueue drives one experiment. Events are closures scheduled
 * at absolute ticks; ties are broken in FIFO scheduling order so runs are
 * fully deterministic.
 *
 * Internally this is a hierarchical calendar/ladder queue (Tang & Goh's
 * ladder queue, adapted): a small sorted "bottom" array feeds dispatch, a
 * stack of rungs holds the near/mid future in constant-time buckets, and
 * an unsorted "top" absorbs the far future until it is spilled into a
 * fresh rung. Every event is bucketed O(1) on schedule and sorted exactly
 * once, in a bounded-size batch, right before dispatch — amortized O(1)
 * per event where the former std::priority_queue paid O(log n) with
 * millions pending. Event closures are stored inline (EventFn) in
 * slab-recycled nodes, so the steady-state schedule/dispatch path never
 * touches the heap. See DESIGN.md ("Ladder event queue") for the bucket
 * width and spill/refill policy and the FIFO-preservation argument.
 */

#ifndef FSIM_SIM_EVENT_QUEUE_HH
#define FSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/types.hh"

namespace fsim
{

/** Minimum-time-first discrete event queue. */
class EventQueue
{
  public:
    using Handler = EventFn;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a handler at an absolute time.
     *
     * @param when Absolute tick. Must not be in the past: a past tick is
     *             a simulator bug, asserted fatal in debug builds; in
     *             release builds it is clamped to now() (the event still
     *             runs, in FIFO order at the current tick) and counted
     *             in clampedPast() so harnesses can flag it.
     */
    void schedule(Tick when, EventFn fn);

    /**
     * Schedule a callable directly (the common case). The closure is
     * constructed once, in place inside a recycled event node, instead
     * of being copied through an EventFn temporary — one 56-byte copy
     * per schedule instead of two on the hot path.
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    void
    schedule(Tick when, F &&fn)
    {
        Node *n = beginSchedule(&when);
        n->fn.emplace(std::forward<F>(fn));
        finishSchedule(n);
    }

    /** Schedule a handler @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F &&fn)
    {
        schedule(now_ + delta, std::forward<F>(fn));
    }

    /**
     * Run the earliest pending event.
     *
     * Defined inline: dispatch is the single hottest loop in the
     * simulator and callers (runAll, the bench replay loops) sit right
     * on top of it; only the bottom refill (prepareBottom) is an
     * out-of-line call.
     *
     * @return false if the queue was empty.
     */
    bool
    runOne()
    {
        if (bottom_.empty() && !prepareBottom())
            return false;
        Node *n = bottom_.back();
        bottom_.pop_back();
        // Pull the next staged node toward the cache while this one's
        // handler runs; dispatch is dominated by cold node lines
        // otherwise.
        if (!bottom_.empty())
            __builtin_prefetch(bottom_.back());
        --size_;
        now_ = n->when;
        ++executed_;
        if (opTrace_)
            ++traceRuns_;
        // Dispatch in place: the node is off every list but NOT on the
        // free list yet, so a handler scheduling new events can never
        // recycle it out from under its own closure. Saves a closure
        // relocation per event; the closure is destroyed (freeNode)
        // after it returns.
        n->fn();
        freeNode(n);
        return true;
    }

    /**
     * Run events until simulated time would exceed @p limit.
     *
     * Events scheduled exactly at @p limit still run; afterwards now() is
     * advanced to @p limit even if the queue drained earlier.
     */
    void runUntil(Tick limit);

    /** Run until the queue drains. @return number of events executed. */
    std::uint64_t runAll();

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /**
     * One recorded scheduler op: dispatch @p runs pending events, then
     * schedule one handler @p delta ticks past the then-current now().
     * A stream of these replayed against an empty queue reproduces this
     * workload's op mix (inter-event horizons plus schedule/dispatch
     * interleaving) without any of the simulation behind it.
     */
    struct SchedOp
    {
        Tick delta = 0;
        std::uint32_t runs = 0;
    };

    /**
     * Record every subsequent schedule/dispatch into @p sink (nullptr
     * stops). bench_sim_core uses this to capture real testbed op
     * streams and race the ladder against the frozen heap oracle on
     * them. Costs one predicted branch per op when disarmed; recording
     * itself appends to @p sink and is therefore not allocation-free.
     */
    void recordOps(std::vector<SchedOp> *sink)
    {
        opTrace_ = sink;
        traceRuns_ = 0;
    }

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** @name Self-observability (bench_sim_core, audit tests) */
    /** @{ */
    /** Total schedule() calls accepted so far. */
    std::uint64_t scheduled() const { return scheduled_; }
    /** Release-mode schedules whose past tick was clamped to now(). */
    std::uint64_t clampedPast() const { return clampedPast_; }
    /** High-water mark of pending(). */
    std::size_t peakPending() const { return peakPending_; }
    /** Top epochs spilled into a fresh rung so far. */
    std::uint64_t topSpills() const { return topSpills_; }
    /** Overfull buckets subdivided into a narrower rung so far. */
    std::uint64_t rungsSpawned() const { return rungsSpawned_; }
    /** Buckets sorted into the dispatch bottom so far. */
    std::uint64_t bucketSorts() const { return bucketSorts_; }
    /** Node-slab capacity in events (memory visibility). */
    std::size_t slabCapacity() const
    {
        return chunks_.size() * kChunkNodes;
    }
    /** @} */

  private:
    /** One pending event; lives in the slab, linked through buckets. */
    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Node *next = nullptr;
        EventFn fn;
    };

    /** FIFO-append list of nodes covering one bucket-width of time. */
    struct Bucket
    {
        Node *head = nullptr;
        Node *tail = nullptr;
        std::uint32_t count = 0;
    };

    /** One ladder rung: a span of time cut into equal-width buckets.
     *  Widths are powers of two so the schedule hot path buckets with a
     *  shift instead of a hardware divide. */
    struct Rung
    {
        Tick start = 0;       //!< tick of buckets[0]'s left edge
        Tick end = 0;         //!< one past the last bucket's span
        std::uint32_t shift = 0;   //!< log2(ticks per bucket)
        std::size_t cur = 0;  //!< next bucket to drain
        std::size_t nbuckets = 0;
        std::vector<Bucket> buckets;   //!< capacity reused across epochs
    };

    /** Bucket batch above which a (width > 1) bucket is subdivided
     *  instead of sorted; also the largest sort the dispatch path pays
     *  for outside same-tick bursts. */
    static constexpr std::size_t kSortThreshold = 64;
    /** Buckets per rung cap: bounds rung memory; denser epochs simply
     *  recurse one level deeper. */
    static constexpr std::size_t kMaxBucketsPerRung = 32768;
    /** Rung recursion cap (defense in depth; depth ~3 in practice). */
    static constexpr std::size_t kMaxRungs = 24;
    /** Bottom size that triggers migration to the ladder when no rung
     *  is active (bulk pre-loading pattern). */
    static constexpr std::size_t kBottomMigrate = 8192;
    /** Refill keeps draining buckets until the bottom stages at least
     *  this many events (or the ladder runs dry): one sort per batch
     *  instead of per bucket, and a wider staged window so more
     *  schedules take the sorted-insert fast path. */
    static constexpr std::size_t kRefillBatch = 32;
    /** Nodes per slab chunk. */
    static constexpr std::size_t kChunkNodes = 4096;

    Node *allocRaw();
    Node *beginSchedule(Tick *when);
    void finishSchedule(Node *n);
    void
    freeNode(Node *n)
    {
        n->fn.reset();
        n->next = freeList_;
        freeList_ = n;
    }

    void insertNode(Node *n);
    void insertBottom(Node *n);
    void migrateBottomToTop();
    void pushTop(Node *n);
    bool prepareBottom();
    void spillTop();
    void drainBucket(Rung &r, std::size_t idx);
    void sortBottomSuffix(std::size_t from);

    Tick bottomMaxWhen() const { return bottom_.front()->when; }

    // Dispatch bottom: sorted descending by (when, seq); back = next.
    std::vector<Node *> bottom_;

    // Ladder rungs, outermost (widest) first; active_ is a stack depth
    // so Rung objects (and their bucket vectors) are reused across
    // epochs instead of reallocated.
    std::vector<Rung> rungs_;
    std::size_t activeRungs_ = 0;

    // Far-future top: unsorted linked list plus its span.
    Node *topHead_ = nullptr;
    Node *topTail_ = nullptr;
    std::size_t topCount_ = 0;
    Tick topMin_ = kTickMax;
    Tick topMax_ = 0;
    /** Events at or after this tick go to the top; kTickMax = no epoch
     *  is active (empty queue / pure-bottom regime). */
    Tick topStart_ = kTickMax;

    // Node slab: chunked storage with an intrusive free list.
    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *freeList_ = nullptr;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;

    std::uint64_t scheduled_ = 0;
    std::uint64_t clampedPast_ = 0;
    std::size_t peakPending_ = 0;
    std::uint64_t topSpills_ = 0;
    std::uint64_t rungsSpawned_ = 0;
    std::uint64_t bucketSorts_ = 0;

    // Op-trace recording (bench_sim_core workload capture).
    std::vector<SchedOp> *opTrace_ = nullptr;
    std::uint32_t traceRuns_ = 0;
};

} // namespace fsim

#endif // FSIM_SIM_EVENT_QUEUE_HH
