/**
 * @file
 * Open-addressing hash map with sticky storage for simulator hot paths.
 *
 * std::unordered_map allocates one node per element, which turns every
 * per-connection insert (established hash, TIME_WAIT index, load
 * generator state) into steady-state heap traffic. FlatMap stores keys
 * and values in flat arrays with linear probing and tombstone deletion,
 * and — critically — recycles its backing arrays: rebuilds that purge
 * tombstones reuse a shadow set of arrays that is kept around between
 * rebuilds, so once the table has reached its high-water capacity,
 * insert/find/erase churn never touches the allocator. The
 * allocation-audit test enforces this end to end.
 *
 * Deliberately minimal: no iteration (nothing on the hot path iterates,
 * and iteration order would be a determinism hazard), keys and values
 * must be default-constructible and copyable.
 */

#ifndef FSIM_SIM_FLAT_MAP_HH
#define FSIM_SIM_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace fsim
{

/** Linear-probing hash map; capacity is sticky, always a power of 2. */
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class FlatMap
{
  public:
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    V *
    find(const K &key)
    {
        const std::size_t idx = locate(key);
        return idx == kNpos ? nullptr : &vals_[idx];
    }

    const V *
    find(const K &key) const
    {
        const std::size_t idx = locate(key);
        return idx == kNpos ? nullptr : &vals_[idx];
    }

    /**
     * Insert @p value under @p key.
     *
     * @return the stored value and whether it was inserted (false means
     *         the key already existed; the stored value is unchanged).
     */
    std::pair<V *, bool>
    insert(const K &key, V value)
    {
        // Keep occupancy (live + tombstones) under 3/4 so probes stay
        // short. Grow only when live entries justify it; otherwise
        // rebuild at the same capacity to purge tombstones.
        if (st_.empty() || (size_ + tombs_ + 1) * 4 >= st_.size() * 3)
            rehash(!st_.empty() && size_ * 2 < st_.size()
                       ? st_.size()
                       : (st_.empty() ? kMinCapacity : st_.size() * 2));

        const std::size_t mask = st_.size() - 1;
        std::size_t idx = Hash{}(key) & mask;
        std::size_t grave = kNpos;
        while (st_[idx] != kEmpty) {
            if (st_[idx] == kFull && Eq{}(keys_[idx], key))
                return {&vals_[idx], false};
            if (st_[idx] == kTomb && grave == kNpos)
                grave = idx;
            idx = (idx + 1) & mask;
        }
        if (grave != kNpos) {
            idx = grave;
            --tombs_;
        }
        st_[idx] = kFull;
        keys_[idx] = key;
        vals_[idx] = std::move(value);
        ++size_;
        return {&vals_[idx], true};
    }

    /** @return true if the key existed and was removed. */
    bool
    erase(const K &key)
    {
        const std::size_t idx = locate(key);
        if (idx == kNpos)
            return false;
        st_[idx] = kTomb;
        keys_[idx] = K{};
        vals_[idx] = V{};
        --size_;
        ++tombs_;
        return true;
    }

  private:
    enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };

    static constexpr std::size_t kNpos = ~std::size_t{0};
    static constexpr std::size_t kMinCapacity = 16;

    std::size_t
    locate(const K &key) const
    {
        if (st_.empty())
            return kNpos;
        const std::size_t mask = st_.size() - 1;
        std::size_t idx = Hash{}(key) & mask;
        while (st_[idx] != kEmpty) {
            if (st_[idx] == kFull && Eq{}(keys_[idx], key))
                return idx;
            idx = (idx + 1) & mask;
        }
        return kNpos;
    }

    void
    rehash(std::size_t cap)
    {
        fsim_assert((cap & (cap - 1)) == 0 && cap > size_);
        // The shadow arrays only ever grow (allocation happens at a new
        // high-water capacity); same-capacity tombstone purges reuse
        // them allocation-free.
        shadowSt_.assign(cap, kEmpty);
        if (shadowKeys_.size() != cap) {
            shadowKeys_.resize(cap);
            shadowVals_.resize(cap);
        }
        const std::size_t mask = cap - 1;
        for (std::size_t i = 0; i < st_.size(); ++i) {
            if (st_[i] != kFull)
                continue;
            std::size_t idx = Hash{}(keys_[i]) & mask;
            while (shadowSt_[idx] != kEmpty)
                idx = (idx + 1) & mask;
            shadowSt_[idx] = kFull;
            shadowKeys_[idx] = std::move(keys_[i]);
            shadowVals_[idx] = std::move(vals_[i]);
            keys_[i] = K{};
            vals_[i] = V{};
        }
        st_.swap(shadowSt_);
        keys_.swap(shadowKeys_);
        vals_.swap(shadowVals_);
        tombs_ = 0;
        // Retired arrays become next rebuild's shadow; bring them to the
        // new capacity now so the *next* same-size purge is clean too.
        if (shadowKeys_.size() != cap) {
            shadowKeys_.resize(cap);
            shadowVals_.resize(cap);
        }
    }

    std::vector<std::uint8_t> st_;
    std::vector<K> keys_;
    std::vector<V> vals_;
    std::vector<std::uint8_t> shadowSt_;
    std::vector<K> shadowKeys_;
    std::vector<V> shadowVals_;
    std::size_t size_ = 0;
    std::size_t tombs_ = 0;
};

} // namespace fsim

#endif // FSIM_SIM_FLAT_MAP_HH
