#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace fsim
{

namespace
{

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic (%s:%d): ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal (%s:%d): ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace fsim
