/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic distinction.
 *
 * panic()  - an internal simulator bug; never the user's fault. Aborts.
 * fatal()  - the simulation cannot continue because of user input
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   - something is off but the simulation can continue.
 * inform() - plain status output.
 */

#ifndef FSIM_SIM_LOGGING_HH
#define FSIM_SIM_LOGGING_HH

#include <cstdarg>

namespace fsim
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Abort with a message: an internal invariant was violated. */
#define fsim_panic(...) \
    ::fsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit with a message: the user asked for something impossible. */
#define fsim_fatal(...) \
    ::fsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define fsim_warn(...)   ::fsim::warnImpl(__VA_ARGS__)
#define fsim_inform(...) ::fsim::informImpl(__VA_ARGS__)

/** Simulation-invariant assertion that is kept in release builds. */
#define fsim_assert(cond) \
    do { \
        if (!(cond)) \
            fsim_panic("assertion failed: %s", #cond); \
    } while (0)

} // namespace fsim

#endif // FSIM_SIM_LOGGING_HH
