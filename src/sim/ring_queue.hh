/**
 * @file
 * Fixed-overhead FIFO ring buffer for simulator hot paths.
 *
 * std::deque allocates and frees its block map as elements flow through,
 * which shows up as steady-state heap traffic in the per-core task
 * queues. RingQueue keeps one contiguous power-of-two buffer that only
 * ever grows (capacity is retained across drain/fill cycles), so pushes
 * and pops in steady state touch no allocator at all — a requirement
 * enforced end-to-end by the allocation-audit test.
 */

#ifndef FSIM_SIM_RING_QUEUE_HH
#define FSIM_SIM_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace fsim
{

/** Growable FIFO ring buffer; capacity is sticky, always a power of 2. */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    push_back(T v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
        ++size_;
    }

    T &
    front()
    {
        fsim_assert(size_ > 0);
        return buf_[head_];
    }

    void
    pop_front()
    {
        fsim_assert(size_ > 0);
        buf_[head_] = T{};   // eager destroy, like deque::pop_front
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    /** Drop every element; capacity is retained. */
    void
    clear()
    {
        while (size_ > 0)
            pop_front();
    }

    /** Minimal forward iteration (front to back), for range-for. */
    class const_iterator
    {
      public:
        const_iterator(const RingQueue *q, std::size_t i) : q_(q), i_(i) {}

        const T &
        operator*() const
        {
            return q_->buf_[(q_->head_ + i_) & (q_->buf_.size() - 1)];
        }

        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }

      private:
        const RingQueue *q_;
        std::size_t i_;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    void
    grow()
    {
        const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace fsim

#endif // FSIM_SIM_RING_QUEUE_HH
