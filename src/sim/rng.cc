#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    // xoshiro state must not be all zero; SplitMix64 guarantees that for
    // any seed.
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t n)
{
    fsim_assert(n > 0);
    // Lemire-style multiply-shift; bias is negligible for simulation use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace fsim
