/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Uses xoshiro256** seeded through SplitMix64. Every experiment owns its own
 * Rng so that runs are reproducible regardless of module evaluation order.
 */

#ifndef FSIM_SIM_RNG_HH
#define FSIM_SIM_RNG_HH

#include <cstdint>

namespace fsim
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t range(std::uint64_t n);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace fsim

#endif // FSIM_SIM_RNG_HH
