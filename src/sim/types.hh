/**
 * @file
 * Fundamental simulation types: ticks, core ids, frequency conversions.
 *
 * A Tick is one cycle of the simulated CPU clock. All simulated machines in
 * fastsocket-sim run their cores at a single fixed frequency (the paper's
 * testbed uses 2.7 GHz Xeon E5-2697v2 parts; we round to 2.5 GHz, which only
 * scales absolute cycle costs, never shapes).
 */

#ifndef FSIM_SIM_TYPES_HH
#define FSIM_SIM_TYPES_HH

#include <cstdint>

namespace fsim
{

/** Simulated time, in CPU cycles. */
using Tick = std::uint64_t;

/** Identifier of a simulated CPU core. */
using CoreId = int;

/** Sentinel meaning "no core". */
constexpr CoreId kInvalidCore = -1;

/** Simulated core clock frequency in Hz. */
constexpr double kCoreHz = 2.5e9;

/** Largest representable tick; used as "never". */
constexpr Tick kTickMax = ~Tick{0};

/** Convert seconds of simulated wall time to ticks. */
constexpr Tick
ticksFromSeconds(double s)
{
    return static_cast<Tick>(s * kCoreHz);
}

/** Convert microseconds of simulated wall time to ticks. */
constexpr Tick
ticksFromUsec(double us)
{
    return static_cast<Tick>(us * (kCoreHz / 1e6));
}

/** Convert milliseconds of simulated wall time to ticks. */
constexpr Tick
ticksFromMsec(double ms)
{
    return static_cast<Tick>(ms * (kCoreHz / 1e3));
}

/** Convert ticks to seconds of simulated wall time. */
constexpr double
secondsFromTicks(Tick t)
{
    return static_cast<double>(t) / kCoreHz;
}

} // namespace fsim

#endif // FSIM_SIM_TYPES_HH
