#include "stats/metrics.hh"

#include <cctype>
#include <fstream>

#include "sim/logging.hh"

namespace fsim
{

const char *
metricKindName(MetricKind k)
{
    switch (k) {
      case MetricKind::kCounter: return "counter";
      case MetricKind::kGauge: return "gauge";
      case MetricKind::kHistogram: return "histogram";
    }
    return "?";
}

const MetricSeries *
MetricsSnapshot::find(const std::string &name) const
{
    for (const MetricSeries &s : series)
        if (s.name == name)
            return &s;
    return nullptr;
}

MetricsRegistry::MetricId
MetricsRegistry::addSlot(const std::string &name, MetricKind kind)
{
    for (const Slot &s : slots_)
        fsim_assert(s.name != name);
    Slot slot;
    slot.name = name;
    slot.kind = kind;
    if (kind == MetricKind::kHistogram)
        slot.buckets.assign(kHistBuckets, 0);
    slots_.push_back(std::move(slot));
    return static_cast<MetricId>(slots_.size()) - 1;
}

MetricsRegistry::MetricId
MetricsRegistry::addCounter(const std::string &name)
{
    return addSlot(name, MetricKind::kCounter);
}

MetricsRegistry::MetricId
MetricsRegistry::addGauge(const std::string &name)
{
    return addSlot(name, MetricKind::kGauge);
}

MetricsRegistry::MetricId
MetricsRegistry::addHistogram(const std::string &name)
{
    return addSlot(name, MetricKind::kHistogram);
}

void
MetricsRegistry::add(MetricId id, std::uint64_t delta)
{
    if (!enabled_ || id < 0)
        return;
    slots_[static_cast<std::size_t>(id)].count += delta;
}

void
MetricsRegistry::set(MetricId id, double v)
{
    if (!enabled_ || id < 0)
        return;
    slots_[static_cast<std::size_t>(id)].gauge = v;
}

void
MetricsRegistry::observe(MetricId id, std::uint64_t v)
{
    if (!enabled_ || id < 0)
        return;
    Slot &s = slots_[static_cast<std::size_t>(id)];
    int b = 0;
    while (b < kHistBuckets - 1 && (std::uint64_t{2} << b) - 2 < v)
        ++b;
    ++s.buckets[static_cast<std::size_t>(b)];
    ++s.count;
}

double
MetricsRegistry::histP99(const Slot &s) const
{
    if (s.count == 0)
        return 0.0;
    // Smallest bucket whose cumulative count covers 99% of samples;
    // report its upper bound (a deterministic, conservative p99).
    const std::uint64_t need =
        (s.count * 99 + 99) / 100;  // ceil(0.99 * n)
    std::uint64_t cum = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
        cum += s.buckets[static_cast<std::size_t>(b)];
        if (cum >= need)
            return static_cast<double>((std::uint64_t{2} << b) - 2);
    }
    return static_cast<double>((std::uint64_t{2} << (kHistBuckets - 1)) -
                               2);
}

void
MetricsRegistry::sample(Tick now)
{
    if (!enabled_)
        return;
    for (Slot &s : slots_) {
        double v = 0.0;
        switch (s.kind) {
          case MetricKind::kCounter:
            v = static_cast<double>(s.count);
            break;
          case MetricKind::kGauge:
            v = s.gauge;
            break;
          case MetricKind::kHistogram:
            v = histP99(s);
            break;
        }
        s.points.emplace_back(now, v);
        ++allocations_;
    }
    ++samples_;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    snap.enabled = enabled_;
    snap.samplePeriod = samplePeriod_;
    snap.series.reserve(slots_.size());
    for (const Slot &s : slots_) {
        MetricSeries ser;
        ser.name = s.name;
        ser.kind = s.kind;
        ser.points = s.points;
        snap.series.push_back(std::move(ser));
    }
    return snap;
}

namespace
{

std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

bool
writePrometheusText(const std::string &path, const MetricsSnapshot &snap)
{
    std::ofstream os(path);
    if (!os)
        return false;
    for (const MetricSeries &s : snap.series) {
        const bool hist = s.kind == MetricKind::kHistogram;
        const std::string name = promName(s.name) + (hist ? "_p99" : "");
        os << "# TYPE " << name << ' '
           << (s.kind == MetricKind::kCounter ? "counter" : "gauge")
           << '\n';
        const double v = s.points.empty() ? 0.0 : s.points.back().second;
        os << name << ' ' << v << '\n';
    }
    return static_cast<bool>(os);
}

} // namespace fsim
