/**
 * @file
 * Typed metrics registry + in-memory time series: the simulator's
 * answer to a Prometheus client library.
 *
 * Producers register fixed slots up front (counter / gauge /
 * histogram) and mutate them from hot paths; the harness samples every
 * slot once per stat window into an in-memory time series that lands
 * in the bench JSON (`timeseries` block) and, on request, as
 * Prometheus-style text via --metrics=<path>.
 *
 * Discipline mirrors ConnSpanLog: registration happens once at setup;
 * mutation writes pre-registered slots and never allocates; sampling
 * is the only path that grows memory, it no-ops when the registry is
 * disabled, and allocations() counts exactly the points appended — so
 * a --notrace run asserts allocations() == 0. The registry only
 * observes simulated state; enabling or disabling it can never change
 * results or fingerprints.
 */

#ifndef FSIM_STATS_METRICS_HH
#define FSIM_STATS_METRICS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

enum class MetricKind : std::uint8_t
{
    kCounter = 0,   //!< monotone cumulative count
    kGauge,         //!< instantaneous level
    kHistogram,     //!< pow2-bucketed distribution; sampled as p99
};

/** Stable lowercase kind name ("counter" / "gauge" / "histogram"). */
const char *metricKindName(MetricKind k);

/** One sampled series, ready for JSON / Prometheus emission. */
struct MetricSeries
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /** (sample tick, value) per stat window, in sample order. For a
     *  histogram the value is the p99 upper-bucket bound over the
     *  cumulative distribution at sample time. */
    std::vector<std::pair<Tick, double>> points;
};

/** Frozen copy of every series (attached to ExperimentResult). */
struct MetricsSnapshot
{
    bool enabled = false;
    /** Nominal sampling period in ticks (one point per stat window). */
    Tick samplePeriod = 0;
    std::vector<MetricSeries> series;

    const MetricSeries *find(const std::string &name) const;
};

/** Fixed-slot metrics registry (one per fleet/testbed). */
class MetricsRegistry
{
  public:
    using MetricId = int;
    static constexpr MetricId kInvalidMetric = -1;
    /** Histogram buckets: value v lands in floor(log2(v + 1)),
     *  clamped — upper bound of bucket i is 2^(i+1) - 2. */
    static constexpr int kHistBuckets = 48;

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }
    void setSamplePeriod(Tick t) { samplePeriod_ = t; }

    /** @name Registration (setup time, before the run) */
    /** @{ */
    MetricId addCounter(const std::string &name);
    MetricId addGauge(const std::string &name);
    MetricId addHistogram(const std::string &name);
    /** @} */

    /** @name Mutation (hot path, allocation-free, fixed slots) */
    /** @{ */
    void add(MetricId id, std::uint64_t delta = 1);
    void set(MetricId id, double v);
    void observe(MetricId id, std::uint64_t v);
    /** @} */

    /** Append one point per registered metric at @p now. No-op (and
     *  allocation-free) when disabled. */
    void sample(Tick now);

    /** Points appended so far; exactly zero when disabled. */
    std::uint64_t allocations() const { return allocations_; }
    std::size_t metricCount() const { return slots_.size(); }
    std::size_t sampleCount() const { return samples_; }

    MetricsSnapshot snapshot() const;

  private:
    struct Slot
    {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        std::uint64_t count = 0;    //!< counter value / histogram n
        double gauge = 0.0;
        std::vector<std::uint64_t> buckets;     //!< histogram only
        std::vector<std::pair<Tick, double>> points;
    };

    MetricId addSlot(const std::string &name, MetricKind kind);
    double histP99(const Slot &s) const;

    bool enabled_ = true;
    Tick samplePeriod_ = 0;
    std::size_t samples_ = 0;
    std::uint64_t allocations_ = 0;
    std::vector<Slot> slots_;
};

/**
 * Write @p snap as Prometheus text exposition (one `# TYPE` line plus
 * the final sampled value per series; histogram series surface as
 * gauges named `<name>_p99`). Metric names are sanitized to
 * [a-zA-Z0-9_:]. @return false on I/O error or empty snapshot.
 */
bool writePrometheusText(const std::string &path,
                         const MetricsSnapshot &snap);

} // namespace fsim

#endif // FSIM_STATS_METRICS_HH
