#include "stats/stats.hh"

#include <cmath>
#include <cstdio>

namespace fsim
{

std::string
formatCount(double v)
{
    char buf[32];
    double a = std::fabs(v);
    if (a >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
    else if (a >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
}

std::string
formatPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace fsim
