/**
 * @file
 * Lightweight statistics primitives for the simulator.
 *
 * Counters and distributions are plain value types owned by the component
 * that measures them; a StatSnapshot can diff two points in time so that
 * benchmarks measure steady state only (warmup excluded).
 */

#ifndef FSIM_STATS_STATS_HH
#define FSIM_STATS_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace fsim
{

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Moment-based sample distribution (count/sum/min/max/mean/variance).
 *
 * Keeps no per-sample storage, so it can absorb millions of samples.
 */
class Distribution
{
  public:
    void
    sample(double x)
    {
        ++count_;
        sum_ += x;
        sumSq_ += x * x;
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        double n = static_cast<double>(count_);
        double m = mean();
        return (sumSq_ - n * m * m) / (n - 1.0);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Render a count with the paper's K/M suffix convention (e.g.\ 26.4M). */
std::string formatCount(double v);

/** Render a percentage with one decimal (e.g.\ "24.2%"). */
std::string formatPercent(double fraction);

} // namespace fsim

#endif // FSIM_STATS_STATS_HH
