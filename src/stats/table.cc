#include "stats/table.hh"

#include <algorithm>

namespace fsim
{

void
TextTable::header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TextTable::row(std::vector<std::string> cols)
{
    rows_.push_back(std::move(cols));
}

std::string
TextTable::str() const
{
    std::size_t ncols = header_.size();
    for (const auto &r : rows_)
        ncols = std::max(ncols, r.size());

    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::string out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < ncols; ++i) {
            std::string cell = i < r.size() ? r[i] : "";
            cell.resize(width[i], ' ');
            out += cell;
            if (i + 1 < ncols)
                out += "  ";
        }
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::string rule;
        for (std::size_t i = 0; i < ncols; ++i) {
            rule += std::string(width[i], '-');
            if (i + 1 < ncols)
                rule += "  ";
        }
        out += rule + '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out;
}

void
TextTable::print(std::FILE *out) const
{
    std::string s = str();
    std::fwrite(s.data(), 1, s.size(), out);
}

} // namespace fsim
