/**
 * @file
 * Fixed-width text table printer used by the benchmark harness to emit
 * paper-style tables and series.
 */

#ifndef FSIM_STATS_TABLE_HH
#define FSIM_STATS_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace fsim
{

/** Accumulates rows of strings and prints them with aligned columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cols);

    /** Append a data row. */
    void row(std::vector<std::string> cols);

    /** Render to the given stream (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Render to a string (used by tests). */
    std::string str() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fsim

#endif // FSIM_STATS_TABLE_HH
