#include "sync/lock_registry.hh"

namespace fsim
{

LockClassStats *
LockRegistry::getClass(const std::string &name)
{
    auto it = byName_.find(name);
    if (it != byName_.end())
        return it->second;
    order_.push_back(std::make_unique<LockClassStats>());
    LockClassStats *cls = order_.back().get();
    cls->name = name;
    cls->traceId = static_cast<std::uint16_t>(order_.size() - 1);
    cls->tracer = tracer_;
    byName_[name] = cls;
    return cls;
}

void
LockRegistry::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    for (const auto &p : order_)
        p->tracer = tracer;
}

std::vector<const LockClassStats *>
LockRegistry::classes() const
{
    std::vector<const LockClassStats *> out;
    out.reserve(order_.size());
    for (const auto &p : order_)
        out.push_back(p.get());
    return out;
}

std::map<std::string, LockClassStats>
LockRegistry::snapshot() const
{
    std::map<std::string, LockClassStats> out;
    for (const auto &p : order_)
        out[p->name] = *p;
    return out;
}

std::uint64_t
LockRegistry::contentionDelta(
    const std::map<std::string, LockClassStats> &before,
    const std::string &name) const
{
    auto cur = byName_.find(name);
    if (cur == byName_.end())
        return 0;
    std::uint64_t base = 0;
    auto it = before.find(name);
    if (it != before.end())
        base = it->second.contentions;
    return cur->second->contentions - base;
}

} // namespace fsim
