/**
 * @file
 * Lockstat-style accounting of simulated lock classes.
 *
 * Like Linux's lockstat, statistics are aggregated per lock *class*
 * (e.g. all per-socket "slock" instances feed one row), which is exactly
 * the granularity of the paper's Table 1.
 */

#ifndef FSIM_SYNC_LOCK_REGISTRY_HH
#define FSIM_SYNC_LOCK_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

class Tracer;

/** Aggregated statistics for one class of locks. */
struct LockClassStats
{
    std::string name;
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;   //!< acquisitions that had to wait
    std::uint64_t waitTicks = 0;     //!< total cycles spent spinning
    std::uint64_t holdTicks = 0;     //!< total cycles held
    Tick maxWaitTicks = 0;
    /** Small stable id carried by kLockSpinBegin/End trace events. */
    std::uint16_t traceId = 0;
    /** Machine tracer (set via LockRegistry::setTracer; may be null).
     *  Locks reach the tracer through their class row so that the many
     *  SimSpinLock::init call sites keep their signature. */
    Tracer *tracer = nullptr;
};

/** Registry mapping class names to their aggregated statistics. */
class LockRegistry
{
  public:
    /** Fetch (creating on first use) the stats row for @p name. */
    LockClassStats *getClass(const std::string &name);

    /**
     * Attach the machine's tracer: existing and future classes get the
     * pointer, and components constructed with a LockRegistry reference
     * (epoll, VFS) use this as their tracer rendezvous too.
     */
    void setTracer(Tracer *tracer);
    Tracer *tracer() const { return tracer_; }

    /** All classes in registration order. */
    std::vector<const LockClassStats *> classes() const;

    /** Copy of the current counters, for window (before/after) diffing. */
    std::map<std::string, LockClassStats> snapshot() const;

    /**
     * Contention-count delta of class @p name between @p before and the
     * current counters. Returns 0 for unknown classes.
     */
    std::uint64_t contentionDelta(
        const std::map<std::string, LockClassStats> &before,
        const std::string &name) const;

  private:
    std::vector<std::unique_ptr<LockClassStats>> order_;
    std::map<std::string, LockClassStats *> byName_;
    Tracer *tracer_ = nullptr;
};

} // namespace fsim

#endif // FSIM_SYNC_LOCK_REGISTRY_HH
