#include "sync/spinlock.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/tracer.hh"

namespace fsim
{

void
SimSpinLock::init(LockClassStats *cls, CacheModel *cache, Tick base_cost,
                  Tick handoff_storm)
{
    cls_ = cls;
    cache_ = cache;
    baseCost_ = base_cost;
    stormCost_ = handoff_storm;
    if (cache_) {
        lineId_ = cache_->newObject();
        hasLine_ = true;
    }
}

Tick
SimSpinLock::runLocked(CoreId c, Tick t, Tick hold)
{
    fsim_assert(cls_ != nullptr);
    ++cls_->acquisitions;

    const int max_queue = cache_ ? cache_->numCores() : 32;
    const Tick miss = cache_ ? cache_->missPenalty() : 0;
    const double s0 = static_cast<double>(hold + baseCost_ + miss);

    // Demand estimate: exponentially averaged inter-acquisition gap in
    // virtual time. Coarse-task cursor skew averages out of the mean.
    Tick gap = t > lastT_ ? t - lastT_ : 0;
    lastT_ = std::max(lastT_, t);
    gapEwma_ += (static_cast<double>(gap) - gapEwma_) / 8.0;
    double mean_gap = std::max(gapEwma_, 1.0);

    // Fraction of acquisitions that change the owning core. A lock that
    // is only ever taken by one core (Fastsocket's partitioned state)
    // never contends, no matter how hot it is; a shared lock contends
    // even when one core happens to batch several acquisitions.
    bool cross = lastHolder_ != kInvalidCore && lastHolder_ != c;
    crossEwma_ += ((cross ? 1.0 : 0.0) - crossEwma_) / 32.0;

    Tick wait = 0;
    if (cross || crossEwma_ > 0.02) {
        // (a) Queueing term: when demand approaches the serialized
        // capacity of the lock, waiters pile up. Each already-spinning
        // core adds a handoff storm (every spinner re-reads the line on
        // release), so the serialized cost itself grows with utilization
        // — the superlinear-collapse mechanism of hot global spinlocks.
        double rho0 = std::min(1.0, s0 / mean_gap);
        double spinners = rho0 * static_cast<double>(max_queue - 1);
        double s_eff = s0 + static_cast<double>(stormCost_) * spinners;
        double rho = s_eff / mean_gap;
        // Mean spin ~ queue-depth/2 critical sections; the queue is
        // physically bounded by the core count.
        double depth = rho < 1.0
            ? std::min(rho / (1.0 - rho),
                       static_cast<double>(max_queue - 1))
            : static_cast<double>(max_queue - 1);
        double wq = 0.5 * s_eff * depth;

        // (b) Overlap term: two contexts racing on this very lock right
        // now (e.g. SoftIRQ vs syscall on one socket). The wait is at
        // most the other side's critical section (+ transfer); the raw
        // freeAt_ delta also contains coarse-task cursor skew, which
        // must not be charged.
        double wo = 0.0;
        bool true_race = false;
        if (freeAt_ > t) {
            double delta = static_cast<double>(freeAt_ - t);
            // A genuine race leaves the lock busy for at most one
            // critical section; larger deltas are echoes of task
            // granularity (one coarse task's cursor ran far ahead).
            true_race = delta <= s_eff;
            wo = std::min(delta, 2.0 * s_eff);
        }

        double w = std::min(std::max(wq, wo),
                            static_cast<double>(max_queue - 1) * s_eff);
        if (w >= 1.0) {
            wait = static_cast<Tick>(w);
            cls_->waitTicks += wait;
            cls_->maxWaitTicks = std::max(cls_->maxWaitTicks, wait);
            if (cls_->tracer)
                cls_->tracer->noteLockSpin(c, t, wait, cls_->traceId);
            // Contention counting: demand-driven spins count at rate rho
            // (PASTA); true instantaneous races count fully; skew echoes
            // barely count.
            contAccum_ += std::min(1.0, rho) +
                          (true_race ? 0.6 : (freeAt_ > t ? 0.03 : 0.0));
            if (contAccum_ >= 1.0) {
                contAccum_ -= 1.0;
                ++cls_->contentions;
            }
        }
    }

    lastWait_ = wait;

    Tick grant = t + wait + baseCost_;
    // Pulling the lock word (and by extension the data it guards) from a
    // different core's cache delays the critical section further.
    if (hasLine_)
        grant += cache_->access(c, lineId_, /*write=*/true);

    Tick end = grant + hold;
    freeAt_ = end;
    lastHolder_ = c;
    cls_->holdTicks += end - grant;
    return end;
}

void
SimRwLock::init(LockClassStats *cls, CacheModel *cache, Tick base_cost,
                Tick handoff_storm)
{
    cls_ = cls;
    cache_ = cache;
    baseCost_ = base_cost;
    stormCost_ = handoff_storm;
    if (cache_) {
        lineId_ = cache_->newObject();
        hasLine_ = true;
    }
}

Tick
SimRwLock::contendedGrant(CoreId c, Tick t, Tick busy_until, Tick hold)
{
    int max_queue = cache_ ? cache_->numCores() : 32;
    if (busy_until <= t) {
        streak_ /= 2;
        return t;
    }
    ++cls_->contentions;
    streak_ = std::min(streak_ + 1, max_queue);
    Tick storm = stormCost_ * static_cast<Tick>(streak_);
    Tick serialized = hold + baseCost_ + storm +
                      (cache_ ? cache_->missPenalty() : 0);
    Tick wait = std::min(busy_until - t,
                         serialized * static_cast<Tick>(streak_));
    cls_->waitTicks += wait;
    cls_->maxWaitTicks = std::max(cls_->maxWaitTicks, wait);
    if (cls_->tracer)
        cls_->tracer->noteLockSpin(c, t, wait + storm, cls_->traceId);
    return t + wait + storm;
}

Tick
SimRwLock::runReadLocked(CoreId c, Tick t, Tick hold)
{
    fsim_assert(cls_ != nullptr);
    ++cls_->acquisitions;
    Tick grant = contendedGrant(c, t, writeFreeAt_, hold);
    grant += baseCost_;
    if (hasLine_)
        grant += cache_->access(c, lineId_, /*write=*/false);
    Tick end = grant + hold;
    readFreeAt_ = std::max(readFreeAt_, end);
    cls_->holdTicks += hold;
    return end;
}

Tick
SimRwLock::runWriteLocked(CoreId c, Tick t, Tick hold)
{
    fsim_assert(cls_ != nullptr);
    ++cls_->acquisitions;
    Tick grant = contendedGrant(c, t,
                                std::max(writeFreeAt_, readFreeAt_),
                                hold);
    grant += baseCost_;
    if (hasLine_)
        grant += cache_->access(c, lineId_, /*write=*/true);
    Tick end = grant + hold;
    writeFreeAt_ = end;
    lastHolder_ = c;
    cls_->holdTicks += hold;
    return end;
}

} // namespace fsim
