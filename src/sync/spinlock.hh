/**
 * @file
 * Simulated spinlocks and reader-writer locks.
 *
 * A SimSpinLock serializes simulated critical sections in virtual time.
 * The caller declares the critical-section length (hold) when acquiring:
 * an acquire at tick t while the lock is busy until tick f > t spins (the
 * caller's timeline jumps to f), records one contention and the wait
 * cycles, and pays a cache-line transfer penalty whenever the lock word
 * last moved through another core. The transfer penalty grows the hold
 * window the next waiter sees, which is what makes hot global spinlocks
 * collapse superlinearly with core count — the central effect behind the
 * paper's Figure 4 curves.
 *
 * Committing the hold at acquire time (rather than at release) matches
 * the physics of short critical sections: a waiter resumes when the
 * holder leaves the section, never later — a holder's unrelated
 * downstream stalls must not convoy its waiters.
 */

#ifndef FSIM_SYNC_SPINLOCK_HH
#define FSIM_SYNC_SPINLOCK_HH

#include <cstdint>

#include "cpu/cache_model.hh"
#include "sim/types.hh"
#include "sync/lock_registry.hh"

namespace fsim
{

/** A simulated spinlock instance belonging to a lock class. */
class SimSpinLock
{
  public:
    SimSpinLock() = default;

    /**
     * Bind this lock to its class, cache line and cost table.
     *
     * @param cls Aggregated stats row (shared by the whole class).
     * @param cache Cache model; may be null for cost-free locks in tests.
     * @param base_cost Uncontended acquire+release cycles.
     */
    void init(LockClassStats *cls, CacheModel *cache, Tick base_cost,
              Tick handoff_storm = 150);

    /**
     * Acquire at tick @p t from core @p c for a critical section of
     * @p hold cycles.
     *
     * @return The tick at which the critical section *ends* (i.e. the
     *         caller's timeline after acquire + hold + release).
     */
    Tick runLocked(CoreId c, Tick t, Tick hold);

    /** Tick until which the lock is committed (tests/diagnostics). */
    Tick busyUntil() const { return freeAt_; }
    CoreId lastHolder() const { return lastHolder_; }

    /** Spin cycles paid by the most recent runLocked() call (0 when it
     *  acquired uncontended) — lets callers attribute the wait to the
     *  connection being serviced. */
    Tick lastWait() const { return lastWait_; }

    /** Trace id of the owning lock class (0 when unbound). */
    std::uint16_t classTraceId() const
    {
        return cls_ ? cls_->traceId : 0;
    }

  private:
    LockClassStats *cls_ = nullptr;
    CacheModel *cache_ = nullptr;
    std::uint64_t lineId_ = 0;
    bool hasLine_ = false;
    Tick baseCost_ = 0;

    Tick stormCost_ = 0;
    Tick freeAt_ = 0;
    Tick lastWait_ = 0;
    CoreId lastHolder_ = kInvalidCore;
    Tick lastT_ = 0;           //!< previous acquisition tick
    double gapEwma_ = 1e9;     //!< mean inter-acquisition gap estimate
    double contAccum_ = 0.0;   //!< fractional contention accumulator
    double crossEwma_ = 0.0;   //!< fraction of owner-changing acquires
};

/**
 * Simulated reader-writer lock.
 *
 * Readers do not serialize against each other; a read while a write is in
 * flight (or vice versa) waits and counts a contention against the class.
 */
class SimRwLock
{
  public:
    void init(LockClassStats *cls, CacheModel *cache, Tick base_cost,
              Tick handoff_storm = 150);

    /** Shared section of @p hold cycles. @return its end tick. */
    Tick runReadLocked(CoreId c, Tick t, Tick hold);

    /** Exclusive section of @p hold cycles. @return its end tick. */
    Tick runWriteLocked(CoreId c, Tick t, Tick hold);

  private:
    LockClassStats *cls_ = nullptr;
    CacheModel *cache_ = nullptr;
    std::uint64_t lineId_ = 0;
    bool hasLine_ = false;
    Tick baseCost_ = 0;

    Tick contendedGrant(CoreId c, Tick t, Tick busy_until, Tick hold);

    Tick stormCost_ = 0;
    Tick writeFreeAt_ = 0;   //!< last exclusive section end
    Tick readFreeAt_ = 0;    //!< last shared section end
    CoreId lastHolder_ = kInvalidCore;
    int streak_ = 0;
};

} // namespace fsim

#endif // FSIM_SYNC_SPINLOCK_HH
