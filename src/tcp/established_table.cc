#include "tcp/established_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fsim
{

namespace
{
/** Resizing stops here: 1M buckets covers the bench's 2M-entry worst
 *  case at load factor 2 without unbounded allocation. */
constexpr std::size_t kMaxBuckets = 1u << 20;

/**
 * Decorrelate the bucket index from the NIC's RSS hash. The NIC picks
 * the receive queue from flowHash too, so every flow landing on a core
 * shares residue classes of that hash — masking it directly would leave
 * a per-core table using only ~1/ncores of its buckets (chains ncores
 * times longer than the load factor suggests). Linux dodges the same
 * trap by giving the ehash its own secret (inet_ehashfn); a splitmix64
 * finalizer plays that role here.
 */
std::uint32_t
ehashMix(std::uint32_t h)
{
    std::uint64_t x = static_cast<std::uint64_t>(h) +
                      0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::uint32_t>(x ^ (x >> 31));
}
} // namespace

EstablishedTable::EstablishedTable(int n_buckets, LockRegistry &locks,
                                   CacheModel &cache,
                                   const CycleCosts &costs,
                                   const char *lock_class, bool resizable)
    : cache_(cache), costs_(costs), lockClass_(locks.getClass(lock_class)),
      resizable_(resizable)
{
    fsim_assert(n_buckets > 0 && (n_buckets & (n_buckets - 1)) == 0);
    buckets_.resize(n_buckets);
    mask_ = static_cast<std::uint32_t>(n_buckets - 1);
    for (Bucket &b : buckets_)
        initBucket(b);
}

void
EstablishedTable::initBucket(Bucket &b)
{
    b.lock.init(lockClass_, &cache_, costs_.lockAcquireBase,
                costs_.lockHandoffStorm);
    b.cacheObj = cache_.newObject();
}

void
EstablishedTable::chainPushBack(Bucket &b, Socket *sock)
{
    sock->ehashNext = nullptr;
    sock->ehashPrev = b.tail;
    if (b.tail != nullptr)
        b.tail->ehashNext = sock;
    else
        b.head = sock;
    b.tail = sock;
}

void
EstablishedTable::chainUnlink(Bucket &b, Socket *sock)
{
    if (sock->ehashPrev != nullptr)
        sock->ehashPrev->ehashNext = sock->ehashNext;
    else
        b.head = sock->ehashNext;
    if (sock->ehashNext != nullptr)
        sock->ehashNext->ehashPrev = sock->ehashPrev;
    else
        b.tail = sock->ehashPrev;
    sock->ehashNext = nullptr;
    sock->ehashPrev = nullptr;
}

EstablishedTable::Bucket &
EstablishedTable::bucketFor(const FiveTuple &tuple)
{
    return buckets_[ehashMix(flowHash(tuple)) & mask_];
}

Tick
EstablishedTable::maybeResize(CoreId, Tick t)
{
    // Double at load factor 1 so chains stay O(1) at any population —
    // the per-core analog of Linux sizing the boot-time ehash so load
    // stays well under a handful of entries per bucket.
    if (!resizable_ || size_ <= buckets_.size() ||
        buckets_.size() >= kMaxBuckets)
        return t;

    std::vector<Bucket> grown(buckets_.size() * 2);
    for (Bucket &b : grown)
        initBucket(b);
    mask_ = static_cast<std::uint32_t>(grown.size() - 1);
    std::size_t moved = 0;
    for (Bucket &b : buckets_) {
        Socket *s = b.head;
        while (s != nullptr) {
            Socket *next = s->ehashNext;
            chainPushBack(grown[ehashMix(flowHash(s->rxTuple)) & mask_], s);
            ++moved;
            s = next;
        }
    }
    buckets_ = std::move(grown);
    ++resizes_;
    // Rehash touches every entry once; only this core can observe the
    // table (resizable tables are per-core private), so the cost is a
    // straight-line walk rather than a lock storm.
    return t + static_cast<Tick>(moved) * costs_.ehashChainProbe;
}

Tick
EstablishedTable::insert(CoreId c, Tick t, Socket *sock)
{
    Bucket &b = bucketFor(sock->rxTuple);
    // The bucket line is written inside the critical section; its
    // transfer penalty extends the hold the next waiter sees.
    Tick penalty = cache_.access(c, b.cacheObj, /*write=*/true);
    Tick end = b.lock.runLocked(c, t, costs_.ehashInsertHold + penalty);
    chainPushBack(b, sock);
    ++size_;
    return maybeResize(c, end);
}

Tick
EstablishedTable::remove(CoreId c, Tick t, Socket *sock)
{
    Bucket &b = bucketFor(sock->rxTuple);
    Tick penalty = cache_.access(c, b.cacheObj, /*write=*/true);
    Tick end = b.lock.runLocked(c, t, costs_.ehashInsertHold + penalty);
    for (Socket *s = b.head; s != nullptr; s = s->ehashNext) {
        if (s == sock) {
            chainUnlink(b, sock);
            --size_;
            break;
        }
    }
    return end;
}

EstablishedTable::Lookup
EstablishedTable::lookup(CoreId c, Tick t, const FiveTuple &tuple)
{
    Bucket &b = bucketFor(tuple);
    Lookup out;
    Tick begin = t;
    t += costs_.ehashLookup;
    t += cache_.access(c, b.cacheObj, /*write=*/false);
    std::uint64_t walked = 0;
    for (Socket *s = b.head; s != nullptr; s = s->ehashNext) {
        if (s->rxTuple == tuple) {
            out.sock = s;
            break;
        }
        ++walked;
    }
    // Each entry walked past the bucket head is another tuple compare
    // plus a dependent pointer chase; this is where a fixed-size global
    // ehash hurts at millions of connections (avg chain = size/buckets).
    t += static_cast<Tick>(walked) * costs_.ehashChainProbe;
    ++lookups_;
    probesWalked_ += walked;
    lookupCycles_ += static_cast<std::uint64_t>(t - begin);
    out.t = t;
    return out;
}

std::vector<Socket *>
EstablishedTable::all() const
{
    std::vector<Socket *> out;
    out.reserve(size_);
    for (const Bucket &b : buckets_)
        for (Socket *s = b.head; s != nullptr; s = s->ehashNext)
            out.push_back(s);
    return out;
}

} // namespace fsim
