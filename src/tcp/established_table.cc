#include "tcp/established_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fsim
{

EstablishedTable::EstablishedTable(int n_buckets, LockRegistry &locks,
                                   CacheModel &cache,
                                   const CycleCosts &costs,
                                   const char *lock_class)
    : cache_(cache), costs_(costs)
{
    fsim_assert(n_buckets > 0 && (n_buckets & (n_buckets - 1)) == 0);
    buckets_.resize(n_buckets);
    mask_ = static_cast<std::uint32_t>(n_buckets - 1);
    LockClassStats *cls = locks.getClass(lock_class);
    for (Bucket &b : buckets_) {
        b.lock.init(cls, &cache_, costs_.lockAcquireBase,
                    costs_.lockHandoffStorm);
        b.cacheObj = cache_.newObject();
    }
}

EstablishedTable::Bucket &
EstablishedTable::bucketFor(const FiveTuple &tuple)
{
    return buckets_[flowHash(tuple) & mask_];
}

Tick
EstablishedTable::insert(CoreId c, Tick t, Socket *sock)
{
    Bucket &b = bucketFor(sock->rxTuple);
    // The bucket line is written inside the critical section; its
    // transfer penalty extends the hold the next waiter sees.
    Tick penalty = cache_.access(c, b.cacheObj, /*write=*/true);
    Tick end = b.lock.runLocked(c, t, costs_.ehashInsertHold + penalty);
    b.chain.push_back(sock);
    ++size_;
    return end;
}

Tick
EstablishedTable::remove(CoreId c, Tick t, Socket *sock)
{
    Bucket &b = bucketFor(sock->rxTuple);
    Tick penalty = cache_.access(c, b.cacheObj, /*write=*/true);
    Tick end = b.lock.runLocked(c, t, costs_.ehashInsertHold + penalty);
    auto pos = std::find(b.chain.begin(), b.chain.end(), sock);
    if (pos != b.chain.end()) {
        b.chain.erase(pos);
        --size_;
    }
    return end;
}

EstablishedTable::Lookup
EstablishedTable::lookup(CoreId c, Tick t, const FiveTuple &tuple)
{
    Bucket &b = bucketFor(tuple);
    Lookup out;
    t += costs_.ehashLookup;
    t += cache_.access(c, b.cacheObj, /*write=*/false);
    for (Socket *s : b.chain) {
        if (s->rxTuple == tuple) {
            out.sock = s;
            break;
        }
    }
    out.t = t;
    return out;
}

std::vector<Socket *>
EstablishedTable::all() const
{
    std::vector<Socket *> out;
    out.reserve(size_);
    for (const Bucket &b : buckets_)
        for (Socket *s : b.chain)
            out.push_back(s);
    return out;
}

} // namespace fsim
