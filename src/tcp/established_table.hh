/**
 * @file
 * The established-connection hash table ("ehash").
 *
 * The stock kernel keeps one machine-wide instance whose buckets are
 * protected by per-bucket locks (the ehash.lock row of Table 1); Fastsocket
 * instead creates one instance per core (the Local Established Table,
 * section 3.2.2) — the same class is reused, and because each per-core
 * instance is only ever touched by its owning core, its lock acquisitions
 * never contend, exactly as the paper's design argues.
 *
 * Lookups charge a per-entry chain-walk cost on top of the base probe, so
 * chain growth (millions of connections over a fixed bucket array) shows
 * up as rising per-connection cycles. A table may opt into load-factor
 * resizing; the global ehash is sized once at boot like the kernel's,
 * while the private per-core tables may grow because no other core ever
 * holds references into them.
 */

#ifndef FSIM_TCP_ESTABLISHED_TABLE_HH
#define FSIM_TCP_ESTABLISHED_TABLE_HH

#include <cstdint>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/cycle_costs.hh"
#include "net/packet.hh"
#include "sim/types.hh"
#include "sync/lock_registry.hh"
#include "sync/spinlock.hh"
#include "tcp/socket.hh"

namespace fsim
{

/** Hash table of established (and handshaking) connection sockets. */
class EstablishedTable
{
  public:
    /**
     * @param n_buckets Power-of-two bucket count.
     * @param lock_class Lockstat class name ("ehash.lock").
     * @param resizable Double the bucket array when the load factor
     *                  exceeds 2 (per-core private tables only; the
     *                  global ehash is boot-sized like the kernel's).
     */
    EstablishedTable(int n_buckets, LockRegistry &locks, CacheModel &cache,
                     const CycleCosts &costs,
                     const char *lock_class = "ehash.lock",
                     bool resizable = false);

    /**
     * Insert @p sock keyed by its rxTuple; charges the bucket lock.
     *
     * @return completion tick.
     */
    Tick insert(CoreId c, Tick t, Socket *sock);

    /**
     * Remove @p sock; charges the bucket lock.
     *
     * @return completion tick (unchanged if the socket was absent).
     */
    Tick remove(CoreId c, Tick t, Socket *sock);

    /** Lookup result plus the tick after the probe cost. */
    struct Lookup
    {
        Socket *sock = nullptr;
        Tick t = 0;
    };

    /** Find the socket matching an incoming packet's tuple. */
    Lookup lookup(CoreId c, Tick t, const FiveTuple &tuple);

    std::size_t size() const { return size_; }
    std::size_t bucketCount() const { return buckets_.size(); }

    /** @name Chain-walk cost counters (per-connection-cost forensics) */
    /** @{ */
    std::uint64_t lookups() const { return lookups_; }
    /** Chain entries walked past the bucket head, summed over lookups. */
    std::uint64_t probesWalked() const { return probesWalked_; }
    /** Cycles charged to lookups (base + chain walk + cache). */
    std::uint64_t lookupCycles() const { return lookupCycles_; }
    std::uint64_t resizes() const { return resizes_; }
    /** @} */

    /** All sockets (slow; for /proc walks and leak checks in tests). */
    std::vector<Socket *> all() const;

  private:
    /** Chains are intrusive (Socket::ehashNext/ehashPrev), insertion-
     *  ordered — same walk order as the vector they replaced, but
     *  inserting into an empty bucket never allocates. */
    struct Bucket
    {
        Socket *head = nullptr;
        Socket *tail = nullptr;
        SimSpinLock lock;
        std::uint64_t cacheObj = 0;
    };

    Bucket &bucketFor(const FiveTuple &tuple);
    static void chainPushBack(Bucket &b, Socket *sock);
    static void chainUnlink(Bucket &b, Socket *sock);
    void initBucket(Bucket &b);
    Tick maybeResize(CoreId c, Tick t);

    CacheModel &cache_;
    const CycleCosts &costs_;
    LockClassStats *lockClass_;
    std::vector<Bucket> buckets_;
    std::uint32_t mask_;
    std::size_t size_ = 0;
    bool resizable_;
    std::uint64_t lookups_ = 0;
    std::uint64_t probesWalked_ = 0;
    std::uint64_t lookupCycles_ = 0;
    std::uint64_t resizes_ = 0;
};

} // namespace fsim

#endif // FSIM_TCP_ESTABLISHED_TABLE_HH
