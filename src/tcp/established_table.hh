/**
 * @file
 * The established-connection hash table ("ehash").
 *
 * The stock kernel keeps one machine-wide instance whose buckets are
 * protected by per-bucket locks (the ehash.lock row of Table 1); Fastsocket
 * instead creates one instance per core (the Local Established Table,
 * section 3.2.2) — the same class is reused, and because each per-core
 * instance is only ever touched by its owning core, its lock acquisitions
 * never contend, exactly as the paper's design argues.
 */

#ifndef FSIM_TCP_ESTABLISHED_TABLE_HH
#define FSIM_TCP_ESTABLISHED_TABLE_HH

#include <cstdint>
#include <vector>

#include "cpu/cache_model.hh"
#include "cpu/cycle_costs.hh"
#include "net/packet.hh"
#include "sim/types.hh"
#include "sync/lock_registry.hh"
#include "sync/spinlock.hh"
#include "tcp/socket.hh"

namespace fsim
{

/** Hash table of established (and handshaking) connection sockets. */
class EstablishedTable
{
  public:
    /**
     * @param n_buckets Power-of-two bucket count.
     * @param lock_class Lockstat class name ("ehash.lock").
     */
    EstablishedTable(int n_buckets, LockRegistry &locks, CacheModel &cache,
                     const CycleCosts &costs,
                     const char *lock_class = "ehash.lock");

    /**
     * Insert @p sock keyed by its rxTuple; charges the bucket lock.
     *
     * @return completion tick.
     */
    Tick insert(CoreId c, Tick t, Socket *sock);

    /**
     * Remove @p sock; charges the bucket lock.
     *
     * @return completion tick (unchanged if the socket was absent).
     */
    Tick remove(CoreId c, Tick t, Socket *sock);

    /** Lookup result plus the tick after the probe cost. */
    struct Lookup
    {
        Socket *sock = nullptr;
        Tick t = 0;
    };

    /** Find the socket matching an incoming packet's tuple. */
    Lookup lookup(CoreId c, Tick t, const FiveTuple &tuple);

    std::size_t size() const { return size_; }

    /** All sockets (slow; for /proc walks and leak checks in tests). */
    std::vector<Socket *> all() const;

  private:
    struct Bucket
    {
        std::vector<Socket *> chain;
        SimSpinLock lock;
        std::uint64_t cacheObj = 0;
    };

    Bucket &bucketFor(const FiveTuple &tuple);

    CacheModel &cache_;
    const CycleCosts &costs_;
    std::vector<Bucket> buckets_;
    std::uint32_t mask_;
    std::size_t size_ = 0;
};

} // namespace fsim

#endif // FSIM_TCP_ESTABLISHED_TABLE_HH
