#include "tcp/listen_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fsim
{

void
ListenTable::insert(Socket *sock)
{
    fsim_assert(sock->kind == SockKind::kListen);
    buckets_[key(sock->bindAddr, sock->bindPort)].push_back(sock);
    ++size_;
}

bool
ListenTable::remove(Socket *sock)
{
    auto it = buckets_.find(key(sock->bindAddr, sock->bindPort));
    if (it == buckets_.end())
        return false;
    auto &chain = it->second;
    auto pos = std::find(chain.begin(), chain.end(), sock);
    if (pos == chain.end())
        return false;
    chain.erase(pos);
    if (chain.empty())
        buckets_.erase(it);
    --size_;
    return true;
}

ListenTable::Lookup
ListenTable::lookup(IpAddr addr, Port port, Rng &rng) const
{
    Lookup result;
    const std::vector<Socket *> *chain = nullptr;

    auto it = buckets_.find(key(addr, port));
    if (it != buckets_.end() && !it->second.empty()) {
        chain = &it->second;
    } else {
        auto wild = buckets_.find(key(0, port));
        if (wild != buckets_.end() && !wild->second.empty())
            chain = &wild->second;
    }

    if (!chain)
        return result;

    result.chain = chain;
    if (chain->size() == 1) {
        result.sock = chain->front();
        result.walked = 1;
        return result;
    }

    // SO_REUSEPORT: walk the whole chain scoring each clone, then pick one
    // at random — this is what makes inet_lookup_listener O(n).
    std::size_t pick = rng.range(chain->size());
    result.sock = (*chain)[pick];
    result.walked = static_cast<int>(chain->size());
    return result;
}

Socket *
ListenTable::findExact(IpAddr addr, Port port) const
{
    auto it = buckets_.find(key(addr, port));
    if (it == buckets_.end() || it->second.empty())
        return nullptr;
    return it->second.front();
}

std::size_t
ListenTable::chainLength(IpAddr addr, Port port) const
{
    auto it = buckets_.find(key(addr, port));
    return it == buckets_.end() ? 0 : it->second.size();
}

std::vector<Socket *>
ListenTable::all() const
{
    std::vector<Socket *> out;
    out.reserve(size_);
    for (const auto &kv : buckets_)
        for (Socket *s : kv.second)
            out.push_back(s);
    return out;
}

} // namespace fsim
