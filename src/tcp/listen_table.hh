/**
 * @file
 * The listen socket hash table.
 *
 * One instance serves as the *global* listen table (all kernel flavors
 * keep it; Fastsocket keeps it for robustness, section 3.2.1); Fastsocket
 * additionally instantiates one per core as the Local Listen Table.
 *
 * Under SO_REUSEPORT (Linux 3.13 flavor) every process inserts a clone for
 * the same (addr, port), so a lookup must walk the chain and pick one clone
 * at random — the O(n) cost the paper measures at 24.2% of cycles on 24
 * cores (section 2.1). lookup() reports how many chain entries it walked so
 * the kernel can charge that cost.
 */

#ifndef FSIM_TCP_LISTEN_TABLE_HH
#define FSIM_TCP_LISTEN_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hh"
#include "sim/rng.hh"
#include "tcp/socket.hh"

namespace fsim
{

/** Hash table of listen sockets keyed by (bind address, port). */
class ListenTable
{
  public:
    /** Result of a listener lookup. */
    struct Lookup
    {
        Socket *sock = nullptr;
        /** Chain entries examined (drives the O(n) reuseport cost). */
        int walked = 0;
        /** The bucket chain that was walked (for per-entry cache
         *  charging by the caller); null when nothing matched. */
        const std::vector<Socket *> *chain = nullptr;
    };

    /** Insert a listen socket (multiple per key allowed: SO_REUSEPORT). */
    void insert(Socket *sock);

    /**
     * Remove a listen socket.
     *
     * @return false if the socket was not present.
     */
    bool remove(Socket *sock);

    /**
     * Find a listener for a packet destined to @p addr : @p port.
     *
     * Tries the exact (addr, port) key first, then the wildcard
     * (INADDR_ANY, port). When several clones share the key, one is chosen
     * uniformly at random via @p rng, matching the reuseport behavior in
     * NET_RX SoftIRQ.
     */
    Lookup lookup(IpAddr addr, Port port, Rng &rng) const;

    /** Number of listen sockets bound to (addr, port). */
    std::size_t chainLength(IpAddr addr, Port port) const;

    /** First listener bound exactly to (addr, port), or null. */
    Socket *findExact(IpAddr addr, Port port) const;

    /** Total listen sockets in the table. */
    std::size_t size() const { return size_; }

    /** All sockets (for /proc-style walks in tests/examples). */
    std::vector<Socket *> all() const;

  private:
    static std::uint64_t
    key(IpAddr addr, Port port)
    {
        return (static_cast<std::uint64_t>(addr) << 16) | port;
    }

    std::unordered_map<std::uint64_t, std::vector<Socket *>> buckets_;
    std::size_t size_ = 0;
};

} // namespace fsim

#endif // FSIM_TCP_LISTEN_TABLE_HH
