#include "tcp/port_alloc.hh"

#include "sim/logging.hh"

namespace fsim
{

PortAllocator::PortAllocator(Port lo, Port hi)
    : lo_(lo), hi_(hi), hint_(lo)
{
    fsim_assert(lo_ > 0 && lo_ < hi_);
}

PortAllocator::PortSet &
PortAllocator::setFor(std::uint64_t key)
{
    PortSet &set = used_[key];
    if (set.bits.empty())
        set.bits.resize((static_cast<std::size_t>(hi_) >> 6) + 1, 0);
    return set;
}

Port
PortAllocator::alloc(IpAddr dst, Port dport)
{
    PortSet &set = setFor(dkey(dst, dport));
    const std::uint32_t span = hi_ - lo_ + 1u;
    Port p = hint_;
    for (std::uint32_t i = 0; i < span; ++i) {
        if (!set.test(p)) {
            set.set(p);
            ++total_;
            hint_ = p == hi_ ? lo_ : static_cast<Port>(p + 1);
            return p;
        }
        p = p == hi_ ? lo_ : static_cast<Port>(p + 1);
    }
    return 0;
}

Port
PortAllocator::allocForCore(IpAddr dst, Port dport, CoreId core, Port mask)
{
    fsim_assert(core >= 0 && static_cast<Port>(core) <= mask);
    fsim_assert(((static_cast<std::uint32_t>(mask) + 1) &
                 static_cast<std::uint32_t>(mask)) == 0);

    PortSet &set = setFor(dkey(dst, dport));
    const std::uint32_t stride = static_cast<std::uint32_t>(mask) + 1;

    // First candidate >= lo_ with (p & mask) == core.
    std::uint32_t first = (lo_ & ~static_cast<std::uint32_t>(mask)) +
                          static_cast<std::uint32_t>(core);
    if (first < lo_)
        first += stride;

    std::uint64_t hkey = (dkey(dst, dport) << 6) | static_cast<unsigned>(core);
    auto hintIt = coreHints_.find(hkey);
    std::uint32_t start = hintIt != coreHints_.end() ? hintIt->second : first;
    if (start < first || start > hi_)
        start = first;

    // Scan candidates cyclically within [first, hi_].
    std::uint32_t p = start;
    bool wrapped = false;
    while (true) {
        if (p > hi_) {
            if (wrapped)
                return 0;
            wrapped = true;
            p = first;
            continue;
        }
        if (!set.test(static_cast<Port>(p))) {
            set.set(static_cast<Port>(p));
            ++total_;
            coreHints_[hkey] = static_cast<Port>(
                p + stride > hi_ ? first : p + stride);
            return static_cast<Port>(p);
        }
        if (wrapped && p >= start)
            return 0;
        p += stride;
    }
}

bool
PortAllocator::claim(IpAddr dst, Port dport, Port p)
{
    PortSet &set = setFor(dkey(dst, dport));
    if (set.test(p))
        return false;
    set.set(p);
    ++total_;
    return true;
}

bool
PortAllocator::release(IpAddr dst, Port dport, Port p)
{
    auto it = used_.find(dkey(dst, dport));
    if (it == used_.end() || !it->second.test(p))
        return false;
    it->second.clear(p);
    --total_;
    return true;
}

bool
PortAllocator::inUse(IpAddr dst, Port dport, Port p) const
{
    auto it = used_.find(dkey(dst, dport));
    return it != used_.end() && it->second.test(p);
}

} // namespace fsim
