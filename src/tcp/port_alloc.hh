/**
 * @file
 * Ephemeral source-port allocator for active connections.
 *
 * Supports the standard rotating next-fit policy and the Fastsocket RFD
 * policy: pick a source port p with (p & mask) == core so that the reply's
 * destination port hashes back to the initiating core (section 3.3).
 * Uniqueness is per (destination address, destination port), like the
 * kernel's four-tuple-scoped port reuse.
 */

#ifndef FSIM_TCP_PORT_ALLOC_HH
#define FSIM_TCP_PORT_ALLOC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hh"
#include "sim/types.hh"

namespace fsim
{

/** Ephemeral port allocator. */
class PortAllocator
{
  public:
    /** @param lo,hi Inclusive ephemeral range (Linux default-ish). */
    explicit PortAllocator(Port lo = 32768, Port hi = 61000);

    /**
     * Allocate any free port toward @p dst : @p dport.
     *
     * @return 0 if the range is exhausted for this destination.
     */
    Port alloc(IpAddr dst, Port dport);

    /**
     * Allocate a port whose low bits encode @p core: (p & mask) == core.
     *
     * @param mask RFD hash mask, roundup_pow2(ncores)-1; core <= mask.
     * @return 0 if exhausted.
     */
    Port allocForCore(IpAddr dst, Port dport, CoreId core, Port mask);

    /**
     * Claim a specific port (used by RFD's candidate iteration).
     *
     * @return false if it is already in use.
     */
    bool claim(IpAddr dst, Port dport, Port p);

    /** Release a port. @return false if it was not allocated. */
    bool release(IpAddr dst, Port dport, Port p);

    bool inUse(IpAddr dst, Port dport, Port p) const;

    std::size_t inUseCount() const { return total_; }

    Port lo() const { return lo_; }
    Port hi() const { return hi_; }

  private:
    static std::uint64_t
    dkey(IpAddr dst, Port dport)
    {
        return (static_cast<std::uint64_t>(dst) << 16) | dport;
    }

    /** Per-destination in-use bitmap. A hash set would allocate a node
     *  per claimed port — once per connection, the exact churn the
     *  allocation audit forbids. 8 KB per destination, sized lazily. */
    struct PortSet
    {
        std::vector<std::uint64_t> bits;

        bool
        test(Port p) const
        {
            return !bits.empty() &&
                   (bits[p >> 6] >> (p & 63)) & 1u;
        }

        void set(Port p) { bits[p >> 6] |= 1ull << (p & 63); }
        void clear(Port p) { bits[p >> 6] &= ~(1ull << (p & 63)); }
    };

    /** Bitmap for @p key, sized to cover the ephemeral range. */
    PortSet &setFor(std::uint64_t key);

    Port lo_;
    Port hi_;
    Port hint_;
    /** Keyed by destination: a handful of long-lived entries (one per
     *  backend), so the map itself sees no steady-state churn. Empty
     *  sets are deliberately never erased — their capacity is the
     *  recycled resource. */
    std::unordered_map<std::uint64_t, PortSet> used_;
    std::unordered_map<std::uint64_t, Port> coreHints_;
    std::size_t total_ = 0;
};

} // namespace fsim

#endif // FSIM_TCP_PORT_ALLOC_HH
