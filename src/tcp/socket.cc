#include "tcp/socket.hh"

#include <bit>

namespace fsim
{

const char *
tcpStateName(TcpState s)
{
    switch (s) {
      case TcpState::kClosed:
        return "CLOSED";
      case TcpState::kListen:
        return "LISTEN";
      case TcpState::kSynSent:
        return "SYN_SENT";
      case TcpState::kSynRcvd:
        return "SYN_RCVD";
      case TcpState::kEstablished:
        return "ESTABLISHED";
      case TcpState::kFinWait1:
        return "FIN_WAIT1";
      case TcpState::kFinWait2:
        return "FIN_WAIT2";
      case TcpState::kCloseWait:
        return "CLOSE_WAIT";
      case TcpState::kLastAck:
        return "LAST_ACK";
      case TcpState::kTimeWait:
        return "TIME_WAIT";
    }
    return "?";
}

int
Socket::touchedCount() const
{
    return std::popcount(coresTouched);
}

} // namespace fsim
