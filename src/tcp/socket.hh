/**
 * @file
 * The TCP Control Block (TCB), represented — as in Linux — by a socket.
 *
 * A Socket is either a listen socket (possibly a per-core *local* listen
 * socket cloned from a global one, in Fastsocket mode) or a connection
 * socket created passively (accept path) or actively (connect path).
 * Every socket carries its own slock, the per-socket spinlock that the
 * stock kernel contends on whenever SoftIRQ context (packet processing)
 * and process context (syscalls) run on different cores.
 */

#ifndef FSIM_TCP_SOCKET_HH
#define FSIM_TCP_SOCKET_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hh"
#include "sim/ring_queue.hh"
#include "sim/types.hh"
#include "sync/spinlock.hh"
#include "timerwheel/timer_wheel.hh"

namespace fsim
{

struct SocketFile;

/** TCP connection states (RFC 793 subset exercised by the simulator). */
enum class TcpState
{
    kClosed,
    kListen,
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kLastAck,
    kTimeWait,
};

/** Human-readable state name (used by the netstat example and tests). */
const char *tcpStateName(TcpState s);

/** Whether the socket is a listener or a connection endpoint. */
enum class SockKind
{
    kListen,
    kConnection,
};

/** A socket / TCB. */
struct Socket
{
    std::uint64_t id = 0;
    SockKind kind = SockKind::kConnection;
    TcpState state = TcpState::kClosed;

    /** @name Listen sockets */
    /** @{ */
    IpAddr bindAddr = 0;
    Port bindPort = 0;
    /** True for a per-core clone in a Local Listen Table. */
    bool isLocalListen = false;
    /** Owning core of a local listen socket (else kInvalidCore). */
    CoreId homeCore = kInvalidCore;
    /** For a local listen socket: the global listen socket it clones. */
    Socket *globalParent = nullptr;
    /** Connections that completed the handshake, awaiting accept().
     *  A RingQueue, not a deque: a default-constructed libstdc++ deque
     *  allocates its first block eagerly, which would charge every
     *  arena-recycled TCB one hidden 512-byte allocation. */
    RingQueue<Socket *> acceptQueue;
    /** Accept-queue capacity (somaxconn); overflow rejects connections. */
    std::size_t backlog = 512;
    /** SO_REUSEPORT clone owner process (kLinux313 flavor). */
    int reuseportOwner = -1;
    /** Embryonic (SYN_RECV) children not yet established. */
    std::size_t synQueueLen = 0;
    /** Processes watching this listen socket: (process, fd) pairs. */
    std::vector<std::pair<int, int>> watchers;
    /** @} */

    /** @name Connection sockets */
    /** @{ */
    /** Expected tuple of *incoming* packets (saddr/sport = peer). */
    FiveTuple rxTuple;
    /** True if created by the accept path, false for connect(). */
    bool passive = true;
    /** Core of the application process using this connection. */
    CoreId ownerCore = kInvalidCore;
    /** Process using this connection (-1 before accept()). */
    int ownerProcess = -1;
    /** Listen socket this connection was spawned from (passive only). */
    Socket *parentListen = nullptr;
    /** VFS file, once attached to a process. */
    SocketFile *file = nullptr;
    /** Bytes received and not yet read by the application. */
    std::uint32_t rxPending = 0;
    /** Peer sent FIN (connection is half-closed). */
    bool peerFin = false;
    /** Peer requested "Connection: close" on a data segment (the flow's
     *  last request; a keep-alive server should actively close). */
    bool peerConnClose = false;
    /** Pending retransmission/keepalive timer (0 = none). */
    TimerWheel::TimerId timer = TimerWheel::kInvalidTimer;
    /** Core whose timer base holds the pending timer. */
    CoreId timerCore = kInvalidCore;
    /** Opaque application-level context. */
    void *appCtx = nullptr;
    /** Established table this socket currently lives in (null if none). */
    class EstablishedTable *ehashHome = nullptr;
    /** Intrusive ehash bucket-chain links, insertion-ordered. Chains
     *  are intrusive rather than per-bucket vectors so inserting into a
     *  never-before-used bucket does not heap-allocate (the audit
     *  forbids per-connection allocation, and hashed bucket spread
     *  means fresh buckets keep appearing deep into steady state). */
    Socket *ehashNext = nullptr;
    Socket *ehashPrev = nullptr;
    /** Next transmit ordinal stamped into outgoing packets (wire-fault
     *  decisions hash it so retransmissions draw independent fates). */
    std::uint32_t txSeqCounter = 0;
    /** Tick at which this connection entered its listener's accept
     *  queue; accept() derives the queue sojourn from it, which is the
     *  signal the admission controller's deadline shed keys on. */
    Tick acceptEnqueueTick = 0;
    /** Core whose SoftIRQ context enqueued this connection into the
     *  accept queue; span traces place the accept-queue sojourn on it
     *  (where the connection actually waited). */
    CoreId acceptEnqueueCore = kInvalidCore;
    /** Flow carried the packet priority mark (health/control class);
     *  inherited from the SYN so the admission controller can classify
     *  the connection before any payload arrives. */
    bool prio = false;
    /** Distributed trace context inherited from the SYN (or the
     *  cookie-validated ACK), like prio; stamped back onto every packet
     *  this socket transmits so the reply path carries the same
     *  end-to-end trace id the client minted. 0 = untraced. */
    std::uint64_t traceId = 0;
    /** @} */

    /** Per-socket lock (the paper's "slock" row). */
    SimSpinLock slock;
    /** Cache object of the TCB itself. */
    std::uint64_t cacheObj = 0;
    /** Slot in the owning TcbArena (kNoArenaSlot if heap-constructed). */
    static constexpr std::uint32_t kNoArenaSlot = 0xffffffffu;
    std::uint32_t arenaSlot = kNoArenaSlot;

    /** @name Cross-core census (for locality property checks) */
    /** @{ */
    /** Cores that ever executed work touching this socket (bitmask). */
    std::uint64_t coresTouched = 0;

    void
    touch(CoreId c)
    {
        if (c >= 0 && c < 64)
            coresTouched |= 1ull << c;
    }

    /** Number of distinct cores that touched this socket. */
    int touchedCount() const;
    /** @} */
};

} // namespace fsim

#endif // FSIM_TCP_SOCKET_HH
