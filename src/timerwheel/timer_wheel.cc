#include "timerwheel/timer_wheel.hh"

#include <utility>

#include "sim/logging.hh"

namespace fsim
{

TimerWheel::TimerWheel(std::uint64_t start_jiffy)
    : jiffy_(start_jiffy)
{
}

TimerWheel::TimerId
TimerWheel::add(std::uint64_t expires, Callback cb)
{
    TimerId id = nextId_++;
    auto [it, ok] = nodes_.emplace(id, Node{expires, std::move(cb),
                                            kDetached, 0, 0});
    (void)ok;
    ++liveCount_;
    place(id, it->second);
    return id;
}

bool
TimerWheel::cancel(TimerId id)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return false;
    detach(it->second);
    nodes_.erase(it);
    --liveCount_;
    return true;
}

bool
TimerWheel::modify(TimerId id, std::uint64_t expires)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return false;
    detach(it->second);
    it->second.expires = expires;
    place(id, it->second);
    return true;
}

TimerWheel::Slot &
TimerWheel::slotAt(std::uint8_t level, std::uint32_t index)
{
    if (level == 0)
        return tv1_[index];
    return tvn_[level - 1][index];
}

void
TimerWheel::place(TimerId id, Node &node)
{
    // Clamp far-future timers into the outermost level, like the kernel.
    constexpr std::uint64_t kMaxDelta =
        (1ull << (kTv1Bits + kLevels * kTvnBits)) - 1;
    std::uint64_t expires = node.expires;
    if (expires > jiffy_ + kMaxDelta)
        expires = jiffy_ + kMaxDelta;

    std::uint64_t delta =
        expires > jiffy_ ? expires - jiffy_ : 0;

    std::uint8_t level;
    std::uint32_t index;
    if (delta == 0) {
        // Already (or about to be) expired: fire on the next tick.
        level = 0;
        index = (jiffy_ + 1) & (kTv1Size - 1);
    } else if (delta < kTv1Size) {
        level = 0;
        index = expires & (kTv1Size - 1);
    } else {
        level = kLevels;    // outermost unless a lower level fits
        index = 0;
        for (std::uint32_t l = 0; l < kLevels; ++l) {
            std::uint32_t shift = kTv1Bits + (l + 1) * kTvnBits;
            if (delta < (1ull << shift) || l == kLevels - 1) {
                level = static_cast<std::uint8_t>(l + 1);
                index = (expires >> (shift - kTvnBits)) & (kTvnSize - 1);
                break;
            }
        }
    }

    Slot &slot = slotAt(level, index);
    node.level = level;
    node.index = index;
    node.pos = static_cast<std::uint32_t>(slot.size());
    slot.push_back(id);
}

void
TimerWheel::detach(Node &node)
{
    if (node.level == kDetached)
        return;
    Slot &slot = slotAt(node.level, node.index);
    fsim_assert(node.pos < slot.size());
    TimerId moved = slot.back();
    slot[node.pos] = moved;
    slot.pop_back();
    if (node.pos < slot.size()) {
        // Fix the swapped-in entry's recorded position.
        auto mit = nodes_.find(moved);
        fsim_assert(mit != nodes_.end());
        mit->second.pos = node.pos;
    }
    node.level = kDetached;
}

void
TimerWheel::cascade(std::uint32_t level, std::uint32_t index)
{
    Slot moved = std::move(tvn_[level][index]);
    tvn_[level][index].clear();
    cascaded_ += moved.size();
    for (TimerId id : moved) {
        auto it = nodes_.find(id);
        if (it == nodes_.end())
            continue;   // defensive; eager detach should prevent this
        it->second.level = kDetached;
        place(id, it->second);
    }
}

void
TimerWheel::tickOnce()
{
    ++jiffy_;
    std::uint32_t idx1 = jiffy_ & (kTv1Size - 1);
    if (idx1 == 0) {
        for (std::uint32_t level = 0; level < kLevels; ++level) {
            std::uint32_t shift = kTv1Bits + level * kTvnBits;
            std::uint32_t idx = (jiffy_ >> shift) & (kTvnSize - 1);
            cascade(level, idx);
            if (idx != 0)
                break;
        }
    }

    Slot due = std::move(tv1_[idx1]);
    tv1_[idx1].clear();
    // The due batch is detached from the wheel: mark members so a
    // cancel()/modify() issued by an earlier callback in this batch does
    // not try to swap-pop inside the (already moved-out) vector.
    for (TimerId id : due) {
        auto it = nodes_.find(id);
        if (it != nodes_.end())
            it->second.level = kDetached;
    }
    for (TimerId id : due) {
        auto it = nodes_.find(id);
        if (it == nodes_.end())
            continue;   // cancelled by an earlier callback in this batch
        if (it->second.expires > jiffy_) {
            // Re-armed to a later time by an earlier callback; if it is
            // still detached, give it back a real slot.
            if (it->second.level == kDetached)
                place(id, it->second);
            continue;
        }
        Callback cb = std::move(it->second.cb);
        nodes_.erase(it);
        --liveCount_;
        ++fired_;
        cb();
    }
}

std::size_t
TimerWheel::advance(std::uint64_t to_jiffy)
{
    std::size_t before = fired_;
    while (jiffy_ < to_jiffy)
        tickOnce();
    return fired_ - before;
}

std::size_t
TimerWheel::slotEntries() const
{
    std::size_t n = 0;
    for (const Slot &s : tv1_)
        n += s.size();
    for (const auto &level : tvn_)
        for (const Slot &s : level)
            n += s.size();
    return n;
}

} // namespace fsim
