#include "timerwheel/timer_wheel.hh"

#include <utility>

#include "sim/logging.hh"

namespace fsim
{

TimerWheel::TimerWheel(std::uint64_t start_jiffy)
    : jiffy_(start_jiffy)
{
    // Give every slot a sticky capacity up front: the first pushes into
    // a fresh slot would otherwise heap-allocate, and timers keep
    // wrapping into fresh slot indices deep into steady state, which
    // the allocation audit forbids. tv1 wraps every 256 jiffies, so a
    // short warm-up discovers its per-slot high-water marks; the outer
    // levels wrap over minutes of simulated time — no warm-up covers a
    // revolution, so they get enough capacity for every live socket's
    // long-horizon (keepalive/embryonic) timer to share one slot.
    // 16, not a token 1-2: tv1 occupancy is sub-1 on average but
    // cascades dump whole outer-level slots across it, so rare slots
    // see several entries — the next doubling threshold must sit above
    // any occupancy the steady state can reach.
    for (Slot &s : tv1_)
        s.reserve(16);
    for (auto &level : tvn_)
        for (Slot &s : level)
            s.reserve(256);
}

TimerWheel::Node *
TimerWheel::nodeAt(TimerId id)
{
    const std::uint32_t idx = static_cast<std::uint32_t>(id);
    if (idx == 0 || idx > nodes_.size())
        return nullptr;
    Node &n = nodes_[idx - 1];
    if (!n.live || n.gen != static_cast<std::uint32_t>(id >> 32))
        return nullptr;
    return &n;
}

void
TimerWheel::freeNode(TimerId id)
{
    const std::uint32_t idx = static_cast<std::uint32_t>(id) - 1;
    Node &n = nodes_[idx];
    n.cb.reset();
    n.live = false;
    n.level = kDetached;
    ++n.gen;   // every outstanding handle to this slot goes stale
    n.nextFree = freeHead_;
    freeHead_ = idx;
}

TimerWheel::TimerId
TimerWheel::add(std::uint64_t expires, Callback cb)
{
    std::uint32_t idx;
    if (freeHead_ != kNoFree) {
        idx = freeHead_;
        freeHead_ = nodes_[idx].nextFree;
    } else {
        idx = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();
    }
    Node &n = nodes_[idx];
    n.expires = expires;
    n.cb = std::move(cb);
    n.live = true;
    n.level = kDetached;
    n.nextFree = kNoFree;
    const TimerId id =
        (static_cast<TimerId>(n.gen) << 32) | (idx + 1);
    ++liveCount_;
    place(id, n);
    return id;
}

bool
TimerWheel::cancel(TimerId id)
{
    Node *n = nodeAt(id);
    if (!n)
        return false;
    detach(*n);
    freeNode(id);
    --liveCount_;
    return true;
}

bool
TimerWheel::modify(TimerId id, std::uint64_t expires)
{
    Node *n = nodeAt(id);
    if (!n)
        return false;
    detach(*n);
    n->expires = expires;
    place(id, *n);
    return true;
}

TimerWheel::Slot &
TimerWheel::slotAt(std::uint8_t level, std::uint32_t index)
{
    if (level == 0)
        return tv1_[index];
    return tvn_[level - 1][index];
}

void
TimerWheel::place(TimerId id, Node &node)
{
    // Clamp far-future timers into the outermost level, like the kernel.
    constexpr std::uint64_t kMaxDelta =
        (1ull << (kTv1Bits + kLevels * kTvnBits)) - 1;
    std::uint64_t expires = node.expires;
    if (expires > jiffy_ + kMaxDelta)
        expires = jiffy_ + kMaxDelta;

    std::uint64_t delta =
        expires > jiffy_ ? expires - jiffy_ : 0;

    std::uint8_t level;
    std::uint32_t index;
    if (delta == 0) {
        // Already (or about to be) expired: fire on the next tick.
        level = 0;
        index = (jiffy_ + 1) & (kTv1Size - 1);
    } else if (delta < kTv1Size) {
        level = 0;
        index = expires & (kTv1Size - 1);
    } else {
        level = kLevels;    // outermost unless a lower level fits
        index = 0;
        for (std::uint32_t l = 0; l < kLevels; ++l) {
            std::uint32_t shift = kTv1Bits + (l + 1) * kTvnBits;
            if (delta < (1ull << shift) || l == kLevels - 1) {
                level = static_cast<std::uint8_t>(l + 1);
                index = (expires >> (shift - kTvnBits)) & (kTvnSize - 1);
                break;
            }
        }
    }

    Slot &slot = slotAt(level, index);
    node.level = level;
    node.index = index;
    node.pos = static_cast<std::uint32_t>(slot.size());
    slot.push_back(id);
}

void
TimerWheel::detach(Node &node)
{
    if (node.level == kDetached)
        return;
    Slot &slot = slotAt(node.level, node.index);
    fsim_assert(node.pos < slot.size());
    TimerId moved = slot.back();
    slot[node.pos] = moved;
    slot.pop_back();
    if (node.pos < slot.size()) {
        // Fix the swapped-in entry's recorded position.
        Node *mn = nodeAt(moved);
        fsim_assert(mn != nullptr);
        mn->pos = node.pos;
    }
    node.level = kDetached;
}

void
TimerWheel::cascade(std::uint32_t level, std::uint32_t index)
{
    Slot &slot = tvn_[level][index];
    cascaded_ += slot.size();
    // place() may legally re-append into this same slot (clamped
    // far-future timers), so iterate a scratch copy. The scratch's
    // capacity is sticky (swapped back when done), keeping steady-state
    // cascades allocation-free yet reentrancy-safe.
    Slot moved;
    moved.swap(cascadeScratch_);
    moved.assign(slot.begin(), slot.end());
    slot.clear();
    for (TimerId id : moved) {
        Node *n = nodeAt(id);
        if (!n)
            continue;   // defensive; eager detach should prevent this
        n->level = kDetached;
        place(id, *n);
    }
    moved.clear();
    moved.swap(cascadeScratch_);
}

void
TimerWheel::tickOnce()
{
    ++jiffy_;
    std::uint32_t idx1 = jiffy_ & (kTv1Size - 1);
    if (idx1 == 0) {
        for (std::uint32_t level = 0; level < kLevels; ++level) {
            std::uint32_t shift = kTv1Bits + level * kTvnBits;
            std::uint32_t idx = (jiffy_ >> shift) & (kTvnSize - 1);
            cascade(level, idx);
            if (idx != 0)
                break;
        }
    }

    // The due batch is detached from the wheel: copy it to a reusable
    // scratch and mark members so a cancel()/modify() issued by an
    // earlier callback in this batch does not try to swap-pop inside
    // the already-cleared slot vector.
    Slot due;
    due.swap(due_);
    due.assign(tv1_[idx1].begin(), tv1_[idx1].end());
    tv1_[idx1].clear();
    for (TimerId id : due) {
        Node *n = nodeAt(id);
        if (n)
            n->level = kDetached;
    }
    for (TimerId id : due) {
        Node *n = nodeAt(id);
        if (!n)
            continue;   // cancelled by an earlier callback in this batch
        if (n->expires > jiffy_) {
            // Re-armed to a later time by an earlier callback; if it is
            // still detached, give it back a real slot.
            if (n->level == kDetached)
                place(id, *n);
            continue;
        }
        Callback cb = std::move(n->cb);
        freeNode(id);
        --liveCount_;
        ++fired_;
        cb();
    }
    due.clear();
    due.swap(due_);
}

std::size_t
TimerWheel::advance(std::uint64_t to_jiffy)
{
    std::size_t before = fired_;
    while (jiffy_ < to_jiffy)
        tickOnce();
    return fired_ - before;
}

std::size_t
TimerWheel::slotEntries() const
{
    std::size_t n = 0;
    for (const Slot &s : tv1_)
        n += s.size();
    for (const auto &level : tvn_)
        for (const Slot &s : level)
            n += s.size();
    return n;
}

} // namespace fsim
