#include "timerwheel/timer_wheel.hh"

#include <utility>

#include "sim/logging.hh"

namespace fsim
{

TimerWheel::TimerWheel(std::uint64_t start_jiffy)
    : jiffy_(start_jiffy)
{
}

TimerWheel::TimerId
TimerWheel::add(std::uint64_t expires, Callback cb)
{
    TimerId id = nextId_++;
    nodes_.emplace(id, Node{expires, std::move(cb)});
    ++liveCount_;
    place(id, expires);
    return id;
}

bool
TimerWheel::cancel(TimerId id)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return false;
    // The slot vectors may still hold stale references to this id; they are
    // skipped lazily when their slot is visited.
    nodes_.erase(it);
    --liveCount_;
    return true;
}

bool
TimerWheel::modify(TimerId id, std::uint64_t expires)
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        return false;
    it->second.expires = expires;
    place(id, expires);
    return true;
}

void
TimerWheel::place(TimerId id, std::uint64_t expires)
{
    // Clamp far-future timers into the outermost level, like the kernel.
    constexpr std::uint64_t kMaxDelta =
        (1ull << (kTv1Bits + kLevels * kTvnBits)) - 1;
    if (expires > jiffy_ + kMaxDelta)
        expires = jiffy_ + kMaxDelta;

    std::uint64_t delta =
        expires > jiffy_ ? expires - jiffy_ : 0;

    if (delta == 0) {
        // Already (or about to be) expired: fire on the next tick.
        tv1_[(jiffy_ + 1) & (kTv1Size - 1)].push_back(id);
    } else if (delta < kTv1Size) {
        tv1_[expires & (kTv1Size - 1)].push_back(id);
    } else {
        for (std::uint32_t level = 0; level < kLevels; ++level) {
            std::uint32_t shift = kTv1Bits + (level + 1) * kTvnBits;
            if (delta < (1ull << shift) || level == kLevels - 1) {
                std::uint32_t idx =
                    (expires >> (shift - kTvnBits)) & (kTvnSize - 1);
                tvn_[level][idx].push_back(id);
                return;
            }
        }
    }
}

void
TimerWheel::cascade(std::uint32_t level, std::uint32_t index)
{
    Slot moved = std::move(tvn_[level][index]);
    tvn_[level][index].clear();
    for (TimerId id : moved) {
        auto it = nodes_.find(id);
        if (it == nodes_.end())
            continue;   // cancelled or already fired
        place(id, it->second.expires);
    }
}

void
TimerWheel::tickOnce()
{
    ++jiffy_;
    std::uint32_t idx1 = jiffy_ & (kTv1Size - 1);
    if (idx1 == 0) {
        for (std::uint32_t level = 0; level < kLevels; ++level) {
            std::uint32_t shift = kTv1Bits + level * kTvnBits;
            std::uint32_t idx = (jiffy_ >> shift) & (kTvnSize - 1);
            cascade(level, idx);
            if (idx != 0)
                break;
        }
    }

    Slot due = std::move(tv1_[idx1]);
    tv1_[idx1].clear();
    for (TimerId id : due) {
        auto it = nodes_.find(id);
        if (it == nodes_.end())
            continue;   // stale reference
        if (it->second.expires > jiffy_)
            continue;   // re-armed to a later time; real entry elsewhere
        Callback cb = std::move(it->second.cb);
        nodes_.erase(it);
        --liveCount_;
        ++fired_;
        cb();
    }
}

std::size_t
TimerWheel::advance(std::uint64_t to_jiffy)
{
    std::size_t before = fired_;
    while (jiffy_ < to_jiffy)
        tickOnce();
    return fired_ - before;
}

} // namespace fsim
