/**
 * @file
 * Linux-style hierarchical (cascading) timing wheel.
 *
 * The structure mirrors the classic kernel timer wheel: one 256-slot base
 * level (tv1) and four 64-slot cascade levels (tv2..tv5), advancing one
 * jiffy at a time and cascading a higher-level slot down whenever the lower
 * index wraps. Each simulated core owns one wheel ("timer base"), protected
 * by the base.lock the paper's Table 1 reports on.
 *
 * Each node tracks its current slot position, so cancel() and modify()
 * detach the slot entry eagerly in O(1) (swap-with-back). The earlier
 * lazy-cancel scheme left stale ids in the slot vectors until the slot was
 * next visited; under keepalive-timer churn (one mod_timer per data
 * segment) with millions of live connections those stale entries grew
 * without bound between cascades.
 *
 * Nodes live in a generation-tagged slab (a plain vector plus an
 * intrusive free list) instead of a std::unordered_map: arming a timer in
 * steady state recycles a slot instead of allocating a map node, which is
 * what keeps the timer path inside the simulator's zero-allocation
 * envelope. A TimerId encodes {slab index, generation}, so a stale handle
 * (cancel of an already-fired timer whose slot was since reused) misses
 * on the generation check exactly like it used to miss in the map.
 * Callbacks are stored inline (InlineFn): the wheel's capture budget is
 * sized by TimerBase's context wrapper [this, TimerBase::Callback].
 */

#ifndef FSIM_TIMERWHEEL_TIMER_WHEEL_HH
#define FSIM_TIMERWHEEL_TIMER_WHEEL_HH

#include <cstdint>
#include <vector>

#include "sim/event_fn.hh"

namespace fsim
{

/** Cascading timer wheel keyed in jiffies. */
class TimerWheel
{
  public:
    /** Inline capture budget for wheel callbacks: fits TimerBase's
     *  [this + contextful-callback] wrapper with nothing to spare —
     *  grow TimerBase::kTimerCaptureMax first if a new arm site needs
     *  more. */
    static constexpr std::size_t kWheelCaptureMax = 64;
    using Callback = InlineFn<void(), kWheelCaptureMax>;
    using TimerId = std::uint64_t;

    /** Sentinel for "no timer". */
    static constexpr TimerId kInvalidTimer = 0;

    explicit TimerWheel(std::uint64_t start_jiffy = 0);

    /**
     * Arm a timer.
     *
     * @param expires Absolute jiffy; values in the past fire on the next
     *                advance.
     * @return Handle usable with cancel()/modify().
     */
    TimerId add(std::uint64_t expires, Callback cb);

    /**
     * Cancel a pending timer.
     *
     * @return true if the timer was still pending.
     */
    bool cancel(TimerId id);

    /**
     * Re-arm a pending timer to a new expiry (like mod_timer()).
     *
     * @return true if the timer was still pending and has been moved.
     */
    bool modify(TimerId id, std::uint64_t expires);

    /**
     * Advance time to @p to_jiffy inclusive, firing expired callbacks in
     * jiffy order.
     *
     * @return number of timers fired.
     */
    std::size_t advance(std::uint64_t to_jiffy);

    /** Currently pending (armed, not cancelled) timers. */
    std::size_t pending() const { return liveCount_; }

    std::uint64_t currentJiffy() const { return jiffy_; }

    /**
     * Total ids held across all slot vectors. With eager detach this
     * equals pending() outside of a firing batch; the accessor exists so
     * tests can assert slot memory stays bounded under cancel/modify
     * churn.
     */
    std::size_t slotEntries() const;

    /** Timers moved down a level by cascades so far (cost visibility). */
    std::uint64_t cascaded() const { return cascaded_; }

    /** Node-slab capacity (memory visibility for scale tests). */
    std::size_t slabCapacity() const { return nodes_.size(); }

  private:
    /** Slot coordinates: level 0 is tv1, 1..kLevels are tvn_[level-1]. */
    static constexpr std::uint8_t kDetached = 0xff;
    static constexpr std::uint32_t kNoFree = 0xffffffff;

    struct Node
    {
        std::uint64_t expires = 0;
        Callback cb;
        std::uint32_t gen = 0;
        std::uint32_t index = 0;
        std::uint32_t pos = 0;
        std::uint32_t nextFree = kNoFree;
        std::uint8_t level = kDetached;
        bool live = false;
    };

    static constexpr std::uint32_t kTv1Bits = 8;
    static constexpr std::uint32_t kTvnBits = 6;
    static constexpr std::uint32_t kTv1Size = 1u << kTv1Bits;   // 256
    static constexpr std::uint32_t kTvnSize = 1u << kTvnBits;   // 64
    static constexpr std::uint32_t kLevels = 4;                 // tv2..tv5

    using Slot = std::vector<TimerId>;

    /** Slab lookup; nullptr when the handle is stale or invalid. */
    Node *nodeAt(TimerId id);
    /** Return a node to the free list; bumps its generation so every
     *  outstanding handle to it goes stale. */
    void freeNode(TimerId id);

    Slot &slotAt(std::uint8_t level, std::uint32_t index);
    void place(TimerId id, Node &node);
    void detach(Node &node);
    void cascade(std::uint32_t level, std::uint32_t index);
    void tickOnce();

    std::uint64_t jiffy_;
    std::size_t liveCount_ = 0;
    std::size_t fired_ = 0;
    std::uint64_t cascaded_ = 0;

    Slot tv1_[kTv1Size];
    Slot tvn_[kLevels][kTvnSize];

    std::vector<Node> nodes_;
    std::uint32_t freeHead_ = kNoFree;
    /** Scratch vectors (capacity reused across ticks; swapped into a
     *  local during use so reentrant advance stays safe). */
    Slot due_;
    Slot cascadeScratch_;
};

} // namespace fsim

#endif // FSIM_TIMERWHEEL_TIMER_WHEEL_HH
