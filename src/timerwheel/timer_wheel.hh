/**
 * @file
 * Linux-style hierarchical (cascading) timing wheel.
 *
 * The structure mirrors the classic kernel timer wheel: one 256-slot base
 * level (tv1) and four 64-slot cascade levels (tv2..tv5), advancing one
 * jiffy at a time and cascading a higher-level slot down whenever the lower
 * index wraps. Each simulated core owns one wheel ("timer base"), protected
 * by the base.lock the paper's Table 1 reports on.
 *
 * Each node tracks its current slot position, so cancel() and modify()
 * detach the slot entry eagerly in O(1) (swap-with-back). The earlier
 * lazy-cancel scheme left stale ids in the slot vectors until the slot was
 * next visited; under keepalive-timer churn (one mod_timer per data
 * segment) with millions of live connections those stale entries grew
 * without bound between cascades.
 */

#ifndef FSIM_TIMERWHEEL_TIMER_WHEEL_HH
#define FSIM_TIMERWHEEL_TIMER_WHEEL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace fsim
{

/** Cascading timer wheel keyed in jiffies. */
class TimerWheel
{
  public:
    using Callback = std::function<void()>;
    using TimerId = std::uint64_t;

    /** Sentinel for "no timer". */
    static constexpr TimerId kInvalidTimer = 0;

    explicit TimerWheel(std::uint64_t start_jiffy = 0);

    /**
     * Arm a timer.
     *
     * @param expires Absolute jiffy; values in the past fire on the next
     *                advance.
     * @return Handle usable with cancel()/modify().
     */
    TimerId add(std::uint64_t expires, Callback cb);

    /**
     * Cancel a pending timer.
     *
     * @return true if the timer was still pending.
     */
    bool cancel(TimerId id);

    /**
     * Re-arm a pending timer to a new expiry (like mod_timer()).
     *
     * @return true if the timer was still pending and has been moved.
     */
    bool modify(TimerId id, std::uint64_t expires);

    /**
     * Advance time to @p to_jiffy inclusive, firing expired callbacks in
     * jiffy order.
     *
     * @return number of timers fired.
     */
    std::size_t advance(std::uint64_t to_jiffy);

    /** Currently pending (armed, not cancelled) timers. */
    std::size_t pending() const { return liveCount_; }

    std::uint64_t currentJiffy() const { return jiffy_; }

    /**
     * Total ids held across all slot vectors. With eager detach this
     * equals pending() outside of a firing batch; the accessor exists so
     * tests can assert slot memory stays bounded under cancel/modify
     * churn.
     */
    std::size_t slotEntries() const;

    /** Timers moved down a level by cascades so far (cost visibility). */
    std::uint64_t cascaded() const { return cascaded_; }

  private:
    /** Slot coordinates: level 0 is tv1, 1..kLevels are tvn_[level-1]. */
    static constexpr std::uint8_t kDetached = 0xff;

    struct Node
    {
        std::uint64_t expires = 0;
        Callback cb;
        std::uint8_t level = kDetached;
        std::uint32_t index = 0;
        std::uint32_t pos = 0;
    };

    static constexpr std::uint32_t kTv1Bits = 8;
    static constexpr std::uint32_t kTvnBits = 6;
    static constexpr std::uint32_t kTv1Size = 1u << kTv1Bits;   // 256
    static constexpr std::uint32_t kTvnSize = 1u << kTvnBits;   // 64
    static constexpr std::uint32_t kLevels = 4;                 // tv2..tv5

    using Slot = std::vector<TimerId>;

    Slot &slotAt(std::uint8_t level, std::uint32_t index);
    void place(TimerId id, Node &node);
    void detach(Node &node);
    void cascade(std::uint32_t level, std::uint32_t index);
    void tickOnce();

    std::uint64_t jiffy_;
    TimerId nextId_ = 1;
    std::size_t liveCount_ = 0;
    std::size_t fired_ = 0;
    std::uint64_t cascaded_ = 0;

    Slot tv1_[kTv1Size];
    Slot tvn_[kLevels][kTvnSize];
    std::unordered_map<TimerId, Node> nodes_;
};

} // namespace fsim

#endif // FSIM_TIMERWHEEL_TIMER_WHEEL_HH
