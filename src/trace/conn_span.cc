#include "trace/conn_span.hh"

#include <algorithm>

namespace fsim
{

const char *
connStageName(ConnStage s)
{
    switch (s) {
      case ConnStage::kSynRx: return "syn-rx";
      case ConnStage::kHandshake: return "handshake";
      case ConnStage::kSoftirqRx: return "softirq-rx";
      case ConnStage::kAcceptQueue: return "accept-queue";
      case ConnStage::kAccept: return "accept";
      case ConnStage::kConnect: return "connect";
      case ConnStage::kDispatch: return "dispatch";
      case ConnStage::kAppRead: return "app-read";
      case ConnStage::kAppProcess: return "app-process";
      case ConnStage::kAppWrite: return "app-write";
      case ConnStage::kTeardown: return "teardown";
      case ConnStage::kVfs: return "vfs";
      case ConnStage::kLockWait: return "lock-wait";
      case ConnStage::kCoreTransfer: return "core-transfer";
    }
    return "?";
}

ConnStageKind
connStageKind(ConnStage s)
{
    switch (s) {
      case ConnStage::kAcceptQueue:
      case ConnStage::kDispatch:
      case ConnStage::kCoreTransfer:
        return ConnStageKind::kWait;
      case ConnStage::kVfs:
      case ConnStage::kLockWait:
        return ConnStageKind::kSub;
      default:
        return ConnStageKind::kExec;
    }
}

Tick
ConnSpanTrace::stageTicks(ConnStage s) const
{
    Tick total = 0;
    for (const ConnSpan &sp : spans)
        if (sp.stage == s)
            total += sp.end - sp.begin;
    return total;
}

Tick
ConnSpanTrace::serviceLatency() const
{
    Tick last_write = 0;
    Tick last_exec = openTick;
    for (const ConnSpan &sp : spans) {
        if (sp.stage == ConnStage::kAppWrite)
            last_write = std::max(last_write, sp.end);
        if (connStageKind(sp.stage) == ConnStageKind::kExec)
            last_exec = std::max(last_exec, sp.end);
    }
    const Tick done = last_write ? last_write : last_exec;
    return done > openTick ? done - openTick : 0;
}

void
ConnSpanLog::open(std::uint64_t conn_id, Tick t, bool passive)
{
    if (!enabled_)
        return;
    ConnSpanTrace &tr = live_[conn_id];
    tr.connId = conn_id;
    tr.openTick = t;
    tr.passive = passive;
    ++opened_;
    ++allocations_;
}

void
ConnSpanLog::add(std::uint64_t conn_id, ConnStage stage, CoreId core,
                 Tick begin, Tick end, std::uint32_t aux)
{
    if (!enabled_)
        return;
    auto it = live_.find(conn_id);
    if (it == live_.end())
        return; // stray work after teardown (e.g. duplicate packets)
    ConnSpanTrace &tr = it->second;
    if (end < begin)
        end = begin;
    if (connStageKind(stage) == ConnStageKind::kExec) {
        if (execTicksPerCore_.size() <= static_cast<std::size_t>(core))
            execTicksPerCore_.resize(core + 1, 0);
        execTicksPerCore_[core] += end - begin;
    }
    if (tr.spans.size() >= kMaxSpansPerConn) {
        ++spansDropped_;
        return;
    }
    ConnSpan sp;
    sp.begin = begin;
    sp.end = end;
    sp.aux = aux;
    sp.core = static_cast<std::int16_t>(core);
    sp.stage = stage;
    tr.spans.push_back(sp);
    ++spansRecorded_;
    ++allocations_;
}

void
ConnSpanLog::setTraceId(std::uint64_t conn_id, std::uint64_t trace_id)
{
    if (!enabled_)
        return;
    auto it = live_.find(conn_id);
    if (it != live_.end())
        it->second.traceId = trace_id;
}

void
ConnSpanLog::noteShed(std::uint64_t conn_id, std::uint8_t reason)
{
    if (!enabled_)
        return;
    auto it = live_.find(conn_id);
    if (it != live_.end())
        it->second.shedReason = reason;
}

void
ConnSpanLog::close(std::uint64_t conn_id, Tick t)
{
    if (!enabled_)
        return;
    auto it = live_.find(conn_id);
    if (it == live_.end())
        return;
    it->second.closeTick = t;
    it->second.closed = true;
    ++closedTotal_;
    if (completed_.size() < kMaxRetainedTraces) {
        completed_.push_back(std::move(it->second));
        ++allocations_;
    } else {
        ++tracesDropped_;
    }
    live_.erase(it);
}

void
ConnSpanLog::closeAllLive(Tick t)
{
    if (!enabled_ || live_.empty())
        return;
    // live_ is a hash map; sort the keys so crash finalization is
    // deterministic regardless of insertion history.
    std::vector<std::uint64_t> ids;
    ids.reserve(live_.size());
    for (const auto &kv : live_)
        ids.push_back(kv.first);
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
        auto it = live_.find(id);
        it->second.closeTick = t;
        // closed stays false: no orderly teardown was observed.
        ++closedTotal_;
        if (completed_.size() < kMaxRetainedTraces) {
            completed_.push_back(std::move(it->second));
            ++allocations_;
        } else {
            ++tracesDropped_;
        }
        live_.erase(it);
    }
}

std::vector<const ConnSpanTrace *>
ConnSpanLog::liveSnapshot() const
{
    std::vector<const ConnSpanTrace *> out;
    out.reserve(live_.size());
    for (const auto &kv : live_)
        out.push_back(&kv.second);
    std::sort(out.begin(), out.end(),
              [](const ConnSpanTrace *a, const ConnSpanTrace *b) {
                  return a->connId < b->connId;
              });
    return out;
}

std::uint64_t
ConnSpanLog::execSelfTicks(CoreId core) const
{
    if (static_cast<std::size_t>(core) >= execTicksPerCore_.size())
        return 0;
    return execTicksPerCore_[core];
}

} // namespace fsim
