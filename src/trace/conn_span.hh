/**
 * @file
 * Per-connection lifecycle span log: the simulator's answer to "where did
 * THIS connection lose its time?".
 *
 * Every connection TCB minted by the kernel opens a ConnSpanTrace; hook
 * points across the stack (SoftIRQ SYN/handshake processing, accept-queue
 * sojourn, accept/connect/read/write/close syscalls, VFS allocation,
 * epoll dispatch, lock spins, RFD cross-core transfers) append timestamped
 * stage spans with the executing core. Aggregate phase accounting
 * (PhaseAccounting) answers "where did the machine's cycles go"; this log
 * answers the per-request question the paper's tail analysis needs.
 *
 * Stages come in three kinds:
 *  - exec:  cycles a core actually spent on this connection. Per core,
 *    exec spans never overlap (cores execute serially in virtual time),
 *    so their per-core sum must reconcile with CpuModel busy ticks
 *    (sum <= busy; the cross-check test pins it).
 *  - wait:  elapsed time with no core charged (accept-queue sojourn,
 *    epoll-wake-to-read dispatch delay, SoftIRQ backlog residency after a
 *    software steer). Waits explain tails; they are excluded from the
 *    exec reconciliation.
 *  - sub:   a sub-interval of an enclosing exec span (lock spin, VFS
 *    allocation) broken out for attribution. Also excluded from the
 *    reconciliation sum, since the parent already covers the cycles.
 *
 * Determinism: completed traces are kept in completion order (a pure
 * function of simulated events), never in pointer or hash order, so any
 * report derived from the log is bit-stable for a given seed + config.
 * Recording never charges virtual cycles and never touches simulated
 * state, so results are identical with tracing on or off.
 */

#ifndef FSIM_TRACE_CONN_SPAN_HH
#define FSIM_TRACE_CONN_SPAN_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace fsim
{

/** Connection lifecycle stage a span is attributed to. */
enum class ConnStage : std::uint8_t
{
    kSynRx = 0,      //!< SoftIRQ: SYN processing (TCB mint + SYN-ACK)
    kHandshake,      //!< SoftIRQ: final ACK / cookie ACK establishes
    kSoftirqRx,      //!< SoftIRQ: any other packet on this connection
    kAcceptQueue,    //!< wait: enqueue-to-dequeue accept-queue sojourn
    kAccept,         //!< accept() syscall servicing this connection
    kConnect,        //!< connect() syscall creating an active connection
    kDispatch,       //!< wait: epoll wakeup to the app's read() syscall
    kAppRead,        //!< read() syscall
    kAppProcess,     //!< application service work between read and write
    kAppWrite,       //!< write() syscall
    kTeardown,       //!< close() syscall + FIN-path work
    kVfs,            //!< sub: VFS socket-file alloc/free inside a syscall
    kLockWait,       //!< sub: lock spin inside an enclosing stage
    kCoreTransfer,   //!< wait: cross-core handoff (RFD software steer)
};

/** Total number of connection stages. */
constexpr int kNumConnStages =
    static_cast<int>(ConnStage::kCoreTransfer) + 1;

/** How a stage's time relates to core busy cycles (see file header). */
enum class ConnStageKind : std::uint8_t
{
    kExec = 0,
    kWait,
    kSub,
};

/** Stable lowercase stage name ("syn-rx", "accept-queue", ...). */
const char *connStageName(ConnStage s);

ConnStageKind connStageKind(ConnStage s);

/** One timestamped stage interval of one connection. */
struct ConnSpan
{
    Tick begin = 0;
    Tick end = 0;
    /** Stage-specific payload: peer core for kCoreTransfer, lock-class
     *  trace id for kLockWait, VFS mode for kVfs, 0 otherwise. */
    std::uint32_t aux = 0;
    /** Core that executed (exec/sub) or hosts the waiting queue (wait). */
    std::int16_t core = -1;
    ConnStage stage = ConnStage::kSynRx;
};

/** The full recorded lifecycle of one connection. */
struct ConnSpanTrace
{
    /** "Not shed by admission control" sentinel for shedReason. */
    static constexpr std::uint8_t kNotShed = 0xff;

    std::uint64_t connId = 0;
    /** End-to-end distributed trace context (Packet::traceId) this
     *  connection belongs to; 0 when the client did not mint one
     *  (probes, backend-side connections). The fleet stitcher joins
     *  machine-side traces to LB/client records on this key. */
    std::uint64_t traceId = 0;
    Tick openTick = 0;     //!< first kernel touch (SYN rx / connect)
    Tick closeTick = 0;    //!< TCB destruction
    bool passive = true;
    bool closed = false;
    /** ShedReason value when admission control shed this connection. */
    std::uint8_t shedReason = kNotShed;
    std::vector<ConnSpan> spans;

    /** Sum of span durations recorded for @p s. */
    Tick stageTicks(ConnStage s) const;

    /**
     * Service latency: open until the last response byte was written
     * (end of the last kAppWrite span), falling back to the last exec
     * span for connections that never produced a response. This is the
     * server-side analogue of the client-observed latency, minus wire
     * delay, and the ranking key for tail exemplars.
     */
    Tick serviceLatency() const;
};

/**
 * Per-machine log of connection span traces (owned by the Tracer).
 *
 * All mutators are no-ops when disabled, and the allocation counter
 * stays zero — the bench-mode "--notrace costs nothing" assert keys on
 * that.
 */
class ConnSpanLog
{
  public:
    /** Spans retained per connection before dropping (and counting). */
    static constexpr std::size_t kMaxSpansPerConn = 96;
    /** Completed traces retained before dropping whole traces. */
    static constexpr std::size_t kMaxRetainedTraces = 1u << 18;

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Begin a trace for @p conn_id (kernel TCB creation). */
    void open(std::uint64_t conn_id, Tick t, bool passive);

    /** Append one stage span; unknown ids are ignored (the trace may
     *  already be finalized, e.g. stray packets after destruction). */
    void add(std::uint64_t conn_id, ConnStage stage, CoreId core,
             Tick begin, Tick end, std::uint32_t aux = 0);

    /** Record an admission-control shed verdict on the trace. */
    void noteShed(std::uint64_t conn_id, std::uint8_t reason);

    /** Attach the distributed trace context (kernel TCB inherit). */
    void setTraceId(std::uint64_t conn_id, std::uint64_t trace_id);

    /** Finalize the trace (TCB destruction) in completion order. */
    void close(std::uint64_t conn_id, Tick t);

    /** Finalize every still-live trace at @p t (machine death: the
     *  TCBs never destruct, so their spans would otherwise leak).
     *  Traces keep closed=false to mark the abnormal finalization;
     *  processed in ascending conn-id order for determinism. */
    void closeAllLive(Tick t);

    /** Deterministic snapshot of still-open traces (connections in
     *  flight at collection time), ascending conn-id order. A span
     *  does not need an orderly close to join an end-to-end trace —
     *  e.g. a server stuck retransmitting its FIN through a NAT flow
     *  that died in a balancer failover still served the request. */
    std::vector<const ConnSpanTrace *> liveSnapshot() const;

    /** Completed traces, oldest first (completion order). */
    const std::vector<ConnSpanTrace> &completed() const
    {
        return completed_;
    }

    std::size_t completedCount() const { return completed_.size(); }
    std::size_t liveCount() const { return live_.size(); }

    /** @name Accounting */
    /** @{ */
    std::uint64_t opened() const { return opened_; }
    std::uint64_t closedTotal() const { return closedTotal_; }
    std::uint64_t spansRecorded() const { return spansRecorded_; }
    std::uint64_t spansDropped() const { return spansDropped_; }
    std::uint64_t tracesDropped() const { return tracesDropped_; }
    /** Heap activity caused by the log (trace + span insertions);
     *  must be exactly zero when the log is disabled. */
    std::uint64_t allocations() const { return allocations_; }
    /** @} */

    /**
     * Total exec-span cycles recorded against @p core, across live,
     * completed and retention-dropped traces. Reconciles against
     * CpuModel::busyTicks(core): recorded exec time can never exceed
     * what the core actually ran.
     */
    std::uint64_t execSelfTicks(CoreId core) const;

  private:
    bool enabled_ = true;
    std::unordered_map<std::uint64_t, ConnSpanTrace> live_;
    std::vector<ConnSpanTrace> completed_;
    std::vector<std::uint64_t> execTicksPerCore_;

    std::uint64_t opened_ = 0;
    std::uint64_t closedTotal_ = 0;
    std::uint64_t spansRecorded_ = 0;
    std::uint64_t spansDropped_ = 0;
    std::uint64_t tracesDropped_ = 0;
    std::uint64_t allocations_ = 0;
};

} // namespace fsim

#endif // FSIM_TRACE_CONN_SPAN_HH
