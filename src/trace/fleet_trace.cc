#include "trace/fleet_trace.hh"

#include <algorithm>
#include <array>
#include <sstream>

namespace fsim
{

FleetTrace *
FleetTraceLog::find(std::uint64_t trace_id)
{
    auto it = records_.find(trace_id);
    return it == records_.end() ? nullptr : &it->second;
}

void
FleetTraceLog::clientStart(std::uint64_t trace_id, Tick t)
{
    if (!enabled_ || trace_id == 0)
        return;
    auto ins = records_.try_emplace(trace_id);
    FleetTrace &tr = ins.first->second;
    if (!ins.second && tr.clientStart != 0) {
        ++duplicates_;
        return;
    }
    tr.traceId = trace_id;
    tr.clientStart = t;
    ++clientStarts_;
    ++allocations_;
}

void
FleetTraceLog::clientEnd(std::uint64_t trace_id, Tick t, bool ok)
{
    if (!enabled_ || trace_id == 0)
        return;
    FleetTrace *tr = find(trace_id);
    if (!tr || tr->clientDone)
        return;
    tr->clientEnd = t;
    tr->clientDone = true;
    tr->ok = ok;
    ++clientCompleted_;
}

void
FleetTraceLog::lbIngress(std::uint64_t trace_id, Tick t, int lb, int slot)
{
    if (!enabled_ || trace_id == 0)
        return;
    auto ins = records_.try_emplace(trace_id);
    FleetTrace &tr = ins.first->second;
    if (ins.second) {
        // LB saw the SYN before the client record landed (cannot happen
        // with in-order recording, but keep the record coherent).
        tr.traceId = trace_id;
        ++allocations_;
    }
    if (tr.lbFlows == 0) {
        tr.lbId = lb;
        tr.lbIngress = t;
        tr.serverSlot = slot;
    }
    ++tr.lbFlows;
}

void
FleetTraceLog::lbForward(std::uint64_t trace_id)
{
    if (!enabled_ || trace_id == 0)
        return;
    FleetTrace *tr = find(trace_id);
    if (tr)
        ++tr->lbForwards;
}

void
FleetTraceLog::stitchMachineSpan(const ConnSpanTrace &span)
{
    if (!enabled_ || span.traceId == 0)
        return;
    FleetTrace *tr = find(span.traceId);
    if (!tr)
        return;
    const Tick service = span.serviceLatency();
    if (tr->stitched) {
        // Failover can leave a reaped half-open TCB on the old machine
        // plus the span that actually served; prefer an orderly close
        // over a crash-finalized span, then the larger service latency
        // — deterministically the serving one.
        if (tr->serverOrderly && !span.closed)
            return;
        if (tr->serverOrderly == span.closed &&
            (service < tr->serverService ||
             (service == tr->serverService &&
              span.openTick >= tr->serverOpen)))
            return;
    } else {
        ++stitched_;
    }
    tr->stitched = true;
    tr->serverOrderly = span.closed;
    tr->serverOpen = span.openTick;
    tr->serverClose = span.closeTick;
    tr->serverService = service;
    Tick exec = 0;
    for (const ConnSpan &sp : span.spans)
        if (connStageKind(sp.stage) == ConnStageKind::kExec)
            exec += sp.end - sp.begin;
    tr->serverExec = exec;
}

std::uint64_t
FleetTraceLog::orphans() const
{
    std::uint64_t n = 0;
    for (const auto &kv : records_) {
        const FleetTrace &tr = kv.second;
        if (tr.clientDone && tr.ok && tr.lbFlows == 0)
            ++n;
    }
    return n;
}

std::vector<const FleetTrace *>
FleetTraceLog::sortedCompleted() const
{
    std::vector<const FleetTrace *> out;
    out.reserve(records_.size());
    for (const auto &kv : records_)
        if (kv.second.clientDone)
            out.push_back(&kv.second);
    std::sort(out.begin(), out.end(),
              [](const FleetTrace *a, const FleetTrace *b) {
                  if (a->clientStart != b->clientStart)
                      return a->clientStart < b->clientStart;
                  return a->traceId < b->traceId;
              });
    return out;
}

namespace
{

/** Hop attribution of one completed trace (all ticks, lossless:
 *  slices sum to the end-to-end latency by construction — "wire"
 *  absorbs the remainder). */
struct HopSlices
{
    static constexpr int kNumHops = 5;
    // Index order matches FleetTraceForensics::hops.
    std::array<Tick, kNumHops> t{};
};

constexpr const char *kHopNames[HopSlices::kNumHops] = {
    "wire", "lb-ingress", "lb-nat", "server-exec", "backend-rtt",
};

HopSlices
sliceTrace(const FleetTrace &tr, Tick forward_delay)
{
    HopSlices s;
    const Tick e2e = tr.e2eLatency();
    const Tick ingress = Tick{tr.lbFlows} * forward_delay;
    const Tick nat = tr.lbForwards > tr.lbFlows
        ? Tick{tr.lbForwards - tr.lbFlows} * forward_delay
        : 0;
    const Tick exec = std::min(tr.serverExec, tr.serverService);
    const Tick rtt = tr.serverService - exec;
    Tick accounted = ingress + nat + exec + rtt;
    s.t[1] = ingress;
    s.t[2] = nat;
    s.t[3] = exec;
    s.t[4] = rtt;
    s.t[0] = e2e > accounted ? e2e - accounted : 0; // wire + residual
    return s;
}

Tick
pct(std::vector<Tick> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::size_t idx =
        static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

FleetTraceForensics
buildFleetTraceForensics(const FleetTraceLog &log, Tick forward_delay)
{
    FleetTraceForensics f;
    f.enabled = log.enabled();
    f.duplicates = log.duplicates();
    f.orphans = log.orphans();
    f.stitched = log.machineSpansStitched();
    if (!f.enabled)
        return f;

    std::vector<const FleetTrace *> done;
    for (const FleetTrace *tr : log.sortedCompleted())
        if (tr->ok)
            done.push_back(tr);
    f.tracesCompleted = done.size();
    if (done.empty())
        return f;

    // Rank by end-to-end latency for percentiles + exemplar picks.
    std::vector<const FleetTrace *> byLat = done;
    std::stable_sort(byLat.begin(), byLat.end(),
                     [](const FleetTrace *a, const FleetTrace *b) {
                         return a->e2eLatency() < b->e2eLatency();
                     });
    auto rankAt = [&](double q) {
        std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(byLat.size() - 1));
        return byLat[idx];
    };
    f.e2eP50 = rankAt(0.50)->e2eLatency();
    f.e2eP99 = rankAt(0.99)->e2eLatency();
    f.e2eP999 = rankAt(0.999)->e2eLatency();

    std::array<std::vector<Tick>, HopSlices::kNumHops> perHop;
    for (auto &v : perHop)
        v.reserve(done.size());
    std::array<double, HopSlices::kNumHops> hopSum{};
    double e2eSum = 0.0;
    for (const FleetTrace *tr : done) {
        const HopSlices s = sliceTrace(*tr, forward_delay);
        for (int h = 0; h < HopSlices::kNumHops; ++h) {
            perHop[h].push_back(s.t[h]);
            hopSum[h] += static_cast<double>(s.t[h]);
        }
        e2eSum += static_cast<double>(tr->e2eLatency());
    }
    for (int h = 0; h < HopSlices::kNumHops; ++h) {
        std::sort(perHop[h].begin(), perHop[h].end());
        FleetHopStat st;
        st.hop = kHopNames[h];
        st.p50 = pct(perHop[h], 0.50);
        st.p99 = pct(perHop[h], 0.99);
        st.p999 = pct(perHop[h], 0.999);
        st.max = perHop[h].back();
        st.share = e2eSum > 0.0 ? hopSum[h] / e2eSum : 0.0;
        f.hops.push_back(st);
    }

    auto dominant = [&](const FleetTrace *tr) {
        const HopSlices s = sliceTrace(*tr, forward_delay);
        int best = 0;
        for (int h = 1; h < HopSlices::kNumHops; ++h)
            if (s.t[h] > s.t[best])
                best = h;
        return std::string(kHopNames[best]);
    };
    f.dominantP50 = dominant(rankAt(0.50));
    f.dominantP99 = dominant(rankAt(0.99));
    f.dominantP999 = dominant(rankAt(0.999));
    return f;
}

std::string
renderFleetTraceReport(const FleetTraceForensics &f, const std::string &label)
{
    std::ostringstream os;
    os << "=== fleet trace forensics: " << label << " ===\n";
    if (!f.enabled) {
        os << "  (tracing disabled)\n";
        return os.str();
    }
    os << "  traces completed " << f.tracesCompleted
       << "  stitched " << f.stitched
       << "  orphans " << f.orphans
       << "  duplicates " << f.duplicates << "\n";
    os << "  e2e p50 " << f.e2eP50 << "  p99 " << f.e2eP99
       << "  p999 " << f.e2eP999 << " ticks\n";
    os << "  critical path: p50=" << f.dominantP50
       << " p99=" << f.dominantP99
       << " p999=" << f.dominantP999 << "\n";
    for (const FleetHopStat &h : f.hops) {
        os << "    " << h.hop;
        for (std::size_t pad = h.hop.size(); pad < 12; ++pad)
            os << ' ';
        os << " p50 " << h.p50 << "  p99 " << h.p99
           << "  p999 " << h.p999 << "  max " << h.max
           << "  share " << static_cast<int>(h.share * 100.0 + 0.5)
           << "%\n";
    }
    return os.str();
}

} // namespace fsim
