/**
 * @file
 * Fleet-wide distributed request tracing: the end-to-end complement of
 * ConnSpanLog. A request in the fleet tier crosses client -> L4
 * balancer (full NAT) -> server machine -> backend; each hop only sees
 * its own slice. The 64-bit trace context the client mints
 * (Packet::traceId) survives the NAT rewrite and is inherited by the
 * server TCB, so the hop records collected here stitch into one
 * end-to-end trace per request — the "where did THIS p999 request
 * spend its time, fleet-wide?" answer LiveStack-style cluster
 * simulation needs.
 *
 * The log is recording-only: it schedules no events, charges no
 * virtual cycles, and never touches simulated state, so results (and
 * run fingerprints) are identical with tracing on or off. All mutators
 * are no-ops when disabled and the allocation counter stays zero — the
 * same "--notrace costs nothing" discipline ConnSpanLog follows.
 */

#ifndef FSIM_TRACE_FLEET_TRACE_HH
#define FSIM_TRACE_FLEET_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "trace/conn_span.hh"

namespace fsim
{

/** One end-to-end request trace, stitched across fleet hops. */
struct FleetTrace
{
    std::uint64_t traceId = 0;

    /** @name Client hop (HttpLoad) */
    /** @{ */
    Tick clientStart = 0;       //!< launch (SYN minted)
    Tick clientEnd = 0;         //!< closed-loop finish (ok or failed)
    bool clientDone = false;
    bool ok = false;
    /** @} */

    /** @name Balancer hop (L4 full NAT) */
    /** @{ */
    int lbId = -1;              //!< first balancer that created a flow
    Tick lbIngress = 0;         //!< first SYN arrival at a VIP
    std::uint32_t lbFlows = 0;  //!< flow entries created (failover -> >1)
    std::uint32_t lbForwards = 0;   //!< packets NAT-rewritten, both ways
    int serverSlot = -1;        //!< machine slot the flow steered to
    /** @} */

    /** @name Server-machine hop (stitched from ConnSpanLog) */
    /** @{ */
    bool stitched = false;
    bool serverOrderly = false; //!< span closed via TCB destruction
    Tick serverOpen = 0;        //!< TCB mint (SYN rx)
    Tick serverClose = 0;       //!< TCB destruction
    Tick serverService = 0;     //!< ConnSpanTrace::serviceLatency
    Tick serverExec = 0;        //!< sum of exec-stage spans
    /** @} */

    Tick e2eLatency() const
    {
        return clientEnd > clientStart ? clientEnd - clientStart : 0;
    }
};

/**
 * Fleet-scope trace collector, owned by FleetTestbed. The client and
 * the balancers push hop records as they happen; the testbed stitches
 * machine-side spans in at collect time (matching on
 * ConnSpanTrace::traceId).
 */
class FleetTraceLog
{
  public:
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Client minted @p trace_id and sent the first SYN. */
    void clientStart(std::uint64_t trace_id, Tick t);

    /** Client finished the request (closed loop: success or give-up). */
    void clientEnd(std::uint64_t trace_id, Tick t, bool ok);

    /** A balancer created a flow for @p trace_id steered to
     *  @p server_slot. Called again on failover (the retransmitted SYN
     *  lands on the adopting balancer); first call wins the ingress
     *  stamp, every call counts a flow. */
    void lbIngress(std::uint64_t trace_id, Tick t, int lb, int slot);

    /** A balancer NAT-rewrote one packet of @p trace_id (either
     *  direction). */
    void lbForward(std::uint64_t trace_id);

    /**
     * Join a machine-side span trace. When two machine spans claim the
     * same trace id (a reaped half-open TCB on the pre-failover
     * machine plus the one that actually served), the span with the
     * larger service latency wins — deterministically the serving one.
     */
    void stitchMachineSpan(const ConnSpanTrace &tr);

    /** @name Accounting (all deterministic) */
    /** @{ */
    std::uint64_t clientStarts() const { return clientStarts_; }
    std::uint64_t clientCompleted() const { return clientCompleted_; }
    /** Second clientStart on an already-finished id: a trace-id
     *  collision between distinct attempts. Must stay zero. */
    std::uint64_t duplicates() const { return duplicates_; }
    /** Machine spans joined to a record. */
    std::uint64_t machineSpansStitched() const { return stitched_; }
    /** Heap activity caused by the log; exactly zero when disabled. */
    std::uint64_t allocations() const { return allocations_; }
    /** @} */

    /** Completed-ok traces with no balancer record: the trace context
     *  was lost in flight. Must stay zero. */
    std::uint64_t orphans() const;

    const std::unordered_map<std::uint64_t, FleetTrace> &records() const
    {
        return records_;
    }

    /** Deterministic view: completed traces sorted by (clientStart,
     *  traceId). Reports and exports iterate this, never the map. */
    std::vector<const FleetTrace *> sortedCompleted() const;

  private:
    FleetTrace *find(std::uint64_t trace_id);

    bool enabled_ = true;
    std::unordered_map<std::uint64_t, FleetTrace> records_;
    std::uint64_t clientStarts_ = 0;
    std::uint64_t clientCompleted_ = 0;
    std::uint64_t duplicates_ = 0;
    std::uint64_t stitched_ = 0;
    std::uint64_t allocations_ = 0;
};

/** Per-hop latency distribution over completed traces (ticks). */
struct FleetHopStat
{
    std::string hop;        //!< "wire", "lb-ingress", "lb-nat", ...
    Tick p50 = 0;
    Tick p99 = 0;
    Tick p999 = 0;
    Tick max = 0;
    /** Share of summed end-to-end latency attributed to this hop. */
    double share = 0.0;
};

/** End-to-end critical-path summary (the fleet --forensics block). */
struct FleetTraceForensics
{
    bool enabled = false;
    std::uint64_t tracesCompleted = 0;  //!< ok client finishes
    std::uint64_t orphans = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t stitched = 0;         //!< with a machine span joined
    Tick e2eP50 = 0;
    Tick e2eP99 = 0;
    Tick e2eP999 = 0;
    /** Hop stats in fixed order: wire, lb-ingress, lb-nat, server-exec,
     *  backend-rtt. */
    std::vector<FleetHopStat> hops;
    /** Hop with the largest slice of the exemplar trace picked at each
     *  end-to-end latency percentile. */
    std::string dominantP50;
    std::string dominantP99;
    std::string dominantP999;
};

/**
 * Build the critical-path summary over @p log's completed-ok traces.
 * @p forward_delay is the balancer's per-packet rewrite cost, used to
 * attribute lb-ingress (first SYN) and lb-nat (every further rewrite)
 * time.
 */
FleetTraceForensics buildFleetTraceForensics(const FleetTraceLog &log,
                                             Tick forward_delay);

/** Human-readable report (the fleet --forensics output). */
std::string renderFleetTraceReport(const FleetTraceForensics &f,
                                   const std::string &label);

} // namespace fsim

#endif // FSIM_TRACE_FLEET_TRACE_HH
