#include "trace/incident_log.hh"

#include "check/fingerprint.hh"

namespace fsim
{

const char *
incidentKindName(IncidentKind kind)
{
    switch (kind) {
      case IncidentKind::kMachineCrash:
        return "machine_crash";
      case IncidentKind::kMachineDegrade:
        return "machine_degrade";
      case IncidentKind::kMachineFlap:
        return "machine_flap";
      case IncidentKind::kNetPartition:
        return "net_partition";
      case IncidentKind::kLbCrash:
        return "lb_crash";
      case IncidentKind::kSloBurn:
        return "slo_burn";
    }
    return "?";
}

int
IncidentLog::open(IncidentKind kind, int target, Tick injectAt)
{
    Incident inc;
    inc.kind = kind;
    inc.target = target;
    inc.injectAt = injectAt;
    incidents_.push_back(inc);
    return static_cast<int>(incidents_.size()) - 1;
}

void
IncidentLog::noteCleared(int id, Tick t)
{
    Incident &inc = incidents_.at(id);
    if (!inc.cleared) {
        inc.cleared = true;
        inc.clearAt = t;
    }
}

Incident *
IncidentLog::latestFor(int target, Tick t)
{
    // Exact-target match first; a fleet-wide incident (target -1) whose
    // fault is still in force is the fallback, so group partitions
    // still collect the ejections they cause.
    for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
        if (it->target == target && it->injectAt <= t)
            return &*it;
    }
    for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
        if (it->target == -1 && it->injectAt <= t &&
            (!it->cleared || it->clearAt > t))
            return &*it;
    }
    return nullptr;
}

void
IncidentLog::noteDetect(int target, Tick t)
{
    Incident *inc = latestFor(target, t);
    if (inc && !inc->detected) {
        inc->detected = true;
        inc->detectAt = t;
    }
}

void
IncidentLog::noteDetectById(int id, Tick t)
{
    Incident &inc = incidents_.at(id);
    if (!inc.detected) {
        inc.detected = true;
        inc.detectAt = t;
    }
}

void
IncidentLog::noteEject(int target, Tick t)
{
    Incident *inc = latestFor(target, t);
    if (!inc)
        return;
    // An ejection without a prior suspicion stamp still detected the
    // fault — at the same moment it acted.
    if (!inc->detected) {
        inc->detected = true;
        inc->detectAt = t;
    }
    if (!inc->ejected) {
        inc->ejected = true;
        inc->ejectAt = t;
    }
}

void
IncidentLog::noteRecover(int target, Tick t)
{
    Incident *inc = latestFor(target, t);
    if (inc && inc->ejected && !inc->recovered) {
        inc->recovered = true;
        inc->recoverAt = t;
    }
}

std::uint64_t
IncidentLog::hash() const
{
    Fingerprint fp;
    for (const Incident &inc : incidents_) {
        fp.mix(static_cast<std::uint64_t>(inc.kind));
        fp.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(inc.target)));
        fp.mix(static_cast<std::uint64_t>(inc.injectAt));
        const std::uint64_t none = ~std::uint64_t{0};
        fp.mix(inc.cleared ? static_cast<std::uint64_t>(inc.clearAt)
                           : none);
        fp.mix(inc.detected ? static_cast<std::uint64_t>(inc.detectAt)
                            : none);
        fp.mix(inc.ejected ? static_cast<std::uint64_t>(inc.ejectAt)
                           : none);
        fp.mix(inc.recovered ? static_cast<std::uint64_t>(inc.recoverAt)
                             : none);
    }
    return fp.value();
}

} // namespace fsim
